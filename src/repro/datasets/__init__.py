"""Synthetic equivalents of the paper's datasets (§3), same schemas."""

from repro.datasets.radar import RadarOutageEntry, build_radar_feed
from repro.datasets.pulse import PulseSample, PulseStudy, run_pulse_study
from repro.datasets.apnic import (
    ResolverUsageRecord,
    build_resolver_usage,
    SAMPLES_PER_COUNTRY,
)
from repro.datasets.atlas import (
    AtlasSnapshot,
    collect_snapshot,
    probe_target_ip,
)
from repro.datasets.afrinic import (
    DelegationRecord,
    build_delegated_file,
    expected_asns,
    parse_delegated_file,
    render_delegated_file,
)
from repro.datasets.peeringdb import (
    build_ixp_directory,
    membership_map,
    LISTING_RATE,
)
from repro.datasets.reference_growth import (
    REFERENCE_GROWTH,
    RegionInfraCounts,
    growth_pct,
)

__all__ = [
    "RadarOutageEntry", "build_radar_feed",
    "PulseSample", "PulseStudy", "run_pulse_study",
    "ResolverUsageRecord", "build_resolver_usage", "SAMPLES_PER_COUNTRY",
    "AtlasSnapshot", "collect_snapshot", "probe_target_ip",
    "DelegationRecord", "build_delegated_file", "expected_asns",
    "parse_delegated_file", "render_delegated_file",
    "build_ixp_directory", "membership_map", "LISTING_RATE",
    "REFERENCE_GROWTH", "RegionInfraCounts", "growth_pct",
]
