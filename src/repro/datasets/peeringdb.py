"""PeeringDB/PCH-style IXP directory (synthetic, incomplete).

IXP detection (traIXroute, §4.1/§6.1) relies on public directories of
peering-LAN prefixes.  Directories are famously incomplete for Africa:
small exchanges never register, and Northern African IXPs barely appear
at all — the reason Fig. 3 excludes the region ("lack of IXPs showing
up in our data set").  Listing probability therefore varies by region
and exchange size.
"""

from __future__ import annotations

from typing import Optional

from repro.geo import Region
from repro.measurement.ixp_detect import IXPDirectory, IXPDirectoryEntry
from repro.topology import Topology
from repro.util import derive_rng

#: Base probability an IXP is listed in the public directory.
LISTING_RATE: dict[Region, float] = {
    Region.SOUTHERN_AFRICA: 0.95,
    Region.EASTERN_AFRICA: 0.85,
    Region.WESTERN_AFRICA: 0.80,
    Region.CENTRAL_AFRICA: 0.75,
    Region.NORTHERN_AFRICA: 0.35,
    Region.EUROPE: 1.0,
    Region.NORTH_AMERICA: 1.0,
    Region.SOUTH_AMERICA: 0.9,
    Region.ASIA_PACIFIC: 0.9,
}

#: Members below this make an exchange easy to overlook entirely.
SMALL_IXP_MEMBERS = 3
SMALL_IXP_PENALTY = 0.5
#: Exchanges at or above this size are always registered — no flagship
#: (NAPAfrica/KIXP/IXPN class) is ever missing from PeeringDB.
ALWAYS_LISTED_MEMBERS = 8


def build_ixp_directory(topo: Topology, seed: Optional[int] = None,
                        complete: bool = False) -> IXPDirectory:
    """The public IXP directory.

    ``complete=True`` returns ground truth (what a perfect registry —
    or the Observatory's own bookkeeping — would hold); the default
    applies real-world incompleteness.
    """
    seed = seed if seed is not None else topo.params.seed
    rng = derive_rng(seed, "datasets", "peeringdb")
    directory = IXPDirectory()
    for ixp in sorted(topo.ixps.values(), key=lambda x: x.ixp_id):
        listed = True
        if not complete and len(ixp.members) < ALWAYS_LISTED_MEMBERS:
            rate = LISTING_RATE[ixp.region]
            if len(ixp.members) <= SMALL_IXP_MEMBERS:
                rate *= SMALL_IXP_PENALTY
            listed = rng.random() < rate
        if listed:
            directory.entries.append(IXPDirectoryEntry(
                ixp_id=ixp.ixp_id, name=ixp.name,
                country_iso2=ixp.country_iso2,
                lan_prefix=ixp.lan_prefix))
    return directory


def membership_map(topo: Topology,
                   directory: IXPDirectory) -> dict[int, set[int]]:
    """ASN -> set of (listed) IXP ids it peers at.

    This is the peering dataset the Observatory's set-cover placement
    consumes (§7.3 footnote 1 combines PCH, PeeringDB and BGP tools).
    """
    listed = directory.ixp_ids()
    out: dict[int, set[int]] = {}
    for ixp_id in sorted(listed):
        ixp = topo.ixps[ixp_id]
        for member in ixp.members:
            out.setdefault(member, set()).add(ixp_id)
    return out
