"""Synthetic APNIC-Labs-style DNS resolver-usage dataset.

APNIC (§3) measures which recursive resolvers real users sit behind by
serving instrumented ads; the result is, per economy, the share of
users whose queries arrive from each resolver operator/location.  We
sample simulated users proportionally to AS size and report where their
configured resolver actually runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo import Region, country
from repro.topology import ResolverLocality, Topology
from repro.util import derive_rng

#: Ad-sampling volume per economy (samples, not users).
SAMPLES_PER_COUNTRY = 400


@dataclass(frozen=True)
class ResolverUsageRecord:
    """Aggregated resolver usage for one economy."""

    iso2: str
    region: Region
    samples: int
    #: Share of samples per locality class (sums to 1).
    shares: dict[ResolverLocality, float] = field(default_factory=dict)
    #: Share of cloud-resolver samples served from South Africa.
    cloud_share_from_za: float = 0.0

    def local_share(self) -> float:
        """Samples resolved inside the user's own country."""
        return (self.shares.get(ResolverLocality.LOCAL_AS, 0.0)
                + self.shares.get(ResolverLocality.LOCAL_COUNTRY, 0.0))


def build_resolver_usage(topo: Topology, seed: int | None = None,
                         samples_per_country: int = SAMPLES_PER_COUNTRY
                         ) -> list[ResolverUsageRecord]:
    """Produce one usage record per modelled country."""
    seed = seed if seed is not None else topo.params.seed
    rng = derive_rng(seed, "datasets", "apnic")
    records: list[ResolverUsageRecord] = []
    by_country: dict[str, list[int]] = {}
    for asn, cfg in topo.resolver_configs.items():
        by_country.setdefault(topo.as_(asn).country_iso2, []).append(asn)
    for iso2 in sorted(by_country):
        asns = by_country[iso2]
        # Weight eyeballs by their address-space size (user proxy).
        weights = [sum(p.size for p in topo.as_(a).prefixes) or 1
                   for a in asns]
        counts: dict[ResolverLocality, int] = {}
        cloud_total = 0
        cloud_za = 0
        for _ in range(samples_per_country):
            asn = rng.choices(asns, weights=weights)[0]
            cfg = topo.resolver_configs[asn]
            counts[cfg.locality] = counts.get(cfg.locality, 0) + 1
            if cfg.locality is ResolverLocality.CLOUD:
                cloud_total += 1
                if cfg.hosted_in == "ZA":
                    cloud_za += 1
        shares = {loc: n / samples_per_country
                  for loc, n in counts.items()}
        records.append(ResolverUsageRecord(
            iso2=iso2, region=country(iso2).region,
            samples=samples_per_country, shares=shares,
            cloud_share_from_za=(cloud_za / cloud_total
                                 if cloud_total else 0.0)))
    return records
