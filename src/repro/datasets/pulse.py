"""Synthetic ISOC-Pulse-style content-locality study.

The paper's tool (§3) downloads each country's top-1000 sites through
residential VPNs, detects CDN usage with an improved FindCDN, and
geolocates the serving infrastructure.  We reproduce the pipeline with
its imperfections: CDN detection has misses/false positives, and the
serving country comes from the geolocation service (with its Africa
error model), not from ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.geo import AFRICAN_COUNTRIES, country
from repro.measurement import GeolocationService
from repro.topology import Topology, Website
from repro.util import derive_rng

#: FindCDN-style detector quality.
CDN_DETECTION_RECALL = 0.92
CDN_DETECTION_FALSE_POSITIVE = 0.03


@dataclass(frozen=True)
class PulseSample:
    """One fetched site from one client country."""

    client_country: str
    domain: str
    rank: int
    cdn_detected: bool
    #: Where the serving edge was geolocated (possibly wrong).
    measured_server_country: Optional[str]
    measured_server_asn: Optional[int]
    #: Ground truth for evaluation.
    true_server_country: str
    true_hosting_class: str

    @property
    def measured_local_to_africa(self) -> bool:
        if self.measured_server_country is None:
            return False
        return country(self.measured_server_country).is_african


@dataclass
class PulseStudy:
    """A full crawl: every African country's top sites."""

    samples: list[PulseSample] = field(default_factory=list)

    def for_country(self, iso2: str) -> list[PulseSample]:
        return [s for s in self.samples if s.client_country == iso2]

    def countries(self) -> set[str]:
        return {s.client_country for s in self.samples}


def run_pulse_study(topo: Topology, seed: Optional[int] = None
                    ) -> PulseStudy:
    """Crawl every African country's top-site list."""
    seed = seed if seed is not None else topo.params.seed
    rng = derive_rng(seed, "datasets", "pulse")
    geo = GeolocationService(topo, seed=seed)
    study = PulseStudy()
    for iso2 in sorted(AFRICAN_COUNTRIES):
        for site in topo.websites.get(iso2, []):
            study.samples.append(
                _sample_site(topo, geo, site, rng))
    return study


def _sample_site(topo: Topology, geo: GeolocationService, site: Website,
                 rng) -> PulseSample:
    if site.uses_cdn:
        cdn_detected = rng.random() < CDN_DETECTION_RECALL
    else:
        cdn_detected = rng.random() < CDN_DETECTION_FALSE_POSITIVE
    server_as = topo.ases.get(site.server_asn)
    measured_cc = None
    measured_asn = None
    if server_as is not None and server_as.prefixes:
        # The serving edge answers from an address of the server AS; we
        # geolocate it knowing its true deployment country.
        ip = server_as.prefixes[0].network + (site.rank % 250) + 1
        answer = geo.locate(ip, true_iso2=site.server_country)
        measured_cc = answer.iso2
        measured_asn = site.server_asn
    return PulseSample(
        client_country=site.client_country,
        domain=site.domain,
        rank=site.rank,
        cdn_detected=cdn_detected,
        measured_server_country=measured_cc,
        measured_server_asn=measured_asn,
        true_server_country=site.server_country,
        true_hosting_class=site.hosting.value)
