"""RIPE-Atlas-style measurement snapshot.

The paper uses two Atlas snapshots (§3): traceroutes/pings between
African probes and anchors.  This module collects the analogous batch
from whatever platform it is handed — Atlas-like for the §4/§6
analyses, Observatory for the §7 comparisons — so the downstream
analyses are platform-agnostic, exactly like the paper's pipeline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.exec import current_payload, map_tasks, resolve_workers
from repro.measurement import (
    MeasurementEngine,
    ProbePlatform,
    TracerouteResult,
    VantagePoint,
)
from repro.topology import Topology
from repro.util import derive_rng


@dataclass
class AtlasSnapshot:
    """One collected measurement campaign."""

    platform_name: str
    traceroutes: list[TracerouteResult] = field(default_factory=list)
    #: (src probe, dst probe) per traceroute, aligned with traceroutes.
    pairs: list[tuple[VantagePoint, VantagePoint]] = field(
        default_factory=list)

    def __len__(self) -> int:
        return len(self.traceroutes)

    def intra_african(self, topo: Topology) -> list[int]:
        """Indices of traces with both endpoints in Africa."""
        out = []
        for idx, (src, dst) in enumerate(self.pairs):
            if src.region.is_african and dst.region.is_african:
                out.append(idx)
        return out


def probe_target_ip(topo: Topology, probe: VantagePoint,
                    salt: int = 0) -> int:
    """A pingable address inside a probe's network (anchor address)."""
    prefixes = topo.as_(probe.asn).prefixes
    if not prefixes:
        raise ValueError(f"AS{probe.asn} has no prefixes")
    prefix = prefixes[-1]
    return prefix.network + 10 + ((probe.probe_id + salt) % 200)


def _trace_pair_task(pair: tuple[VantagePoint, VantagePoint]
                     ) -> TracerouteResult:
    """Worker task: one mesh traceroute (engine RNG is derived per
    measurement, so the result is independent of batch order)."""
    topo, engine = current_payload()
    src, dst = pair
    return engine.traceroute(src, probe_target_ip(topo, dst))


def collect_snapshot(topo: Topology, engine: MeasurementEngine,
                     platform: ProbePlatform,
                     max_pairs: Optional[int] = None,
                     african_only: bool = True,
                     seed: Optional[int] = None,
                     workers: Optional[int] = None) -> AtlasSnapshot:
    """Mesh traceroutes between the platform's probes.

    ``african_only`` restricts to probes in Africa (the paper's §4.1
    focus is intra-African paths); ``max_pairs`` caps the mesh by
    deterministic subsampling.  ``workers`` fans the mesh out over the
    :mod:`repro.exec` pool — identical output to the serial loop.
    """
    seed = seed if seed is not None else topo.params.seed
    rng = derive_rng(seed, "datasets", "atlas-pairs")
    probes = [p for p in platform.probes
              if not african_only or p.region.is_african]
    pairs = [(a, b) for a, b in itertools.permutations(probes, 2)
             if a.asn != b.asn]
    if max_pairs is not None and len(pairs) > max_pairs:
        pairs = rng.sample(pairs, max_pairs)
        pairs.sort(key=lambda ab: (ab[0].probe_id, ab[1].probe_id))
    if resolve_workers(workers) > 1:
        # Warm the per-destination routing tables in parallel before
        # the pool forks, so every worker inherits the full cache
        # instead of recomputing tables for its own chunk.
        engine.routing.precompute(
            sorted({dst.asn for _, dst in pairs}), workers=workers)
    snapshot = AtlasSnapshot(platform_name=platform.name)
    snapshot.traceroutes = map_tasks(
        _trace_pair_task, pairs, workers=workers,
        payload=(topo, engine), label="snapshot_traceroutes")
    snapshot.pairs = pairs
    return snapshot
