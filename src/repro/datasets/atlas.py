"""RIPE-Atlas-style measurement snapshot.

The paper uses two Atlas snapshots (§3): traceroutes/pings between
African probes and anchors.  This module collects the analogous batch
from whatever platform it is handed — Atlas-like for the §4/§6
analyses, Observatory for the §7 comparisons — so the downstream
analyses are platform-agnostic, exactly like the paper's pipeline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.measurement import (
    MeasurementEngine,
    ProbePlatform,
    TracerouteResult,
    VantagePoint,
)
from repro.topology import Topology
from repro.util import derive_rng


@dataclass
class AtlasSnapshot:
    """One collected measurement campaign."""

    platform_name: str
    traceroutes: list[TracerouteResult] = field(default_factory=list)
    #: (src probe, dst probe) per traceroute, aligned with traceroutes.
    pairs: list[tuple[VantagePoint, VantagePoint]] = field(
        default_factory=list)

    def __len__(self) -> int:
        return len(self.traceroutes)

    def intra_african(self, topo: Topology) -> list[int]:
        """Indices of traces with both endpoints in Africa."""
        out = []
        for idx, (src, dst) in enumerate(self.pairs):
            if src.region.is_african and dst.region.is_african:
                out.append(idx)
        return out


def probe_target_ip(topo: Topology, probe: VantagePoint,
                    salt: int = 0) -> int:
    """A pingable address inside a probe's network (anchor address)."""
    prefixes = topo.as_(probe.asn).prefixes
    if not prefixes:
        raise ValueError(f"AS{probe.asn} has no prefixes")
    prefix = prefixes[-1]
    return prefix.network + 10 + ((probe.probe_id + salt) % 200)


def collect_snapshot(topo: Topology, engine: MeasurementEngine,
                     platform: ProbePlatform,
                     max_pairs: Optional[int] = None,
                     african_only: bool = True,
                     seed: Optional[int] = None) -> AtlasSnapshot:
    """Mesh traceroutes between the platform's probes.

    ``african_only`` restricts to probes in Africa (the paper's §4.1
    focus is intra-African paths); ``max_pairs`` caps the mesh by
    deterministic subsampling.
    """
    seed = seed if seed is not None else topo.params.seed
    rng = derive_rng(seed, "datasets", "atlas-pairs")
    probes = [p for p in platform.probes
              if not african_only or p.region.is_african]
    pairs = [(a, b) for a, b in itertools.permutations(probes, 2)
             if a.asn != b.asn]
    if max_pairs is not None and len(pairs) > max_pairs:
        pairs = rng.sample(pairs, max_pairs)
        pairs.sort(key=lambda ab: (ab[0].probe_id, ab[1].probe_id))
    snapshot = AtlasSnapshot(platform_name=platform.name)
    for src, dst in pairs:
        target = probe_target_ip(topo, dst)
        snapshot.traceroutes.append(engine.traceroute(src, target))
        snapshot.pairs.append((src, dst))
    return snapshot
