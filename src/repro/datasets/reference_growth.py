"""Reference-region infrastructure counts for Fig. 1.

The African series in Fig. 1 are *measured* from the generated world;
the comparison regions (Europe, N. America, S. America, Asia-Pacific)
are inputs, mirroring the public statistics the paper plots (PeeringDB
/ PCH exchange counts, RIR ASN delegations, TeleGeography cable
counts).  Values are approximate real-world 2015/2025 totals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo import Region


@dataclass(frozen=True)
class RegionInfraCounts:
    """Counts of the three infrastructure classes for one year."""

    ixps: int
    cables: int
    asns: int


#: (2015, 2025) counts per reference region.
REFERENCE_GROWTH: dict[Region, tuple[RegionInfraCounts, RegionInfraCounts]] = {
    Region.EUROPE: (
        RegionInfraCounts(ixps=180, cables=110, asns=24000),
        RegionInfraCounts(ixps=245, cables=140, asns=33500),
    ),
    Region.NORTH_AMERICA: (
        RegionInfraCounts(ixps=85, cables=75, asns=26500),
        RegionInfraCounts(ixps=130, cables=95, asns=33000),
    ),
    Region.SOUTH_AMERICA: (
        RegionInfraCounts(ixps=35, cables=30, asns=5200),
        RegionInfraCounts(ixps=95, cables=48, asns=13500),
    ),
    Region.ASIA_PACIFIC: (
        RegionInfraCounts(ixps=95, cables=180, asns=9500),
        RegionInfraCounts(ixps=190, cables=270, asns=21500),
    ),
}


def growth_pct(before: int, after: int) -> float:
    """Percentage growth; 0 when the baseline is empty."""
    if before <= 0:
        return 0.0
    return 100.0 * (after - before) / before
