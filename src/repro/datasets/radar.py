"""Synthetic Cloudflare-Radar-style outage feed.

Mirrors the schema of the Radar Outage Center the paper uses (§3):
outages detected from traffic drops, then verified against "status
updates ... news reports related to cable cuts, government orders,
power outages, or natural disasters".  Built from the outage engine's
ground-truth events, with detection and verification noise applied the
way a traffic monitor would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geo import country
from repro.outages import OutageCause, SimulationResult
from repro.outages.engine import DETECTION_THRESHOLD
from repro.util import derive_rng

#: Verification (news/ISP-statement confirmation) rate by cause; cable
#: cuts and shutdowns are loud, power events less so.
VERIFICATION_RATE = {
    OutageCause.SUBSEA_CABLE_CUT: 0.95,
    OutageCause.GOVERNMENT_SHUTDOWN: 0.90,
    OutageCause.POWER_OUTAGE: 0.70,
    OutageCause.TERRESTRIAL_FIBER_CUT: 0.60,
    OutageCause.NATURAL_DISASTER: 0.80,
}


@dataclass(frozen=True)
class RadarOutageEntry:
    """One row of the outage-center feed."""

    entry_id: int
    location: str          # ISO2
    region: str            # region display name
    start_day: float
    end_day: float
    #: Cause as verified; None when verification failed (listed as
    #: "unknown" in the feed).
    verified_cause: Optional[str]
    #: Observed peak traffic drop (0..1).
    traffic_drop: float
    #: Ground-truth event id (for evaluation only).
    event_id: int

    @property
    def duration_days(self) -> float:
        return self.end_day - self.start_day


def build_radar_feed(result: SimulationResult, seed: int = 0,
                     threshold: float = DETECTION_THRESHOLD
                     ) -> list[RadarOutageEntry]:
    """Convert simulated events into per-country feed entries.

    Radar records outages per location, so one multi-country cable cut
    yields several entries (as in the March-2024 coverage).
    """
    rng = derive_rng(seed, "datasets", "radar")
    feed: list[RadarOutageEntry] = []
    entry_id = 1
    for event in result.events:
        for impact in event.impacts:
            if impact.severity < threshold:
                continue
            verified = rng.random() < VERIFICATION_RATE[event.cause]
            # Measured drop wobbles around true severity.
            drop = min(1.0, max(threshold,
                                impact.severity + rng.gauss(0.0, 0.05)))
            feed.append(RadarOutageEntry(
                entry_id=entry_id,
                location=impact.iso2,
                region=country(impact.iso2).region.value,
                start_day=event.start_day,
                end_day=event.start_day + impact.outage_days,
                verified_cause=event.cause.value if verified else None,
                traffic_drop=drop,
                event_id=event.event_id))
            entry_id += 1
    feed.sort(key=lambda e: (e.start_day, e.entry_id))
    return feed
