"""AfriNIC delegated-statistics file (synthetic).

Section 6.1 uses the AfriNIC delegated file as the *denominator* for
coverage: "To determine expected ASNs, we use AfriNIC delegated
statistics for assigned African IPs and ASNs."  We render the standard
RIR ``delegated-`` format from the generated world so the coverage
analysis parses a realistic artifact instead of peeking at the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology import Topology, format_ip


@dataclass(frozen=True)
class DelegationRecord:
    """One line of the delegated file."""

    registry: str
    cc: str
    rtype: str      # "asn" | "ipv4"
    start: str      # ASN or first address
    value: int      # count of ASNs / addresses
    status: str = "allocated"

    def to_line(self) -> str:
        return "|".join([self.registry, self.cc, self.rtype, self.start,
                         str(self.value), "20240101", self.status])

    @classmethod
    def parse(cls, line: str) -> "DelegationRecord":
        parts = line.strip().split("|")
        if len(parts) < 7:
            raise ValueError(f"bad delegated line: {line!r}")
        return cls(registry=parts[0], cc=parts[1], rtype=parts[2],
                   start=parts[3], value=int(parts[4]), status=parts[6])


def build_delegated_file(topo: Topology) -> list[DelegationRecord]:
    """AfriNIC delegations for every African AS and its address space."""
    records: list[DelegationRecord] = []
    for a in sorted(topo.ases.values(), key=lambda x: x.asn):
        if not a.is_african:
            continue
        records.append(DelegationRecord(
            registry="afrinic", cc=a.country_iso2, rtype="asn",
            start=str(a.asn), value=1))
        for prefix in a.prefixes:
            records.append(DelegationRecord(
                registry="afrinic", cc=a.country_iso2, rtype="ipv4",
                start=format_ip(prefix.network), value=prefix.size))
    return records


def render_delegated_file(topo: Topology) -> str:
    """The file as text, with the standard summary header lines."""
    records = build_delegated_file(topo)
    asn_count = sum(1 for r in records if r.rtype == "asn")
    ipv4_count = sum(1 for r in records if r.rtype == "ipv4")
    header = [
        f"2|afrinic|20240101|{asn_count + ipv4_count}"
        f"|19970101|20240101|+0000",
        f"afrinic|*|asn|*|{asn_count}|summary",
        f"afrinic|*|ipv4|*|{ipv4_count}|summary",
    ]
    return "\n".join(header + [r.to_line() for r in records]) + "\n"


def expected_asns(records: list[DelegationRecord]) -> set[int]:
    """The coverage denominator: all delegated African ASNs."""
    return {int(r.start) for r in records if r.rtype == "asn"}


def parse_delegated_file(text: str) -> list[DelegationRecord]:
    """Parse a rendered file back into records (header lines skipped)."""
    records = []
    for line in text.splitlines():
        if not line or line.startswith("2|") or "|summary" in line:
            continue
        records.append(DelegationRecord.parse(line))
    return records
