"""Deterministic random-number derivation.

Every stochastic component of the simulator derives its own RNG from the
world seed plus a string path (e.g. ``derive_rng(seed, "topology",
"ixp-members")``).  This keeps components independent: adding randomness
to one module does not perturb another, and the same seed always yields
the same world.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(seed: int, *names: str) -> int:
    """Derive a child seed from ``seed`` and a path of component names."""
    h = hashlib.sha256()
    h.update(str(int(seed)).encode("ascii"))
    for name in names:
        h.update(b"/")
        h.update(name.encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big")


def derive_rng(seed: int, *names: str) -> random.Random:
    """A ``random.Random`` seeded deterministically from ``seed`` + path."""
    return random.Random(derive_seed(seed, *names))
