"""Shared utilities: deterministic RNG derivation and small helpers."""

from repro.util.rng import derive_rng, derive_seed

__all__ = ["derive_rng", "derive_seed"]
