"""Deterministic artifact keys and content hashing.

Every cached product is addressed by the triple the Observatory's
serving contract is built on: *what* was computed (``kind`` plus a
per-kind ``schema_version``), *from which world* (``seed``), and *with
which parameters* (a flat JSON-safe mapping).  Two requests that agree
on those fields are by construction the same artifact — the pipeline is
deterministic in (seed, params) — so the key digest doubles as a job
id, a store filename and an HTTP cache identity.

Hashing uses a canonical JSON encoding (sorted keys, compact
separators, no ASCII escapes left to chance) so digests are stable
across Python versions, dict insertion orders and processes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping


def canonical_bytes(obj: Any) -> bytes:
    """Canonical JSON encoding of ``obj`` (stable across processes).

    Raises ``TypeError`` for anything JSON cannot represent — keys must
    be built from scalars, lists and string-keyed dicts only.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True, allow_nan=False).encode("ascii")


def digest_bytes(data: bytes) -> str:
    """Hex SHA-256 of raw bytes (the store's content digest)."""
    return hashlib.sha256(data).hexdigest()


def digest_obj(obj: Any) -> str:
    """Hex SHA-256 of the canonical encoding of a JSON-safe object."""
    return digest_bytes(canonical_bytes(obj))


@dataclass(frozen=True)
class ArtifactKey:
    """Identity of one cached artifact: ``(kind, seed, params, schema)``.

    ``params`` is stored as a sorted tuple of pairs so the key itself
    is hashable and order-independent; construct with any mapping.
    """

    kind: str
    seed: int
    params: tuple = field(default=())
    schema_version: int = 1

    @classmethod
    def make(cls, kind: str, seed: int,
             params: Mapping[str, Any] | None = None,
             schema_version: int = 1) -> "ArtifactKey":
        items = tuple(sorted((params or {}).items()))
        return cls(kind=kind, seed=int(seed), params=items,
                   schema_version=int(schema_version))

    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe view (also the hashed representation)."""
        return {"kind": self.kind, "seed": self.seed,
                "params": self.params_dict(),
                "schema_version": self.schema_version}

    @property
    def digest(self) -> str:
        """Hex SHA-256 naming this artifact everywhere (store, jobs)."""
        return digest_obj(self.to_dict())
