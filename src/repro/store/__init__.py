"""repro.store — content-addressed cache for expensive pipeline products.

Every CLI invocation used to rebuild the world from scratch; this
package is the durable half of the serving layer (`repro.service` is
the other): generated topologies, campaign results and analysis
payloads are cached on disk keyed by ``(kind, seed, params,
schema-version)`` so repeated and concurrent use pays the cost once.

Guarantees:

* **Deterministic identity** — keys hash a canonical JSON encoding
  (:mod:`repro.store.keys`), so the same request names the same
  artifact from any process, forever (until the schema version bumps).
* **Atomic, verified storage** — writes land via ``os.replace``,
  reads re-hash the payload and treat corruption as a miss
  (:mod:`repro.store.disk`).
* **Bounded size** — LRU eviction against a byte cap, recency carried
  by payload mtimes so it survives restarts.

CLI: ``repro store {ls,gc,verify}``.
"""

from repro.store.disk import (
    ArtifactStore,
    DEFAULT_MAX_BYTES,
    StoreEntry,
    StoreProblem,
    default_store_dir,
)
from repro.store.keys import (
    ArtifactKey,
    canonical_bytes,
    digest_bytes,
    digest_obj,
)

__all__ = [
    "ArtifactKey", "ArtifactStore", "DEFAULT_MAX_BYTES", "StoreEntry",
    "StoreProblem", "canonical_bytes", "default_store_dir",
    "digest_bytes", "digest_obj",
]
