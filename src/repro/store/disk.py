"""Content-addressed on-disk artifact store.

Layout (all under one root directory)::

    <root>/objects/<d2>/<key-digest>.bin        payload bytes
    <root>/objects/<d2>/<key-digest>.meta.json  key + content digest
    <root>/tmp/                                 staging for atomic writes

where ``<d2>`` is the first two hex chars of the key digest (keeps
directory fan-out flat).  Writes stage into ``tmp/`` and land with
``os.replace`` so readers never observe a torn artifact; the meta file
is written after its payload and removed first on eviction, so a
payload without meta is garbage, never the reverse.

Reads verify the payload against the recorded content digest — a
mismatch (bit rot, manual tampering, a crashed writer that somehow got
through) is treated as a miss and the entry is *quarantined*: moved
into ``<root>/quarantine/`` (and counted by
``repro_store_quarantined_total``) so the bad bytes stay available for
forensics instead of vanishing.  Recency is tracked through payload
mtimes (bumped on every hit), giving LRU eviction that survives
process restarts without a separate index.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import threading
from typing import Any, Callable, Iterable, Optional

from repro import faults, telemetry
from repro.store.keys import ArtifactKey, digest_bytes

#: Default size cap — plenty for thousands of analysis payloads while
#: keeping a forgotten store from eating the disk.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_HITS = telemetry.counter(
    "repro_store_hits_total",
    "Artifact-store reads served from disk", labels=("kind",))
_MISSES = telemetry.counter(
    "repro_store_misses_total",
    "Artifact-store reads that found nothing", labels=("kind",))
_WRITES = telemetry.counter(
    "repro_store_writes_total",
    "Artifacts written to the store", labels=("kind",))
_EVICTIONS = telemetry.counter(
    "repro_store_evictions_total",
    "Artifacts evicted by the LRU size cap")
_CORRUPT = telemetry.counter(
    "repro_store_corrupt_total",
    "Artifacts dropped after failing the integrity check")
_QUARANTINED = telemetry.counter(
    "repro_store_quarantined_total",
    "Corrupt artifacts moved into the quarantine directory")
_BYTES = telemetry.gauge(
    "repro_store_bytes", "Total payload bytes currently stored")


@dataclasses.dataclass(frozen=True)
class StoreEntry:
    """One stored artifact as seen by ``ls``/``gc``/``verify``."""

    key_digest: str
    kind: str
    seed: int
    schema_version: int
    params: dict[str, Any]
    content_digest: str
    size_bytes: int
    last_used: float            # POSIX mtime of the payload file


@dataclasses.dataclass(frozen=True)
class StoreProblem:
    """One integrity violation found by :meth:`ArtifactStore.verify`."""

    key_digest: str
    reason: str


def default_store_dir() -> pathlib.Path:
    """``$REPRO_STORE_DIR`` or ``~/.cache/repro/store``."""
    env = os.environ.get("REPRO_STORE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro" / "store"


class ArtifactStore:
    """Deterministic key→bytes store with LRU eviction.

    Thread-safe: a single lock serializes metadata mutation (the
    threaded HTTP service reads and writes concurrently).  Payloads are
    opaque bytes; callers are expected to store canonical encodings so
    a hit is byte-identical to a fresh computation.
    """

    def __init__(self, root: str | os.PathLike | None = None,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.root = pathlib.Path(root) if root is not None \
            else default_store_dir()
        self.max_bytes = int(max_bytes)
        self._objects = self.root / "objects"
        self._tmp = self.root / "tmp"
        self._quarantine_dir = self.root / "quarantine"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._tmp.mkdir(parents=True, exist_ok=True)
        self._quarantine_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: Callbacks fired (outside the lock) with each key digest the
        #: store stops serving — eviction, GC, ``clear`` or quarantine.
        #: The service's in-memory hot tier subscribes here so a hot
        #: entry can never outlive its durable artifact.
        self._invalidation_hooks: list[Callable[[str], None]] = []
        self._pending_invalidations: list[str] = []

    # -- invalidation fan-out ------------------------------------------
    def add_invalidation_hook(self,
                              hook: Callable[[str], None]) -> None:
        """Register ``hook(key_digest)`` for every dropped entry."""
        self._invalidation_hooks.append(hook)

    def _invalidated(self, key_digest: str) -> None:
        """Record a dropped digest (lock held; delivered after)."""
        if self._invalidation_hooks:
            self._pending_invalidations.append(key_digest)

    def _flush_invalidations(self) -> None:
        """Deliver pending invalidations (must NOT hold the lock)."""
        if not self._pending_invalidations:
            return
        with self._lock:
            pending, self._pending_invalidations = \
                self._pending_invalidations, []
        for digest in pending:
            for hook in self._invalidation_hooks:
                try:
                    hook(digest)
                except Exception:  # noqa: BLE001 - hooks must not
                    pass           # break store operations

    # -- paths ---------------------------------------------------------
    def _payload_path(self, key_digest: str) -> pathlib.Path:
        return self._objects / key_digest[:2] / f"{key_digest}.bin"

    def _meta_path(self, key_digest: str) -> pathlib.Path:
        return self._objects / key_digest[:2] / f"{key_digest}.meta.json"

    # -- core API ------------------------------------------------------
    def get(self, key: ArtifactKey) -> Optional[bytes]:
        """Payload for ``key`` or ``None`` (integrity-checked)."""
        key_digest = key.digest
        with self._lock:
            payload = self._read_verified(key_digest)
        self._flush_invalidations()
        if payload is None:
            self.misses += 1
            if telemetry.enabled():
                _MISSES.labels(kind=key.kind).inc()
            return None
        self.hits += 1
        if telemetry.enabled():
            _HITS.labels(kind=key.kind).inc()
        return payload

    def put(self, key: ArtifactKey, payload: bytes) -> StoreEntry:
        """Atomically store ``payload`` under ``key`` (idempotent)."""
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("store payloads are bytes; encode upstream")
        key_digest = key.digest
        payload = bytes(payload)
        meta = {
            "key": key.to_dict(),
            "key_digest": key_digest,
            "content_digest": digest_bytes(payload),
            "size_bytes": len(payload),
        }
        written = payload
        if faults.active():
            if faults.should_fire("store.write_error", key_digest):
                raise OSError(
                    f"injected store write failure "
                    f"({key_digest[:12]})")
            if faults.should_fire("store.corrupt", key_digest):
                # Land bytes that cannot match the recorded content
                # digest: the next read detects the mismatch, drops
                # the entry and reports a miss (never bad data).
                written = bytes([payload[0] ^ 0xFF]) + payload[1:] \
                    if payload else b"\xff"
        with self._lock:
            payload_path = self._payload_path(key_digest)
            payload_path.parent.mkdir(parents=True, exist_ok=True)
            self._atomic_write(payload_path, written)
            self._atomic_write(
                self._meta_path(key_digest),
                json.dumps(meta, sort_keys=True).encode())
            self._evict_over_cap()
            size = self._total_bytes()
        self._flush_invalidations()
        if telemetry.enabled():
            _WRITES.labels(kind=key.kind).inc()
            _BYTES.set(size)
        return self._entry_from_meta(meta, payload_path)

    def get_by_digest(self, key_digest: str) -> Optional[bytes]:
        """Integrity-checked payload for a raw key digest.

        Used by degraded-mode serving, which picks a stale entry off
        :meth:`entries` and only knows its digest.  Does not touch the
        hit/miss counters — a stale read is neither.
        """
        with self._lock:
            payload = self._read_verified(key_digest)
        self._flush_invalidations()
        return payload

    def get_or_build(self, key: ArtifactKey,
                     build: Callable[[], bytes]) -> tuple[bytes, bool]:
        """``(payload, was_hit)`` — builds and stores on a miss."""
        cached = self.get(key)
        if cached is not None:
            return cached, True
        payload = build()
        self.put(key, payload)
        return payload, False

    def contains(self, key: ArtifactKey) -> bool:
        with self._lock:
            return self._payload_path(key.digest).exists() \
                and self._meta_path(key.digest).exists()

    # -- maintenance ---------------------------------------------------
    def entries(self) -> list[StoreEntry]:
        """Every stored artifact, most recently used first."""
        with self._lock:
            out = list(self._iter_entries())
        return sorted(out, key=lambda e: -e.last_used)

    def total_bytes(self) -> int:
        with self._lock:
            return self._total_bytes()

    def gc(self, max_bytes: Optional[int] = None) -> list[StoreEntry]:
        """Evict least-recently-used artifacts down to the cap."""
        with self._lock:
            evicted = self._evict_over_cap(
                self.max_bytes if max_bytes is None else int(max_bytes))
            size = self._total_bytes()
        self._flush_invalidations()
        if telemetry.enabled():
            _BYTES.set(size)
        return evicted

    def verify(self) -> list[StoreProblem]:
        """Re-hash every payload; report (but keep) violations."""
        problems: list[StoreProblem] = []
        with self._lock:
            for meta_path in self._objects.glob("*/*.meta.json"):
                key_digest = meta_path.name[:-len(".meta.json")]
                try:
                    meta = json.loads(meta_path.read_bytes())
                except (OSError, ValueError):
                    problems.append(StoreProblem(key_digest,
                                                 "unreadable meta"))
                    continue
                payload_path = self._payload_path(key_digest)
                if not payload_path.exists():
                    problems.append(StoreProblem(key_digest,
                                                 "missing payload"))
                    continue
                actual = digest_bytes(payload_path.read_bytes())
                if actual != meta.get("content_digest"):
                    problems.append(StoreProblem(
                        key_digest, "content digest mismatch"))
            for payload_path in self._objects.glob("*/*.bin"):
                key_digest = payload_path.name[:-len(".bin")]
                if not self._meta_path(key_digest).exists():
                    problems.append(StoreProblem(key_digest,
                                                 "orphan payload"))
        return problems

    def stats(self) -> dict[str, Any]:
        with self._lock:
            entries = list(self._iter_entries())
        return {
            "root": str(self.root),
            "entries": len(entries),
            "total_bytes": sum(e.size_bytes for e in entries),
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": len(list(self._quarantine_dir.glob("*.bin"))),
        }

    def clear(self) -> None:
        """Drop every artifact (testing / ``gc --all``)."""
        with self._lock:
            for entry in list(self._iter_entries()):
                self._remove(entry.key_digest)
        self._flush_invalidations()
        if telemetry.enabled():
            _BYTES.set(0)

    # -- internals (lock held) -----------------------------------------
    def _atomic_write(self, dest: pathlib.Path, data: bytes) -> None:
        tmp = self._tmp / f".{os.getpid()}.{threading.get_ident()}." \
            f"{dest.name}"
        tmp.write_bytes(data)
        os.replace(tmp, dest)

    def _read_verified(self, key_digest: str) -> Optional[bytes]:
        payload_path = self._payload_path(key_digest)
        meta_path = self._meta_path(key_digest)
        try:
            meta = json.loads(meta_path.read_bytes())
            payload = payload_path.read_bytes()
        except (OSError, ValueError):
            return None
        if digest_bytes(payload) != meta.get("content_digest"):
            self._quarantine(key_digest)
            if telemetry.enabled():
                _CORRUPT.inc()
            return None
        os.utime(payload_path)  # LRU recency bump
        return payload

    def _iter_entries(self) -> Iterable[StoreEntry]:
        for meta_path in self._objects.glob("*/*.meta.json"):
            key_digest = meta_path.name[:-len(".meta.json")]
            payload_path = self._payload_path(key_digest)
            try:
                meta = json.loads(meta_path.read_bytes())
                stat = payload_path.stat()
            except (OSError, ValueError):
                continue
            yield self._entry_from_meta(meta, payload_path,
                                        mtime=stat.st_mtime,
                                        size=stat.st_size)

    @staticmethod
    def _entry_from_meta(meta: dict, payload_path: pathlib.Path,
                         mtime: Optional[float] = None,
                         size: Optional[int] = None) -> StoreEntry:
        key = meta["key"]
        if mtime is None or size is None:
            stat = payload_path.stat()
            mtime, size = stat.st_mtime, stat.st_size
        return StoreEntry(
            key_digest=meta["key_digest"], kind=key["kind"],
            seed=key["seed"], schema_version=key["schema_version"],
            params=dict(key["params"]),
            content_digest=meta["content_digest"],
            size_bytes=size, last_used=mtime)

    def _total_bytes(self) -> int:
        return sum(p.stat().st_size
                   for p in self._objects.glob("*/*.bin"))

    def _evict_over_cap(self, max_bytes: Optional[int] = None
                        ) -> list[StoreEntry]:
        cap = self.max_bytes if max_bytes is None else max_bytes
        entries = sorted(self._iter_entries(), key=lambda e: e.last_used)
        total = sum(e.size_bytes for e in entries)
        evicted: list[StoreEntry] = []
        while entries and total > cap:
            victim = entries.pop(0)
            self._remove(victim.key_digest)
            total -= victim.size_bytes
            evicted.append(victim)
            if telemetry.enabled():
                _EVICTIONS.inc()
        return evicted

    def _remove(self, key_digest: str) -> None:
        for path in (self._meta_path(key_digest),
                     self._payload_path(key_digest)):
            try:
                path.unlink()
            except OSError:
                pass
        self._invalidated(key_digest)

    def _quarantine(self, key_digest: str) -> None:
        """Move a corrupt entry aside instead of destroying evidence."""
        self._quarantine_dir.mkdir(parents=True, exist_ok=True)
        moved = False
        for path in (self._meta_path(key_digest),
                     self._payload_path(key_digest)):
            try:
                os.replace(path, self._quarantine_dir / path.name)
                moved = True
            except OSError:
                pass
        if moved:
            self._invalidated(key_digest)
            if telemetry.enabled():
                _QUARANTINED.inc()
