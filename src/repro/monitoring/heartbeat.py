"""Streaming heartbeat analytics over the measurement event log.

"An Internet Heartbeat"-style expected-response modeling, incremental
instead of batch: the detector consumes the event log through a
cursor, folds measurement events into per-country time buckets, and
compares each closed bucket against baselines learned *from the stream
itself* — no re-simulation, no second pass.  Three anomaly families:

* **reachability** — bucket success rate below the rolling baseline of
  recent healthy buckets (the §5.2 outage signal);
* **latency** — bucket mean RTT far above its EWMA baseline (cable
  cuts reroute before they partition);
* **churn** — a burst of probe connect/disconnect transitions ("Day in
  the Life of RIPE Atlas": churn is a first-class signal, and a
  churn burst is either a power event or a platform problem).

Anomalies open :class:`Alert`\\ s; each alert is also emitted as an
``ALERT_RAISED`` event back into the same log (cleared with
``ALERT_CLEARED``), so downstream consumers — ``/v1/heartbeat/stream``
long-pollers, future pagers — replay detector output with the same
cursor machinery as raw measurements.

Everything here is a pure function of the event stream: two runs over
the same log contents raise byte-identical alert events.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro import telemetry
from repro.eventlog import Event, EventLog, EventType, make_event

_EVENTS = telemetry.counter(
    "repro_heartbeat_events_total",
    "Events consumed by the heartbeat detector", labels=("etype",))
_BATCHES = telemetry.counter(
    "repro_heartbeat_batches_total",
    "Catch-up batches processed by the heartbeat detector")
_BUCKETS = telemetry.counter(
    "repro_heartbeat_buckets_total",
    "Country-buckets evaluated against baselines")
_ALERTS = telemetry.counter(
    "repro_heartbeat_alerts_total",
    "Alerts raised by the heartbeat detector", labels=("kind",))
_LAG = telemetry.gauge(
    "repro_heartbeat_lag_events",
    "Events between the log head and the detector cursor")
_PROCESS_SECONDS = telemetry.histogram(
    "repro_heartbeat_process_seconds",
    "Wall-clock seconds per detector catch-up call")

#: Reachability drop (below baseline) that opens an alert — matches the
#: longitudinal monitoring runner so the two detectors agree.
ANOMALY_THRESHOLD = 0.10
#: Healthy buckets remembered per country for the success baseline.
BASELINE_WINDOW = 14
#: Minimum healthy buckets before the learned baseline replaces 1.0.
BASELINE_MIN = 3
#: Mean per-probe RTT inflation (vs each probe's own EWMA baseline)
#: that opens a latency alert.  Comparing every probe against *itself*
#: makes the signal immune to probe-composition changes: a country
#: whose satellite probe powers on does not look like a cable cut.
LATENCY_FACTOR = 1.3
#: Bucket RTTs below this are ignored for ratio purposes (floor for
#: the per-probe baseline denominator).
LATENCY_FLOOR_MS = 1.0
#: Churn transitions in one bucket that can constitute a burst, and
#: the multiple of the rolling mean they must exceed.
CHURN_MIN = 4
CHURN_FACTOR = 3.0


class AlertKind(enum.IntEnum):
    """Stable codes carried in ``ALERT_*`` events' ``a`` slot."""

    REACHABILITY = 1
    LATENCY = 2
    CHURN = 3

    @property
    def wire_name(self) -> str:
        return self.name.lower()


@dataclass
class Alert:
    """One active (or historical) detector alarm."""

    kind: AlertKind
    scope: str
    raised_bucket: int
    raised_ts: float
    severity: float
    buckets_active: int = 1
    cleared_bucket: Optional[int] = None

    @property
    def active(self) -> bool:
        return self.cleared_bucket is None

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind.wire_name, "scope": self.scope,
                "raised_bucket": self.raised_bucket,
                "raised_ts": self.raised_ts,
                "severity": self.severity,
                "buckets_active": self.buckets_active,
                "cleared_bucket": self.cleared_bucket,
                "active": self.active}


@dataclass
class _CountryState:
    """Everything the detector remembers about one country."""

    healthy_rates: list[float] = field(default_factory=list)
    #: Per-probe RTT EWMA baselines: probe_id -> (ewma_ms, buckets).
    probe_base: dict[int, tuple[float, int]] = field(default_factory=dict)
    churn_history: list[int] = field(default_factory=list)
    connected: set[int] = field(default_factory=set)
    last_rate: Optional[float] = None
    last_baseline: Optional[float] = None
    last_rtt: Optional[float] = None
    last_rtt_ratio: Optional[float] = None
    last_bucket: Optional[int] = None
    active: dict[AlertKind, Alert] = field(default_factory=dict)
    # Current-bucket accumulators.
    checks: int = 0
    oks: int = 0
    rtt_sum: float = 0.0
    rtt_n: int = 0
    #: probe_id -> [rtt_sum, samples] for this bucket.
    probe_rtt: dict[int, list] = field(default_factory=dict)
    churn: int = 0

    def reset_bucket(self) -> None:
        self.checks = self.oks = 0
        self.rtt_sum, self.rtt_n = 0.0, 0
        self.probe_rtt = {}
        self.churn = 0


#: Types that count toward the reachability success rate.  Traceroutes
#: are excluded: an incomplete trace (silent hops) is ambient path
#: behaviour, not a reachability failure, and folding it in makes the
#: hour-0 bucket dip below baseline in every country whose anchor trace
#: habitually dies mid-path.
_RATE_TYPES = frozenset({EventType.DNS, EventType.PING})
#: Types whose RTT feeds the latency baseline.  DNS is excluded: its
#: RTT mixes cache hits and full recursions, so per-bucket means are
#: dominated by cache luck rather than path changes.
_LATENCY_TYPES = frozenset({EventType.PING, EventType.TRACEROUTE})
_MEASUREMENTS = frozenset(
    {EventType.DNS, EventType.PING, EventType.TRACEROUTE})
_CHURN_TYPES = frozenset(
    {EventType.PROBE_CONNECT, EventType.PROBE_DISCONNECT})


class HeartbeatAnalyzer:
    """Incremental per-country anomaly detector over an event log."""

    def __init__(self, log: EventLog,
                 bucket_days: float = 0.25,
                 anomaly_threshold: float = ANOMALY_THRESHOLD,
                 min_checks: int = 2,
                 emit_alerts: bool = True) -> None:
        self._log = log
        self.bucket_days = float(bucket_days)
        self.anomaly_threshold = float(anomaly_threshold)
        self.min_checks = int(min_checks)
        self.emit_alerts = bool(emit_alerts)
        self._cursor = -1
        self._bucket: Optional[int] = None
        self._states: dict[str, _CountryState] = {}
        self.alerts: list[Alert] = []
        #: Alert events awaiting a durable append (see flush_alerts).
        self._pending: list[Event] = []
        self.events_processed = 0
        self.buckets_closed = 0

    # -- consumption ---------------------------------------------------
    @property
    def cursor(self) -> int:
        """Last event seq the detector has folded in."""
        return self._cursor

    def catch_up(self, batch: int = 2048) -> int:
        """Consume every event past the cursor; returns events read.

        Alert events the detector itself appends are consumed (and
        skipped) on the next iteration, so the cursor always converges
        to the log head.
        """
        started = time.perf_counter()
        total = 0
        while True:
            self.flush_alerts()
            events = self._log.read(after=self._cursor, limit=batch)
            if not events:
                break
            self.process(events)
            total += len(events)
        if telemetry.enabled():
            _BATCHES.inc()
            _LAG.set(self._log.head_seq - self._cursor)
            _PROCESS_SECONDS.observe(time.perf_counter() - started)
        return total

    def process(self, events: list[Event]) -> None:
        """Fold a batch of events (must be in seq order)."""
        for e in events:
            self._cursor = e.seq
            self.events_processed += 1
            if telemetry.enabled():
                _EVENTS.labels(etype=e.etype.wire_name).inc()
            bucket = int(e.ts / self.bucket_days + 1e-9)
            if self._bucket is None:
                self._bucket = bucket
            elif bucket > self._bucket:
                self._close_bucket()
                self._bucket = bucket
            self._fold(e)

    def finish(self) -> None:
        """Close the final (partial) bucket at end of stream."""
        if self._bucket is not None:
            self._close_bucket()
            self._bucket = None
        self.flush_alerts()

    def flush_alerts(self) -> int:
        """Durably append buffered alert events; returns the count.

        Detector state mutates *before* the append, so when the append
        fails (the log raises, caller runs ``recover()``), retrying
        this flush — or any method that calls it — lands the same
        buffered events exactly once: the buffer is only dropped after
        the append succeeds.
        """
        if not self.emit_alerts or not self._pending:
            return 0
        pending = list(self._pending)
        self._log.append(pending)
        self._pending.clear()
        return len(pending)

    # -- folding -------------------------------------------------------
    def _fold(self, e: Event) -> None:
        if e.etype in (EventType.ALERT_RAISED, EventType.ALERT_CLEARED):
            return  # our own output
        state = self._states.get(e.scope)
        if state is None:
            state = self._states[e.scope] = _CountryState()
        if e.etype in _MEASUREMENTS:
            if e.etype in _RATE_TYPES:
                state.checks += 1
                state.oks += e.ok
            if e.etype in _LATENCY_TYPES and e.ok and e.value >= 0.0:
                state.rtt_sum += e.value
                state.rtt_n += 1
                acc = state.probe_rtt.get(e.a)
                if acc is None:
                    state.probe_rtt[e.a] = [e.value, 1]
                else:
                    acc[0] += e.value
                    acc[1] += 1
        elif e.etype in _CHURN_TYPES:
            state.churn += 1
            if e.etype is EventType.PROBE_CONNECT:
                state.connected.add(e.a)
            else:
                state.connected.discard(e.a)

    # -- bucket evaluation ---------------------------------------------
    def _close_bucket(self) -> None:
        bucket = self._bucket
        bucket_end_ts = (bucket + 1) * self.bucket_days
        for scope in sorted(self._states):
            state = self._states[scope]
            if state.checks or state.churn or state.active:
                self._evaluate(scope, state, bucket, bucket_end_ts)
            state.reset_bucket()
        self.buckets_closed += 1
        if telemetry.enabled():
            _BUCKETS.inc()

    def _evaluate(self, scope: str, state: _CountryState, bucket: int,
                  ts: float) -> None:
        state.last_bucket = bucket
        # Reachability: success rate vs rolling healthy baseline.
        if state.checks >= self.min_checks:
            rate = state.oks / state.checks
            baseline = (_mean(state.healthy_rates[-BASELINE_WINDOW:])
                        if len(state.healthy_rates) >= BASELINE_MIN
                        else 1.0)
            state.last_rate, state.last_baseline = rate, baseline
            if rate < baseline - self.anomaly_threshold:
                self._raise(scope, state, AlertKind.REACHABILITY,
                            bucket, ts, baseline - rate)
            else:
                state.healthy_rates.append(rate)
                del state.healthy_rates[:-BASELINE_WINDOW]
                self._clear(scope, state, AlertKind.REACHABILITY,
                            bucket, ts)
        # Latency: each probe's bucket RTT vs that probe's own EWMA.
        if state.rtt_n:
            state.last_rtt = state.rtt_sum / state.rtt_n
        if state.probe_rtt:
            ratios = []
            means: list[tuple[int, float]] = []
            for pid in sorted(state.probe_rtt):
                acc = state.probe_rtt[pid]
                mean = acc[0] / acc[1]
                means.append((pid, mean))
                base = state.probe_base.get(pid)
                if base is not None and base[1] >= BASELINE_MIN:
                    ratios.append(mean / max(base[0], LATENCY_FLOOR_MS))
            ratio = _mean(ratios) if ratios else None
            state.last_rtt_ratio = ratio
            if ratio is not None and ratio > LATENCY_FACTOR:
                self._raise(scope, state, AlertKind.LATENCY, bucket, ts,
                            min(1.0, ratio - 1.0))
            else:
                # Healthy bucket: fold each probe's mean into its EWMA
                # (an alerting bucket must not poison the baselines).
                for pid, mean in means:
                    base = state.probe_base.get(pid)
                    if base is None:
                        state.probe_base[pid] = (mean, 1)
                    else:
                        state.probe_base[pid] = (
                            0.7 * base[0] + 0.3 * mean, base[1] + 1)
                self._clear(scope, state, AlertKind.LATENCY, bucket, ts)
        # Churn: transition burst vs rolling mean.
        churn_base = _mean(state.churn_history[-BASELINE_WINDOW:]) \
            if state.churn_history else 0.0
        if state.churn >= CHURN_MIN \
                and len(state.churn_history) >= BASELINE_MIN \
                and state.churn > CHURN_FACTOR * max(1.0, churn_base):
            self._raise(scope, state, AlertKind.CHURN, bucket, ts,
                        min(1.0, state.churn
                            / (CHURN_FACTOR * max(1.0, churn_base))
                            - 1.0))
        else:
            state.churn_history.append(state.churn)
            del state.churn_history[:-BASELINE_WINDOW]
            self._clear(scope, state, AlertKind.CHURN, bucket, ts)

    def _raise(self, scope: str, state: _CountryState, kind: AlertKind,
               bucket: int, ts: float, severity: float) -> None:
        existing = state.active.get(kind)
        if existing is not None:
            existing.buckets_active += 1
            existing.severity = max(existing.severity, severity)
            return
        alert = Alert(kind=kind, scope=scope, raised_bucket=bucket,
                      raised_ts=ts, severity=severity)
        state.active[kind] = alert
        self.alerts.append(alert)
        if telemetry.enabled():
            _ALERTS.labels(kind=kind.wire_name).inc()
        if self.emit_alerts:
            self._pending.append(make_event(
                ts, EventType.ALERT_RAISED, scope, a=int(kind),
                b=bucket, value=severity, ok=False))

    def _clear(self, scope: str, state: _CountryState, kind: AlertKind,
               bucket: int, ts: float) -> None:
        alert = state.active.pop(kind, None)
        if alert is None:
            return
        alert.cleared_bucket = bucket
        if self.emit_alerts:
            self._pending.append(make_event(
                ts, EventType.ALERT_CLEARED, scope, a=int(kind),
                b=bucket, value=float(alert.buckets_active), ok=True))

    # -- reporting -----------------------------------------------------
    def active_alerts(self) -> list[Alert]:
        out = []
        for scope in sorted(self._states):
            for kind in sorted(self._states[scope].active):
                out.append(self._states[scope].active[kind])
        return out

    def status_doc(self) -> dict[str, Any]:
        """Deterministic JSON-safe snapshot for ``/v1/heartbeat``."""
        countries = {}
        for scope in sorted(self._states):
            state = self._states[scope]
            countries[scope] = {
                "status": ("alert" if state.active
                           else "ok" if state.last_rate is not None
                           else "no-data"),
                "success_rate": state.last_rate,
                "baseline": state.last_baseline,
                "rtt_ms": state.last_rtt,
                "rtt_ratio": state.last_rtt_ratio,
                "probes_connected": len(state.connected),
                "last_bucket": state.last_bucket,
                "alerts": [a.to_dict()
                           for _, a in sorted(state.active.items())],
            }
        return {
            "bucket_days": self.bucket_days,
            "cursor": self._cursor,
            "head_seq": self._log.head_seq,
            "events_processed": self.events_processed,
            "buckets_closed": self.buckets_closed,
            "alerts_raised": len(self.alerts),
            "alerts_active": sum(len(s.active)
                                 for s in self._states.values()),
            "countries": countries,
        }


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
