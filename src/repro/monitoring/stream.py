"""Always-on event producers: the observatory's write path.

Drives the probe fleet through simulated time and converts everything
that happens into typed :class:`~repro.eventlog.Event` rows:

* measurement results — DNS resolutions, pings and a daily traceroute
  per country, via :func:`events_from_dns` / :func:`events_from_ping`
  / :func:`events_from_traceroute` (usable by any producer, not just
  this loop);
* probe power transitions (``PROBE_CONNECT``/``PROBE_DISCONNECT``) —
  "Day in the Life of RIPE Atlas" churn as a first-class signal;
* outage-engine transitions (``OUTAGE_BEGIN``/``OUTAGE_END``) — the
  ground-truth feed a Radar-style monitor would publish.

Every tick's randomness derives from ``(seed, "heartbeat", day, hour,
country, probe, check)``, so the stream is a pure function of the
world seed: two runs append byte-identical event sequences, which is
what makes the event log's determinism gate possible.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.eventlog import Event, EventType, make_event
from repro.measurement import (
    DNSMeasurement,
    DNSResult,
    MeasurementEngine,
    PingResult,
    ProbePlatform,
    TracerouteResult,
)
from repro.observatory.power import is_powered
from repro.outages import OutageCause, SimulationResult
from repro.routing import BGPRouting, PhysicalNetwork
from repro.topology import Topology
from repro.util import derive_rng

#: Sampling times within each simulated day (hours); one heartbeat
#: bucket per sample when ``bucket_days`` is 0.25.
SAMPLE_HOURS = (0, 6, 12, 18)
#: DNS resolutions per powered probe per sample.  Four per sample (vs
#: the longitudinal runner's two) because the streaming detector works
#: bucket-by-bucket: single-probe countries need enough draws per
#: quarter-day for a severity-gated outage to actually surface in the
#: bucket's success rate.
CHECKS_PER_PROBE = 4
#: Numeric codes for outage causes carried in the ``b`` slot.
CAUSE_CODES: dict[OutageCause, int] = {
    cause: i + 1 for i, cause in enumerate(OutageCause)}


# ----------------------------------------------------------------------
# Typed converters: measurement result -> event
# ----------------------------------------------------------------------
def events_from_dns(result: DNSResult, ts: float, scope: str,
                    probe_id: int) -> Event:
    return make_event(ts, EventType.DNS, scope, a=probe_id,
                      b=result.client_asn, value=result.rtt_ms,
                      ok=result.ok)


def events_from_ping(result: PingResult, ts: float, scope: str) -> Event:
    return make_event(ts, EventType.PING, scope, a=result.probe_id,
                      b=result.received, value=result.rtt_ms,
                      ok=result.received > 0)


def events_from_traceroute(result: TracerouteResult, ts: float,
                           scope: str) -> Event:
    return make_event(ts, EventType.TRACEROUTE, scope,
                      a=result.probe_id,
                      b=len(result.responding_hops()),
                      value=result.end_to_end_rtt(),
                      ok=result.reached)


class ObservatoryStream:
    """Generates the per-tick event batches of a monitoring window."""

    def __init__(self, topo: Topology, platform: ProbePlatform,
                 simulation: SimulationResult,
                 seed: Optional[int] = None,
                 checks_per_probe: int = CHECKS_PER_PROBE,
                 routing: Optional[BGPRouting] = None,
                 phys: Optional[PhysicalNetwork] = None) -> None:
        self._topo = topo
        self._simulation = simulation
        self._seed = seed if seed is not None else topo.params.seed
        self._checks = int(checks_per_probe)
        self._routing = routing if routing is not None \
            else BGPRouting(topo)
        self._phys = phys if phys is not None else PhysicalNetwork(topo)
        self._dns = DNSMeasurement(topo, self._phys, seed=self._seed)
        self._engines: dict[tuple[int, ...], MeasurementEngine] = {}
        self._probes_by_cc: dict[str, list] = {}
        for probe in platform.probes:
            if probe.region.is_african:
                self._probes_by_cc.setdefault(probe.country_iso2,
                                              []).append(probe)
        for probes in self._probes_by_cc.values():
            probes.sort(key=lambda p: p.probe_id)
        self._powered: dict[int, bool] = {}
        self._outage_state: dict[tuple[int, str], bool] = {}
        # Anchor target: the first non-African network with address
        # space — the international dependency every African eyeball
        # path exercises (content, DNS authorities, clouds).
        anchor = next(a for a in sorted(topo.ases.values(),
                                        key=lambda x: x.asn)
                      if not a.is_african and a.prefixes)
        self._anchor_ip = anchor.prefixes[0].network + 1

    @property
    def countries(self) -> list[str]:
        return sorted(self._probes_by_cc)

    def ticks(self, days: int) -> Iterator[tuple[int, int]]:
        for day in range(days):
            for hour in SAMPLE_HOURS:
                yield day, hour

    # ------------------------------------------------------------------
    def tick_events(self, day: int, hour: int) -> list[Event]:
        """Everything that happened at sample ``(day, hour)``."""
        t = day + hour / 24.0
        events: list[Event] = []
        self._outage_transitions(t, events)
        for cc in self.countries:
            self._country_tick(cc, day, hour, t, events)
        return events

    def run(self, days: int, sink) -> int:
        """Feed every tick batch to ``sink``; returns batches emitted."""
        n = 0
        for day, hour in self.ticks(days):
            sink(self.tick_events(day, hour))
            n += 1
        return n

    # ------------------------------------------------------------------
    def _outage_transitions(self, t: float, events: list[Event]) -> None:
        monitored = self._probes_by_cc
        for event in self._simulation.events:  # sorted by start_day
            if event.start_day > t:
                break
            code = CAUSE_CODES[event.cause]
            for impact in sorted(event.impacts, key=lambda i: i.iso2):
                if impact.iso2 not in monitored:
                    continue
                key = (event.event_id, impact.iso2)
                begun = self._outage_state.get(key)
                if begun is None:
                    self._outage_state[key] = True
                    events.append(make_event(
                        t, EventType.OUTAGE_BEGIN, impact.iso2,
                        a=event.event_id, b=code,
                        value=impact.severity, ok=False))
                if begun is not False \
                        and t >= event.start_day + impact.outage_days:
                    self._outage_state[key] = False
                    events.append(make_event(
                        t, EventType.OUTAGE_END, impact.iso2,
                        a=event.event_id, b=code,
                        value=impact.severity, ok=True))

    def _active_impacts(self, t: float, cc: str
                        ) -> tuple[float, tuple[int, ...]]:
        """Peak severity and severed cables affecting ``cc`` at ``t``."""
        severity = 0.0
        down: set[int] = set()
        for event in self._simulation.events:
            if event.start_day > t:
                break
            impact = event.impact_for(cc)
            if impact is None:
                continue
            if t < event.start_day + impact.outage_days:
                severity = max(severity, impact.severity)
                down.update(event.cables_cut)
        return severity, tuple(sorted(down))

    def _engine_for(self, down: tuple[int, ...]) -> MeasurementEngine:
        engine = self._engines.get(down)
        if engine is None:
            engine = MeasurementEngine(self._topo, self._routing,
                                       self._phys, down_cables=down,
                                       seed=self._seed)
            self._engines[down] = engine
        return engine

    def _country_tick(self, cc: str, day: int, hour: int, t: float,
                      events: list[Event]) -> None:
        probes = self._probes_by_cc[cc]
        severity, down = self._active_impacts(t, cc)
        engine = self._engine_for(down)
        powered_probes = []
        for probe in probes:
            powered = is_powered(probe, day, hour, seed=self._seed)
            was = self._powered.get(probe.probe_id, False)
            if powered and not was:
                events.append(make_event(
                    t, EventType.PROBE_CONNECT, cc, a=probe.probe_id,
                    b=probe.asn))
            elif was and not powered:
                events.append(make_event(
                    t, EventType.PROBE_DISCONNECT, cc,
                    a=probe.probe_id, b=probe.asn, ok=False))
            self._powered[probe.probe_id] = powered
            if powered:
                powered_probes.append(probe)
        if not powered_probes:
            return
        # One traceroute per country-day keeps path visibility without
        # dominating the budget (§7.2 economics).
        if hour == SAMPLE_HOURS[0]:
            trace = engine.traceroute(powered_probes[0], self._anchor_ip)
            events.append(events_from_traceroute(trace, t, cc))
        for probe in powered_probes:
            rng = derive_rng(self._seed, "heartbeat", str(day),
                             str(hour), cc, str(probe.probe_id))
            # Ping round toward the international anchor.
            if rng.random() < severity:
                events.append(make_event(
                    t, EventType.PING, cc, a=probe.probe_id, b=0,
                    value=-1.0, ok=False))
            else:
                events.append(events_from_ping(
                    engine.ping(probe, self._anchor_ip), t, cc))
            # DNS health checks (the §5.2 resolution path).
            for i in range(self._checks):
                if rng.random() < severity:
                    events.append(make_event(
                        t, EventType.DNS, cc, a=probe.probe_id,
                        b=probe.asn, value=-1.0, ok=False))
                    continue
                result = self._dns.resolve(
                    probe.asn, f"hb-{day}-{hour}-{i}.check",
                    down_cables=down, rng=rng)
                events.append(events_from_dns(result, t, cc,
                                              probe.probe_id))
