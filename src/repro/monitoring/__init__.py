"""repro.monitoring — streaming heartbeat analytics over the event log.

The always-on read path of ROADMAP item 3: :class:`ObservatoryStream`
turns the probe fleet's simulated activity into typed event batches,
and :class:`HeartbeatAnalyzer` consumes the log incrementally —
cursor-based, batch by batch — maintaining per-country baselines and
raising/clearing anomaly alerts as events back into the same log.
"""

from repro.monitoring.heartbeat import (
    ANOMALY_THRESHOLD,
    Alert,
    AlertKind,
    BASELINE_MIN,
    BASELINE_WINDOW,
    CHURN_FACTOR,
    CHURN_MIN,
    HeartbeatAnalyzer,
    LATENCY_FACTOR,
    LATENCY_FLOOR_MS,
)
from repro.monitoring.stream import (
    CAUSE_CODES,
    CHECKS_PER_PROBE,
    ObservatoryStream,
    SAMPLE_HOURS,
    events_from_dns,
    events_from_ping,
    events_from_traceroute,
)

__all__ = [
    "ANOMALY_THRESHOLD", "Alert", "AlertKind", "BASELINE_MIN",
    "BASELINE_WINDOW", "CAUSE_CODES", "CHECKS_PER_PROBE",
    "CHURN_FACTOR", "CHURN_MIN", "HeartbeatAnalyzer", "LATENCY_FACTOR",
    "LATENCY_FLOOR_MS", "ObservatoryStream", "SAMPLE_HOURS",
    "events_from_dns", "events_from_ping", "events_from_traceroute",
]
