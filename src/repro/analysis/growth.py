"""Infrastructure-growth analysis (Fig. 1, §2).

African series are measured from the generated world (deployment years
of cables, IXPs and ASes); comparison regions come from the public
reference statistics in :mod:`repro.datasets.reference_growth`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.reference_growth import REFERENCE_GROWTH, growth_pct
from repro.geo import Region
from repro.topology import Topology


@dataclass(frozen=True)
class GrowthRow:
    """One region's ten-year growth, per infrastructure class."""

    region_label: str
    ixps_before: int
    ixps_after: int
    cables_before: int
    cables_after: int
    asns_before: int
    asns_after: int

    @property
    def ixp_growth_pct(self) -> float:
        return growth_pct(self.ixps_before, self.ixps_after)

    @property
    def cable_growth_pct(self) -> float:
        return growth_pct(self.cables_before, self.cables_after)

    @property
    def asn_growth_pct(self) -> float:
        return growth_pct(self.asns_before, self.asns_after)


@dataclass
class GrowthReport:
    rows: list[GrowthRow] = field(default_factory=list)

    def africa(self) -> GrowthRow:
        for row in self.rows:
            if row.region_label == "Africa":
                return row
        raise LookupError("no Africa row")

    def row_for(self, label: str) -> GrowthRow | None:
        for row in self.rows:
            if row.region_label == label:
                return row
        return None


def _african_counts(topo: Topology, year: int) -> tuple[int, int, int]:
    ixps = sum(1 for x in topo.african_ixps() if x.founded_year <= year)
    cables = len(topo.african_cables(year))
    asns = sum(1 for a in topo.african_ases()
               if a.founded_year <= year)
    return ixps, cables, asns


def african_growth_series(topo: Topology
                          ) -> list[tuple[int, int, int, int]]:
    """Yearly (year, ixps, cables, asns) series for the Fig. 1 curve."""
    params = topo.params
    start = params.current_year - params.growth_window_years
    series = []
    for year in range(start, params.current_year + 1):
        series.append((year, *_african_counts(topo, year)))
    return series


def analyze_growth(topo: Topology) -> GrowthReport:
    """Fig. 1: 10-year growth of IXPs, cables and ASes per region."""
    params = topo.params
    after_year = params.current_year
    before_year = after_year - params.growth_window_years
    report = GrowthReport()
    ixps_b, cables_b, asns_b = _african_counts(topo, before_year)
    ixps_a, cables_a, asns_a = _african_counts(topo, after_year)
    report.rows.append(GrowthRow(
        region_label="Africa",
        ixps_before=ixps_b, ixps_after=ixps_a,
        cables_before=cables_b, cables_after=cables_a,
        asns_before=asns_b, asns_after=asns_a))
    for region, (before, after) in REFERENCE_GROWTH.items():
        report.rows.append(GrowthRow(
            region_label=region.value,
            ixps_before=before.ixps, ixps_after=after.ixps,
            cables_before=before.cables, cables_after=after.cables,
            asns_before=before.asns, asns_after=after.asns))
    return report


@dataclass(frozen=True)
class MaturityGap:
    """§2's takeaway: growth is fast but absolute maturity lags."""

    region_label: str
    ixps_per_10m_population: float
    asns_per_1m_population: float


def maturity_gap(topo: Topology,
                 population_m: dict[str, float]) -> list[MaturityGap]:
    """Normalized infrastructure density, Africa vs references."""
    report = analyze_growth(topo)
    out = []
    for row in report.rows:
        pop = population_m.get(row.region_label)
        if not pop:
            continue
        out.append(MaturityGap(
            region_label=row.region_label,
            ixps_per_10m_population=10.0 * row.ixps_after / pop,
            asns_per_1m_population=row.asns_after / pop))
    return out
