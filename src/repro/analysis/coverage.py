"""Scanner-coverage analysis (Table 1, §6.1).

Coverage = |observed ASNs| / |expected ASNs| where the expected set
comes from the AfriNIC delegated file, grouped as in the paper:
Mobile ASNs, Non-mobile ASNs, and IXPs (the separate 77-exchange
universe).  A regional breakdown mirrors §6.1's second paragraph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.datasets.afrinic import DelegationRecord, expected_asns
from repro.geo import AFRICAN_REGIONS, Region
from repro.measurement import ScanResult
from repro.topology import ASKind, Topology


@dataclass(frozen=True)
class CoverageRow:
    """One scanner's Table 1 row."""

    dataset: str
    entries: int
    mobile_coverage: float
    non_mobile_coverage: float
    ixp_coverage: float


@dataclass
class CoverageTable:
    rows: list[CoverageRow] = field(default_factory=list)

    def row_for(self, dataset: str) -> CoverageRow | None:
        for row in self.rows:
            if row.dataset == dataset:
                return row
        return None

    def best_dataset(self) -> str:
        """Dataset with the highest mean coverage across groups."""
        return max(self.rows, key=lambda r: (
            r.mobile_coverage + r.non_mobile_coverage + r.ixp_coverage
        )).dataset


def split_expected_groups(topo: Topology,
                          delegated: list[DelegationRecord]
                          ) -> tuple[set[int], set[int], set[int]]:
    """(mobile ASNs, non-mobile ASNs, African IXP ids) denominators."""
    expected = expected_asns(delegated)
    mobile = {asn for asn in expected
              if topo.as_(asn).kind is ASKind.MOBILE}
    non_mobile = expected - mobile
    ixps = {x.ixp_id for x in topo.african_ixps()}
    return mobile, non_mobile, ixps


def _ratio(numer: int, denom: int) -> float:
    return numer / denom if denom else 0.0


def build_coverage_table(topo: Topology,
                         delegated: list[DelegationRecord],
                         scans: Iterable[ScanResult]) -> CoverageTable:
    """Compute Table 1 for a set of scan results."""
    mobile, non_mobile, ixps = split_expected_groups(topo, delegated)
    table = CoverageTable()
    for scan in scans:
        observed = scan.observed_african_asns(topo)
        observed_ixps = scan.observed_african_ixps(topo)
        table.rows.append(CoverageRow(
            dataset=scan.dataset,
            entries=scan.entries,
            mobile_coverage=_ratio(len(observed & mobile), len(mobile)),
            non_mobile_coverage=_ratio(len(observed & non_mobile),
                                       len(non_mobile)),
            ixp_coverage=_ratio(len(observed_ixps & ixps), len(ixps))))
    return table


@dataclass(frozen=True)
class RegionalCoverageRow:
    region: Region
    mobile_coverage: float
    non_mobile_coverage: float


def regional_coverage(topo: Topology, delegated: list[DelegationRecord],
                      scan: ScanResult) -> list[RegionalCoverageRow]:
    """Per-region mobile/non-mobile coverage for one scanner."""
    mobile, non_mobile, _ = split_expected_groups(topo, delegated)
    observed = scan.observed_african_asns(topo)
    rows = []
    for region in AFRICAN_REGIONS:
        in_region = {asn for asn in mobile | non_mobile
                     if topo.as_(asn).region is region}
        reg_mobile = in_region & mobile
        reg_non = in_region & non_mobile
        rows.append(RegionalCoverageRow(
            region=region,
            mobile_coverage=_ratio(len(observed & reg_mobile),
                                   len(reg_mobile)),
            non_mobile_coverage=_ratio(len(observed & reg_non),
                                       len(reg_non))))
    return rows
