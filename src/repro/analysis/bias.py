"""Measurement-platform bias analysis (§6.2, citing Sermpezis et al.).

"Geographic bias in the platform deployments limits their
representativeness, and consequently, this bias impacts the evaluation
of our emerging methodologies."  We quantify that: compare a platform's
probe distribution against the population it claims to represent along
several dimensions (country, region, access technology, AS kind), each
scored with total-variation distance (0 = perfectly representative,
1 = completely skewed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.geo import AFRICAN_COUNTRIES, Region
from repro.measurement import ProbePlatform
from repro.topology import ASKind, Topology


def total_variation(p: Mapping[str, float],
                    q: Mapping[str, float]) -> float:
    """Total-variation distance between two discrete distributions."""
    keys = set(p) | set(q)
    p_total = sum(p.values()) or 1.0
    q_total = sum(q.values()) or 1.0
    return 0.5 * sum(abs(p.get(k, 0.0) / p_total
                         - q.get(k, 0.0) / q_total) for k in keys)


@dataclass(frozen=True)
class BiasDimension:
    """One dimension's bias verdict."""

    name: str
    tv_distance: float
    #: Most over-represented / under-represented categories.
    most_over: str
    most_under: str


@dataclass
class BiasReport:
    platform_name: str
    dimensions: list[BiasDimension] = field(default_factory=list)

    def dimension(self, name: str) -> BiasDimension | None:
        for d in self.dimensions:
            if d.name == name:
                return d
        return None

    def worst_dimension(self) -> BiasDimension:
        return max(self.dimensions, key=lambda d: d.tv_distance)


def _extremes(platform_dist: Mapping[str, float],
              reference_dist: Mapping[str, float]) -> tuple[str, str]:
    keys = set(platform_dist) | set(reference_dist)
    p_total = sum(platform_dist.values()) or 1.0
    q_total = sum(reference_dist.values()) or 1.0

    def delta(k):
        return (platform_dist.get(k, 0.0) / p_total
                - reference_dist.get(k, 0.0) / q_total)

    over = max(keys, key=delta)
    under = min(keys, key=delta)
    return over, under


def analyze_platform_bias(topo: Topology,
                          platform: ProbePlatform) -> BiasReport:
    """Bias of an African deployment vs the population it represents."""
    probes = [p for p in platform.probes if p.region.is_african]
    report = BiasReport(platform_name=platform.name)
    if not probes:
        return report

    # Dimension 1: country, vs population.
    probe_cc = _count(p.country_iso2 for p in probes)
    pop_cc = {cc: c.population_m for cc, c in AFRICAN_COUNTRIES.items()}
    report.dimensions.append(_dimension("country vs population",
                                        probe_cc, pop_cc))

    # Dimension 2: region, vs population.
    probe_region = _count(p.region.value for p in probes)
    pop_region: dict[str, float] = {}
    for c in AFRICAN_COUNTRIES.values():
        pop_region[c.region.value] = pop_region.get(c.region.value, 0.0) \
            + c.population_m
    report.dimensions.append(_dimension("region vs population",
                                        probe_region, pop_region))

    # Dimension 3: access technology, vs subscription mix (§7.1:
    # mobile dominates the African last mile).
    probe_access = _count(p.access.value for p in probes)
    weighted_mobile = sum(c.population_m * c.mobile_share
                          for c in AFRICAN_COUNTRIES.values())
    weighted_total = sum(c.population_m
                         for c in AFRICAN_COUNTRIES.values())
    access_truth = {"cellular": weighted_mobile,
                    "fixed": weighted_total - weighted_mobile}
    report.dimensions.append(_dimension("access technology",
                                        probe_access, access_truth))

    # Dimension 4: host-AS kind, vs the AS population.
    probe_kind = _count(topo.as_(p.asn).kind.value for p in probes
                        if p.asn in topo.ases)
    as_kind = _count(a.kind.value for a in topo.african_ases()
                     if a.kind.is_eyeball
                     or a.kind is ASKind.EDUCATION)
    report.dimensions.append(_dimension("host network kind",
                                        probe_kind, as_kind))
    return report


def _count(items) -> dict[str, float]:
    out: dict[str, float] = {}
    for item in items:
        out[item] = out.get(item, 0.0) + 1.0
    return out


def _dimension(name, platform_dist, reference_dist) -> BiasDimension:
    over, under = _extremes(platform_dist, reference_dist)
    return BiasDimension(
        name=name,
        tv_distance=total_variation(platform_dist, reference_dist),
        most_over=over, most_under=under)
