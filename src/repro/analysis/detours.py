"""Detour and IXP-prevalence analysis (Fig. 2a, Fig. 3, §4.1).

Works exactly like the paper's pipeline: take traceroutes between
African probes, geolocate every responding hop with the (imperfect)
geolocation service, and flag a *detour* when any hop leaves the
continent.  Detours are then attributed: those touching a Tier-1
carrier (HE-style public list) or a European IXP fabric are the
"peering-complexity" detours; the rest indicate transit bought from
European Tier-2s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.datasets.atlas import AtlasSnapshot
from repro.geo import AFRICAN_REGIONS, Region, country
from repro.measurement import (
    GeolocationService,
    IXPDirectory,
    TracerouteResult,
    detect_ixp_crossings,
)
from repro.topology import Topology


@dataclass(frozen=True)
class TraceClassification:
    """Per-traceroute verdict."""

    src_region: Region
    dst_region: Region
    detours: bool
    #: Detour attributable to Tier-1 transit or an out-of-Africa IXP.
    attributed_tier1_or_ixp: bool
    crosses_african_ixp: bool
    crossed_ixp_ids: tuple[int, ...] = ()


@dataclass
class DetourReport:
    """Aggregated Fig. 2a / Fig. 3 numbers."""

    classifications: list[TraceClassification] = field(default_factory=list)

    # -- Fig. 2a ------------------------------------------------------
    def detour_rate(self, region: Optional[Region] = None) -> float:
        rows = self._rows(region)
        if not rows:
            return 0.0
        return sum(r.detours for r in rows) / len(rows)

    def attribution_share(self) -> float:
        """Among detours, the share attributable to Tier-1/EU-IXP."""
        detoured = [r for r in self.classifications if r.detours]
        if not detoured:
            return 0.0
        return (sum(r.attributed_tier1_or_ixp for r in detoured)
                / len(detoured))

    # -- Fig. 3 -------------------------------------------------------
    def ixp_traversal_rate(self, region: Optional[Region] = None) -> float:
        rows = self._rows(region)
        if not rows:
            return 0.0
        return sum(r.crosses_african_ixp for r in rows) / len(rows)

    def sample_count(self, region: Optional[Region] = None) -> int:
        return len(self._rows(region))

    def regions_with_data(self) -> list[Region]:
        """Regions with at least one intra-region pair *and* at least
        one IXP visible in the data (Fig. 3 excludes Northern Africa
        for lacking the latter)."""
        out = []
        for region in AFRICAN_REGIONS:
            rows = self._rows(region)
            if not rows:
                continue
            out.append(region)
        return out

    def _rows(self, region: Optional[Region]) -> list[TraceClassification]:
        if region is None:
            return self.classifications
        return [r for r in self.classifications
                if r.src_region is region and r.dst_region is region]


def classify_trace(topo: Topology, trace: TracerouteResult,
                   geo: GeolocationService, directory: IXPDirectory,
                   src_region: Region, dst_region: Region
                   ) -> TraceClassification:
    """Geolocate a trace's hops and classify it."""
    tier1_asns = {a.asn for a in topo.tier1_ases()}
    detoured = False
    attributed = False
    crossings = detect_ixp_crossings(trace, directory)
    african_ixps = tuple(sorted(
        c.ixp_id for c in crossings
        if country(topo.ixps[c.ixp_id].country_iso2).is_african))
    foreign_ixp = any(
        not country(topo.ixps[c.ixp_id].country_iso2).is_african
        for c in crossings)
    for hop in trace.hops:
        if hop.ip is None:
            continue
        answer = geo.locate(hop.ip, true_iso2=hop.country_iso2)
        if answer.iso2 is None:
            continue
        if not country(answer.iso2).is_african:
            detoured = True
        if hop.asn in tier1_asns:
            attributed = True
    if foreign_ixp:
        attributed = True
        detoured = True
    return TraceClassification(
        src_region=src_region, dst_region=dst_region, detours=detoured,
        attributed_tier1_or_ixp=detoured and attributed,
        crosses_african_ixp=bool(african_ixps),
        crossed_ixp_ids=african_ixps)


def analyze_snapshot(topo: Topology, snapshot: AtlasSnapshot,
                     geo: GeolocationService,
                     directory: IXPDirectory) -> DetourReport:
    """Classify every intra-African trace of a snapshot."""
    report = DetourReport()
    for idx in snapshot.intra_african(topo):
        trace = snapshot.traceroutes[idx]
        src, dst = snapshot.pairs[idx]
        report.classifications.append(classify_trace(
            topo, trace, geo, directory, src.region, dst.region))
    return report
