"""Outage-impact characterization (Fig. 4, §5.1).

From the Radar-style feed: events per cause with durations and country
footprints, the Africa-vs-reference outage-rate ratio, and the
correlated-failure / backup-effectiveness statistics behind the §5.1
implications.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.datasets.radar import RadarOutageEntry
from repro.geo import COUNTRIES, Region, country
from repro.outages import OutageCause, SimulationResult


@dataclass(frozen=True)
class CauseImpactRow:
    """Fig. 4: one outage cause's characterization."""

    cause: str
    events: int
    median_duration_days: float
    max_duration_days: float
    mean_countries_affected: float
    countries_affected_total: int


@dataclass
class ImpactReport:
    rows: list[CauseImpactRow] = field(default_factory=list)
    africa_rate_per_country_year: float = 0.0
    reference_rate_per_country_year: float = 0.0

    def rate_ratio(self) -> float:
        """Africa : EU/NA per-country outage rate (Fig. 2c's "4x")."""
        if self.reference_rate_per_country_year <= 0:
            return float("inf")
        return (self.africa_rate_per_country_year
                / self.reference_rate_per_country_year)

    def longest_cause(self) -> str:
        """The cause with the longest median outage (paper: cable cuts)."""
        return max(self.rows, key=lambda r: r.median_duration_days).cause

    def row_for(self, cause: str) -> CauseImpactRow | None:
        for row in self.rows:
            if row.cause == cause:
                return row
        return None


def analyze_outages(result: SimulationResult,
                    feed: list[RadarOutageEntry]) -> ImpactReport:
    """Aggregate the simulation + feed into the Fig. 4 report."""
    report = ImpactReport()
    detected = result.detected()
    for cause in OutageCause:
        events = [e for e in detected if e.cause is cause]
        if not events:
            continue
        durations = [e.longest_outage_days() for e in events]
        per_event_countries = [len(e.impacts) for e in events]
        all_countries = {i.iso2 for e in events for i in e.impacts}
        report.rows.append(CauseImpactRow(
            cause=cause.value,
            events=len(events),
            median_duration_days=statistics.median(durations),
            max_duration_days=max(durations),
            mean_countries_affected=statistics.mean(per_event_countries),
            countries_affected_total=len(all_countries)))
    african_ccs = sum(1 for c in COUNTRIES.values() if c.is_african)
    reference_ccs = sum(
        1 for c in COUNTRIES.values()
        if c.region in (Region.EUROPE, Region.NORTH_AMERICA))
    africa_entries = sum(
        1 for entry in feed if country(entry.location).is_african)
    reference_entries = sum(
        1 for entry in feed
        if country(entry.location).region in (Region.EUROPE,
                                              Region.NORTH_AMERICA))
    report.africa_rate_per_country_year = (
        africa_entries / african_ccs / result.years)
    report.reference_rate_per_country_year = (
        reference_entries / reference_ccs / result.years)
    return report


@dataclass
class CorrelationReport:
    """§5.1: how correlated cable failures defeat backups."""

    cable_events: int = 0
    multi_cable_events: int = 0
    mean_cables_per_event: float = 0.0
    backup_activations: int = 0
    backups_oversubscribed: int = 0

    def multi_cable_share(self) -> float:
        if not self.cable_events:
            return 0.0
        return self.multi_cable_events / self.cable_events

    def oversubscription_rate(self) -> float:
        if not self.backup_activations:
            return 0.0
        return self.backups_oversubscribed / self.backup_activations


def analyze_correlation(result: SimulationResult) -> CorrelationReport:
    """Correlated-failure statistics over all cable-cut events."""
    report = CorrelationReport()
    cable_events = result.by_cause(OutageCause.SUBSEA_CABLE_CUT)
    report.cable_events = len(cable_events)
    if not cable_events:
        return report
    report.multi_cable_events = sum(
        1 for e in cable_events if len(e.cables_cut) > 1)
    report.mean_cables_per_event = statistics.mean(
        len(e.cables_cut) for e in cable_events)
    for event in cable_events:
        for impact in event.impacts:
            if impact.backup_activated:
                report.backup_activations += 1
                if impact.backup_oversubscribed:
                    report.backups_oversubscribed += 1
    return report
