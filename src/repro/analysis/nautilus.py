"""Nautilus-style passive subsea-cable inference and its ambiguity (§6.2).

Nautilus maps wet IP links (consecutive traceroute hops on opposite
sides of a sea crossing) to candidate submarine cables using hop
geolocation and cable landing geometry.  The paper finds it maps >40%
of paths to more than one cable, sometimes up to ~40 — useless for
regulatory attribution.  The ambiguity has two roots, both modelled
here:

* geometric: corridors carry many parallel cables, so one country pair
  is compatible with many systems;
* geolocation error: mislocated hops produce nonsense country pairs,
  for which the inference can only return every cable touching either
  endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.datasets.atlas import AtlasSnapshot
from repro.geo import country
from repro.measurement import GeolocationService, TracerouteResult
from repro.routing import PhysicalNetwork
from repro.topology import Topology


@dataclass(frozen=True)
class PathInference:
    """Cable-candidate verdict for one traceroute path."""

    candidate_cable_ids: frozenset[int]
    true_cable_ids: frozenset[int]
    wet_links: int

    @property
    def ambiguous(self) -> bool:
        return len(self.candidate_cable_ids) > 1

    @property
    def correct(self) -> bool:
        """True cables all appear among the candidates."""
        return self.true_cable_ids <= self.candidate_cable_ids


@dataclass
class NautilusReport:
    inferences: list[PathInference] = field(default_factory=list)

    def paths_with_wet_links(self) -> list[PathInference]:
        return [i for i in self.inferences if i.wet_links > 0]

    def multi_cable_share(self) -> float:
        wet = self.paths_with_wet_links()
        if not wet:
            return 0.0
        return sum(i.ambiguous for i in wet) / len(wet)

    def max_candidates(self) -> int:
        return max((len(i.candidate_cable_ids)
                    for i in self.inferences), default=0)

    def mean_candidates(self) -> float:
        wet = self.paths_with_wet_links()
        if not wet:
            return 0.0
        return sum(len(i.candidate_cable_ids) for i in wet) / len(wet)

    def recall(self) -> float:
        """Share of wet paths whose true cables are among candidates."""
        wet = self.paths_with_wet_links()
        if not wet:
            return 0.0
        return sum(i.correct for i in wet) / len(wet)


class NautilusInference:
    """The passive cross-layer mapper."""

    def __init__(self, topo: Topology, phys: PhysicalNetwork,
                 geo: Optional[GeolocationService] = None,
                 slack_ms: float = 25.0,
                 rtt_filter: bool = False,
                 rtt_tolerance_ms: float = 6.0) -> None:
        self._topo = topo
        self._phys = phys
        self._geo = geo
        self._slack = slack_ms
        # The §6.2 implication: combine passive inference with a
        # statistical constraint — here, the observed per-link RTT delta
        # must be consistent with a candidate's route latency.
        self._rtt_filter = rtt_filter
        self._rtt_tolerance = rtt_tolerance_ms

    def infer_path(self, trace: TracerouteResult) -> PathInference:
        """Candidate cables for every wet crossing of one traceroute."""
        hops = trace.responding_hops()
        candidates: set[int] = set()
        true_cables: set[int] = set()
        wet_links = 0
        for a, b in zip(hops, hops[1:]):
            cc_a = self._located(a)
            cc_b = self._located(b)
            true_a, true_b = a.country_iso2, b.country_iso2
            if true_a != true_b:
                truth = self._phys.route(true_a, true_b,
                                         avoid_satellite=True)
                if truth is not None and truth.cables_used:
                    true_cables |= truth.cables_used
            if cc_a is None or cc_b is None or cc_a == cc_b:
                continue
            link_candidates = self._candidates_for(cc_a, cc_b)
            if self._rtt_filter and a.rtt_ms is not None \
                    and b.rtt_ms is not None and len(link_candidates) > 1:
                link_candidates = self._filter_by_rtt(
                    cc_a, cc_b, b.rtt_ms - a.rtt_ms, link_candidates)
            if link_candidates:
                wet_links += 1
                candidates |= link_candidates
        return PathInference(frozenset(candidates), frozenset(true_cables),
                             wet_links)

    def _filter_by_rtt(self, cc_a: str, cc_b: str, observed_delta: float,
                       candidates: set[int]) -> set[int]:
        """Keep candidates whose route latency matches the observed
        inter-hop RTT delta; fall back to the full set if none do."""
        kept: set[int] = set()
        for cable_id in candidates:
            others = candidates - {cable_id}
            route = self._phys.route(cc_a, cc_b, down_cables=others,
                                     avoid_satellite=True)
            if route is None or cable_id not in route.cables_used:
                continue
            if abs(route.rtt_ms - observed_delta) <= self._rtt_tolerance:
                kept.add(cable_id)
        return kept or candidates

    def _located(self, hop) -> Optional[str]:
        if self._geo is None:
            return hop.country_iso2
        return self._geo.locate(hop.ip, true_iso2=hop.country_iso2).iso2

    def _candidates_for(self, cc_a: str, cc_b: str) -> set[int]:
        # Unambiguous case first: the two hop countries are adjacent
        # landings of specific systems.
        direct = self._phys.direct_cables(cc_a, cc_b)
        if direct:
            return direct
        best = self._phys.route(cc_a, cc_b, avoid_satellite=True)
        if best is not None and best.cables_used:
            return self._phys.candidate_cables(cc_a, cc_b, self._slack)
        if best is not None and not best.cables_used:
            return set()  # purely terrestrial crossing
        # Nonsense pair (typically a mislocated hop): fall back to
        # "every cable touching either endpoint" — the error amplifier.
        touching = set()
        for cable in self._topo.active_cables():
            countries = cable.countries
            if cc_a in countries or cc_b in countries:
                touching.add(cable.cable_id)
        return touching


def analyze_snapshot(topo: Topology, phys: PhysicalNetwork,
                     snapshot: AtlasSnapshot,
                     geo: Optional[GeolocationService] = None,
                     slack_ms: float = 25.0) -> NautilusReport:
    """Run the inference over every traceroute of a snapshot."""
    inference = NautilusInference(topo, phys, geo, slack_ms)
    report = NautilusReport()
    for trace in snapshot.traceroutes:
        report.inferences.append(inference.infer_path(trace))
    return report
