"""Regional maturity scoring (§4.3).

Combines the section-4 analyses into one composite index per region:
route locality (1 − detour rate), content locality, resolver locality,
and IXP adoption.  The paper's qualitative ranking — Southern most
mature, Eastern close behind, Western least — should emerge from the
measured components, not be asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.detours import DetourReport
from repro.analysis.locality import ContentLocalityReport, DNSLocalityReport
from repro.geo import AFRICAN_REGIONS, Region


@dataclass(frozen=True)
class MaturityRow:
    """One region's component scores and composite."""

    region: Region
    route_locality: float    # 1 - detour rate
    content_locality: float
    dns_locality: float
    ixp_traversal: float

    @property
    def composite(self) -> float:
        """Unweighted mean of components, each already in 0..1."""
        parts = (self.route_locality, self.content_locality,
                 self.dns_locality, self.ixp_traversal)
        return sum(parts) / len(parts)


@dataclass
class MaturityReport:
    rows: list[MaturityRow] = field(default_factory=list)

    def ranking(self) -> list[Region]:
        """Regions most-mature first."""
        return [r.region for r in
                sorted(self.rows, key=lambda r: -r.composite)]

    def row_for(self, region: Region) -> MaturityRow | None:
        for row in self.rows:
            if row.region is region:
                return row
        return None


def analyze_maturity(detours: DetourReport,
                     content: ContentLocalityReport,
                     dns: DNSLocalityReport,
                     min_samples: int = 4) -> MaturityReport:
    """Fuse the §4 analyses into the §4.3 maturity ranking.

    Regions with fewer than ``min_samples`` intra-region traceroute
    pairs keep their measurement-based route score but it is flagged by
    simply being computed over what little data exists — mirroring how
    thin Atlas coverage degrades the real analysis (§6.2).
    """
    report = MaturityReport()
    for region in AFRICAN_REGIONS:
        content_row = next((r for r in content.rows
                            if r.region is region), None)
        dns_row = dns.row_for(region)
        if content_row is None or dns_row is None:
            continue
        samples = detours.sample_count(region)
        route_locality = (1.0 - detours.detour_rate(region)
                          if samples else 0.0)
        report.rows.append(MaturityRow(
            region=region,
            route_locality=route_locality,
            content_locality=content_row.africa_local_share,
            dns_locality=dns_row.local_share,
            ixp_traversal=(detours.ixp_traversal_rate(region)
                           if samples >= min_samples else 0.0)))
    return report
