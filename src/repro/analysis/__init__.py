"""Analyses reproducing the paper's figures and tables."""

from repro.analysis.detours import (
    DetourReport,
    TraceClassification,
    analyze_snapshot,
    classify_trace,
)
from repro.analysis.locality import (
    ContentLocalityReport,
    ContentLocalityRow,
    DNSLocalityReport,
    DNSLocalityRow,
    analyze_content_locality,
    analyze_dns_locality,
)
from repro.analysis.coverage import (
    CoverageRow,
    CoverageTable,
    RegionalCoverageRow,
    build_coverage_table,
    regional_coverage,
    split_expected_groups,
)
from repro.analysis.nautilus import (
    NautilusInference,
    NautilusReport,
    PathInference,
)
from repro.analysis.nautilus import analyze_snapshot as analyze_nautilus
from repro.analysis.impact import (
    CauseImpactRow,
    CorrelationReport,
    ImpactReport,
    analyze_correlation,
    analyze_outages,
)
from repro.analysis.growth import (
    GrowthReport,
    GrowthRow,
    MaturityGap,
    african_growth_series,
    analyze_growth,
    maturity_gap,
)
from repro.analysis.bias import (
    BiasDimension,
    BiasReport,
    analyze_platform_bias,
    total_variation,
)
from repro.analysis.maturity import (
    MaturityReport,
    MaturityRow,
    analyze_maturity,
)

__all__ = [
    "DetourReport", "TraceClassification", "analyze_snapshot",
    "classify_trace",
    "ContentLocalityReport", "ContentLocalityRow", "DNSLocalityReport",
    "DNSLocalityRow", "analyze_content_locality", "analyze_dns_locality",
    "CoverageRow", "CoverageTable", "RegionalCoverageRow",
    "build_coverage_table", "regional_coverage", "split_expected_groups",
    "NautilusInference", "NautilusReport", "PathInference",
    "analyze_nautilus",
    "CauseImpactRow", "CorrelationReport", "ImpactReport",
    "analyze_correlation", "analyze_outages",
    "GrowthReport", "GrowthRow", "MaturityGap", "african_growth_series",
    "analyze_growth", "maturity_gap",
    "MaturityReport", "MaturityRow", "analyze_maturity",
    "BiasDimension", "BiasReport", "analyze_platform_bias",
    "total_variation",
]
