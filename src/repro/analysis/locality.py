"""Content and DNS locality analyses (Fig. 2b, Fig. 2c).

Content locality follows the Pulse methodology: a site counts as local
to Africa when its *measured* serving location is on the continent.
DNS locality aggregates APNIC-style resolver-usage records per region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.apnic import ResolverUsageRecord
from repro.datasets.pulse import PulseStudy
from repro.geo import AFRICAN_REGIONS, Region, country
from repro.topology import ResolverLocality


@dataclass(frozen=True)
class ContentLocalityRow:
    """One region's content-locality figures (Fig. 2b)."""

    region: Region
    samples: int
    africa_local_share: float
    in_country_share: float
    cdn_share: float


@dataclass
class ContentLocalityReport:
    rows: list[ContentLocalityRow] = field(default_factory=list)

    def overall_africa_share(self) -> float:
        total = sum(r.samples for r in self.rows)
        if not total:
            return 0.0
        return sum(r.africa_local_share * r.samples
                   for r in self.rows) / total

    def most_local_region(self) -> Region:
        return max(self.rows, key=lambda r: r.africa_local_share).region

    def least_local_region(self) -> Region:
        return min(self.rows, key=lambda r: r.africa_local_share).region


def analyze_content_locality(study: PulseStudy) -> ContentLocalityReport:
    """Fig. 2b: share of top-site content served from within Africa."""
    report = ContentLocalityReport()
    for region in AFRICAN_REGIONS:
        samples = [s for s in study.samples
                   if country(s.client_country).region is region]
        if not samples:
            continue
        local = sum(s.measured_local_to_africa for s in samples)
        in_country = sum(
            1 for s in samples
            if s.measured_server_country == s.client_country)
        cdn = sum(s.cdn_detected for s in samples)
        report.rows.append(ContentLocalityRow(
            region=region, samples=len(samples),
            africa_local_share=local / len(samples),
            in_country_share=in_country / len(samples),
            cdn_share=cdn / len(samples)))
    return report


@dataclass(frozen=True)
class DNSLocalityRow:
    """One region's resolver-locality mix (Fig. 2c)."""

    region: Region
    countries: int
    local_share: float
    other_african_share: float
    cloud_share: float
    foreign_share: float
    cloud_from_za_share: float


@dataclass
class DNSLocalityReport:
    rows: list[DNSLocalityRow] = field(default_factory=list)

    def row_for(self, region: Region) -> DNSLocalityRow | None:
        for row in self.rows:
            if row.region is region:
                return row
        return None

    def african_nonlocal_share(self) -> float:
        """Continent-wide share of users on non-local resolvers."""
        african = [r for r in self.rows if r.region.is_african]
        if not african:
            return 0.0
        total = sum(r.countries for r in african)
        return sum((1.0 - r.local_share) * r.countries
                   for r in african) / total


def analyze_dns_locality(records: list[ResolverUsageRecord]
                         ) -> DNSLocalityReport:
    """Fig. 2c: resolver locality per region, cloud centralisation."""
    report = DNSLocalityReport()
    by_region: dict[Region, list[ResolverUsageRecord]] = {}
    for record in records:
        by_region.setdefault(record.region, []).append(record)
    for region in sorted(by_region, key=lambda r: r.value):
        recs = by_region[region]
        n = len(recs)

        def mean_share(*locs: ResolverLocality) -> float:
            return sum(sum(r.shares.get(loc, 0.0) for loc in locs)
                       for r in recs) / n

        cloud_recs = [r for r in recs
                      if r.shares.get(ResolverLocality.CLOUD, 0.0) > 0]
        cloud_za = (sum(r.cloud_share_from_za for r in cloud_recs)
                    / len(cloud_recs)) if cloud_recs else 0.0
        report.rows.append(DNSLocalityRow(
            region=region, countries=n,
            local_share=mean_share(ResolverLocality.LOCAL_AS,
                                   ResolverLocality.LOCAL_COUNTRY),
            other_african_share=mean_share(
                ResolverLocality.OTHER_AFRICAN_COUNTRY),
            cloud_share=mean_share(ResolverLocality.CLOUD),
            foreign_share=mean_share(ResolverLocality.FOREIGN),
            cloud_from_za_share=cloud_za))
    return report
