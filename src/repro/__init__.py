"""repro — African Internet Observatory reproduction library.

A simulation and measurement-analysis framework reproducing
"A Call to Arms: Motivating An Internet Measurements Observatory for
Africa" (HotNets '25).  See DESIGN.md for the system inventory and the
per-experiment index.

Quickstart::

    from repro import build_world
    topo = build_world(seed=2025)
    print(topo.summary())
"""

from repro.topology import Topology, WorldParams, build_world

__version__ = "1.0.0"

__all__ = ["Topology", "WorldParams", "build_world", "__version__"]
