"""Geographic substrate: regions, countries, and distance/latency helpers.

Everything downstream (topology generation, physical-layer routing,
geolocation error models) is anchored on this package.  The registry is
intentionally static data — the *simulation* is seeded and synthetic, but
the map of Africa is real.
"""

from repro.geo.regions import Region, AFRICAN_REGIONS, REFERENCE_REGIONS
from repro.geo.countries import (
    Country,
    COUNTRIES,
    AFRICAN_COUNTRIES,
    country,
    countries_in_region,
)
from repro.geo.distance import (
    haversine_km,
    fiber_rtt_ms,
    path_length_km,
    EARTH_RADIUS_KM,
    FIBER_KM_PER_MS,
)

__all__ = [
    "Region",
    "AFRICAN_REGIONS",
    "REFERENCE_REGIONS",
    "Country",
    "COUNTRIES",
    "AFRICAN_COUNTRIES",
    "country",
    "countries_in_region",
    "haversine_km",
    "fiber_rtt_ms",
    "path_length_km",
    "EARTH_RADIUS_KM",
    "FIBER_KM_PER_MS",
]
