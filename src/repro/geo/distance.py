"""Great-circle distance and fiber-latency primitives.

The physical-layer model (subsea cables, terrestrial links, traceroute
RTTs) uses great-circle distance between endpoints scaled by a path
inflation factor: real cables do not follow geodesics, and African
terrestrial fiber is notoriously circuitous.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

EARTH_RADIUS_KM = 6371.0

#: Light in fiber travels ~200 km per millisecond (c / refractive index).
FIBER_KM_PER_MS = 200.0

#: Default route-length inflation over great-circle distance.
DEFAULT_PATH_INFLATION = 1.3


def haversine_km(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Great-circle distance in kilometres between two (lat, lon) points."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def path_length_km(points: Sequence[tuple[float, float]]) -> float:
    """Total great-circle length of a polyline of (lat, lon) points."""
    if len(points) < 2:
        return 0.0
    total = 0.0
    for (lat1, lon1), (lat2, lon2) in zip(points, points[1:]):
        total += haversine_km(lat1, lon1, lat2, lon2)
    return total


def fiber_rtt_ms(
    distance_km: float,
    inflation: float = DEFAULT_PATH_INFLATION,
    per_hop_ms: float = 0.0,
) -> float:
    """Round-trip time over ``distance_km`` of fiber.

    ``inflation`` stretches the geodesic to a plausible route length;
    ``per_hop_ms`` adds fixed processing/queueing delay (already
    round-trip).
    """
    if distance_km < 0:
        raise ValueError("distance must be non-negative")
    one_way_ms = distance_km * inflation / FIBER_KM_PER_MS
    return 2.0 * one_way_ms + per_hop_ms


def centroid(points: Iterable[tuple[float, float]]) -> tuple[float, float]:
    """Arithmetic centroid of (lat, lon) points (adequate at city scale)."""
    pts = list(points)
    if not pts:
        raise ValueError("centroid of empty point set")
    return (
        sum(p[0] for p in pts) / len(pts),
        sum(p[1] for p in pts) / len(pts),
    )
