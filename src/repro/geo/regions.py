"""Region taxonomy used throughout the reproduction.

The paper analyses Africa at the granularity of its five UN subregions
(Northern, Western, Central, Eastern, Southern) and compares the
continent against Europe, North America, South America and Asia-Pacific
(Fig. 1, Fig. 2c).  We model exactly those buckets.
"""

from __future__ import annotations

import enum


class Region(enum.Enum):
    """A geographic region; the unit of regional aggregation in the paper."""

    NORTHERN_AFRICA = "Northern Africa"
    WESTERN_AFRICA = "Western Africa"
    CENTRAL_AFRICA = "Central Africa"
    EASTERN_AFRICA = "Eastern Africa"
    SOUTHERN_AFRICA = "Southern Africa"
    EUROPE = "Europe"
    NORTH_AMERICA = "North America"
    SOUTH_AMERICA = "South America"
    ASIA_PACIFIC = "Asia-Pacific"

    @property
    def is_african(self) -> bool:
        return self in AFRICAN_REGIONS

    @property
    def continent(self) -> str:
        """Continent-level label ('Africa', 'Europe', ...)."""
        if self.is_african:
            return "Africa"
        return self.value

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: The five African subregions, in the paper's customary order.
AFRICAN_REGIONS: tuple[Region, ...] = (
    Region.NORTHERN_AFRICA,
    Region.WESTERN_AFRICA,
    Region.CENTRAL_AFRICA,
    Region.EASTERN_AFRICA,
    Region.SOUTHERN_AFRICA,
)

#: Non-African comparison regions used in Fig. 1 and Fig. 2c.
REFERENCE_REGIONS: tuple[Region, ...] = (
    Region.EUROPE,
    Region.NORTH_AMERICA,
    Region.SOUTH_AMERICA,
    Region.ASIA_PACIFIC,
)
