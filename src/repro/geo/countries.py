"""Country registry.

All 54 African countries plus the reference countries the paper compares
against (European transit hubs, North/South America, Asia-Pacific).
Coordinates are capital-city approximations; they feed the great-circle
latency model and the subsea-cable landing geometry.

Population figures (millions, ~2024) weight AS counts, probe placement
and top-site sampling.  ``grid_reliability`` (0..1, fraction of time the
power grid is up) drives the Observatory's power/intermittence model
(§7.1 "unreliable or intermittent power").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.regions import Region


@dataclass(frozen=True)
class Country:
    """A country participating in the simulated Internet."""

    iso2: str
    name: str
    region: Region
    lat: float
    lon: float
    population_m: float
    coastal: bool = True
    #: Fraction of time grid power is available (Observatory power model).
    grid_reliability: float = 0.95
    #: Mobile share of last-mile subscriptions (drives AS mix + Table 1).
    mobile_share: float = 0.6

    @property
    def is_african(self) -> bool:
        return self.region.is_african

    def __post_init__(self) -> None:
        if not (-90.0 <= self.lat <= 90.0):
            raise ValueError(f"bad latitude for {self.iso2}: {self.lat}")
        if not (-180.0 <= self.lon <= 180.0):
            raise ValueError(f"bad longitude for {self.iso2}: {self.lon}")
        if self.population_m <= 0:
            raise ValueError(f"bad population for {self.iso2}")


def _c(iso2, name, region, lat, lon, pop, coastal=True, grid=0.75, mobile=0.80):
    return Country(
        iso2=iso2,
        name=name,
        region=region,
        lat=lat,
        lon=lon,
        population_m=pop,
        coastal=coastal,
        grid_reliability=grid,
        mobile_share=mobile,
    )


_N = Region.NORTHERN_AFRICA
_W = Region.WESTERN_AFRICA
_C = Region.CENTRAL_AFRICA
_E = Region.EASTERN_AFRICA
_S = Region.SOUTHERN_AFRICA


_AFRICAN: list[Country] = [
    # --- Northern Africa ---
    _c("DZ", "Algeria", _N, 36.75, 3.06, 45.6, True, 0.93, 0.78),
    _c("EG", "Egypt", _N, 30.04, 31.24, 112.7, True, 0.95, 0.72),
    _c("LY", "Libya", _N, 32.89, 13.19, 6.9, True, 0.70, 0.80),
    _c("MA", "Morocco", _N, 34.02, -6.84, 37.8, True, 0.96, 0.70),
    _c("SD", "Sudan", _N, 15.50, 32.56, 48.1, True, 0.55, 0.85),
    _c("TN", "Tunisia", _N, 36.81, 10.18, 12.5, True, 0.94, 0.68),
    # --- Western Africa ---
    _c("BJ", "Benin", _W, 6.37, 2.39, 13.7, True, 0.65, 0.88),
    _c("BF", "Burkina Faso", _W, 12.37, -1.52, 23.0, False, 0.60, 0.90),
    _c("CV", "Cabo Verde", _W, 14.93, -23.51, 0.6, True, 0.90, 0.75),
    _c("CI", "Cote d'Ivoire", _W, 5.35, -4.02, 28.9, True, 0.78, 0.86),
    _c("GM", "Gambia", _W, 13.45, -16.58, 2.7, True, 0.60, 0.90),
    _c("GH", "Ghana", _W, 5.56, -0.20, 34.1, True, 0.80, 0.84),
    _c("GN", "Guinea", _W, 9.64, -13.58, 14.2, True, 0.50, 0.90),
    _c("GW", "Guinea-Bissau", _W, 11.86, -15.60, 2.2, True, 0.45, 0.92),
    _c("LR", "Liberia", _W, 6.30, -10.80, 5.4, True, 0.40, 0.90),
    _c("ML", "Mali", _W, 12.65, -8.00, 23.3, False, 0.55, 0.90),
    _c("MR", "Mauritania", _W, 18.08, -15.98, 4.9, True, 0.60, 0.88),
    _c("NE", "Niger", _W, 13.51, 2.11, 27.2, False, 0.45, 0.92),
    _c("NG", "Nigeria", _W, 6.45, 3.39, 223.8, True, 0.55, 0.86),
    _c("SN", "Senegal", _W, 14.72, -17.47, 18.4, True, 0.80, 0.84),
    _c("SL", "Sierra Leone", _W, 8.48, -13.23, 8.8, True, 0.40, 0.90),
    _c("TG", "Togo", _W, 6.13, 1.22, 9.0, True, 0.62, 0.88),
    # --- Central Africa ---
    _c("AO", "Angola", _C, -8.84, 13.23, 36.7, True, 0.68, 0.80),
    _c("CM", "Cameroon", _C, 3.87, 11.52, 28.6, True, 0.65, 0.86),
    _c("CF", "Central African Republic", _C, 4.39, 18.56, 5.7, False, 0.30, 0.92),
    _c("TD", "Chad", _C, 12.13, 15.06, 18.3, False, 0.35, 0.92),
    _c("CG", "Congo", _C, -4.27, 15.27, 6.1, True, 0.55, 0.88),
    _c("CD", "DR Congo", _C, -4.32, 15.31, 102.3, True, 0.40, 0.90),
    _c("GQ", "Equatorial Guinea", _C, 3.75, 8.78, 1.7, True, 0.60, 0.85),
    _c("GA", "Gabon", _C, 0.39, 9.45, 2.4, True, 0.75, 0.82),
    _c("ST", "Sao Tome and Principe", _C, 0.34, 6.73, 0.2, True, 0.65, 0.82),
    # --- Eastern Africa ---
    _c("BI", "Burundi", _E, -3.38, 29.36, 13.2, False, 0.40, 0.90),
    _c("KM", "Comoros", _E, -11.70, 43.26, 0.9, True, 0.55, 0.85),
    _c("DJ", "Djibouti", _E, 11.59, 43.15, 1.1, True, 0.75, 0.80),
    _c("ER", "Eritrea", _E, 15.32, 38.93, 3.7, True, 0.45, 0.88),
    _c("ET", "Ethiopia", _E, 9.03, 38.74, 126.5, False, 0.60, 0.85),
    _c("KE", "Kenya", _E, -1.29, 36.82, 55.1, True, 0.82, 0.80),
    _c("MG", "Madagascar", _E, -18.88, 47.51, 30.3, True, 0.55, 0.85),
    _c("MW", "Malawi", _E, -13.96, 33.79, 20.9, False, 0.50, 0.88),
    _c("MU", "Mauritius", _E, -20.16, 57.50, 1.3, True, 0.97, 0.60),
    _c("MZ", "Mozambique", _E, -25.97, 32.57, 33.9, True, 0.60, 0.86),
    _c("RW", "Rwanda", _E, -1.94, 30.06, 14.1, False, 0.80, 0.82),
    _c("SC", "Seychelles", _E, -4.62, 55.45, 0.1, True, 0.95, 0.60),
    _c("SO", "Somalia", _E, 2.05, 45.32, 17.6, True, 0.35, 0.92),
    _c("SS", "South Sudan", _E, 4.85, 31.58, 11.1, False, 0.25, 0.92),
    _c("TZ", "Tanzania", _E, -6.82, 39.28, 65.5, True, 0.70, 0.84),
    _c("UG", "Uganda", _E, 0.35, 32.58, 47.2, False, 0.65, 0.86),
    _c("ZM", "Zambia", _E, -15.42, 28.28, 20.6, False, 0.65, 0.84),
    _c("ZW", "Zimbabwe", _E, -17.83, 31.05, 16.3, False, 0.55, 0.84),
    # --- Southern Africa ---
    _c("BW", "Botswana", _S, -24.63, 25.92, 2.7, False, 0.88, 0.76),
    _c("SZ", "Eswatini", _S, -26.31, 31.14, 1.2, False, 0.80, 0.80),
    _c("LS", "Lesotho", _S, -29.31, 27.48, 2.3, False, 0.75, 0.82),
    _c("NA", "Namibia", _S, -22.56, 17.07, 2.6, True, 0.90, 0.74),
    _c("ZA", "South Africa", _S, -26.20, 28.05, 60.4, True, 0.80, 0.62),
]

_REFERENCE: list[Country] = [
    # Europe: transit hubs that carry African traffic (§2, §4.1).
    _c("DE", "Germany", Region.EUROPE, 50.11, 8.68, 84.5, True, 0.999, 0.25),
    _c("NL", "Netherlands", Region.EUROPE, 52.37, 4.90, 17.8, True, 0.999, 0.25),
    _c("GB", "United Kingdom", Region.EUROPE, 51.51, -0.13, 67.7, True, 0.999, 0.28),
    _c("FR", "France", Region.EUROPE, 48.86, 2.35, 68.2, True, 0.999, 0.26),
    _c("PT", "Portugal", Region.EUROPE, 38.72, -9.14, 10.3, True, 0.998, 0.30),
    _c("ES", "Spain", Region.EUROPE, 40.42, -3.70, 47.5, True, 0.998, 0.30),
    _c("IT", "Italy", Region.EUROPE, 41.90, 12.50, 58.9, True, 0.997, 0.32),
    # North America.
    _c("US", "United States", Region.NORTH_AMERICA, 38.90, -77.04, 334.9, True, 0.999, 0.20),
    _c("CA", "Canada", Region.NORTH_AMERICA, 45.42, -75.70, 38.8, True, 0.999, 0.20),
    # South America.
    _c("BR", "Brazil", Region.SOUTH_AMERICA, -23.55, -46.63, 216.4, True, 0.97, 0.55),
    _c("AR", "Argentina", Region.SOUTH_AMERICA, -34.60, -58.38, 46.2, True, 0.96, 0.50),
    _c("CO", "Colombia", Region.SOUTH_AMERICA, 4.71, -74.07, 52.1, True, 0.95, 0.55),
    _c("CL", "Chile", Region.SOUTH_AMERICA, -33.45, -70.67, 19.6, True, 0.98, 0.48),
    # Asia-Pacific.
    _c("SG", "Singapore", Region.ASIA_PACIFIC, 1.35, 103.82, 5.9, True, 0.999, 0.35),
    _c("IN", "India", Region.ASIA_PACIFIC, 19.08, 72.88, 1428.6, True, 0.90, 0.75),
    _c("JP", "Japan", Region.ASIA_PACIFIC, 35.68, 139.69, 123.3, True, 0.999, 0.30),
    _c("AU", "Australia", Region.ASIA_PACIFIC, -33.87, 151.21, 26.6, True, 0.999, 0.30),
    _c("ID", "Indonesia", Region.ASIA_PACIFIC, -6.21, 106.85, 277.5, True, 0.92, 0.70),
]

#: All countries in the model, keyed by ISO-3166 alpha-2 code.
COUNTRIES: dict[str, Country] = {c.iso2: c for c in _AFRICAN + _REFERENCE}

#: African countries only, keyed by ISO2.
AFRICAN_COUNTRIES: dict[str, Country] = {c.iso2: c for c in _AFRICAN}

if len(COUNTRIES) != len(_AFRICAN) + len(_REFERENCE):  # pragma: no cover
    raise RuntimeError("duplicate ISO2 codes in the country registry")


def country(iso2: str) -> Country:
    """Look up a country by ISO2 code; raises ``KeyError`` with context."""
    try:
        return COUNTRIES[iso2]
    except KeyError:
        raise KeyError(f"unknown country code {iso2!r}") from None


def countries_in_region(region: Region) -> list[Country]:
    """All registered countries in ``region``, ordered by ISO2 code."""
    return sorted(
        (c for c in COUNTRIES.values() if c.region is region),
        key=lambda c: c.iso2,
    )
