"""Plain-text rendering of figures and tables."""

from repro.reporting.tables import ascii_table, bar_chart, pct, series

__all__ = ["ascii_table", "bar_chart", "pct", "series"]
