"""Plain-text table/series rendering for benchmark output.

Every benchmark prints the rows/series its figure or table reports in
the paper; these helpers keep the output uniform and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def pct(value: float, digits: int = 1) -> str:
    """Format a 0..1 share as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def ascii_table(headers: Sequence[str],
                rows: Iterable[Sequence[object]],
                title: str | None = None) -> str:
    """Render a fixed-width table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def series(label: str, points: Iterable[tuple[str, float]],
           fmt: str = "{:.2f}") -> str:
    """Render a named series as 'label: k=v k=v ...'."""
    body = "  ".join(f"{k}={fmt.format(v)}" for k, v in points)
    return f"{label}: {body}"


def bar_chart(points: Iterable[tuple[str, float]], width: int = 40,
              fmt: str = "{:.2f}", title: str | None = None) -> str:
    """A horizontal ASCII bar chart (for figure-shaped results)."""
    pts = list(points)
    if not pts:
        return title or ""
    peak = max(abs(v) for _, v in pts) or 1.0
    label_w = max(len(k) for k, _ in pts)
    lines = [title] if title else []
    for key, value in pts:
        bar = "#" * max(0, round(width * abs(value) / peak))
        lines.append(f"{key.ljust(label_w)} | {bar} {fmt.format(value)}")
    return "\n".join(lines)
