"""Longitudinal monitoring: the Observatory running day after day.

§5.2 calls for watchdogs that *continuously* assess the ecosystem, and
§7's platform exists to feed them.  This module simulates the
Observatory in operation over a multi-month window that contains real
(simulated) outages: every day, powered probes run their scheduled
measurements; the resulting health time-series feeds an anomaly
detector; detected anomalies are compared against ground truth.

The headline comparison: a traffic-drop monitor (Radar-style) only sees
outages big enough to dent *national* traffic, while the Observatory's
active per-country probing also catches partial degradations — at the
cost of a fleet to run.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.exec import current_payload, map_tasks
from repro.geo import country
from repro.measurement import DNSMeasurement, ProbePlatform
from repro.outages import OutageEvent, SimulationResult
from repro.outages.engine import DETECTION_THRESHOLD
from repro.observatory.power import is_powered
from repro.routing import PhysicalNetwork
from repro.topology import Topology
from repro.util import derive_rng
from repro import telemetry

_CHECKS = telemetry.counter(
    "repro_observatory_checks_total",
    "Health-check resolutions attempted by the monitoring fleet")
_ANOMALIES = telemetry.counter(
    "repro_observatory_anomalies_total",
    "Anomaly alarms raised by the monitoring runner")
_COUNTRY_DAYS = telemetry.counter(
    "repro_observatory_country_days_total",
    "Country-days of health monitored")
_MONITORED = telemetry.gauge(
    "repro_observatory_countries_monitored",
    "Countries covered by the last monitoring run")

#: Degradation (reachability drop) the anomaly detector alarms on.
ANOMALY_THRESHOLD = 0.10
#: Sampling times within each day (hours) — sub-day outages are caught
#: by whichever sample lands inside them.
SAMPLE_HOURS = (0, 6, 12, 18)
#: Resolutions attempted per probe per sample in the health check.
CHECKS_PER_PROBE_SAMPLE = 2


@dataclass(frozen=True)
class DailyHealth:
    """One country-day of measured health."""

    day: int
    iso2: str
    probes_active: int
    checks: int
    success_rate: float


@dataclass(frozen=True)
class DetectedAnomaly:
    """An Observatory alarm: a country-day below baseline health."""

    day: int
    iso2: str
    success_rate: float
    baseline: float


@dataclass
class MonitoringReport:
    """Outcome of a monitoring window."""

    days: int = 0
    health: list[DailyHealth] = field(default_factory=list)
    anomalies: list[DetectedAnomaly] = field(default_factory=list)
    #: Ground-truth (event, country) pairs active in the window with
    #: severity >= the given threshold.
    truth: set[tuple[int, str]] = field(default_factory=set)
    #: Truth pairs the Observatory alarmed on.
    detected_truth: set[tuple[int, str]] = field(default_factory=set)
    #: Truth pairs a Radar-style national-traffic monitor would list.
    radar_truth: set[tuple[int, str]] = field(default_factory=set)

    def recall(self) -> float:
        if not self.truth:
            return 1.0
        return len(self.detected_truth) / len(self.truth)

    def radar_recall(self) -> float:
        if not self.truth:
            return 1.0
        return len(self.radar_truth) / len(self.truth)

    def sub_threshold_truth(self) -> set[tuple[int, str]]:
        """Impacts too small for a traffic-drop monitor to list."""
        return self.truth - self.radar_truth

    def sub_threshold_recall(self) -> float:
        """Observatory recall on what Radar misses by definition."""
        sub = self.sub_threshold_truth()
        if not sub:
            return 1.0
        return len(self.detected_truth & sub) / len(sub)

    def false_alarm_days(self) -> int:
        truth_country_days = set()
        for event, iso2 in self.truth:
            truth_country_days.add(iso2)
        return sum(1 for a in self.anomalies
                   if a.iso2 not in truth_country_days)


class MonitoringRunner:
    """Drives the fleet through a simulated outage timeline."""

    def __init__(self, topo: Topology, phys: PhysicalNetwork,
                 platform: ProbePlatform,
                 seed: Optional[int] = None) -> None:
        self._topo = topo
        self._phys = phys
        self._platform = platform
        self._seed = seed if seed is not None else topo.params.seed
        self._dns = DNSMeasurement(topo, phys, seed=self._seed)

    # ------------------------------------------------------------------
    def run(self, simulation: SimulationResult, days: int,
            truth_threshold: float = 0.10,
            workers: Optional[int] = None) -> MonitoringReport:
        """Monitor ``days`` of the simulated outage timeline.

        Every country-day derives its RNG from
        ``(seed, "monitoring", "day", day, iso2)``, so the units are
        independent and can be measured on ``workers`` processes; the
        baseline/anomaly pass stays sequential in the parent because
        each day's baseline depends on the previous days' health.
        """
        report = MonitoringReport(days=days)
        probes_by_cc: dict[str, list] = {}
        for probe in self._platform.probes:
            if probe.region.is_african:
                probes_by_cc.setdefault(probe.country_iso2,
                                        []).append(probe)
        baselines: dict[str, list[float]] = {cc: []
                                             for cc in probes_by_cc}
        countries = sorted(probes_by_cc)
        with telemetry.span("observatory.monitor", days=days,
                            countries=len(probes_by_cc)):
            # One task per country: a worker keeps its countries' route
            # caches warm across the whole day series, and the day loop
            # inside still derives one RNG per (day, iso2) unit.
            series = map_tasks(
                _country_series_task, countries, workers=workers,
                payload=(self, simulation, probes_by_cc, days),
                label="monitoring_countries")
            by_cc = dict(zip(countries, series))
            day_major = [(day, iso2) for day in range(days)
                         for iso2 in countries]
            for day, iso2 in day_major:
                health, active_idx = by_cc[iso2][day]
                if health is None:
                    continue
                active_for_cc = [simulation.events[i] for i in active_idx]
                report.health.append(health)
                if telemetry.enabled():
                    _COUNTRY_DAYS.inc()
                    _CHECKS.inc(health.checks)
                baseline_window = baselines[iso2][-14:]
                baseline = (statistics.mean(baseline_window)
                            if len(baseline_window) >= 3 else 1.0)
                if health.success_rate < baseline - ANOMALY_THRESHOLD:
                    _ANOMALIES.inc()
                    report.anomalies.append(DetectedAnomaly(
                        day, iso2, health.success_rate, baseline))
                    self._credit_detection(report, active_for_cc, iso2,
                                           truth_threshold)
                else:
                    baselines[iso2].append(health.success_rate)
        _MONITORED.set(len(probes_by_cc))
        self._fill_truth(report, simulation, days, truth_threshold)
        return report

    # ------------------------------------------------------------------
    def _events_at(self, simulation: SimulationResult, t: float,
                   iso2: str) -> list[OutageEvent]:
        """Events whose impact on ``iso2`` spans instant ``t``."""
        out = []
        for event in simulation.events:
            impact = event.impact_for(iso2)
            if impact is None:
                continue
            if event.start_day <= t < event.start_day + impact.outage_days:
                out.append(event)
        return out

    def _country_day(self, day, iso2, probes, simulation, rng
                     ) -> tuple[Optional[DailyHealth], list[OutageEvent]]:
        successes = checks = 0
        powered_max = 0
        seen_events: list[OutageEvent] = []
        for hour in SAMPLE_HOURS:
            powered = [p for p in probes
                       if is_powered(p, day, hour, seed=self._seed)]
            powered_max = max(powered_max, len(powered))
            if not powered:
                continue
            t = day + hour / 24.0
            active = self._events_at(simulation, t, iso2)
            for event in active:
                if event not in seen_events:
                    seen_events.append(event)
            severity = max((event.impact_for(iso2).severity
                            for event in active), default=0.0)
            down = tuple(sorted({cid for event in active
                                 for cid in event.cables_cut}))
            for probe in powered:
                for i in range(CHECKS_PER_PROBE_SAMPLE):
                    checks += 1
                    if rng.random() < severity:
                        continue  # measurement lost to the outage
                    result = self._dns.resolve(
                        probe.asn, f"health-{day}-{hour}-{i}.check",
                        down_cables=down, rng=rng)
                    successes += result.ok
        if not checks:
            return None, seen_events
        return DailyHealth(day, iso2, powered_max, checks,
                           successes / checks), seen_events

    def _credit_detection(self, report, active, iso2,
                          truth_threshold) -> None:
        for event in active:
            impact = event.impact_for(iso2)
            if impact is not None and impact.severity >= truth_threshold:
                report.detected_truth.add((event.event_id, iso2))

    def _fill_truth(self, report, simulation, days,
                    truth_threshold) -> None:
        monitored = {p.country_iso2 for p in self._platform.probes
                     if p.region.is_african}
        for event in simulation.events:
            if event.start_day >= days:
                continue
            for impact in event.impacts:
                if impact.iso2 not in monitored:
                    continue
                if not country(impact.iso2).is_african:
                    continue
                if impact.severity < truth_threshold:
                    continue
                key = (event.event_id, impact.iso2)
                report.truth.add(key)
                if impact.severity >= DETECTION_THRESHOLD:
                    report.radar_truth.add(key)


def _country_series_task(iso2: str
                         ) -> list[tuple[Optional[DailyHealth],
                                         tuple[int, ...]]]:
    """Worker task: one country's whole day series, one RNG per day.

    Active events come back as indices into ``simulation.events`` — the
    parent holds the same list, and re-pickling full event records for
    thousands of country-days would dwarf the actual result payload.
    """
    runner, simulation, probes_by_cc, days = current_payload()
    index_of = {id(e): i for i, e in enumerate(simulation.events)}
    out = []
    for day in range(days):
        rng = derive_rng(runner._seed, "monitoring", "day", str(day),
                         iso2)
        health, seen = runner._country_day(day, iso2, probes_by_cc[iso2],
                                           simulation, rng)
        out.append((health, tuple(index_of[id(e)] for e in seen)))
    return out
