"""Budget- and power-aware measurement scheduling (§7.1).

Allocates recurring measurement tasks to probes so that total utility
is maximised subject to each probe's monthly data budget (priced by its
country's plan) and its power availability.  Two policies:

* :func:`schedule_cost_aware` — greedy by utility per marginal dollar,
  with task *reuse* (one traceroute serving several objectives is
  charged once);
* :func:`schedule_round_robin` — the naive baseline the budget ablation
  compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.measurement.probes import AccessTech, VantagePoint
from repro.observatory.budget import (
    BudgetAccount,
    DataPlan,
    plan_for,
    wire_bytes,
)
from repro.observatory.power import probe_power_profile
from repro import telemetry

_TASKS_PLACED = telemetry.counter(
    "repro_scheduler_tasks_placed_total",
    "Measurement tasks placed on probes", labels=("policy",))
_TASKS_UNPLACED = telemetry.counter(
    "repro_scheduler_tasks_unplaced_total",
    "Measurement tasks that fit on no probe", labels=("policy",))
_TASKS_REUSED = telemetry.counter(
    "repro_scheduler_tasks_reused_total",
    "Placements served by an existing measurement (zero-cost reuse)")
_SCHED_UTILITY = telemetry.gauge(
    "repro_scheduler_utility", "Total utility of the last schedule",
    labels=("policy",))
_SCHED_COST = telemetry.gauge(
    "repro_scheduler_cost_usd", "Total cost of the last schedule",
    labels=("policy",))


def _record_schedule(schedule: "Schedule", policy: str) -> None:
    if not telemetry.enabled():
        return
    placed = _TASKS_PLACED.labels(policy=policy)
    for assignment in schedule.assignments:
        placed.inc()
        if assignment.reused:
            _TASKS_REUSED.inc()
    _TASKS_UNPLACED.labels(policy=policy).inc(len(schedule.unplaced))
    _SCHED_UTILITY.labels(policy=policy).set(schedule.total_utility)
    _SCHED_COST.labels(policy=policy).set(schedule.total_cost_usd)


@dataclass(frozen=True)
class MeasurementTask:
    """A recurring measurement requirement."""

    task_id: str
    kind: str                  # "traceroute" | "ping" | "dns" | "pageload"
    target: str                # opaque label (IP, domain, campaign key)
    #: Application-level bytes per run.
    app_bytes: int
    #: Runs wanted per month.
    runs_per_month: int
    #: Utility per completed run (objective weight).
    utility: float
    #: Restrict to a country (None = anywhere useful).
    country: Optional[str] = None
    #: Required uplink (cellular-only tasks measure the mobile path).
    requires_access: Optional[AccessTech] = None

    def __post_init__(self) -> None:
        if self.app_bytes <= 0 or self.runs_per_month <= 0:
            raise ValueError(f"bad task sizing for {self.task_id}")
        if self.utility < 0:
            raise ValueError("negative utility")


@dataclass
class Assignment:
    """One task placed on one probe."""

    task: MeasurementTask
    probe_id: int
    runs: int
    billed_bytes: int
    cost_usd: float
    #: True when this task shares measurements with an earlier one.
    reused: bool = False


@dataclass
class Schedule:
    """A month's measurement plan."""

    assignments: list[Assignment] = field(default_factory=list)
    unplaced: list[MeasurementTask] = field(default_factory=list)
    accounts: dict[int, BudgetAccount] = field(default_factory=dict)

    @property
    def total_utility(self) -> float:
        return sum(a.task.utility * a.runs for a in self.assignments)

    @property
    def total_cost_usd(self) -> float:
        return sum(acct.spent_usd for acct in self.accounts.values())

    def utility_per_dollar(self) -> float:
        cost = self.total_cost_usd
        return self.total_utility / cost if cost > 0 else 0.0

    def placed_task_ids(self) -> set[str]:
        return {a.task.task_id for a in self.assignments}


def _eligible(probe: VantagePoint, task: MeasurementTask) -> bool:
    if task.country is not None and probe.country_iso2 != task.country:
        return False
    if task.requires_access is not None \
            and task.requires_access not in probe.uplinks():
        return False
    return True


def _billed_access(probe: VantagePoint,
                   task: MeasurementTask) -> AccessTech:
    if task.requires_access is not None:
        return task.requires_access
    return probe.access


def _effective_runs(probe: VantagePoint, runs: int) -> int:
    """Runs that survive power interruptions (rounded down)."""
    availability = probe_power_profile(probe).effective_availability
    return int(runs * availability)


def schedule_cost_aware(probes: Iterable[VantagePoint],
                        tasks: Iterable[MeasurementTask],
                        monthly_budget_usd: float,
                        plans: Optional[dict[str, DataPlan]] = None
                        ) -> Schedule:
    """Greedy utility-per-dollar scheduling with measurement reuse."""
    with telemetry.span("observatory.schedule", policy="cost-aware"):
        schedule = _schedule_cost_aware(probes, tasks,
                                        monthly_budget_usd, plans)
    _record_schedule(schedule, "cost-aware")
    return schedule


def _schedule_cost_aware(probes, tasks, monthly_budget_usd, plans
                         ) -> Schedule:
    probes = list(probes)
    schedule = Schedule()
    for probe in probes:
        plan = (plans or {}).get(probe.country_iso2) \
            or plan_for(probe.country_iso2)
        schedule.accounts[probe.probe_id] = BudgetAccount(
            plan, monthly_budget_usd)
    # Reuse ledger: (probe, kind, target) already measured this month.
    measured: dict[tuple[int, str, str], Assignment] = {}
    ordered = sorted(tasks, key=lambda t: (-t.utility / t.app_bytes,
                                           t.task_id))
    for task in ordered:
        placed = False
        candidates = [p for p in probes if _eligible(p, task)]
        # Cheapest capable probe first (marginal cost of the full task).
        def marginal(probe: VantagePoint) -> float:
            account = schedule.accounts[probe.probe_id]
            billed = wire_bytes(task.app_bytes * task.runs_per_month,
                                _billed_access(probe, task))
            return account.cost_of(billed)

        for probe in sorted(candidates,
                            key=lambda p: (marginal(p), p.probe_id)):
            key = (probe.probe_id, task.kind, task.target)
            if key in measured:
                prior = measured[key]
                runs = min(prior.runs, task.runs_per_month)
                schedule.assignments.append(Assignment(
                    task=task, probe_id=probe.probe_id, runs=runs,
                    billed_bytes=0, cost_usd=0.0, reused=True))
                placed = True
                break
            account = schedule.accounts[probe.probe_id]
            billed = wire_bytes(task.app_bytes * task.runs_per_month,
                                _billed_access(probe, task))
            if not account.can_afford(billed):
                continue
            cost = account.charge(billed)
            assignment = Assignment(
                task=task, probe_id=probe.probe_id,
                runs=_effective_runs(probe, task.runs_per_month),
                billed_bytes=billed, cost_usd=cost)
            schedule.assignments.append(assignment)
            measured[key] = assignment
            placed = True
            break
        if not placed:
            schedule.unplaced.append(task)
    return schedule


def schedule_round_robin(probes: Iterable[VantagePoint],
                         tasks: Iterable[MeasurementTask],
                         monthly_budget_usd: float,
                         plans: Optional[dict[str, DataPlan]] = None
                         ) -> Schedule:
    """Naive baseline: tasks dealt to eligible probes in turn, no
    cost-awareness, no reuse."""
    with telemetry.span("observatory.schedule", policy="round-robin"):
        schedule = _schedule_round_robin(probes, tasks,
                                         monthly_budget_usd, plans)
    _record_schedule(schedule, "round-robin")
    return schedule


def _schedule_round_robin(probes, tasks, monthly_budget_usd, plans
                          ) -> Schedule:
    probes = list(probes)
    schedule = Schedule()
    for probe in probes:
        plan = (plans or {}).get(probe.country_iso2) \
            or plan_for(probe.country_iso2)
        schedule.accounts[probe.probe_id] = BudgetAccount(
            plan, monthly_budget_usd)
    cursor = 0
    for task in sorted(tasks, key=lambda t: t.task_id):
        candidates = [p for p in probes if _eligible(p, task)]
        if not candidates:
            schedule.unplaced.append(task)
            continue
        placed = False
        for offset in range(len(candidates)):
            probe = candidates[(cursor + offset) % len(candidates)]
            account = schedule.accounts[probe.probe_id]
            billed = wire_bytes(task.app_bytes * task.runs_per_month,
                                _billed_access(probe, task))
            if account.can_afford(billed):
                cost = account.charge(billed)
                schedule.assignments.append(Assignment(
                    task=task, probe_id=probe.probe_id,
                    runs=_effective_runs(probe, task.runs_per_month),
                    billed_bytes=billed, cost_usd=cost))
                placed = True
                cursor += 1
                break
        if not placed:
            schedule.unplaced.append(task)
    return schedule
