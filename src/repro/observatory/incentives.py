"""Volunteer incentives and fleet economics (§7.2).

"The group running Bismark used payments of monthly Internet bills to
grow their deployment.  We intend to start by engaging local operators
... and incentivize community volunteers" — so the Observatory's
operating cost is hardware amortisation + the volunteer's subsidised
bill + measurement data.  This module prices a fleet so a grant
proposal (the project is ICANN-grant funded) can be sized honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.geo import Region, country
from repro.measurement.probes import ProbeKind, VantagePoint
from repro.observatory.budget import plan_for

#: Hardware cost (USD) amortised over 36 months.
HARDWARE_USD = {
    ProbeKind.RASPBERRY_PI: 120.0,      # Pi + dongle + SD + PSU
    ProbeKind.MOBILE_HANDSET: 180.0,
    ProbeKind.RESIDENTIAL_VPN: 0.0,     # software-only
    ProbeKind.ATLAS_PROBE: 80.0,
    ProbeKind.ATLAS_ANCHOR: 900.0,
}
AMORTISATION_MONTHS = 36

#: Monthly home-connectivity bill subsidy (USD) by region — the
#: Bismark-style volunteer incentive.
BILL_SUBSIDY_USD: dict[Region, float] = {
    Region.NORTHERN_AFRICA: 18.0,
    Region.WESTERN_AFRICA: 35.0,
    Region.CENTRAL_AFRICA: 55.0,
    Region.EASTERN_AFRICA: 28.0,
    Region.SOUTHERN_AFRICA: 30.0,
    Region.EUROPE: 30.0,
    Region.NORTH_AMERICA: 45.0,
    Region.SOUTH_AMERICA: 25.0,
    Region.ASIA_PACIFIC: 25.0,
}

#: Battery/solar add-on for unreliable-grid sites (one-off USD).
POWER_KIT_USD = 60.0
POWER_KIT_GRID_THRESHOLD = 0.7


@dataclass(frozen=True)
class ProbeCost:
    """Monthly cost breakdown for one probe."""

    probe_id: int
    iso2: str
    hardware_usd: float
    subsidy_usd: float
    data_usd: float

    @property
    def total_usd(self) -> float:
        return self.hardware_usd + self.subsidy_usd + self.data_usd


@dataclass
class FleetBudget:
    """Monthly economics of a deployment."""

    probes: list[ProbeCost] = field(default_factory=list)

    @property
    def monthly_usd(self) -> float:
        return sum(p.total_usd for p in self.probes)

    @property
    def annual_usd(self) -> float:
        return 12.0 * self.monthly_usd

    def by_region(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for p in self.probes:
            region = country(p.iso2).region.value
            out[region] = out.get(region, 0.0) + p.total_usd
        return out

    def costliest_probe(self) -> Optional[ProbeCost]:
        if not self.probes:
            return None
        return max(self.probes, key=lambda p: p.total_usd)


def probe_monthly_cost(probe: VantagePoint,
                       monthly_data_gb: float = 2.0) -> ProbeCost:
    """Monthly cost of hosting one probe at a volunteer site."""
    c = country(probe.country_iso2)
    hardware = HARDWARE_USD[probe.kind]
    if probe.kind is ProbeKind.RASPBERRY_PI \
            and c.grid_reliability < POWER_KIT_GRID_THRESHOLD:
        hardware += POWER_KIT_USD
    plan = plan_for(probe.country_iso2)
    data = monthly_data_gb * plan.usd_per_gb
    return ProbeCost(
        probe_id=probe.probe_id,
        iso2=probe.country_iso2,
        hardware_usd=hardware / AMORTISATION_MONTHS,
        subsidy_usd=BILL_SUBSIDY_USD[c.region],
        data_usd=data)


def fleet_budget(probes: Iterable[VantagePoint],
                 monthly_data_gb: float = 2.0) -> FleetBudget:
    """Price an entire deployment."""
    budget = FleetBudget()
    for probe in probes:
        budget.probes.append(probe_monthly_cost(probe, monthly_data_gb))
    return budget
