"""Observatory platform orchestration (§7).

Ties the pieces together: a probe fleet (from placement), experiment
vetting ("experiments will need to be vetted and run by a small,
trusted cohort" — §7.1), budget-aware scheduling, and execution against
the measurement engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.measurement import (
    MeasurementEngine,
    ProbePlatform,
    build_observatory_platform,
)
from repro.observatory.budget import plan_for
from repro.observatory.placement import PlacementObjective, place_probes
from repro.observatory.power import probe_power_profile
from repro.observatory.scheduler import (
    MeasurementTask,
    Schedule,
    schedule_cost_aware,
)
from repro.topology import Topology

#: Hard per-experiment caps enforced at vetting time.
MAX_TASKS_PER_EXPERIMENT = 500
MAX_BYTES_PER_TASK = 50 * 2**20


class ExperimentStatus(enum.Enum):
    SUBMITTED = "submitted"
    APPROVED = "approved"
    REJECTED = "rejected"
    COMPLETED = "completed"


@dataclass
class Experiment:
    """A researcher's proposed measurement experiment."""

    experiment_id: str
    owner: str
    description: str
    tasks: list[MeasurementTask] = field(default_factory=list)
    status: ExperimentStatus = ExperimentStatus.SUBMITTED
    rejection_reason: Optional[str] = None
    schedule: Optional[Schedule] = None


class ObservatoryPlatform:
    """The deployed Observatory: fleet + governance + scheduling."""

    def __init__(self, topo: Topology,
                 objective: PlacementObjective =
                 PlacementObjective.IXP_COVERAGE,
                 probe_budget: Optional[int] = None,
                 monthly_budget_usd: float = 20.0,
                 trusted_cohort: Iterable[str] = ()) -> None:
        self._topo = topo
        host_asns = place_probes(topo, objective, budget=probe_budget)
        self.fleet: ProbePlatform = build_observatory_platform(
            topo, host_asns)
        self.monthly_budget_usd = monthly_budget_usd
        self.trusted_cohort = set(trusted_cohort)
        self.experiments: dict[str, Experiment] = {}

    # ------------------------------------------------------------------
    def add_trusted_researcher(self, name: str) -> None:
        self.trusted_cohort.add(name)

    def submit(self, experiment: Experiment) -> Experiment:
        """Vet an experiment (trusted cohort + resource caps)."""
        if experiment.experiment_id in self.experiments:
            raise ValueError(
                f"duplicate experiment id {experiment.experiment_id!r}")
        self.experiments[experiment.experiment_id] = experiment
        if experiment.owner not in self.trusted_cohort:
            experiment.status = ExperimentStatus.REJECTED
            experiment.rejection_reason = (
                "owner is not in the trusted cohort (§7.1)")
            return experiment
        if len(experiment.tasks) > MAX_TASKS_PER_EXPERIMENT:
            experiment.status = ExperimentStatus.REJECTED
            experiment.rejection_reason = "too many tasks"
            return experiment
        oversized = [t for t in experiment.tasks
                     if t.app_bytes > MAX_BYTES_PER_TASK]
        if oversized:
            experiment.status = ExperimentStatus.REJECTED
            experiment.rejection_reason = (
                f"task {oversized[0].task_id} exceeds the per-task "
                "byte cap")
            return experiment
        experiment.status = ExperimentStatus.APPROVED
        return experiment

    # ------------------------------------------------------------------
    def schedule_experiment(self, experiment_id: str) -> Schedule:
        """Budget-aware schedule for an approved experiment."""
        experiment = self.experiments[experiment_id]
        if experiment.status is not ExperimentStatus.APPROVED:
            raise PermissionError(
                f"experiment {experiment_id} is {experiment.status.value}")
        schedule = schedule_cost_aware(
            self.fleet.probes, experiment.tasks, self.monthly_budget_usd)
        experiment.schedule = schedule
        experiment.status = ExperimentStatus.COMPLETED
        return schedule

    # ------------------------------------------------------------------
    def fleet_report(self) -> dict[str, float]:
        """Operational summary: size, mobile share, power, data cost."""
        probes = self.fleet.probes
        if not probes:
            return {"probes": 0}
        availability = [probe_power_profile(p).effective_availability
                        for p in probes]
        monthly_gb_price = [plan_for(p.country_iso2).usd_per_gb
                            for p in probes]
        return {
            "probes": len(probes),
            "countries": len(self.fleet.countries()),
            "mobile_share": self.fleet.mobile_share(),
            "mean_availability": sum(availability) / len(availability),
            "mean_usd_per_gb": sum(monthly_gb_price)
            / len(monthly_gb_price),
        }
