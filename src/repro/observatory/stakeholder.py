"""Stakeholder report generation (§7.2).

The Observatory's end product for regulators, operators and the
quarterly town halls: a single readable report that runs the full
analysis pipeline and phrases the results as the decisions they inform.
Everything in the report is measured from the supplied world — this is
the artifact the paper wants on an NCC or ITU working-group desk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis import (
    analyze_content_locality,
    analyze_dns_locality,
    analyze_growth,
    analyze_maturity,
    analyze_platform_bias,
    analyze_snapshot,
)
from repro.datasets import (
    build_ixp_directory,
    build_resolver_usage,
    collect_snapshot,
    run_pulse_study,
)
from repro.measurement import (
    GeolocationService,
    MeasurementEngine,
    build_atlas_platform,
)
from repro.observatory.placement import compare_ixp_coverage, ixp_cover_hosts
from repro.observatory.watchdog import (
    DEFAULT_POLICY_PACKAGE,
    PolicyWatchdog,
)
from repro.reporting import ascii_table, pct
from repro.routing import BGPRouting, PhysicalNetwork
from repro.topology import Topology


@dataclass
class StakeholderReport:
    """Rendered report plus the headline numbers it was built from."""

    text: str
    detour_rate: float
    content_locality: float
    dns_local_share_min: float
    compliance_rate: float
    most_mature_region: str
    least_mature_region: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def generate_report(topo: Topology, max_pairs: int = 800,
                    seed: Optional[int] = None) -> StakeholderReport:
    """Run the full pipeline and render the quarterly report."""
    routing = BGPRouting(topo)
    phys = PhysicalNetwork(topo)
    engine = MeasurementEngine(topo, routing, phys, seed=seed)
    atlas = build_atlas_platform(topo)
    snapshot = collect_snapshot(topo, engine, atlas, max_pairs=max_pairs)
    geo = GeolocationService(topo)
    directory = build_ixp_directory(topo)

    detours = analyze_snapshot(topo, snapshot, geo, directory)
    content = analyze_content_locality(run_pulse_study(topo))
    dns = analyze_dns_locality(build_resolver_usage(topo))
    maturity = analyze_maturity(detours, content, dns)
    growth = analyze_growth(topo).africa()
    bias = analyze_platform_bias(topo, atlas)
    watchdog = PolicyWatchdog(topo, phys)
    compliance = watchdog.assess(DEFAULT_POLICY_PACKAGE)
    cover = ixp_cover_hosts(topo)
    coverage_cmp = compare_ixp_coverage(topo, atlas)

    ranking = maturity.ranking()
    african_dns = [r for r in dns.rows if r.region.is_african]
    dns_min = min(r.local_share for r in african_dns)

    title = "AFRICAN INTERNET OBSERVATORY — QUARTERLY CONNECTIVITY REPORT"
    sections = [title + "\n" + "=" * len(title)]
    sections.append(
        f"Infrastructure trend: IXPs {growth.ixps_before}->"
        f"{growth.ixps_after} ({growth.ixp_growth_pct:+.0f}%), cables "
        f"{growth.cables_before}->{growth.cables_after} "
        f"({growth.cable_growth_pct:+.0f}%) over ten years — growth is "
        "real, but absolute maturity still trails every other region.")
    sections.append(ascii_table(
        ["indicator", "value", "reading"],
        [["intra-African route detours", pct(detours.detour_rate()),
          "traffic still transits Europe"],
         ["routes crossing any IXP", pct(detours.ixp_traversal_rate()),
          "localisation under-used"],
         ["content served from Africa", pct(content.overall_africa_share()),
          "hosting remains offshore"],
         ["weakest regional DNS locality", pct(dns_min),
          "§5.2 hidden dependency"],
         ["policy-package compliance", pct(compliance.compliance_rate()),
          "watchdog baseline"]],
        title="Headline indicators"))
    sections.append(ascii_table(
        ["region", "composite maturity"],
        [[row.region.value, f"{row.composite:.2f}"]
         for row in sorted(maturity.rows, key=lambda r: -r.composite)],
        title="Regional maturity ranking (strategies should differ "
              "per region, §4.3)"))
    worst_bias = bias.worst_dimension()
    sections.append(
        f"Measurement readiness: volunteer platforms cover only "
        f"{coverage_cmp.atlas_covered}/{coverage_cmp.universe} African "
        f"IXPs and are most skewed on '{worst_bias.name}' "
        f"(TV {worst_bias.tv_distance:.2f}); {len(cover.chosen)} "
        "intentionally placed probes would cover every exchange.")
    violations = compliance.violations()
    sections.append(
        f"Watchdog: {len(violations)} policy violations across the "
        "continent; worst fronts are resolver localisation and "
        "backup capacity under correlated cable failure.")
    text = "\n\n".join(sections) + "\n"
    return StakeholderReport(
        text=text,
        detour_rate=detours.detour_rate(),
        content_locality=content.overall_africa_share(),
        dns_local_share_min=dns_min,
        compliance_rate=compliance.compliance_rate(),
        most_mature_region=ranking[0].value,
        least_mature_region=ranking[-1].value)
