"""Targeted measurement campaigns (§7, §7.3).

Unlike broad-coverage scanning, Observatory campaigns aim probes at
specific infrastructure:

* :class:`IXPDiscoveryCampaign` — reproduce the Kigali result: a probe
  inside AS36924 traceroutes toward in-continent targets and surfaces
  the IXPs its providers peer at, far beyond what Atlas-placed probes
  see ("detected 14 additional IXPs").
* :class:`DNSDependencyCampaign` — the §5.2 watchdog: measure resolver
  locality per country and what breaks under a cable cut.
* :class:`CableDisambiguationCampaign` — the §6.2 implication: active
  measurements across maintenance windows pin a wet link to a single
  system where passive Nautilus inference returns many candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.exec import current_payload, map_tasks
from repro.geo import AFRICAN_COUNTRIES, country
from repro.measurement import (
    DNSMeasurement,
    GeolocationService,
    IXPDirectory,
    MeasurementEngine,
    ProbePlatform,
    VantagePoint,
    detect_ixp_crossings,
)
from repro.routing import PhysicalNetwork
from repro.topology import ASKind, ResolverLocality, Topology
from repro.util import derive_seed
from repro import telemetry

_CAMPAIGNS = telemetry.counter(
    "repro_observatory_campaigns_total",
    "Targeted measurement campaigns executed", labels=("campaign",))


# ----------------------------------------------------------------------
# IXP discovery (§7.3)
# ----------------------------------------------------------------------
@dataclass
class IXPDiscoveryResult:
    """IXPs surfaced by one platform's campaign."""

    platform_name: str
    probes_used: int
    traceroutes: int
    detected_ixp_ids: set[int] = field(default_factory=set)

    def detected_count(self) -> int:
        return len(self.detected_ixp_ids)


class IXPDiscoveryCampaign:
    """Traceroute sweep aimed at surfacing exchange fabrics."""

    def __init__(self, topo: Topology, engine: MeasurementEngine,
                 directory: IXPDirectory) -> None:
        self._topo = topo
        self._engine = engine
        self._directory = directory

    def _targets(self) -> list[int]:
        """Targets chosen per the §6.1 implication: measurements must be
        "targeted at a customer of the IX" — so for every exchange in
        the peering directory we aim at a couple of member networks,
        plus one large eyeball per country and the CDN off-nets."""
        targets: list[int] = []
        directory_ids = self._directory.ixp_ids()
        for ixp in sorted(self._topo.ixps.values(),
                          key=lambda x: x.ixp_id):
            if not ixp.is_african or ixp.ixp_id not in directory_ids:
                continue
            members = [self._topo.as_(m) for m in sorted(ixp.members)]
            members = [m for m in members if m.tier == 3 and m.prefixes]
            for member in members[:4]:
                targets.append(member.prefixes[0].network + 66)
        for iso2 in sorted(AFRICAN_COUNTRIES):
            eyeballs = [a for a in self._topo.ases_in_country(iso2)
                        if a.kind.is_eyeball and a.prefixes]
            if eyeballs:
                best = max(eyeballs,
                           key=lambda a: (sum(p.size for p in a.prefixes),
                                          -a.asn))
                targets.append(best.prefixes[0].network + 55)
        for cdn in self._topo.cdns:
            a = self._topo.ases.get(cdn.asn)
            if a is not None and a.prefixes:
                targets.append(a.prefixes[0].network + 80)
        return targets

    def _probe_sweep(self, probe: VantagePoint,
                     targets: Sequence[int]) -> tuple[int, set[int]]:
        """One probe's sweep: (traceroutes run, African IXP ids seen)."""
        traceroutes = 0
        detected: set[int] = set()
        for target in targets:
            trace = self._engine.traceroute(probe, target)
            traceroutes += 1
            for crossing in detect_ixp_crossings(trace, self._directory):
                if self._topo.ixps[crossing.ixp_id].is_african:
                    detected.add(crossing.ixp_id)
        return traceroutes, detected

    def run(self, probes: Sequence[VantagePoint], platform_name: str,
            workers: Optional[int] = None) -> IXPDiscoveryResult:
        result = IXPDiscoveryResult(platform_name=platform_name,
                                    probes_used=len(probes),
                                    traceroutes=0)
        _CAMPAIGNS.labels(campaign="ixp-discovery").inc()
        targets = self._targets()
        with telemetry.span("campaign.ixp_discovery",
                            platform=platform_name, probes=len(probes)):
            # The engine derives an RNG per (probe, target) measurement,
            # so the per-probe sweeps are order-independent and the
            # fan-out reproduces the serial nested loop exactly.
            sweeps = map_tasks(_ixp_probe_task, list(probes),
                               workers=workers, payload=(self, targets),
                               label="ixp_discovery")
            for traceroutes, detected in sweeps:
                result.traceroutes += traceroutes
                result.detected_ixp_ids |= detected
        return result


def atlas_builtin_discovery(topo: Topology, engine: MeasurementEngine,
                            directory: IXPDirectory,
                            probes: Sequence[VantagePoint],
                            max_targets: int = 60
                            ) -> IXPDiscoveryResult:
    """What an Atlas-style platform surfaces *without* targeting.

    Atlas probes run builtin measurements toward anchors and root
    infrastructure — broad-coverage targets, not IXP customers.  This
    is the "RIPE Atlas approaches" baseline of §7.3.
    """
    result = IXPDiscoveryResult(platform_name="atlas-builtins",
                                probes_used=len(probes), traceroutes=0)
    anchors = []
    for a in sorted(topo.ases.values(), key=lambda x: x.asn):
        if a.kind in (ASKind.CLOUD, ASKind.CONTENT) and a.prefixes:
            anchors.append(a.prefixes[0].network + 33)
        elif a.kind is ASKind.EDUCATION and a.prefixes \
                and len(anchors) < max_targets:
            anchors.append(a.prefixes[0].network + 44)
    anchors = anchors[:max_targets]
    for probe in probes:
        for target in anchors:
            trace = engine.traceroute(probe, target)
            result.traceroutes += 1
            for crossing in detect_ixp_crossings(trace, directory):
                ixp = topo.ixps[crossing.ixp_id]
                if ixp.is_african:
                    result.detected_ixp_ids.add(crossing.ixp_id)
    return result


def kigali_comparison(topo: Topology, engine: MeasurementEngine,
                      directory: IXPDirectory,
                      atlas: ProbePlatform,
                      vantage_asn: int = 36924
                      ) -> tuple[IXPDiscoveryResult, IXPDiscoveryResult]:
    """§7.3: the AS36924 Kigali probe vs "RIPE Atlas approaches".

    The observatory vantage runs the *targeted* campaign (aimed at IXP
    customers); the Atlas baseline is its probes in the same country
    running their builtin anchor measurements.  The paper reports the
    observatory vantage detecting 14 additional IXPs.
    """
    from repro.measurement.probes import (AccessTech, ProbeKind,
                                          VantagePoint)
    campaign = IXPDiscoveryCampaign(topo, engine, directory)
    vantage_cc = topo.as_(vantage_asn).country_iso2
    observatory_probe = VantagePoint(
        probe_id=999_001, asn=vantage_asn, country_iso2=vantage_cc,
        kind=ProbeKind.RASPBERRY_PI, access=AccessTech.FIXED,
        secondary_access=AccessTech.CELLULAR)
    obs = campaign.run([observatory_probe], "observatory-kigali")
    atlas_local = [p for p in atlas.probes if p.country_iso2 == vantage_cc]
    ref = atlas_builtin_discovery(topo, engine, directory, atlas_local)
    return obs, ref


# ----------------------------------------------------------------------
# DNS dependency watchdog (§5.2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DNSDependencyRow:
    """One country's resolver-dependency exposure."""

    iso2: str
    clients_measured: int
    nonlocal_share: float
    baseline_failure_rate: float
    cable_cut_failure_rate: float

    @property
    def outage_amplification(self) -> float:
        if self.baseline_failure_rate <= 0:
            return float("inf") if self.cable_cut_failure_rate > 0 else 1.0
        return self.cable_cut_failure_rate / self.baseline_failure_rate


class DNSDependencyCampaign:
    """Measures resolver locality and cable-cut DNS fragility.

    Each country is resolved with its own :class:`DNSMeasurement`
    seeded from ``derive_seed(seed, "dns-dependency", iso2)``, so the
    per-country rows are independent of evaluation order and the
    campaign parallelises without changing a single byte of output.
    """

    def __init__(self, topo: Topology, phys: PhysicalNetwork,
                 seed: Optional[int] = None) -> None:
        self._topo = topo
        self._phys = phys
        self._seed = seed if seed is not None else topo.params.seed

    def _country_row(self, iso2: str, cut_cable_ids: Sequence[int],
                     domains: Sequence[str]
                     ) -> Optional[DNSDependencyRow]:
        clients = [a.asn for a in self._topo.ases_in_country(iso2)
                   if a.asn in self._topo.resolver_configs]
        if not clients:
            return None
        dns = DNSMeasurement(
            self._topo, self._phys,
            seed=derive_seed(self._seed, "dns-dependency", iso2))
        nonlocal_count = 0
        base_fail = 0
        cut_fail = 0
        total = 0
        for asn in clients:
            cfg = self._topo.resolver_configs[asn]
            if not cfg.locality.survives_cable_cut:
                nonlocal_count += 1
            for domain in domains:
                total += 1
                if not dns.resolve(asn, domain).ok:
                    base_fail += 1
                if not dns.resolve(asn, domain,
                                   down_cables=cut_cable_ids).ok:
                    cut_fail += 1
        return DNSDependencyRow(
            iso2=iso2, clients_measured=len(clients),
            nonlocal_share=nonlocal_count / len(clients),
            baseline_failure_rate=base_fail / total,
            cable_cut_failure_rate=cut_fail / total)

    def run(self, countries: Iterable[str],
            cut_cable_ids: Sequence[int],
            domains: Sequence[str] = ("example.org", "bank.local",
                                      "gov.portal", "news.site"),
            workers: Optional[int] = None) -> list[DNSDependencyRow]:
        _CAMPAIGNS.labels(campaign="dns-dependency").inc()
        items = sorted(set(countries))
        rows = map_tasks(
            _dns_country_task, items, workers=workers,
            payload=(self, tuple(cut_cable_ids), tuple(domains)),
            label="dns_dependency")
        return [row for row in rows if row is not None]


# ----------------------------------------------------------------------
# Cable disambiguation (§6.2 implication)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DisambiguationResult:
    """Active identification of the cable behind one wet link."""

    cc_a: str
    cc_b: str
    passive_candidates: int
    identified_cable_id: Optional[int]
    correct: bool


class CableDisambiguationCampaign:
    """Pin wet links to single systems via differential measurements.

    During a known single-cable maintenance window the RTT between two
    countries shifts only if the link actually rides the cable under
    maintenance; iterating over candidates isolates the true system —
    the "combination of active measurements and statistical approaches"
    §6.2 argues for.
    """

    def __init__(self, topo: Topology, phys: PhysicalNetwork,
                 rtt_shift_threshold_ms: float = 3.0) -> None:
        self._topo = topo
        self._phys = phys
        self._threshold = rtt_shift_threshold_ms

    def disambiguate(self, cc_a: str, cc_b: str,
                     passive_candidates: set[int]
                     ) -> DisambiguationResult:
        _CAMPAIGNS.labels(campaign="cable-disambiguation").inc()
        baseline = self._phys.route(cc_a, cc_b, avoid_satellite=True)
        if baseline is None or not baseline.cables_used:
            return DisambiguationResult(cc_a, cc_b,
                                        len(passive_candidates), None,
                                        False)
        true_cables = baseline.cables_used
        identified: Optional[int] = None
        for cable_id in sorted(passive_candidates):
            with_window = self._phys.route(cc_a, cc_b,
                                           down_cables=(cable_id,),
                                           avoid_satellite=True)
            # Observable signals during the window: loss of the path,
            # an RTT shift, or (via traceroute) the path moving onto
            # different wet segments.
            shifted = (with_window is None
                       or with_window.rtt_ms - baseline.rtt_ms
                       > self._threshold
                       or with_window.cables_used != baseline.cables_used)
            if shifted:
                identified = cable_id
                break
        return DisambiguationResult(
            cc_a=cc_a, cc_b=cc_b,
            passive_candidates=len(passive_candidates),
            identified_cable_id=identified,
            correct=identified in true_cables)


# ----------------------------------------------------------------------
# Worker tasks (module level so the pool can pickle them by reference;
# the heavy state rides the fork-inherited payload).
# ----------------------------------------------------------------------
def _ixp_probe_task(probe: VantagePoint) -> tuple[int, set[int]]:
    """One probe's IXP-discovery sweep."""
    campaign, targets = current_payload()
    return campaign._probe_sweep(probe, targets)


def _dns_country_task(iso2: str) -> Optional[DNSDependencyRow]:
    """One country's DNS-dependency row."""
    campaign, cut_cable_ids, domains = current_payload()
    return campaign._country_row(iso2, cut_cable_ids, domains)
