"""The African Internet Observatory — the paper's core contribution.

Purpose-driven probe placement (set cover over peering data),
cost-conscious scheduling under per-country pricing models, a power
model for intermittent grids, targeted measurement campaigns, and the
what-if simulators §8 calls for.
"""

from repro.observatory.placement import (
    PlacementComparison,
    PlacementObjective,
    SetCoverResult,
    compare_ixp_coverage,
    greedy_set_cover,
    ixp_cover_hosts,
    place_probes,
)
from repro.observatory.budget import (
    BudgetAccount,
    BudgetExceeded,
    DataPlan,
    PricingModel,
    plan_for,
    wire_bytes,
    WIRE_OVERHEAD_CELLULAR,
    WIRE_OVERHEAD_FIXED,
)
from repro.observatory.power import (
    PowerProfile,
    expected_completed_slots,
    is_powered,
    probe_power_profile,
)
from repro.observatory.scheduler import (
    Assignment,
    MeasurementTask,
    Schedule,
    schedule_cost_aware,
    schedule_round_robin,
)
from repro.observatory.campaigns import (
    CableDisambiguationCampaign,
    DisambiguationResult,
    DNSDependencyCampaign,
    DNSDependencyRow,
    IXPDiscoveryCampaign,
    IXPDiscoveryResult,
    kigali_comparison,
)
from repro.observatory.whatif import (
    WhatIfAddCable,
    WhatIfCutCables,
    WhatIfLEOBackup,
    WhatIfLocalizeDNS,
    WhatIfMandateLocalPeering,
    WhatIfOutcome,
    run_scenarios,
    touched_ases,
)
from repro.observatory.watchdog import (
    ComplianceFinding,
    ComplianceReport,
    DEFAULT_POLICY_PACKAGE,
    Policy,
    PolicyKind,
    PolicyWatchdog,
)
from repro.observatory.runner import (
    DailyHealth,
    DetectedAnomaly,
    MonitoringReport,
    MonitoringRunner,
)
from repro.observatory.incentives import (
    FleetBudget,
    ProbeCost,
    fleet_budget,
    probe_monthly_cost,
    BILL_SUBSIDY_USD,
)
from repro.observatory.stakeholder import (
    StakeholderReport,
    generate_report,
)
from repro.observatory.platform import (
    Experiment,
    ExperimentStatus,
    ObservatoryPlatform,
    MAX_TASKS_PER_EXPERIMENT,
)

__all__ = [
    "PlacementComparison", "PlacementObjective", "SetCoverResult",
    "compare_ixp_coverage", "greedy_set_cover", "ixp_cover_hosts",
    "place_probes",
    "BudgetAccount", "BudgetExceeded", "DataPlan", "PricingModel",
    "plan_for", "wire_bytes", "WIRE_OVERHEAD_CELLULAR",
    "WIRE_OVERHEAD_FIXED",
    "PowerProfile", "expected_completed_slots", "is_powered",
    "probe_power_profile",
    "Assignment", "MeasurementTask", "Schedule", "schedule_cost_aware",
    "schedule_round_robin",
    "CableDisambiguationCampaign", "DisambiguationResult",
    "DNSDependencyCampaign", "DNSDependencyRow",
    "IXPDiscoveryCampaign", "IXPDiscoveryResult", "kigali_comparison",
    "WhatIfAddCable", "WhatIfCutCables", "WhatIfLEOBackup",
    "WhatIfLocalizeDNS", "WhatIfMandateLocalPeering", "WhatIfOutcome",
    "touched_ases",
    "run_scenarios",
    "Experiment", "ExperimentStatus", "ObservatoryPlatform",
    "MAX_TASKS_PER_EXPERIMENT",
    "ComplianceFinding", "ComplianceReport", "DEFAULT_POLICY_PACKAGE",
    "Policy", "PolicyKind", "PolicyWatchdog",
    "DailyHealth", "DetectedAnomaly", "MonitoringReport",
    "MonitoringRunner",
    "StakeholderReport", "generate_report",
    "FleetBudget", "ProbeCost", "fleet_budget", "probe_monthly_cost",
    "BILL_SUBSIDY_USD",
]
