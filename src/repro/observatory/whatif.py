"""What-if scenario engine (§8: "a set of 'what-if' simulators tailored
to the realities of Africa's current ecosystem").

Scenarios answer the questions regulators ask in §1: how would a
specific intervention — a geographically diverse cable, localized DNS,
an IXP with mandated local peering — change resilience and locality?
Each scenario builds a modified world and re-measures; results are
always (baseline, modified) pairs of the same metric.

Scenario worlds come from :meth:`Topology.structured_copy` and are
edited only through public mutators, so every copy carries a
``routing_base`` back-reference and an ``added_links`` edit journal.
The routing layer uses that journal (:func:`touched_ases` exposes it
for analyses) to serve scenarios incrementally: a modified world routed
through the shared context gets a ``DeltaRouting`` over the warm
baseline that recomputes only destinations the edit can affect —
peering mandates touch only the new peers' customer cones, while
cable/DNS edits change no AS adjacency at all and reuse every table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.exec import current_payload, map_tasks, physical_for, routing_for
from repro.geo import country
from repro.topology import (
    ASLink,
    CableCorridor,
    Landing,
    Relationship,
    ResolverConfig,
    ResolverLocality,
    SubseaCable,
    Topology,
)
from repro.topology.cables import landing_site


@dataclass(frozen=True)
class WhatIfOutcome:
    """A metric before and after an intervention."""

    metric: str
    baseline: float
    modified: float

    @property
    def delta(self) -> float:
        return self.modified - self.baseline

    @property
    def relative_change(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.modified else 0.0
        return self.delta / self.baseline


def _cloned(topo: Topology) -> Topology:
    """Copy the world so interventions never leak into baseline.

    Uses :meth:`Topology.structured_copy` — mutable membership state is
    copied, immutable leaves are shared — which is an order of
    magnitude cheaper than the ``copy.deepcopy`` it replaced.  The copy
    starts a fresh ``added_links`` journal, which is what later lets
    routing treat the scenario world as "baseline + these edges".
    """
    return topo.structured_copy()


def touched_ases(modified: Topology) -> set[int]:
    """ASNs whose adjacency a scenario edit touched.

    The endpoints of every link in the modified world's edit journal
    (``added_links``).  Empty for scenarios that change no AS-level
    adjacency (cable deployments, resolver localisation, membership
    tweaks without new links) — exactly the cases where incremental
    routing reuses every baseline table.
    """
    out: set[int] = set()
    for link in modified.added_links:
        out.add(link.a)
        out.add(link.b)
    return out


# ----------------------------------------------------------------------
class WhatIfAddCable:
    """Deploy a new (geographically diverse) cable and re-measure the
    severity of a given multi-cable cut (§5.1 implication)."""

    def __init__(self, topo: Topology) -> None:
        self._topo = topo

    def apply(self, name: str, landing_keys: Sequence[str],
              capacity_tbps: float = 60.0,
              rfs_year: Optional[int] = None) -> Topology:
        modified = _cloned(self._topo)
        year = rfs_year if rfs_year is not None else \
            modified.params.current_year - 4  # lit capacity by "now"
        landings = []
        for key in landing_keys:
            iso2, site, lat, lon = landing_site(key)
            landings.append(Landing(iso2, site, lat, lon))
        new_id = max((c.cable_id for c in modified.cables), default=0) + 1
        modified.cables.append(SubseaCable(
            cable_id=new_id, name=name,
            corridor=CableCorridor.SOUTH_ATLANTIC,
            landings=landings, rfs_year=year,
            capacity_tbps=capacity_tbps, diverse_route=True))
        return modified

    def cut_severity(self, iso2: str, cut_ids: Sequence[int],
                     modified: Topology) -> WhatIfOutcome:
        """Severity of the cut for one country, before vs after."""
        def severity(topo: Topology) -> float:
            phys = physical_for(topo)
            before = phys.international_traffic_weight(iso2)
            if before <= 0:
                return 0.0
            after = phys.international_traffic_weight(
                iso2, down_cables=cut_ids)
            return max(0.0, 1.0 - after / before)
        return WhatIfOutcome(
            metric=f"cable-cut severity for {iso2}",
            baseline=severity(self._topo),
            modified=severity(modified))


# ----------------------------------------------------------------------
class WhatIfLocalizeDNS:
    """Legislated resolver localisation (§5.2 takeaway): move a share
    of a country's outsourced resolvers in-country."""

    def __init__(self, topo: Topology) -> None:
        self._topo = topo

    def apply(self, iso2: str, localized_share: float = 1.0) -> Topology:
        if not 0.0 <= localized_share <= 1.0:
            raise ValueError("share out of range")
        modified = _cloned(self._topo)
        affected = sorted(
            asn for asn, cfg in modified.resolver_configs.items()
            if modified.as_(asn).country_iso2 == iso2
            and not cfg.locality.survives_cable_cut)
        n_move = round(len(affected) * localized_share)
        for asn in affected[:n_move]:
            modified.resolver_configs[asn] = ResolverConfig(
                asn=asn, locality=ResolverLocality.LOCAL_COUNTRY,
                hosted_in=iso2, operator_asn=asn)
        return modified

    def outage_resolution_failure(self, iso2: str,
                                  cut_ids: Sequence[int],
                                  modified: Topology,
                                  domains: int = 6) -> WhatIfOutcome:
        """DNS failure rate during the cut, before vs after."""
        from repro.measurement import DNSMeasurement

        def failure_rate(topo: Topology) -> float:
            phys = physical_for(topo)
            dns = DNSMeasurement(topo, phys)
            clients = [a.asn for a in topo.ases_in_country(iso2)
                       if a.asn in topo.resolver_configs]
            if not clients:
                return 0.0
            failures = total = 0
            for asn in clients:
                for i in range(domains):
                    total += 1
                    result = dns.resolve(asn, f"site{i}.example",
                                         down_cables=cut_ids)
                    failures += not result.ok
            return failures / total
        return WhatIfOutcome(
            metric=f"DNS failure rate during cut ({iso2})",
            baseline=failure_rate(self._topo),
            modified=failure_rate(modified))


# ----------------------------------------------------------------------
class WhatIfMandateLocalPeering:
    """Regulate that a country's networks must peer at the local IXP
    (the ISOC/ICANN localisation lever, §2/§4.1)."""

    def __init__(self, topo: Topology) -> None:
        self._topo = topo

    def apply(self, iso2: str) -> Topology:
        modified = _cloned(self._topo)
        local_ixps = modified.ixps_in_country(iso2)
        if not local_ixps:
            raise ValueError(f"{iso2} has no IXP to mandate peering at")
        ixp = max(local_ixps, key=lambda x: len(x.members))
        locals_ = [a for a in modified.ases_in_country(iso2)
                   if a.tier == 3]
        for a in locals_:
            ixp.members.add(a.asn)
            a.ixps.add(ixp.ixp_id)
        # Full bilateral peering across the (now complete) fabric.
        members = sorted(asn for asn in ixp.members
                         if modified.as_(asn).country_iso2 == iso2)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if modified.link_between(a, b) is not None:
                    continue
                modified.add_link(ASLink(a, b, Relationship.PEER_TO_PEER,
                                         ixp_id=ixp.ixp_id))
        return modified

    def domestic_detour_rate(self, iso2: str,
                             modified: Topology) -> WhatIfOutcome:
        """Share of domestic AS pairs routed through another country."""
        def rate(topo: Topology) -> float:
            routing = routing_for(topo)
            from repro.routing import as_path_geography
            locals_ = sorted(a.asn for a in topo.ases_in_country(iso2)
                             if a.tier == 3)
            pairs = total = detoured = 0
            for a in locals_:
                for b in locals_:
                    if a >= b:
                        continue
                    sites = as_path_geography(topo, routing, a, b)
                    if sites is None:
                        continue
                    total += 1
                    if any(s.country_iso2 != iso2 for s in sites):
                        detoured += 1
            return detoured / total if total else 0.0
        return WhatIfOutcome(
            metric=f"domestic detour rate ({iso2})",
            baseline=rate(self._topo),
            modified=rate(modified))


# ----------------------------------------------------------------------
class WhatIfLEOBackup:
    """Low-earth-orbit backup capacity (§2 mentions satellite routes;
    LEO changes the economics: ~40 ms instead of geostationary ~550 ms,
    and meaningful capacity).

    Measured as: what share of a country's lit capacity survives a
    given cable cut once a LEO layer of ``capacity_tbps`` is available
    everywhere, and what the RTT penalty of failing over is.
    """

    LEO_RTT_MS = 40.0

    def __init__(self, topo: Topology,
                 leo_capacity_tbps: float = 0.4) -> None:
        self._topo = topo
        self._leo_capacity = leo_capacity_tbps
        self._phys = physical_for(topo)

    def cut_severity(self, iso2: str,
                     cut_ids: Sequence[int]) -> WhatIfOutcome:
        before = self._phys.international_traffic_weight(iso2)
        after = self._phys.international_traffic_weight(
            iso2, down_cables=cut_ids)
        if before <= 0:
            return WhatIfOutcome(f"LEO severity {iso2}", 0.0, 0.0)
        baseline = max(0.0, 1.0 - after / before)
        # LEO adds a capacity floor with weight ~ sqrt(capacity) like
        # the cable model (see SubseaCable.traffic_weight).
        import math
        leo_weight = math.sqrt(self._leo_capacity)
        modified = max(0.0, 1.0 - (after + leo_weight)
                       / (before + leo_weight))
        return WhatIfOutcome(
            metric=f"cable-cut severity for {iso2} (with LEO backup)",
            baseline=baseline, modified=modified)

    def failover_rtt_penalty(self, iso2: str, peer_cc: str,
                             cut_ids: Sequence[int]) -> WhatIfOutcome:
        base = self._phys.route(iso2, peer_cc, avoid_satellite=True)
        base_rtt = base.rtt_ms if base else float("inf")
        cut = self._phys.route(iso2, peer_cc, down_cables=cut_ids,
                               avoid_satellite=True)
        cut_rtt = cut.rtt_ms if cut else self.LEO_RTT_MS * 2
        return WhatIfOutcome(
            metric=f"RTT {iso2}->{peer_cc} under cut with LEO",
            baseline=base_rtt,
            modified=min(cut_rtt, base_rtt + self.LEO_RTT_MS))


# ----------------------------------------------------------------------
class WhatIfCutCables:
    """Pure failure scenario: re-measure reachability metrics under an
    arbitrary set of cable cuts (the March-2024 replay)."""

    def __init__(self, topo: Topology) -> None:
        self._topo = topo
        self._phys = physical_for(topo)

    def country_severities(self, cut_ids: Sequence[int],
                           workers: Optional[int] = None
                           ) -> dict[str, float]:
        """Per-country severity of a cut, fanned out per country.

        Each country's severity is a pure function of the shared
        physical layer, so the fan-out is byte-identical to the serial
        loop it replaces.
        """
        countries = sorted({cc for cable in self._topo.cables
                            for cc in cable.countries
                            if country(cc).is_african})
        rows = map_tasks(_severity_task, countries, workers=workers,
                         payload=(self._phys, tuple(cut_ids)),
                         label="whatif_severities")
        return {iso2: severity for iso2, severity in rows
                if severity is not None}

    def rtt_inflation(self, src_cc: str, dst_cc: str,
                      cut_ids: Sequence[int]) -> WhatIfOutcome:
        base = self._phys.route(src_cc, dst_cc)
        cut = self._phys.route(src_cc, dst_cc, down_cables=cut_ids)
        return WhatIfOutcome(
            metric=f"RTT {src_cc}->{dst_cc} (ms)",
            baseline=base.rtt_ms if base else float("inf"),
            modified=cut.rtt_ms if cut else float("inf"))


# ----------------------------------------------------------------------
# Parallel scenario fan-out
# ----------------------------------------------------------------------
def _severity_task(iso2: str) -> tuple[str, Optional[float]]:
    """Worker task: one country's cut severity (pure computation)."""
    phys, cut_ids = current_payload()
    before = phys.international_traffic_weight(iso2)
    if before <= 0:
        return iso2, None
    after = phys.international_traffic_weight(iso2, down_cables=cut_ids)
    severity = max(0.0, 1.0 - after / before)
    return iso2, severity if severity > 0 else None


def _scenario_task(task) -> WhatIfOutcome:
    """Worker task: evaluate one ``() -> WhatIfOutcome`` thunk."""
    return task()


def run_scenarios(tasks: Iterable, workers: Optional[int] = None
                  ) -> list[WhatIfOutcome]:
    """Evaluate independent what-if scenarios, optionally in parallel.

    ``tasks`` are zero-argument picklable callables (module-level
    functions or ``functools.partial`` over scenario methods), each
    returning a :class:`WhatIfOutcome`.  Scenarios are independent by
    construction — each builds its own modified world — so results
    match the serial loop in order and value.
    """
    return map_tasks(_scenario_task, list(tasks), workers=workers,
                     label="whatif_scenarios")
