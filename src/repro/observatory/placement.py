"""Probe placement: targeted, purpose-driven vantage selection (§7).

The Observatory's defining difference from volunteer platforms is that
probe locations are *chosen* against an objective.  Footnote 1 is the
canonical instance: "Using a greedy set-cover analysis of peering data,
we identified a minimal set of 34 ASNs that jointly cover all 77
African IXPs."  This module implements that set cover plus the other
placement objectives (country coverage, mobile representativeness) and
the comparison against Atlas-style volunteer placement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Optional, TypeVar

from repro.geo import AFRICAN_COUNTRIES, country
from repro.measurement import ProbePlatform
from repro.topology import ASKind, Topology

K = TypeVar("K", bound=Hashable)
V = TypeVar("V", bound=Hashable)


@dataclass
class SetCoverResult:
    """Outcome of a greedy set cover."""

    chosen: list = field(default_factory=list)
    covered: set = field(default_factory=set)
    uncovered: set = field(default_factory=set)
    #: Cumulative coverage size after each pick (the coverage curve).
    curve: list[int] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.uncovered

    def picks_needed(self, fraction: float) -> Optional[int]:
        """Picks required to reach a coverage fraction, or None."""
        total = len(self.covered) + len(self.uncovered)
        target = fraction * total
        for i, size in enumerate(self.curve, start=1):
            if size >= target:
                return i
        return None


def greedy_set_cover(universe: Iterable[V],
                     sets: Mapping[K, set[V]],
                     max_picks: Optional[int] = None) -> SetCoverResult:
    """Classic greedy set cover with deterministic tie-breaking.

    Picks the set covering the most yet-uncovered elements; ties break
    on the smallest key so runs are reproducible.
    """
    remaining = set(universe)
    result = SetCoverResult(uncovered=remaining)
    available = {k: set(v) & remaining for k, v in sets.items()}
    covered: set[V] = set()
    while remaining and (max_picks is None or len(result.chosen) < max_picks):
        best_key, best_gain = None, 0
        for key in sorted(available):
            gain = len(available[key] & remaining)
            if gain > best_gain:
                best_key, best_gain = key, gain
        if best_key is None or best_gain == 0:
            break
        result.chosen.append(best_key)
        newly = available.pop(best_key) & remaining
        covered |= newly
        remaining -= newly
        result.curve.append(len(covered))
    result.covered = covered
    result.uncovered = remaining
    return result


class PlacementObjective(enum.Enum):
    """What a probe deployment is optimised for."""

    IXP_COVERAGE = "cover all African IXPs"
    COUNTRY_COVERAGE = "at least one probe per African country"
    MOBILE_REPRESENTATIVE = "population-weighted mobile networks"


def ixp_cover_hosts(topo: Topology,
                    membership: Optional[Mapping[int, set[int]]] = None,
                    max_picks: Optional[int] = None) -> SetCoverResult:
    """Footnote 1: the minimal AS set covering all African IXPs.

    ``membership`` maps ASN -> IXP ids (defaults to ground truth; pass
    :func:`repro.datasets.peeringdb.membership_map` for the
    directory-limited view).
    """
    universe = {x.ixp_id for x in topo.african_ixps()}
    if membership is None:
        membership = {
            asn: {i for i in a.ixps if topo.ixps[i].is_african}
            for asn, a in topo.ases.items() if a.ixps}
    african_membership = {
        asn: ixps & universe for asn, ixps in membership.items()
        if ixps & universe}
    return greedy_set_cover(universe, african_membership,
                            max_picks=max_picks)


def place_probes(topo: Topology, objective: PlacementObjective,
                 budget: Optional[int] = None) -> list[int]:
    """Choose host ASNs for a deployment of ``budget`` probes."""
    if objective is PlacementObjective.IXP_COVERAGE:
        return list(ixp_cover_hosts(topo, max_picks=budget).chosen)
    if objective is PlacementObjective.COUNTRY_COVERAGE:
        chosen: list[int] = []
        for iso2 in sorted(AFRICAN_COUNTRIES):
            candidates = [a for a in topo.ases_in_country(iso2)
                          if a.kind.is_eyeball]
            if not candidates:
                continue
            # Prefer the biggest mobile network, then the biggest fixed.
            candidates.sort(key=lambda a: (
                a.kind is not ASKind.MOBILE,
                -sum(p.size for p in a.prefixes), a.asn))
            chosen.append(candidates[0].asn)
            if budget is not None and len(chosen) >= budget:
                break
        return chosen
    if objective is PlacementObjective.MOBILE_REPRESENTATIVE:
        mobiles = [a for a in topo.african_ases()
                   if a.kind is ASKind.MOBILE]
        mobiles.sort(key=lambda a: (
            -AFRICAN_COUNTRIES[a.country_iso2].population_m, a.asn))
        picks = mobiles if budget is None else mobiles[:budget]
        return [a.asn for a in picks]
    raise ValueError(f"unknown objective {objective}")


@dataclass(frozen=True)
class PlacementComparison:
    """Observatory vs Atlas-style placement on one objective."""

    objective: PlacementObjective
    observatory_hosts: int
    observatory_covered: int
    atlas_hosts: int
    atlas_covered: int
    universe: int

    @property
    def coverage_gain(self) -> int:
        return self.observatory_covered - self.atlas_covered


def compare_ixp_coverage(topo: Topology,
                         atlas: ProbePlatform) -> PlacementComparison:
    """How many African IXPs each platform's host ASes can see.

    A platform "covers" an IXP when it has a probe inside a member AS —
    the prerequisite for its traceroutes ever crossing that fabric
    (§6.1 implication).
    """
    universe = {x.ixp_id for x in topo.african_ixps()}
    cover = ixp_cover_hosts(topo)
    atlas_asns = {p.asn for p in atlas.probes if p.region.is_african}
    atlas_covered = set()
    for asn in atlas_asns:
        if asn in topo.ases:
            atlas_covered |= {i for i in topo.as_(asn).ixps
                              if i in universe}
    return PlacementComparison(
        objective=PlacementObjective.IXP_COVERAGE,
        observatory_hosts=len(cover.chosen),
        observatory_covered=len(cover.covered),
        atlas_hosts=len(atlas_asns),
        atlas_covered=len(atlas_covered),
        universe=len(universe))
