"""Policy-compliance watchdog (§5.2 takeaway).

"We argue that similar efforts should be made to legislate these
critical dependencies and that watchdogs should be created to
continuously assess policy adherence."  This module is that watchdog:
declarative resilience policies evaluated continuously against
measured state, producing per-country compliance reports regulators
(ITU/NCC-style working groups, §1) can act on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.geo import AFRICAN_COUNTRIES, country
from repro.routing import PhysicalNetwork
from repro.topology import Topology
from repro.outages.correlate import corridor_chokepoints
from repro import telemetry

_ASSESSMENTS = telemetry.counter(
    "repro_watchdog_assessments_total",
    "Country/policy compliance checks evaluated")
_ALERTS = telemetry.counter(
    "repro_watchdog_alerts_total",
    "Compliance violations flagged", labels=("policy",))


class PolicyKind(enum.Enum):
    """The §5 policy levers."""

    #: Minimum share of eyeball networks with in-country resolvers.
    DNS_LOCALIZATION = "resolver localisation"
    #: Minimum share of top-site content served from within the country
    #: or the continent.
    CONTENT_LOCALIZATION = "content localisation"
    #: Minimum number of *physically diverse* international paths (§5.1:
    #: "legislation may mandate backup paths ... these cables may still
    #: be correlated due to physical collocation").
    CABLE_DIVERSITY = "cable diversity"
    #: Mobile operators must retain capacity under single-corridor loss
    #: (Ghana's backup-connectivity law, §5.1).
    BACKUP_CAPACITY = "backup capacity"


@dataclass(frozen=True)
class Policy:
    """One legislated requirement."""

    kind: PolicyKind
    #: Threshold semantics depend on kind (share in 0..1, or a count).
    threshold: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError("negative threshold")


@dataclass(frozen=True)
class ComplianceFinding:
    """One country's verdict for one policy."""

    iso2: str
    policy: Policy
    measured: float
    compliant: bool
    detail: str = ""


@dataclass
class ComplianceReport:
    findings: list[ComplianceFinding] = field(default_factory=list)

    def compliance_rate(self, kind: Optional[PolicyKind] = None) -> float:
        rows = [f for f in self.findings
                if kind is None or f.policy.kind is kind]
        if not rows:
            return 0.0
        return sum(f.compliant for f in rows) / len(rows)

    def violations(self) -> list[ComplianceFinding]:
        return [f for f in self.findings if not f.compliant]

    def for_country(self, iso2: str) -> list[ComplianceFinding]:
        return [f for f in self.findings if f.iso2 == iso2]


class PolicyWatchdog:
    """Evaluates resilience policies against the measured world."""

    def __init__(self, topo: Topology,
                 phys: Optional[PhysicalNetwork] = None) -> None:
        self._topo = topo
        self._phys = phys or PhysicalNetwork(topo)

    # ------------------------------------------------------------------
    def assess(self, policies: Iterable[Policy],
               countries: Optional[Iterable[str]] = None
               ) -> ComplianceReport:
        """One compliance pass over the given countries."""
        report = ComplianceReport()
        targets = sorted(countries) if countries is not None \
            else sorted(AFRICAN_COUNTRIES)
        with telemetry.span("observatory.watchdog",
                            countries=len(targets)):
            for iso2 in targets:
                for policy in policies:
                    finding = self._check(iso2, policy)
                    report.findings.append(finding)
                    if telemetry.enabled():
                        _ASSESSMENTS.inc()
                        if not finding.compliant:
                            _ALERTS.labels(
                                policy=finding.policy.kind.name).inc()
        return report

    # ------------------------------------------------------------------
    def _check(self, iso2: str, policy: Policy) -> ComplianceFinding:
        if policy.kind is PolicyKind.DNS_LOCALIZATION:
            measured = self.resolver_local_share(iso2)
            return ComplianceFinding(
                iso2, policy, measured, measured >= policy.threshold,
                f"{measured:.0%} of eyeball networks resolve in-country")
        if policy.kind is PolicyKind.CONTENT_LOCALIZATION:
            measured = self.content_african_share(iso2)
            return ComplianceFinding(
                iso2, policy, measured, measured >= policy.threshold,
                f"{measured:.0%} of top sites served from Africa")
        if policy.kind is PolicyKind.CABLE_DIVERSITY:
            measured = float(self.diverse_path_count(iso2))
            return ComplianceFinding(
                iso2, policy, measured, measured >= policy.threshold,
                f"{measured:.0f} physically diverse international paths")
        if policy.kind is PolicyKind.BACKUP_CAPACITY:
            measured = self.worst_corridor_survival(iso2)
            return ComplianceFinding(
                iso2, policy, measured, measured >= policy.threshold,
                f"{measured:.0%} of traffic capacity survives the worst "
                "single corridor loss")
        raise ValueError(f"unknown policy {policy.kind}")

    # ------------------------------------------------------------------
    # Measured quantities
    # ------------------------------------------------------------------
    def resolver_local_share(self, iso2: str) -> float:
        configs = [cfg for asn, cfg in self._topo.resolver_configs.items()
                   if self._topo.as_(asn).country_iso2 == iso2]
        if not configs:
            return 0.0
        return sum(cfg.locality.survives_cable_cut
                   for cfg in configs) / len(configs)

    def content_african_share(self, iso2: str) -> float:
        sites = self._topo.websites.get(iso2, [])
        if not sites:
            return 0.0
        return sum(s.is_served_from_africa() for s in sites) / len(sites)

    def diverse_path_count(self, iso2: str) -> int:
        """Distinct corridors (plus terrestrial) carrying the country's
        international connectivity — collocated cables count once."""
        corridors = {c.corridor
                     for c in self._topo.cables_landing_in(iso2)}
        count = len(corridors)
        if any(link.involves(iso2) for link in self._topo.terrestrial):
            count += 1
        return count

    def worst_corridor_survival(self, iso2: str) -> float:
        """Surviving traffic share after losing the worst single
        corridor entirely (the §5.1 correlated-failure test)."""
        before = self._phys.international_traffic_weight(iso2)
        if before <= 0:
            return 0.0
        worst = 1.0
        corridors = {c.corridor
                     for c in self._topo.cables_landing_in(iso2)}
        for corridor in corridors:
            cut = [c.cable_id for c in self._topo.cables
                   if c.corridor is corridor]
            after = self._phys.international_traffic_weight(
                iso2, down_cables=cut)
            worst = min(worst, after / before)
        return worst


#: A reasonable legislative package, usable as a starting point.
DEFAULT_POLICY_PACKAGE: tuple[Policy, ...] = (
    Policy(PolicyKind.DNS_LOCALIZATION, 0.5,
           "half of eyeball networks must resolve in-country"),
    Policy(PolicyKind.CONTENT_LOCALIZATION, 0.3,
           "30% of popular content served from Africa"),
    Policy(PolicyKind.CABLE_DIVERSITY, 2,
           "two physically diverse international paths"),
    Policy(PolicyKind.BACKUP_CAPACITY, 0.5,
           "survive the worst corridor with half of capacity"),
)
