"""Power/intermittence model (§7.1: "unreliable or intermittent power").

A probe is only useful while powered.  Grid reliability varies wildly
across the continent; Observatory RPis can carry a battery that rides
through short interruptions, which raises *effective* availability
well above raw grid uptime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo import country
from repro.measurement.probes import ProbeKind, VantagePoint
from repro.util import derive_rng

#: Fraction of grid downtime a battery-backed probe rides through.
BATTERY_RIDE_THROUGH = 0.75
#: Probe kinds shipped with battery backup.
BATTERY_BACKED = (ProbeKind.RASPBERRY_PI, ProbeKind.MOBILE_HANDSET)


@dataclass(frozen=True)
class PowerProfile:
    """Effective availability of one probe."""

    probe_id: int
    grid_availability: float
    effective_availability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.effective_availability <= 1.0:
            raise ValueError("availability out of range")


def probe_power_profile(probe: VantagePoint) -> PowerProfile:
    """Availability of a probe given its country's grid and hardware."""
    grid = country(probe.country_iso2).grid_reliability
    if probe.kind in BATTERY_BACKED:
        effective = grid + (1.0 - grid) * BATTERY_RIDE_THROUGH
    else:
        effective = grid
    return PowerProfile(probe_id=probe.probe_id,
                        grid_availability=grid,
                        effective_availability=min(1.0, effective))


def is_powered(probe: VantagePoint, day: float, hour: int,
               seed: int = 0) -> bool:
    """Deterministic powered/unpowered state for one probe-hour.

    Used by the scheduler to decide whether a task slot completes; the
    same (probe, day, hour, seed) always gives the same answer.
    """
    profile = probe_power_profile(probe)
    rng = derive_rng(seed, "power", str(probe.probe_id),
                     str(int(day)), str(hour))
    return rng.random() < profile.effective_availability


def expected_completed_slots(probe: VantagePoint, slots: int) -> float:
    """Expected number of task slots that survive power interruptions."""
    return slots * probe_power_profile(probe).effective_availability
