"""Cost-conscious measurement budgeting (§7.1).

"A key challenge in performing network measurements is the cost of
mobile devices ... there is a need to judiciously allocate the
bandwidth budget to the different measurement tasks."  The paper calls
for supporting (1) multiple pricing models across countries and (2)
accounting for *low-level* network usage rather than application-level
bytes, because billing happens on everything on the wire.

This module prices measurement tasks under per-country data plans.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.geo import country
from repro.topology.calibration import DEFAULT_PRICING
from repro.measurement.probes import AccessTech
from repro import telemetry

_CHARGES = telemetry.counter(
    "repro_budget_charges_total", "Budget charges applied")
_BYTES_BILLED = telemetry.counter(
    "repro_budget_bytes_billed_total", "Wire bytes billed to data plans")
_SPENT = telemetry.gauge(
    "repro_budget_spent_usd", "Cumulative spend across budget accounts",
    labels=("iso2",))
_REMAINING = telemetry.gauge(
    "repro_budget_remaining_usd",
    "Remaining monthly budget of the account charged most recently",
    labels=("iso2",))


class PricingModel(enum.Enum):
    """How a country's mobile data is billed."""

    PREPAID_BUNDLE = "prepaid_bundle"   # buy N MB up front, expires
    PAYG = "payg"                       # per-MB metering
    POSTPAID_CAP = "postpaid_cap"       # monthly cap, overage billed


#: Application bytes understate what the carrier bills: L2/L3/L4
#: headers, retransmissions, TLS and DNS chatter.  Cellular links add
#: RAN-level retransmission overhead on top.
WIRE_OVERHEAD_FIXED = 1.12
WIRE_OVERHEAD_CELLULAR = 1.32


@dataclass(frozen=True)
class DataPlan:
    """One probe's data plan."""

    iso2: str
    model: PricingModel
    usd_per_gb: float
    bundle_mb: int = 1024

    @property
    def bundle_price_usd(self) -> float:
        return self.usd_per_gb * self.bundle_mb / 1024.0

    def __post_init__(self) -> None:
        if self.usd_per_gb < 0:
            raise ValueError("negative price")
        if self.bundle_mb <= 0:
            raise ValueError("bundle must be positive")


def plan_for(iso2: str) -> DataPlan:
    """The default data plan of a country (regional pricing medians)."""
    pricing = DEFAULT_PRICING[country(iso2).region]
    return DataPlan(iso2=iso2, model=PricingModel(pricing.model),
                    usd_per_gb=pricing.usd_per_gb,
                    bundle_mb=pricing.bundle_mb)


def wire_bytes(application_bytes: int, access: AccessTech) -> int:
    """Low-level (billed) bytes for an application-level transfer."""
    factor = (WIRE_OVERHEAD_CELLULAR if access is AccessTech.CELLULAR
              else WIRE_OVERHEAD_FIXED)
    return math.ceil(application_bytes * factor)


class BudgetAccount:
    """Tracks one probe's spend against its plan and monthly budget.

    Prepaid markets buy whole bundles: the *first* byte of a new bundle
    costs the entire bundle, which is exactly why naive schedulers
    overspend in Central/Western Africa (see the budget ablation).
    """

    def __init__(self, plan: DataPlan, monthly_budget_usd: float) -> None:
        if monthly_budget_usd < 0:
            raise ValueError("negative budget")
        self.plan = plan
        self.monthly_budget_usd = monthly_budget_usd
        self.bytes_used = 0
        self.bundles_bought = 0

    # ------------------------------------------------------------------
    @property
    def spent_usd(self) -> float:
        plan = self.plan
        if plan.model is PricingModel.PREPAID_BUNDLE:
            return self.bundles_bought * plan.bundle_price_usd
        gb = self.bytes_used / 2**30
        if plan.model is PricingModel.PAYG:
            return gb * plan.usd_per_gb
        # POSTPAID_CAP: flat subscription once the line is used at all,
        # per-GB overage beyond the cap.
        if self.bytes_used == 0:
            return 0.0
        cap_gb = plan.bundle_mb / 1024.0
        base = cap_gb * plan.usd_per_gb * 0.5  # flat rate discount
        overage = max(0.0, gb - cap_gb) * plan.usd_per_gb * 1.5
        return base + overage

    @property
    def remaining_usd(self) -> float:
        return self.monthly_budget_usd - self.spent_usd

    def cost_of(self, additional_bytes: int) -> float:
        """Marginal cost of spending ``additional_bytes`` now."""
        before = self.spent_usd
        after = self._spend_preview(additional_bytes)
        return after - before

    def _spend_preview(self, additional_bytes: int) -> float:
        saved = (self.bytes_used, self.bundles_bought)
        try:
            self._account(additional_bytes)
            return self.spent_usd
        finally:
            self.bytes_used, self.bundles_bought = saved

    def can_afford(self, additional_bytes: int) -> bool:
        return self._spend_preview(additional_bytes) \
            <= self.monthly_budget_usd + 1e-9

    def charge(self, nbytes: int) -> float:
        """Spend bytes; returns the marginal cost.  Raises if over
        budget — callers must check :meth:`can_afford` first."""
        if not self.can_afford(nbytes):
            raise BudgetExceeded(
                f"{nbytes} bytes would exceed the "
                f"${self.monthly_budget_usd:.2f} budget for "
                f"{self.plan.iso2}")
        before = self.spent_usd
        self._account(nbytes)
        delta = self.spent_usd - before
        if telemetry.enabled():
            _CHARGES.inc()
            _BYTES_BILLED.inc(nbytes)
            _SPENT.labels(iso2=self.plan.iso2).inc(delta)
            _REMAINING.labels(iso2=self.plan.iso2).set(
                self.remaining_usd)
        return delta

    def _account(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("negative bytes")
        self.bytes_used += nbytes
        if self.plan.model is PricingModel.PREPAID_BUNDLE:
            bundle_bytes = self.plan.bundle_mb * 2**20
            needed = math.ceil(self.bytes_used / bundle_bytes)
            self.bundles_bought = max(self.bundles_bought, needed)


class BudgetExceeded(RuntimeError):
    """Raised when a charge would exceed the probe's monthly budget."""
