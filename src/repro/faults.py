"""Seeded, deterministically-targeted fault injection.

The observatory the paper argues for must keep producing measurements
on infrastructure that fails routinely — probe churn, power cuts and
flaky links are the operating reality, not the exception.  This module
lets every recovery path in the reproduction be *tested* against that
reality: named injection sites are threaded through the execution pool
(:mod:`repro.exec.pool`), the job queue (:mod:`repro.service.jobs`)
and the artifact store (:mod:`repro.store.disk`), and a fault *plan*
decides — deterministically — which opportunities actually fire.

Activation
----------

Off by default (one module-global ``None`` check per opportunity).
Turn it on with the ``REPRO_FAULTS`` environment variable, the global
``repro --faults SPEC`` CLI flag, or :func:`configure`.

Spec grammar
------------

A spec is a comma-separated list of clauses::

    spec    := clause ("," clause)*
    clause  := "seed=" INT          deterministic targeting seed (default 0)
             | "hang=" FLOAT        seconds a hung pool worker sleeps (60)
             | "stall=" FLOAT       seconds a stalled job sleeps (5)
             | "slow=" FLOAT        seconds a slow task sleeps (0.05)
             | SITE "=" RATE ["x" LIMIT]
    SITE    := a name from SITES (e.g. exec.worker_crash)
    RATE    := float in [0, 1] — per-opportunity injection probability
    LIMIT   := int — max injections for that site *per process*

Examples::

    REPRO_FAULTS="seed=7,exec.worker_crash=1x1"
    repro --faults "jobs.stall=0.5,store.corrupt=1x1,stall=3" serve

Determinism
-----------

A decision is a pure function of ``(plan seed, site, identity,
occurrence#)``: the identity is hashed with :func:`repro.util.rng.
derive_seed`, so the same spec and seed target the same task items /
job attempts / store keys regardless of worker count, thread
interleaving or completion order.  Occurrence counters are kept per
``(site, identity)`` so re-checking one identity (a retry) advances
only that identity's sequence.  Injection-count limits are enforced
per process (forked pool workers each carry their own budget).

Every injection increments ``repro_faults_injected_total{site}``
in the process where it fired (worker-side injections are counted in
the worker and are therefore invisible to the parent's ``/metrics`` —
the *recovery* counters in the parent are the observable signal).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro import telemetry
from repro.util.rng import derive_seed

_INJECTED = telemetry.counter(
    "repro_faults_injected_total",
    "Faults fired by the injection harness", labels=("site",))

#: Every named injection site threaded through the stack.
SITES = frozenset({
    "exec.worker_crash",   # pool worker hard-exits (os._exit) mid-batch
    "exec.worker_hang",    # pool worker sleeps `hang` seconds
    "exec.slow_task",      # task sleeps `slow` seconds before running
    "exec.task_error",     # task raises FaultInjected (transient, retried)
    "jobs.error",          # job compute raises FaultInjected
    "jobs.stall",          # job compute sleeps `stall` seconds first
    "store.corrupt",       # written payload bytes are corrupted
    "store.write_error",   # ArtifactStore.put raises OSError
    "eventlog.write_error",  # EventLog.append fails before any byte lands
    "eventlog.torn_write",   # EventLog.append dies mid-write (torn tail)
    "fleet.agent_crash",     # fleet agent hard-exits on a leased unit
    "fleet.agent_stall",     # fleet agent sleeps `hang` s mid-campaign
    "fleet.msg_drop",        # a fleet protocol message is lost in flight
})

#: Exit status used by an injected worker crash (distinctive in waitpid).
CRASH_EXIT_CODE = 37


class FaultInjected(RuntimeError):
    """An injected fault (transient by definition — safe to retry)."""


class FaultSpecError(ValueError):
    """The fault spec string does not parse."""


@dataclass(frozen=True)
class SiteSpec:
    """Rate and per-process budget for one injection site."""

    rate: float
    limit: Optional[int] = None


@dataclass
class FaultPlan:
    """A parsed spec plus the per-process injection bookkeeping."""

    sites: dict[str, SiteSpec]
    seed: int = 0
    hang_s: float = 60.0
    stall_s: float = 5.0
    slow_s: float = 0.05
    spec: str = ""
    _fired: dict[str, int] = field(default_factory=dict, repr=False)
    _occurrences: dict[tuple[str, str], int] = field(default_factory=dict,
                                                     repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def should_fire(self, site: str, ident: str = "") -> bool:
        """Consume one opportunity at ``site`` for ``ident``.

        Returns True iff the fault fires; deterministic in
        ``(seed, site, ident, occurrence#)`` and bounded by the site's
        per-process limit.
        """
        spec = self.sites.get(site)
        if spec is None:
            return False
        with self._lock:
            key = (site, ident)
            k = self._occurrences.get(key, 0)
            self._occurrences[key] = k + 1
            if spec.limit is not None \
                    and self._fired.get(site, 0) >= spec.limit:
                return False
            h = derive_seed(self.seed, "faults", site, ident, str(k))
            if (h % (1 << 32)) / float(1 << 32) >= spec.rate:
                return False
            self._fired[site] = self._fired.get(site, 0) + 1
        if telemetry.enabled():
            _INJECTED.labels(site=site).inc()
        return True

    def fired(self, site: str) -> int:
        """Injections recorded at ``site`` in this process."""
        with self._lock:
            return self._fired.get(site, 0)


def parse_spec(spec: str) -> FaultPlan:
    """Parse a spec string into a :class:`FaultPlan` (raises on junk)."""
    sites: dict[str, SiteSpec] = {}
    knobs = {"seed": 0.0, "hang": 60.0, "stall": 5.0, "slow": 0.05}
    for raw in spec.split(","):
        clause = raw.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise FaultSpecError(f"clause {clause!r} is not name=value")
        name, _, value = clause.partition("=")
        name, value = name.strip(), value.strip()
        if name in knobs:
            try:
                knobs[name] = float(value)
            except ValueError:
                raise FaultSpecError(
                    f"knob {name!r} needs a number, got {value!r}"
                ) from None
            continue
        if name not in SITES:
            raise FaultSpecError(
                f"unknown injection site {name!r}; "
                f"sites: {sorted(SITES)}")
        rate_part, _, limit_part = value.partition("x")
        try:
            rate = float(rate_part)
        except ValueError:
            raise FaultSpecError(
                f"site {name!r} needs rate[xlimit], got {value!r}"
            ) from None
        if not 0.0 <= rate <= 1.0:
            raise FaultSpecError(
                f"rate for {name!r} must be in [0, 1], got {rate}")
        limit: Optional[int] = None
        if limit_part:
            try:
                limit = int(limit_part)
            except ValueError:
                raise FaultSpecError(
                    f"limit for {name!r} must be int, got {limit_part!r}"
                ) from None
            if limit < 0:
                raise FaultSpecError(
                    f"limit for {name!r} must be >= 0, got {limit}")
        sites[name] = SiteSpec(rate=rate, limit=limit)
    return FaultPlan(sites=sites, seed=int(knobs["seed"]),
                     hang_s=knobs["hang"], stall_s=knobs["stall"],
                     slow_s=knobs["slow"], spec=spec)


#: The process-wide plan (None == injection disabled).
_PLAN: Optional[FaultPlan] = None


def _load_env_plan() -> Optional[FaultPlan]:
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        return None
    return parse_spec(spec)


_PLAN = _load_env_plan()


def configure(spec: Optional[str]) -> Optional[FaultPlan]:
    """Install a fault plan from ``spec`` (``None``/empty disables)."""
    global _PLAN
    _PLAN = parse_spec(spec) if spec else None
    return _PLAN


def plan() -> Optional[FaultPlan]:
    """The active plan, or ``None`` when injection is off."""
    return _PLAN


def active() -> bool:
    """Is fault injection configured in this process?"""
    return _PLAN is not None


def should_fire(site: str, ident: str = "") -> bool:
    """One opportunity at ``site``; False whenever injection is off."""
    p = _PLAN
    return p is not None and p.should_fire(site, ident)


def fire(site: str, ident: str = "") -> None:
    """Raise :class:`FaultInjected` if the opportunity fires."""
    if should_fire(site, ident):
        raise FaultInjected(f"injected fault at {site} ({ident})")


def sleep_if(site: str, ident: str = "",
             seconds: Optional[float] = None) -> bool:
    """Sleep the site's configured duration if the opportunity fires.

    ``exec.worker_hang`` sleeps ``hang``, ``jobs.stall`` sleeps
    ``stall``, everything else sleeps ``slow`` (unless ``seconds``
    overrides).  Returns whether the fault fired.
    """
    p = _PLAN
    if p is None or not p.should_fire(site, ident):
        return False
    if seconds is None:
        seconds = {"exec.worker_hang": p.hang_s,
                   "fleet.agent_stall": p.hang_s,
                   "jobs.stall": p.stall_s}.get(site, p.slow_s)
    time.sleep(seconds)
    return True


def describe() -> str:
    """One-line human description of the active plan (for banners)."""
    p = _PLAN
    if p is None:
        return "fault injection off"
    parts = [f"seed={p.seed}"]
    for name in sorted(p.sites):
        spec = p.sites[name]
        lim = f"x{spec.limit}" if spec.limit is not None else ""
        parts.append(f"{name}={spec.rate:g}{lim}")
    return "fault injection active: " + ",".join(parts)


__all__ = [
    "CRASH_EXIT_CODE", "FaultInjected", "FaultPlan", "FaultSpecError",
    "SITES", "SiteSpec", "active", "configure", "describe", "fire",
    "parse_spec", "plan", "should_fire", "sleep_if",
]
