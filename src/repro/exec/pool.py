"""Deterministic worker pool for pipeline fan-out.

The simulator's work decomposes into *independent units* — a routing
table per destination AS, a traceroute per (probe, target), a monitored
country-day, a what-if scenario.  Each unit derives its own RNG from
the world seed and the unit's identity (via :func:`repro.util.
derive_seed`), never from shared mutable state, so units can run in any
order — and therefore on any number of workers — and still produce
byte-identical results.

:func:`map_tasks` is the single fan-out primitive.  With ``workers=1``
(the default) it is a plain ordered loop; with more workers it forks a
``ProcessPoolExecutor`` and maps the same function over the same items,
returning results in item order.  Platforms without ``fork`` (and
nested fan-out inside a worker) silently fall back to the serial path,
which is exact by construction.

Large read-only state (the topology, a measurement engine) is passed as
the *payload*: it is published to a module global before the pool forks,
so children inherit it through copy-on-write memory instead of pickling
it per task.  Task items and results still cross process boundaries and
must be picklable.  Telemetry incremented inside workers stays in the
worker process and is lost; count in the parent instead.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

from repro import telemetry

T = TypeVar("T")
R = TypeVar("R")

_TASKS = telemetry.counter(
    "repro_exec_tasks_total",
    "Units dispatched through repro.exec", labels=("mode",))
_BATCHES = telemetry.counter(
    "repro_exec_batches_total",
    "Fan-out batches executed", labels=("mode",))

#: Session-wide default worker count (set by ``--workers`` flags).
_DEFAULT_WORKERS = 1
#: Fork-inherited read-only payload for the current batch.
_PAYLOAD: Any = None
#: True inside a pool worker — forces nested fan-out to run serially.
_IN_WORKER = False


def set_default_workers(workers: int) -> None:
    """Set the session default used when ``workers=None`` is passed."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = max(1, int(workers))


def get_default_workers() -> int:
    return _DEFAULT_WORKERS


def fork_available() -> bool:
    """Whether the platform supports fork-based pools."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: Optional[int]) -> int:
    """Effective worker count for a batch (1 == serial)."""
    if workers is None:
        workers = _DEFAULT_WORKERS
    workers = max(1, int(workers))
    if workers > 1 and (_IN_WORKER or not fork_available()):
        return 1
    return workers


def current_payload() -> Any:
    """The payload of the batch currently being mapped (or ``None``)."""
    return _PAYLOAD


def _mark_worker() -> None:  # pragma: no cover - runs in children
    global _IN_WORKER
    _IN_WORKER = True


def _invoke(task: tuple[Callable[[Any], Any], Any]) -> Any:
    fn, item = task
    return fn(item)


def map_tasks(fn: Callable[[T], R], items: Sequence[T],
              workers: Optional[int] = None,
              payload: Any = None,
              label: str = "batch") -> list[R]:
    """Apply ``fn`` to every item, in item order, on N workers.

    ``fn`` must be a module-level function (pickled by reference) whose
    output depends only on its item and the read-only ``payload``
    (reachable via :func:`current_payload`).  Results are returned in
    the order of ``items`` regardless of completion order, so serial
    and parallel runs are indistinguishable to the caller.
    """
    global _PAYLOAD
    items = list(items)
    if not items:
        return []
    n_workers = resolve_workers(workers)
    mode = "parallel" if n_workers > 1 else "serial"
    if telemetry.enabled():
        _BATCHES.labels(mode=mode).inc()
        _TASKS.labels(mode=mode).inc(len(items))
    previous = _PAYLOAD
    _PAYLOAD = payload
    try:
        with telemetry.span(f"exec.{label}", mode=mode,
                            workers=n_workers, tasks=len(items)):
            if n_workers == 1:
                return [fn(item) for item in items]
            ctx = multiprocessing.get_context("fork")
            chunksize = max(1, len(items) // (n_workers * 4))
            with ProcessPoolExecutor(
                    max_workers=min(n_workers, len(items)),
                    mp_context=ctx,
                    initializer=_mark_worker) as pool:
                return list(pool.map(_invoke,
                                     [(fn, item) for item in items],
                                     chunksize=chunksize))
    finally:
        _PAYLOAD = previous


class WorkerPool:
    """A reusable handle carrying a worker count.

    Thin convenience over :func:`map_tasks` for call sites that thread
    one pool through several fan-out stages::

        pool = WorkerPool(workers=4)
        tables = pool.map(_table_task, dests, payload=routing)
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = resolve_workers(workers)

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def map(self, fn: Callable[[T], R], items: Sequence[T],
            payload: Any = None, label: str = "batch") -> list[R]:
        return map_tasks(fn, items, workers=self.workers,
                         payload=payload, label=label)


def suggested_workers() -> int:
    """A sensible worker count for this machine (benchmarks, CLI)."""
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    return max(1, cores)
