"""Deterministic, supervised worker pool for pipeline fan-out.

The simulator's work decomposes into *independent units* — a routing
table per destination AS, a traceroute per (probe, target), a monitored
country-day, a what-if scenario.  Each unit derives its own RNG from
the world seed and the unit's identity (via :func:`repro.util.
derive_seed`), never from shared mutable state, so units can run in any
order — and therefore on any number of workers — and still produce
byte-identical results.

:func:`map_tasks` is the single fan-out primitive.  With ``workers=1``
(the default) it is a plain ordered loop; with more workers it forks a
``ProcessPoolExecutor`` and maps the same function over the same items,
returning results in item order.  Platforms without ``fork`` (and
nested fan-out inside a worker) silently fall back to the serial path,
which is exact by construction.

Every batch is *supervised* (see docs/robustness.md):

* a crashed worker (``BrokenProcessPool``) aborts only the chunks that
  had not finished — they are re-run serially in the parent, so the
  caller still receives byte-identical ordered results;
* a batch deadline (``timeout=``, default ``REPRO_EXEC_TIMEOUT`` or
  300 s) bounds hung workers: on expiry the pool is terminated and the
  unfinished chunks are re-run serially;
* transient task exceptions (:class:`TransientTaskError` and injected
  :class:`repro.faults.FaultInjected`) are retried in place with
  exponential backoff, bounded by ``retries``; exhausted retries fail
  the batch loudly.

Large read-only state (the topology, a measurement engine) is passed as
the *payload*: it is published to a module global before the pool forks,
so children inherit it through copy-on-write memory instead of pickling
it per task.  Task items and results still cross process boundaries and
must be picklable — unless the batch carries a ``shared`` channel
(:mod:`repro.exec.shm`): a shared-memory block published the same way,
into which workers write result columns in place so only slot indexes
come back over the result pipe.  Telemetry incremented inside workers
stays in the worker process and is lost; the parent counts dispatches,
completions, failures, worker-side retries (piggybacked on results) and
recoveries.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import (FIRST_COMPLETED, Future,
                                ProcessPoolExecutor, wait)
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Optional, Sequence, TypeVar

from repro import faults, telemetry

T = TypeVar("T")
R = TypeVar("R")

_TASKS = telemetry.counter(
    "repro_exec_tasks_total",
    "Units dispatched through repro.exec", labels=("mode",))
_COMPLETED = telemetry.counter(
    "repro_exec_tasks_completed_total",
    "Units that actually produced a result", labels=("mode",))
_TASK_FAILURES = telemetry.counter(
    "repro_exec_tasks_failed_total",
    "Units that raised out of the batch", labels=("mode",))
_RETRIES = telemetry.counter(
    "repro_exec_retries_total",
    "Transient task errors retried", labels=("mode",))
_RECOVERIES = telemetry.counter(
    "repro_exec_recoveries_total",
    "Parallel batches recovered by serial re-run", labels=("reason",))
_BATCHES = telemetry.counter(
    "repro_exec_batches_total",
    "Fan-out batches executed", labels=("mode",))

# Pre-bound labelled children — the label vocabularies are closed, so
# resolve the lock-guarded child maps once at import instead of on
# every batch dispatch.


class _ModeMetrics:
    __slots__ = ("batches", "tasks", "completed", "failures", "retries")

    def __init__(self, mode: str) -> None:
        self.batches = _BATCHES.labels(mode=mode)
        self.tasks = _TASKS.labels(mode=mode)
        self.completed = _COMPLETED.labels(mode=mode)
        self.failures = _TASK_FAILURES.labels(mode=mode)
        self.retries = _RETRIES.labels(mode=mode)


_BY_MODE = {mode: _ModeMetrics(mode) for mode in ("serial", "parallel")}
_RECOVERIES_BY_REASON = {
    reason: _RECOVERIES.labels(reason=reason)
    for reason in ("timeout", "broken_pool")}

#: Session-wide default worker count (set by ``--workers`` flags).
_DEFAULT_WORKERS = 1
#: Fork-inherited read-only payload for the current batch.
_PAYLOAD: Any = None
#: Fork-inherited shared-memory channel for the current batch (an
#: object workers *write* to — slot-disjoint, so no coordination).
_SHARED: Any = None
#: True inside a pool worker — forces nested fan-out to run serially.
_IN_WORKER = False

#: Default per-batch deadline for parallel batches (seconds).
DEFAULT_TIMEOUT_S = float(os.environ.get("REPRO_EXEC_TIMEOUT", "300"))
#: Default bounded retries for transient task errors.
DEFAULT_RETRIES = int(os.environ.get("REPRO_EXEC_RETRIES", "2"))
#: First backoff sleep; doubles per retry.
RETRY_BACKOFF_S = 0.05


class TransientTaskError(RuntimeError):
    """A task failure that is safe to retry (bounded, with backoff)."""


def set_default_workers(workers: int) -> None:
    """Set the session default used when ``workers=None`` is passed."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = max(1, int(workers))


def get_default_workers() -> int:
    return _DEFAULT_WORKERS


def fork_available() -> bool:
    """Whether the platform supports fork-based pools."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: Optional[int]) -> int:
    """Effective worker count for a batch (1 == serial)."""
    if workers is None:
        workers = _DEFAULT_WORKERS
    workers = max(1, int(workers))
    if workers > 1 and (_IN_WORKER or not fork_available()):
        return 1
    return workers


def current_payload() -> Any:
    """The payload of the batch currently being mapped (or ``None``)."""
    return _PAYLOAD


def current_shared() -> Any:
    """The shared-memory channel of the current batch (or ``None``).

    Reachable both in forked workers (inherited mapping) and on the
    serial / recovery paths, where the parent writes its own blocks
    directly — task functions never need to know which one they are on.
    """
    return _SHARED


def in_worker() -> bool:
    """True inside a forked pool worker."""
    return _IN_WORKER


def _mark_worker() -> None:  # pragma: no cover - runs in children
    global _IN_WORKER
    _IN_WORKER = True


def _ident(item: Any) -> str:
    """A stable, bounded identity string for fault targeting."""
    return repr(item)[:120]


def _call_task(fn: Callable[[Any], Any], item: Any,
               retries: int) -> tuple[int, Any]:
    """Run one unit with fault hooks and bounded transient retries.

    Returns ``(retries_used, result)``; raises the final error once
    retries are exhausted (or immediately for non-transient errors).
    """
    injecting = faults.active()
    ident = _ident(item) if injecting else ""
    if injecting and _IN_WORKER:
        if faults.should_fire("exec.worker_crash", ident):
            os._exit(faults.CRASH_EXIT_CODE)  # pragma: no cover - child
        faults.sleep_if("exec.worker_hang", ident)
    if injecting:
        faults.sleep_if("exec.slow_task", ident)
    attempt = 0
    while True:
        try:
            if injecting:
                faults.fire("exec.task_error", f"{ident}#{attempt}")
            return attempt, fn(item)
        except (TransientTaskError, faults.FaultInjected):
            if attempt >= retries:
                raise
            time.sleep(RETRY_BACKOFF_S * (2 ** attempt))
            attempt += 1


def _invoke_chunk(task: tuple[Callable[[Any], Any],
                              list[tuple[int, Any]], int]
                  ) -> list[tuple[int, int, Any]]:
    """Worker entry point: run one chunk, tagging results by index."""
    fn, chunk, retries = task
    return [(i, *_call_task(fn, item, retries)) for i, item in chunk]


def _shutdown_executor(executor: ProcessPoolExecutor,
                       force: bool) -> None:
    """Release a pool, killing its processes when ``force`` is set.

    ``force`` handles hung workers: ``shutdown`` alone would join them,
    blocking forever on a worker that never returns.  ``_processes`` is
    private but stable across the supported CPython versions, and the
    executor's management thread cleanly marks itself broken once the
    children die.
    """
    if force:
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.terminate()
            except (OSError, ValueError):  # pragma: no cover - racing exit
                pass
    executor.shutdown(wait=False, cancel_futures=True)


#: Smallest chunk the dispatcher will cut.  The old heuristic
#: (``len(items) // (n_workers * 4)``) degenerated to 1-item chunks for
#: small batches on many-core machines, paying per-chunk submit/result
#: overhead per *item*; a floor trades idle workers on tiny batches for
#: bounded overhead, which measures strictly faster.
MIN_CHUNKSIZE = 4


def chunk_plan(n_items: int, n_workers: int) -> int:
    """Chunk size for a batch: ~4 chunks per worker, floored at
    :data:`MIN_CHUNKSIZE`, never larger than the batch itself."""
    target = max(1, n_items // (n_workers * 4))
    return min(n_items, max(target, MIN_CHUNKSIZE))


def _run_supervised(fn: Callable[[T], R], items: list[T],
                    n_workers: int, timeout: Optional[float],
                    retries: int) -> list[R]:
    """The parallel path: chunked fan-out with crash/hang recovery."""
    indexed = list(enumerate(items))
    chunksize = chunk_plan(len(items), n_workers)
    chunks = [indexed[i:i + chunksize]
              for i in range(0, len(indexed), chunksize)]
    results: dict[int, R] = {}
    retries_used = 0
    reason: Optional[str] = None
    unfinished = set(range(len(chunks)))
    ctx = multiprocessing.get_context("fork")
    executor = ProcessPoolExecutor(
        max_workers=min(n_workers, len(chunks)), mp_context=ctx,
        initializer=_mark_worker)
    futures: dict[Future, int] = {
        executor.submit(_invoke_chunk, (fn, chunk, retries)): ci
        for ci, chunk in enumerate(chunks)}

    def _collect(fut: Future) -> None:
        nonlocal retries_used
        for i, used, value in fut.result():
            results[i] = value
            retries_used += used
        unfinished.discard(futures[fut])

    try:
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        pending = set(futures)
        while pending:
            remaining = None if deadline is None \
                else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                reason = "timeout"
                break
            done, pending = wait(pending, timeout=remaining,
                                 return_when=FIRST_COMPLETED)
            if not done:
                reason = "timeout"
                break
            for fut in done:
                try:
                    _collect(fut)
                except BrokenProcessPool:
                    reason = "broken_pool"
                    break
            if reason is not None:
                break
    except Exception:
        # A task failed for real (retries exhausted, or a non-transient
        # error): fail the whole batch loudly, but never leak the pool.
        _shutdown_executor(executor, force=True)
        raise
    _shutdown_executor(executor, force=reason is not None)

    if reason is not None:
        # Harvest whatever settled between the break and the shutdown,
        # then re-run only the unfinished chunks serially in the parent
        # (where worker-only faults cannot fire).  Order-preserving by
        # construction: results are keyed by original item index.
        for fut, ci in futures.items():
            if ci in unfinished and fut.done() and not fut.cancelled() \
                    and fut.exception() is None:
                _collect(fut)
        if telemetry.enabled():
            _RECOVERIES_BY_REASON[reason].inc()
        for ci in sorted(unfinished):
            for i, item in chunks[ci]:
                used, value = _call_task(fn, item, retries)
                results[i] = value
                retries_used += used
    if telemetry.enabled() and retries_used:
        _BY_MODE["parallel"].retries.inc(retries_used)
    return [results[i] for i in range(len(items))]


def map_tasks(fn: Callable[[T], R], items: Sequence[T],
              workers: Optional[int] = None,
              payload: Any = None,
              label: str = "batch",
              timeout: Optional[float] = None,
              retries: Optional[int] = None,
              shared: Any = None) -> list[R]:
    """Apply ``fn`` to every item, in item order, on N workers.

    ``fn`` must be a module-level function (pickled by reference) whose
    output depends only on its item and the read-only ``payload``
    (reachable via :func:`current_payload`).  Results are returned in
    the order of ``items`` regardless of completion order, crashes or
    hangs, so serial and parallel runs are indistinguishable to the
    caller.  ``timeout`` bounds one parallel attempt (then unfinished
    work re-runs serially); ``retries`` bounds transient-error retries
    per task on both paths.

    ``shared`` is the zero-copy result channel: an object (typically
    holding :class:`repro.exec.shm.SharedColumnBlock` columns) that is
    published like the payload — forked workers inherit the live
    mapping and write their slot in place via :func:`current_shared`;
    slot writes must be idempotent because recovery re-runs unfinished
    chunks in the parent.  The caller keeps ownership: create it
    before, harvest and close it after (in ``finally``).
    """
    global _PAYLOAD, _SHARED
    items = list(items)
    if not items:
        return []
    n_workers = resolve_workers(workers)
    mode = "parallel" if n_workers > 1 else "serial"
    if retries is None:
        retries = DEFAULT_RETRIES
    if timeout is None:
        timeout = DEFAULT_TIMEOUT_S
    metrics = _BY_MODE[mode]
    if telemetry.enabled():
        metrics.batches.inc()
        metrics.tasks.inc(len(items))
    previous = _PAYLOAD
    previous_shared = _SHARED
    _PAYLOAD = payload
    _SHARED = shared
    try:
        with telemetry.span(f"exec.{label}", mode=mode,
                            workers=n_workers, tasks=len(items)):
            if n_workers == 1:
                out: list[R] = []
                retries_used = 0
                for item in items:
                    used, value = _call_task(fn, item, retries)
                    retries_used += used
                    out.append(value)
                if telemetry.enabled() and retries_used:
                    metrics.retries.inc(retries_used)
            else:
                out = _run_supervised(fn, items, n_workers,
                                      timeout, retries)
    except Exception:
        if telemetry.enabled():
            metrics.failures.inc()
        raise
    else:
        if telemetry.enabled():
            metrics.completed.inc(len(out))
        return out
    finally:
        _PAYLOAD = previous
        _SHARED = previous_shared


class WorkerPool:
    """A reusable handle carrying a worker count.

    Thin convenience over :func:`map_tasks` for call sites that thread
    one pool through several fan-out stages::

        pool = WorkerPool(workers=4)
        tables = pool.map(_table_task, dests, payload=routing)
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = resolve_workers(workers)

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def map(self, fn: Callable[[T], R], items: Sequence[T],
            payload: Any = None, label: str = "batch",
            shared: Any = None) -> list[R]:
        return map_tasks(fn, items, workers=self.workers,
                         payload=payload, label=label, shared=shared)


def suggested_workers() -> int:
    """A sensible worker count for this machine (benchmarks, CLI)."""
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    return max(1, cores)
