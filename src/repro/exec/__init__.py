"""repro.exec — parallel execution and shared computation.

Three pieces:

* :mod:`repro.exec.pool` — a deterministic fork-based worker pool.
  Independent units (routing tables, traceroute batches, monitored
  country-days, what-if scenarios) derive per-unit RNGs from the world
  seed, so serial and parallel runs are byte-identical.
* :mod:`repro.exec.shm` — shared-memory batch blocks: workers write
  result columns into a segment the parent published before forking,
  so big results never cross the pipe as pickles.
* :mod:`repro.exec.context` — a shared routing context caching one
  ``BGPRouting``/``PhysicalNetwork`` pair per topology instead of
  rebuilding them in every campaign, benchmark and CLI command.

See ``docs/performance.md`` for the workers flag, determinism
guarantees, the shared-memory data plane, and cache semantics.
"""

from repro.exec.context import (
    CONTEXT,
    RoutingContext,
    pair_for,
    physical_for,
    precompute_for,
    routing_for,
)
from repro.exec.pool import (
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUT_S,
    MIN_CHUNKSIZE,
    TransientTaskError,
    WorkerPool,
    chunk_plan,
    current_payload,
    current_shared,
    fork_available,
    get_default_workers,
    in_worker,
    map_tasks,
    resolve_workers,
    set_default_workers,
    suggested_workers,
)
from repro.exec.shm import (
    SEGMENT_PREFIX,
    SharedColumnBlock,
    active_segments,
    shm_supported,
    system_segments,
)

__all__ = [
    "CONTEXT", "RoutingContext", "pair_for", "physical_for",
    "precompute_for", "routing_for",
    "DEFAULT_RETRIES", "DEFAULT_TIMEOUT_S", "MIN_CHUNKSIZE",
    "TransientTaskError",
    "WorkerPool", "chunk_plan", "current_payload", "current_shared",
    "fork_available",
    "get_default_workers", "in_worker", "map_tasks", "resolve_workers",
    "set_default_workers", "suggested_workers",
    "SEGMENT_PREFIX", "SharedColumnBlock", "active_segments",
    "shm_supported", "system_segments",
]
