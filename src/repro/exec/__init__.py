"""repro.exec — parallel execution and shared computation.

Two pieces:

* :mod:`repro.exec.pool` — a deterministic fork-based worker pool.
  Independent units (routing tables, traceroute batches, monitored
  country-days, what-if scenarios) derive per-unit RNGs from the world
  seed, so serial and parallel runs are byte-identical.
* :mod:`repro.exec.context` — a shared routing context caching one
  ``BGPRouting``/``PhysicalNetwork`` pair per topology instead of
  rebuilding them in every campaign, benchmark and CLI command.

See ``docs/performance.md`` for the workers flag, determinism
guarantees and cache semantics.
"""

from repro.exec.context import (
    CONTEXT,
    RoutingContext,
    pair_for,
    physical_for,
    routing_for,
)
from repro.exec.pool import (
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUT_S,
    TransientTaskError,
    WorkerPool,
    current_payload,
    fork_available,
    get_default_workers,
    in_worker,
    map_tasks,
    resolve_workers,
    set_default_workers,
    suggested_workers,
)

__all__ = [
    "CONTEXT", "RoutingContext", "pair_for", "physical_for",
    "routing_for",
    "DEFAULT_RETRIES", "DEFAULT_TIMEOUT_S", "TransientTaskError",
    "WorkerPool", "current_payload", "fork_available",
    "get_default_workers", "in_worker", "map_tasks", "resolve_workers",
    "set_default_workers", "suggested_workers",
]
