"""Shared routing context: one ``BGPRouting``/``PhysicalNetwork`` pair
per ``(topology, down_cables)`` key.

Before this layer existed every benchmark, campaign, CLI command and
what-if scenario rebuilt routing state from scratch — the same
adjacency lists and physical graph, recomputed dozens of times per
session.  :class:`RoutingContext` memoizes the pair per topology (keyed
by object identity, evicted when the topology is garbage collected).

``down_cables`` is part of the public key because callers reason in
terms of cut worlds, but both objects are *cut-agnostic at
construction* — cable cuts are per-query arguments (``phys.route(...,
down_cables=...)``) — so every down-key of one topology shares the same
underlying pair.  A future link-level failure filter would split the
cache on that key.

When a topology is a :meth:`structured_copy` of one already cached
(``routing_base`` back-reference + ``added_links`` journal), the
context attaches a :class:`~repro.routing.DeltaRouting` over the warm
baseline instead of building routing from scratch — what-if scenarios
then recompute only destinations their edit can actually affect.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Sequence, Tuple, TYPE_CHECKING

from repro import telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.routing import BGPRouting, PhysicalNetwork
    from repro.topology import Topology

_CTX_HITS = telemetry.counter(
    "repro_exec_context_hits_total",
    "Shared routing-context lookups served from cache")
_CTX_BUILDS = telemetry.counter(
    "repro_exec_context_builds_total",
    "BGPRouting/PhysicalNetwork pairs built by the shared context")
_CTX_DELTAS = telemetry.counter(
    "repro_exec_context_delta_builds_total",
    "Builds that attached an incremental DeltaRouting to a cached "
    "baseline instead of computing routing from scratch")


class RoutingContext:
    """Process-wide cache of routing state per topology.

    Keyed by ``id(topo)`` with LRU eviction: the cached pair holds a
    strong reference to its topology (``BGPRouting`` keeps ``_topo``),
    so a topology can never be collected while its entry lives — which
    both bounds memory via ``maxsize`` and guarantees an id is never
    recycled into a live entry.

    Thread-safe: the threaded HTTP service (`repro.service`) hits one
    shared context from many request threads.  A single re-entrant
    lock covers lookup, build and eviction, so concurrent callers for
    the same topology wait for one build instead of racing duplicate
    (expensive) constructions.
    """

    def __init__(self, maxsize: int = 8) -> None:
        self._maxsize = max(1, maxsize)
        self._pairs: OrderedDict[int, tuple] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.builds = 0
        #: Subset of ``builds`` that went through ``DeltaRouting``.
        self.delta_builds = 0

    # ------------------------------------------------------------------
    def pair(self, topo: "Topology",
             down_cables: Sequence[int] = ()
             ) -> Tuple["BGPRouting", "PhysicalNetwork"]:
        """The shared (routing, physical) pair for ``topo``.

        ``down_cables`` participates in the key contract (see module
        docstring) but never forces a rebuild today.
        """
        del down_cables  # per-query in both objects; see module docstring
        key = id(topo)
        with self._lock:
            cached = self._pairs.get(key)
            if cached is not None:
                self._pairs.move_to_end(key)
                self.hits += 1
                if telemetry.enabled():
                    _CTX_HITS.inc()
                return cached
            from repro.routing import (BGPRouting, DeltaRouting,
                                       PhysicalNetwork)
            with telemetry.span("exec.context_build", topology=key):
                routing = None
                base_topo = getattr(topo, "routing_base", None)
                if base_topo is not None:
                    # Raw peek, deliberately *not* a cache hit: no LRU
                    # reordering, no counter bump, never a build — the
                    # baseline either is already warm (scenario flows
                    # route it first) or the copy pays full price.
                    base_pair = self._pairs.get(id(base_topo))
                    if base_pair is not None \
                            and base_pair[0]._topo is base_topo:
                        routing = DeltaRouting.for_copy(base_pair[0],
                                                        topo)
                if routing is not None:
                    self.delta_builds += 1
                    if telemetry.enabled():
                        _CTX_DELTAS.inc()
                else:
                    routing = BGPRouting(topo)
                built = (routing, PhysicalNetwork(topo))
            self._pairs[key] = built
            self.builds += 1
            if telemetry.enabled():
                _CTX_BUILDS.inc()
            while len(self._pairs) > self._maxsize:
                self._pairs.popitem(last=False)
            return built

    def routing(self, topo: "Topology",
                down_cables: Sequence[int] = ()) -> "BGPRouting":
        return self.pair(topo, down_cables)[0]

    def physical(self, topo: "Topology",
                 down_cables: Sequence[int] = ()) -> "PhysicalNetwork":
        return self.pair(topo, down_cables)[1]

    # ------------------------------------------------------------------
    def invalidate(self, topo: Optional["Topology"] = None) -> None:
        """Drop cached state for one topology (or everything)."""
        with self._lock:
            if topo is None:
                self._pairs.clear()
            else:
                self._pairs.pop(id(topo), None)


#: The process-wide shared context.
CONTEXT = RoutingContext()


def routing_for(topo: "Topology",
                down_cables: Sequence[int] = ()) -> "BGPRouting":
    """Shared ``BGPRouting`` for ``topo`` (builds once, then cached)."""
    return CONTEXT.routing(topo, down_cables)


def physical_for(topo: "Topology",
                 down_cables: Sequence[int] = ()) -> "PhysicalNetwork":
    """Shared ``PhysicalNetwork`` for ``topo``."""
    return CONTEXT.physical(topo, down_cables)


def pair_for(topo: "Topology", down_cables: Sequence[int] = ()
             ) -> Tuple["BGPRouting", "PhysicalNetwork"]:
    """Shared (routing, physical) pair for ``topo``."""
    return CONTEXT.pair(topo, down_cables)


def precompute_for(topo: "Topology", dests: Sequence[int],
                   workers: Optional[int] = None) -> int:
    """Warm the shared context's routing tables for ``dests``.

    The fan-out entry point callers should prefer before a batch that
    will resolve many paths: tables land in the *shared* engine (so
    every later ``routing_for(topo)`` user hits them), and the parallel
    path moves table columns through shared memory instead of pickling
    them back (see ``BGPRouting.precompute``).  Returns the number of
    tables actually computed.
    """
    return CONTEXT.routing(topo).precompute(dests, workers=workers)
