"""Shared-memory batch blocks: zero-copy columns across the pool.

The fork pool's original data plane pickled every task result back to
the parent — cheap for a float, a pessimization for a routing table
(four flat columns, tens of KB each at continental topology sizes).
This module is the shared-memory replacement: a batch owner allocates
one :class:`SharedColumnBlock` per batch, forked workers inherit the
``MAP_SHARED`` mapping and write their result columns straight into
their item's slice, and the only thing that crosses the process
boundary is a slot index.

Design rules, enforced here and leaned on by the chaos suite:

* **Parent owns the segment.**  Blocks are created before the pool
  forks and reach workers through fork inheritance (the pool's
  ``shared=`` channel), never by name attach — so no process but the
  creator ever registers the segment with a resource tracker, and a
  crashed or terminated worker cannot take the segment down with it.
* **Unlink is unconditional.**  Batch owners release blocks in
  ``finally``; :meth:`SharedColumnBlock.close` is idempotent and safe
  after worker crashes, hung-worker termination and
  ``BrokenProcessPool`` recovery.  ``tests/test_shared_memory.py``
  scans ``/dev/shm`` for the ``repro-shm-`` prefix to prove nothing
  leaks on any of those paths.
* **Slot writes are idempotent.**  A retried or serially re-run task
  overwrites its slot with identical bytes, so crash recovery needs no
  coordination.

Plain ``multiprocessing.shared_memory`` + stdlib ``array``/
``memoryview`` — no numpy anywhere.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from array import array
from multiprocessing import shared_memory
from typing import Iterable, Optional, Sequence

__all__ = [
    "SEGMENT_PREFIX", "SharedColumnBlock", "active_segments",
    "release_all", "shm_supported", "system_segments",
]

#: Every segment this module creates carries this name prefix, so leak
#: checks can enumerate ours without tripping over other tenants.
SEGMENT_PREFIX = "repro-shm-"

#: Where POSIX shared memory surfaces as files (Linux); leak checks
#: fall back to the creator registry when the directory is absent.
_DEV_SHM = "/dev/shm"

#: Segments created (and not yet closed) by *this* process.
_LIVE: dict[str, "SharedColumnBlock"] = {}
_LIVE_LOCK = threading.Lock()


_SUPPORTED: Optional[bool] = None


def shm_supported() -> bool:
    """Whether shared-memory blocks can back a batch on this platform.

    Probed once per process (create + unlink a tiny segment) and
    cached; the answer cannot change within a process lifetime.
    """
    global _SUPPORTED
    if _SUPPORTED is None:
        try:
            probe = shared_memory.SharedMemory(
                create=True, size=8, name=_fresh_name())
        except (OSError, ValueError):  # pragma: no cover - exotic platform
            _SUPPORTED = False
        else:
            probe.close()
            probe.unlink()
            _SUPPORTED = True
    return _SUPPORTED


def _fresh_name() -> str:
    """A collision-resistant segment name carrying our prefix."""
    return f"{SEGMENT_PREFIX}{os.getpid():x}-{secrets.token_hex(4)}"


class SharedColumnBlock:
    """One shared segment holding named, typed, fixed-width columns.

    Layout: columns are concatenated in declaration order, each sized
    ``itemsize(typecode) * length`` and aligned to its itemsize.  The
    block is created zero-filled (the kernel guarantees it), so unset
    slots read as zeros — callers that care mark validity themselves.
    """

    __slots__ = ("name", "_shm", "_views", "_layout", "_closed",
                 "_is_creator")

    def __init__(self, columns: Sequence[tuple[str, str, int]]) -> None:
        """Create a segment for ``(name, typecode, length)`` columns."""
        layout: dict[str, tuple[str, int, int]] = {}
        offset = 0
        for cname, typecode, length in columns:
            itemsize = array(typecode).itemsize
            offset += (-offset) % itemsize  # align to the item size
            layout[cname] = (typecode, offset, length)
            offset += itemsize * length
        self.name = _fresh_name()
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, offset), name=self.name)
        self._layout = layout
        self._views: dict[str, memoryview] = {}
        self._closed = False
        self._is_creator = True
        with _LIVE_LOCK:
            _LIVE[self.name] = self

    # ------------------------------------------------------------------
    def column(self, name: str) -> memoryview:
        """The zero-copy typed view of one column (cached)."""
        view = self._views.get(name)
        if view is None:
            typecode, offset, length = self._layout[name]
            itemsize = array(typecode).itemsize
            raw = self._shm.buf[offset:offset + itemsize * length]
            view = raw.cast(typecode)
            self._views[name] = view
        return view

    def write(self, name: str, start: int, data: array) -> None:
        """Copy ``data`` into the column at element offset ``start``.

        A bulk buffer copy (C memcpy) — the write path workers use for
        their slot; identical bytes on retry, so idempotent.
        """
        self.column(name)[start:start + len(data)] = data

    def read_array(self, name: str, start: int, length: int) -> array:
        """Materialize ``length`` elements as a standalone ``array``.

        One ``frombytes`` memcpy: how the parent harvests worker output
        into objects whose lifetime outlives the batch's segment.
        """
        typecode, _, _ = self._layout[name]
        out = array(typecode)
        view = self.column(name)[start:start + length]
        out.frombytes(view.tobytes())
        return out

    def columns(self) -> Iterable[str]:
        return self._layout.keys()

    @property
    def nbytes(self) -> int:
        return self._shm.size

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release views, unmap, and (in the creator) unlink.

        Idempotent, and the only cleanup entry point: batch owners call
        it in ``finally``; inherited copies in forked workers release
        their mapping without touching the name.
        """
        if self._closed:
            return
        self._closed = True
        for view in self._views.values():
            view.release()
        self._views.clear()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported view survived
            pass
        if self._is_creator and os.getpid() == int(
                self.name[len(SEGMENT_PREFIX):].split("-")[0], 16):
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            with _LIVE_LOCK:
                _LIVE.pop(self.name, None)

    def __enter__(self) -> "SharedColumnBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass

    def __reduce__(self):
        raise TypeError(
            "SharedColumnBlock does not pickle: pass it through the "
            "pool's shared= channel (fork inheritance), not as a task "
            "item or result")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ",".join(self._layout)
        return f"<SharedColumnBlock {self.name} [{cols}] {self.nbytes}B>"


# ----------------------------------------------------------------------
# Leak accounting — the registry the chaos suite and tests audit.
# ----------------------------------------------------------------------
def active_segments() -> list[str]:
    """Names of segments this process created and has not yet closed."""
    with _LIVE_LOCK:
        return sorted(_LIVE)


def system_segments() -> Optional[list[str]]:
    """Our segments visible system-wide (``/dev/shm`` scan).

    ``None`` when the platform exposes no ``/dev/shm`` to scan — leak
    tests then fall back to :func:`active_segments`.
    """
    if not os.path.isdir(_DEV_SHM):  # pragma: no cover - non-Linux
        return None
    return sorted(entry for entry in os.listdir(_DEV_SHM)
                  if entry.startswith(SEGMENT_PREFIX))


def release_all() -> int:
    """Close (and unlink) every live block; returns how many.

    Registered at interpreter exit as a last-resort guard so an
    aborted batch (unhandled exception above the owner's ``finally``)
    still cannot leak a named segment past process death.
    """
    with _LIVE_LOCK:
        blocks = list(_LIVE.values())
    for block in blocks:
        block.close()
    return len(blocks)


atexit.register(release_all)
