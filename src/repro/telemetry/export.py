"""Telemetry exporters: Prometheus text, JSON, and a summary table.

Three audiences:

* :func:`to_prometheus` — scrape-compatible exposition text (the
  format every metrics stack ingests);
* :func:`to_json` / :func:`write_report` — machine-readable snapshots
  (what ``BENCH_telemetry.json`` and ``--telemetry-out`` produce);
* :func:`summary_report` — the human-readable table + span tree the
  CLI prints, rendered with :mod:`repro.reporting`.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional

from repro.reporting import ascii_table
from repro.telemetry.registry import (
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.telemetry.spans import COLLECTOR, Span, SpanCollector


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"') \
                .replace("\n", r"\n")


def _label_str(names, values, extra: str = "") -> str:
    parts = [f'{n}="{_escape(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render every metric in the Prometheus text exposition format."""
    registry = registry if registry is not None else REGISTRY
    lines: list[str] = []
    for metric in registry.metrics():
        lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        names = metric.label_names
        for label_values, inst in metric.series():
            if isinstance(inst, Histogram):
                for bound, count in inst.cumulative_buckets():
                    le = f'le="{_format_value(bound)}"'
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_label_str(names, label_values, le)} {count}")
                lines.append(f"{metric.name}_sum"
                             f"{_label_str(names, label_values)} "
                             f"{_format_value(inst.sum)}")
                lines.append(f"{metric.name}_count"
                             f"{_label_str(names, label_values)} "
                             f"{inst.count}")
            else:
                lines.append(f"{metric.name}"
                             f"{_label_str(names, label_values)} "
                             f"{_format_value(inst.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(registry: Optional[MetricsRegistry] = None,
            collector: Optional[SpanCollector] = None) -> dict:
    """One JSON-safe document holding metrics and span trees."""
    registry = registry if registry is not None else REGISTRY
    collector = collector if collector is not None else COLLECTOR
    return {
        "format": "repro-telemetry/1",
        "metrics": registry.snapshot(),
        "spans": collector.to_list(),
    }


def write_report(path: str | pathlib.Path,
                 registry: Optional[MetricsRegistry] = None,
                 collector: Optional[SpanCollector] = None) -> None:
    """Write the JSON report to ``path`` and the Prometheus text next
    to it (same stem, ``.prom`` suffix)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_json(registry, collector), indent=2,
                               sort_keys=True) + "\n")
    path.with_suffix(".prom").write_text(to_prometheus(registry))


# ----------------------------------------------------------------------
# Human-readable summary
# ----------------------------------------------------------------------

def _metric_rows(registry: MetricsRegistry) -> list[list[str]]:
    rows: list[list[str]] = []
    for metric in registry.metrics():
        for label_values, inst in metric.series():
            labels = ",".join(f"{n}={v}" for n, v
                              in zip(metric.label_names, label_values))
            name = f"{metric.name}{{{labels}}}" if labels else metric.name
            if isinstance(inst, Histogram):
                mean = inst.sum / inst.count if inst.count else 0.0
                rows.append([name, metric.kind,
                             f"n={inst.count} mean={mean:.4g} "
                             f"sum={inst.sum:.4g}"])
            else:
                rows.append([name, metric.kind,
                             _format_value(inst.value)])
    return rows


def _span_lines(root: Span) -> list[str]:
    lines = []
    for depth, node in root.walk():
        attrs = " ".join(f"{k}={v}" for k, v in node.attrs.items())
        suffix = f"  [{attrs}]" if attrs else ""
        error = f"  !{node.error}" if node.error else ""
        lines.append(f"{'  ' * depth}{node.name}: "
                     f"{node.duration_s * 1000:.2f} ms"
                     f"{suffix}{error}")
    return lines


def summary_report(registry: Optional[MetricsRegistry] = None,
                   collector: Optional[SpanCollector] = None) -> str:
    """Metrics table plus indented span timing trees."""
    registry = registry if registry is not None else REGISTRY
    collector = collector if collector is not None else COLLECTOR
    sections = []
    rows = _metric_rows(registry)
    if rows:
        sections.append(ascii_table(["metric", "kind", "value"], rows,
                                    title="Telemetry metrics"))
    else:
        sections.append("Telemetry metrics\n(no samples collected)")
    roots = collector.roots()
    if roots:
        lines = ["Span timings"]
        for root in roots:
            lines.extend(_span_lines(root))
        sections.append("\n".join(lines))
    else:
        sections.append("Span timings\n(no spans recorded)")
    return "\n\n".join(sections)
