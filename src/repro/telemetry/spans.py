"""Wall-clock tracing spans: nested timing trees for pipeline stages.

``span("topology.build", seed=2025)`` opens a timed region; spans
opened inside it become children, producing a tree per top-level
operation.  A thread-safe :class:`SpanCollector` keeps finished roots;
each thread maintains its own open-span stack so concurrent campaigns
never interleave their trees.

When telemetry is disabled the ``span`` factory returns a shared no-op
context manager and ``@traced`` functions call straight through — no
clock reads, no allocation.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.telemetry._state import STATE


@dataclass
class Span:
    """One timed region; ``children`` are the spans opened inside it."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    end_s: Optional[float] = None
    error: Optional[str] = None
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    @property
    def self_s(self) -> float:
        """Duration minus time attributed to child spans."""
        return max(0.0, self.duration_s
                   - sum(c.duration_s for c in self.children))

    def walk(self) -> Iterator[tuple[int, "Span"]]:
        """(depth, span) pairs in pre-order."""
        stack = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration_s": round(self.duration_s, 6),
            "self_s": round(self.self_s, 6),
            **({"error": self.error} if self.error else {}),
            "children": [c.to_dict() for c in self.children],
        }


class SpanCollector:
    """Holds finished root spans; thread-safe.

    Open spans live on a per-thread stack (``threading.local``);
    completed roots are appended to a shared list under a lock.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[Span] = []

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def open(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def close(self, span: Span) -> None:
        stack = self._stack()
        # Exception-safe even if user code closed out of order: pop
        # back to (and including) the span being closed.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if not stack and span.end_s is not None:
            with self._lock:
                self._roots.append(span)

    # ------------------------------------------------------------------
    def roots(self) -> list[Span]:
        """Finished top-level spans, in completion order."""
        with self._lock:
            return list(self._roots)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
        self._local = threading.local()

    def to_list(self) -> list[dict]:
        return [root.to_dict() for root in self.roots()]


#: The default collector used by all repro instrumentation.
COLLECTOR = SpanCollector()


class _NullSpan:
    """Reusable no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    __slots__ = ("_span", "_collector")

    def __init__(self, span: Span, collector: SpanCollector) -> None:
        self._span = span
        self._collector = collector

    def __enter__(self) -> Span:
        self._span.start_s = time.perf_counter()
        self._collector.open(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.end_s = time.perf_counter()
        if exc_type is not None:
            self._span.error = exc_type.__name__
        self._collector.close(self._span)
        return False


def span(name: str, collector: Optional[SpanCollector] = None,
         **attrs: Any):
    """Open a timed span; attributes become part of the trace.

    Usage::

        with span("measurement.traceroute", probe=probe.probe_id):
            ...
    """
    if not STATE.enabled:
        return _NULL_SPAN
    return _LiveSpan(Span(name=name, attrs=attrs),
                     collector if collector is not None else COLLECTOR)


def traced(name_or_fn: Optional[Callable | str] = None, **attrs: Any):
    """Decorator form of :func:`span`.

    ``@traced`` uses the function's qualified name; ``@traced("x")``
    names the span explicitly.  Disabled telemetry adds one branch.
    """

    def decorate(fn: Callable, span_name: Optional[str] = None):
        label = span_name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not STATE.enabled:
                return fn(*args, **kwargs)
            with span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    if callable(name_or_fn):
        return decorate(name_or_fn)
    return lambda fn: decorate(fn, name_or_fn)
