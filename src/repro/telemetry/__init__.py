"""repro.telemetry — dependency-free instrumentation for the pipeline.

The Observatory's own medicine, applied to its reproduction: counters,
gauges and histograms (:mod:`~repro.telemetry.registry`), nested
wall-clock spans (:mod:`~repro.telemetry.spans`), opt-in profiling
hooks (:mod:`~repro.telemetry.profiler`), and exporters for
Prometheus text, JSON and human-readable summaries
(:mod:`~repro.telemetry.export`).

Telemetry is **off by default** and costs one branch per call site.
Turn it on with the ``REPRO_TELEMETRY=1`` environment variable or
:func:`enable`.

Quickstart::

    from repro import telemetry

    telemetry.enable()
    probes = telemetry.counter("repro_probes_total", "Probes launched",
                               labels=("region",))
    probes.labels(region="west").inc()
    with telemetry.span("campaign.run", campaign="detours"):
        ...
    print(telemetry.summary_report())

Naming conventions are documented in ``docs/observability.md``.
"""

from repro.telemetry._state import disable, enable, enabled
from repro.telemetry.export import (
    summary_report,
    to_json,
    to_prometheus,
    write_report,
)
from repro.telemetry.profiler import ProfileReport, profiled
from repro.telemetry.registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MAX_LABEL_CARDINALITY,
    MetricsRegistry,
    REGISTRY,
)
from repro.telemetry.spans import COLLECTOR, Span, SpanCollector, span, traced


def counter(name: str, help: str = "", labels=()) -> Counter:
    """Get-or-create a counter on the default registry."""
    return REGISTRY.counter(name, help, labels)


def gauge(name: str, help: str = "", labels=()) -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return REGISTRY.gauge(name, help, labels)


def histogram(name: str, help: str = "", labels=(),
              buckets=DEFAULT_BUCKETS) -> Histogram:
    """Get-or-create a histogram on the default registry."""
    return REGISTRY.histogram(name, help, labels, buckets)


def reset() -> None:
    """Zero all default-registry metrics and drop collected spans."""
    REGISTRY.reset()
    COLLECTOR.reset()


__all__ = [
    "COLLECTOR", "Counter", "DEFAULT_BUCKETS", "Gauge", "Histogram",
    "MAX_LABEL_CARDINALITY", "MetricsRegistry", "ProfileReport",
    "REGISTRY", "Span", "SpanCollector", "counter", "disable", "enable",
    "enabled", "gauge", "histogram", "profiled", "reset", "span",
    "summary_report", "to_json", "to_prometheus", "traced",
    "write_report",
]
