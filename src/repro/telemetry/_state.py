"""Global telemetry enablement gate.

Instrumentation is compiled into every hot path, so the *disabled*
state must cost next to nothing: one attribute load and a branch.
Every instrument method and the ``span`` factory check
``STATE.enabled`` first and return immediately when telemetry is off.

Telemetry starts enabled only when the ``REPRO_TELEMETRY`` environment
variable is set to a truthy value; programs can flip it at runtime via
:func:`enable` / :func:`disable`.
"""

from __future__ import annotations

import os

_TRUTHY = ("1", "true", "yes", "on")


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "").strip().lower() in _TRUTHY


class _TelemetryState:
    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = _env_enabled()


#: The process-wide switch, shared by metrics and spans.
STATE = _TelemetryState()


def enabled() -> bool:
    """Is telemetry currently collecting?"""
    return STATE.enabled


def enable() -> None:
    """Turn instrumentation on for this process."""
    STATE.enabled = True


def disable() -> None:
    """Turn instrumentation off (already-collected data is kept)."""
    STATE.enabled = False
