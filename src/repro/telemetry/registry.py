"""Process-local metrics: counters, gauges, fixed-bucket histograms.

Prometheus-flavored semantics without the dependency:

* metrics are registered once by name on a :class:`MetricsRegistry`;
* a metric declared with label names hands out *labeled children*
  (``metric.labels(region="west")``), each an independent series;
* counters are monotonic, gauges go both ways, histograms count
  observations into fixed upper-bound buckets plus ``sum``/``count``.

All mutating calls are gated on the global telemetry switch
(:mod:`repro.telemetry._state`) so instrumented hot paths cost one
branch when telemetry is disabled.  Registration itself is *not*
gated: instruments are created at import time and are valid to hold
forever, whichever way the switch is flipped later.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Sequence

from repro.telemetry._state import STATE

#: Ceiling on distinct label combinations per metric.  Exceeding it is
#: nearly always an instrumentation bug (an unbounded value used as a
#: label) and raises rather than silently eating memory.
MAX_LABEL_CARDINALITY = 512

#: Default histogram buckets: wall-clock seconds, log-ish spacing.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   30.0, 60.0)


def _validate_labels(label_names: Sequence[str],
                     labels: dict[str, str]) -> tuple[str, ...]:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}")
    return tuple(str(labels[name]) for name in label_names)


class Counter:
    """Monotonically increasing count (events, bytes, probes...)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.value = 0.0
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Counter] = {}

    def labels(self, **labels: str) -> "Counter":
        """The child series for one label combination (get-or-create)."""
        key = _validate_labels(self.label_names, labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if len(self._children) >= MAX_LABEL_CARDINALITY:
                        raise ValueError(
                            f"label cardinality of {self.name} exceeds "
                            f"{MAX_LABEL_CARDINALITY}")
                    child = type(self)(self.name, self.help)
                    self._children[key] = child
        return child

    def inc(self, amount: float = 1.0) -> None:
        if not STATE.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self.value += amount

    # ------------------------------------------------------------------
    def series(self) -> list[tuple[tuple[str, ...], "Counter"]]:
        """(label values, instrument) pairs — the parent when unlabeled."""
        if self.label_names:
            return sorted(self._children.items())
        return [((), self)]

    def snapshot_value(self):
        return self.value

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0
            self._children.clear()


class Gauge(Counter):
    """A value that can go up and down (budget left, fleet size...)."""

    kind = "gauge"

    def set(self, value: float) -> None:
        if not STATE.enabled:
            return
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not STATE.enabled:
            return
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Observation distribution over fixed upper-bound buckets."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a sorted non-empty sequence")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +inf last
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Histogram] = {}

    def labels(self, **labels: str) -> "Histogram":
        key = _validate_labels(self.label_names, labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if len(self._children) >= MAX_LABEL_CARDINALITY:
                        raise ValueError(
                            f"label cardinality of {self.name} exceeds "
                            f"{MAX_LABEL_CARDINALITY}")
                    child = Histogram(self.name, self.help,
                                      buckets=self.buckets)
                    self._children[key] = child
        return child

    def observe(self, value: float) -> None:
        if not STATE.enabled:
            return
        with self._lock:
            idx = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    idx = i
                    break
            self.bucket_counts[idx] += 1
            self.sum += value
            self.count += 1

    # ------------------------------------------------------------------
    def series(self) -> list[tuple[tuple[str, ...], "Histogram"]]:
        if self.label_names:
            return sorted(self._children.items())
        return [((), self)]

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative ``le`` buckets (inf included)."""
        out = []
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def snapshot_value(self):
        return {"count": self.count, "sum": self.sum,
                "buckets": {str(b): n for b, n
                            in self.cumulative_buckets()}}

    def reset(self) -> None:
        with self._lock:
            self.bucket_counts = [0] * (len(self.buckets) + 1)
            self.sum = 0.0
            self.count = 0
            self._children.clear()


Metric = Counter  # counters/gauges share shape; histograms duck-type


class MetricsRegistry:
    """Name -> metric map with get-or-create registration.

    Re-registering an existing name returns the existing instrument
    when the declaration matches and raises when it does not — two
    modules silently disagreeing about a metric is a bug worth
    surfacing.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (not isinstance(existing, Histogram)
                        or existing.label_names != tuple(labels)
                        or existing.buckets != tuple(float(b)
                                                     for b in buckets)):
                    raise ValueError(
                        f"metric {name} already registered differently")
                return existing
            metric = Histogram(name, help, labels, buckets)
            self._metrics[name] = metric
            return metric

    def _register(self, cls, name, help, labels):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (type(existing) is not cls
                        or existing.label_names != tuple(labels)):
                    raise ValueError(
                        f"metric {name} already registered differently")
                return existing
            metric = cls(name, help, labels)
            self._metrics[name] = metric
            return metric

    # ------------------------------------------------------------------
    def get(self, name: str):
        return self._metrics.get(name)

    def metrics(self) -> list:
        """All registered metrics, sorted by name."""
        return [m for _, m in sorted(self._metrics.items())]

    def snapshot(self) -> dict[str, dict]:
        """Plain-data view of every series (for JSON / diffing)."""
        out: dict[str, dict] = {}
        for metric in self.metrics():
            entry = {"kind": metric.kind, "help": metric.help,
                     "labels": list(metric.label_names), "series": []}
            for label_values, inst in metric.series():
                entry["series"].append({
                    "labels": dict(zip(metric.label_names, label_values)),
                    "value": inst.snapshot_value(),
                })
            out[metric.name] = entry
        return out

    def reset(self) -> None:
        """Zero every metric (children are dropped, names persist)."""
        for metric in self.metrics():
            metric.reset()


#: The default registry used by all repro instrumentation.
REGISTRY = MetricsRegistry()
