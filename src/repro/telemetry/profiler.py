"""Opt-in lightweight profiling hooks.

:func:`profiled` wraps a block in ``cProfile`` *only when telemetry is
enabled*, so profiling hooks can live permanently at pipeline
entry points without costing anything in normal runs.  Results go to a
stats file (loadable with ``pstats``/snakeviz) and/or a text summary.
"""

from __future__ import annotations

import contextlib
import io
import pathlib
from typing import Iterator, Optional

from repro.telemetry._state import STATE


@contextlib.contextmanager
def profiled(out_path: Optional[str | pathlib.Path] = None,
             sort: str = "cumulative",
             top: int = 25) -> Iterator[Optional["ProfileReport"]]:
    """Profile the enclosed block when telemetry is enabled.

    Yields a :class:`ProfileReport` (or ``None`` when disabled); the
    report's ``text`` holds the top-``top`` rows sorted by ``sort``.
    When ``out_path`` is given the raw stats are dumped there too.
    """
    if not STATE.enabled:
        yield None
        return
    import cProfile
    import pstats

    profile = cProfile.Profile()
    report = ProfileReport()
    profile.enable()
    try:
        yield report
    finally:
        profile.disable()
        if out_path is not None:
            profile.dump_stats(str(out_path))
        buf = io.StringIO()
        stats = pstats.Stats(profile, stream=buf)
        stats.sort_stats(sort).print_stats(top)
        report.text = buf.getvalue()
        report.total_calls = int(getattr(stats, "total_calls", 0))


class ProfileReport:
    """Filled in when the :func:`profiled` block exits."""

    def __init__(self) -> None:
        self.text: str = ""
        self.total_calls: int = 0
