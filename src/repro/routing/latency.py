"""Mapping AS-level paths onto geography and latency.

Given an AS path from :class:`~repro.routing.bgp.BGPRouting`, this
module decides *where on the planet* each hop sits (which PoP of each
AS handles the traffic, where IXP interconnection happens) and prices
the path in milliseconds over the physical layer.  Traceroute synthesis
and the detour analysis both consume the resulting hop geography — the
analysis then "geolocates" hops exactly the way the paper does with
real traceroutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.geo import country, haversine_km
from repro.routing.bgp import BGPRouting
from repro.routing.physical import PhysicalNetwork
from repro.topology import ASKind, Topology

#: Intra-AS traversal cost (round-trip ms) added per AS hop.
INTRA_AS_MS = 1.6
#: Extra last-mile RTT for mobile eyeball networks (RAN latency).
MOBILE_LAST_MILE_MS = 28.0
FIXED_LAST_MILE_MS = 6.0


@dataclass(frozen=True)
class HopSite:
    """One geographic hop of a routed path."""

    asn: int                  # owning AS (or IXP member side for fabric)
    country_iso2: str
    is_ixp: bool = False
    ixp_id: Optional[int] = None


def pop_countries(topo: Topology, asn: int) -> tuple[str, ...]:
    """Countries where an AS has points of presence."""
    a = topo.as_(asn)
    footprint = getattr(a, "footprint", None)
    if footprint:
        return tuple(footprint)
    if a.kind in (ASKind.CLOUD, ASKind.CONTENT):
        # Clouds/CDNs are globally deployed: PoPs wherever they are IXP
        # members or have a data center (approximated by IXP presence).
        ccs = sorted({topo.ixps[i].country_iso2 for i in a.ixps})
        return tuple(ccs) or (a.country_iso2,)
    return (a.country_iso2,)


def _nearest(topo: Topology, candidates: Sequence[str],
             anchor: str) -> str:
    """The candidate country geographically nearest to ``anchor``."""
    if anchor in candidates:
        return anchor
    ac = country(anchor)
    return min(candidates,
               key=lambda cc: (haversine_km(ac.lat, ac.lon,
                                            country(cc).lat,
                                            country(cc).lon), cc))


def as_path_geography(topo: Topology, routing: BGPRouting,
                      src: int, dst: int,
                      dst_country: Optional[str] = None
                      ) -> Optional[list[HopSite]]:
    """Geographic hop sequence for the routed path src→dst.

    Returns ``None`` when no route exists.  IXP crossings appear as
    explicit pseudo-hops located in the IXP's country — mirroring the
    fabric IP that shows up in a real traceroute.
    """
    hops_links = routing.path_links(src, dst)
    if hops_links is None:
        return None
    sites: list[HopSite] = []
    current_cc = topo.as_(src).country_iso2
    sites.append(HopSite(src, current_cc))
    for a, b, ixp_id in hops_links:
        if ixp_id is not None and ixp_id in topo.ixps:
            ixp = topo.ixps[ixp_id]
            sites.append(HopSite(b, ixp.country_iso2, is_ixp=True,
                                 ixp_id=ixp_id))
            current_cc = ixp.country_iso2
        candidates = pop_countries(topo, b)
        if b == dst and dst_country is not None:
            next_cc = dst_country
        elif len(candidates) == 1:
            # Single-PoP AS (the overwhelmingly common case): no
            # nearest-of-one search, no country/haversine lookups.
            next_cc = candidates[0]
        else:
            next_cc = _nearest(topo, candidates, current_cc)
        sites.append(HopSite(b, next_cc))
        current_cc = next_cc
    return sites


def path_rtt_ms(topo: Topology, phys: PhysicalNetwork,
                sites: Sequence[HopSite],
                down_cables: Sequence[int] = ()) -> Optional[float]:
    """End-to-end RTT for a hop geography, or ``None`` if physically cut.

    Sums physical country-to-country latencies plus per-AS processing
    and the access-technology last mile of the source network.
    """
    if not sites:
        return None
    first = topo.as_(sites[0].asn)
    total = (MOBILE_LAST_MILE_MS if first.kind is ASKind.MOBILE
             else FIXED_LAST_MILE_MS)
    for prev, nxt in zip(sites, sites[1:]):
        total += INTRA_AS_MS
        if prev.country_iso2 == nxt.country_iso2:
            total += 1.0  # metro interconnect
            continue
        route = phys.route(prev.country_iso2, nxt.country_iso2,
                           down_cables=down_cables)
        if route is None:
            return None
        total += route.rtt_ms
    return total


def countries_on_path(sites: Sequence[HopSite]) -> list[str]:
    """Ordered distinct countries traversed (the detour analysis input)."""
    seen: list[str] = []
    for site in sites:
        if not seen or seen[-1] != site.country_iso2:
            seen.append(site.country_iso2)
    return seen
