"""Max-flow connectivity analysis over the physical layer.

The outage engine scores cable-cut severity with a lit-traffic-weight
heuristic (fast enough to run inside event loops).  This module is the
principled cross-check: a country's usable international capacity is
the *maximum flow* it can push to the global core (EU/US hubs) over the
surviving cable segments and terrestrial links.  The ablation benchmark
compares the two severity estimates.
"""

from __future__ import annotations

from typing import Iterable, Optional

import networkx as nx

from repro.routing.physical import PhysicalNetwork
from repro.topology import Topology

#: The global core the flow must reach (transit/hosting hubs).
CORE_COUNTRIES = ("DE", "GB", "FR", "NL", "US")
#: Capacity of the virtual core super-sink edges (effectively infinite).
CORE_EDGE_TBPS = 10_000.0
_SINK = "__core__"


class FlowAnalyzer:
    """Max-flow computations over the country-level physical graph."""

    def __init__(self, topo: Topology,
                 phys: Optional[PhysicalNetwork] = None) -> None:
        self._topo = topo
        self._phys = phys or PhysicalNetwork(topo)
        self._cache: dict[tuple[str, frozenset[int]], float] = {}

    def _graph(self, down_cables: frozenset[int]) -> nx.Graph:
        graph = nx.Graph()
        for iso2 in self._phys.countries():
            for edge in self._phys.edges_at(iso2):
                if edge.medium == "cable" and edge.carrier_id in down_cables:
                    continue
                if edge.medium == "satellite":
                    continue
                key = (edge.a, edge.b)
                prior = graph.get_edge_data(*key, default=None)
                capacity = edge.capacity_tbps
                if prior is not None:
                    capacity += prior["capacity"]
                graph.add_edge(edge.a, edge.b, capacity=capacity)
        for core in CORE_COUNTRIES:
            if graph.has_node(core):
                graph.add_edge(core, _SINK, capacity=CORE_EDGE_TBPS)
        return graph

    def capacity_to_core(self, iso2: str,
                         down_cables: Iterable[int] = ()) -> float:
        """Max flow (Tbps) from a country to the global core."""
        down = frozenset(down_cables)
        key = (iso2, down)
        if key in self._cache:
            return self._cache[key]
        graph = self._graph(down)
        if iso2 not in graph or _SINK not in graph:
            self._cache[key] = 0.0
            return 0.0
        value, _ = nx.maximum_flow(graph, iso2, _SINK,
                                   capacity="capacity")
        self._cache[key] = value
        return value

    def flow_severity(self, iso2: str,
                      down_cables: Iterable[int]) -> float:
        """Severity as the fractional loss of max flow to the core."""
        before = self.capacity_to_core(iso2)
        if before <= 0:
            return 0.0
        after = self.capacity_to_core(iso2, down_cables)
        return max(0.0, min(1.0, 1.0 - after / before))

    def is_disconnected(self, iso2: str,
                        down_cables: Iterable[int]) -> bool:
        """True when no fiber path to the core survives at all."""
        return self.capacity_to_core(iso2, down_cables) <= 0.0
