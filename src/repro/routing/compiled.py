"""Compiled topology: dense AS indexes, CSR adjacency, array tables.

``BGPRouting`` used to rebuild three dicts of Python adjacency lists
per instance and emit one ``dict[int, RouteEntry]`` of frozen
dataclasses per destination — object graphs that are slow to build,
slow to pickle across the worker pool, and ~10x larger than the
information they carry.  This module is the compiled replacement:

* :class:`CompiledTopology` assigns every AS a **dense index** (sorted
  ASN order, so index comparisons reproduce ASN tie-breaks exactly)
  and stores provider/customer/peer adjacency as **CSR-style flat int
  arrays** (``array('q')`` row offsets, ``array('i')`` neighbor and
  IXP columns).  It is built once per topology — cached on the
  topology instance and shared through ``repro.exec.RoutingContext`` —
  and never mutated; ``Topology.add_link`` drops the cache.
* :func:`compute_table` runs the three Gao-Rexford phases over those
  arrays and emits a :class:`RouteTable`: four parallel flat arrays
  (kind/length/next_hop/via_ixp) behind a thin mapping view that
  preserves the dict-of-``RouteEntry`` API byte for byte.

``ReferenceRouting`` in :mod:`repro.routing.bgp` retains the original
dict implementation; ``tests/test_compiled_routing.py`` and
``scripts/bench_routing.py`` hold the two engines identical on every
pinned seed.
"""

from __future__ import annotations

import enum
from array import array
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, TYPE_CHECKING

from repro.exec.shm import SharedColumnBlock
from repro.topology import ASLink, Relationship

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topology import Topology


class RouteKind(enum.IntEnum):
    """How a route was learned; lower is more preferred."""

    SELF = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


@dataclass(frozen=True)
class RouteEntry:
    """Best route of one AS toward the current destination."""

    kind: RouteKind
    length: int
    next_hop: int  # == own ASN for the destination itself
    #: IXP id if the first hop crosses an IXP fabric.
    via_ixp: Optional[int] = None


#: Predicate deciding whether a link is usable (outage injection).
LinkFilter = Callable[[ASLink], bool]

#: ``kind`` sentinel for "no route" slots in a :class:`RouteTable`.
NO_ROUTE = 4

#: Attribute name under which a topology caches its compiled form.
_CACHE_ATTR = "_compiled_topology"


class _CSR:
    """One role's adjacency in compressed-sparse-row form.

    ``start`` (``array('q')``, length n+1) delimits each AS's neighbor
    row inside the flat ``nbr``/``ixp`` columns (``array('i')``).
    Rows are sorted by neighbor index, which — because the dense index
    is sorted-ASN order — reproduces the reference implementation's
    sorted-adjacency iteration exactly.
    """

    __slots__ = ("start", "nbr", "ixp", "_rows")

    def __init__(self, rows: list[list[tuple[int, int]]]) -> None:
        start = array("q", [0])
        nbr = array("i")
        ixp = array("i")
        for row in rows:
            row.sort()
            for j, x in row:
                nbr.append(j)
                ixp.append(x)
            start.append(len(nbr))
        self.start = start
        self.nbr = nbr
        self.ixp = ixp
        self._rows: Optional[list[tuple[tuple[int, int], ...]]] = None

    @classmethod
    def from_columns(cls, start, nbr, ixp) -> "_CSR":
        """Wrap existing columns (arrays *or* shared-memory views)
        without copying — the worker-side attach path."""
        out = cls.__new__(cls)
        out.start = start
        out.nbr = nbr
        out.ixp = ixp
        out._rows = None
        return out

    def rows(self) -> list[tuple[tuple[int, int], ...]]:
        """Per-AS ``((neighbor, ixp), ...)`` views over the flat
        arrays, materialized once for the table-compute hot loop."""
        rows = self._rows
        if rows is None:
            start, nbr, ixp = self.start, self.nbr, self.ixp
            rows = [tuple(zip(nbr[start[i]:start[i + 1]],
                              ixp[start[i]:start[i + 1]]))
                    for i in range(len(start) - 1)]
            self._rows = rows
        return rows

    def contains(self, i: int, j: int) -> bool:
        """Whether ``j`` is in row ``i`` (binary search on the row)."""
        lo, hi = self.start[i], self.start[i + 1]
        k = bisect_left(self.nbr, j, lo, hi)
        return k < hi and self.nbr[k] == j

    def spliced(self, extra: dict[int, list[tuple[int, int]]]) -> "_CSR":
        """A new CSR with ``extra[i]`` entries merged into row ``i``.

        Identical to recompiling from the extended edge list, but the
        untouched spans between affected rows are bulk array copies
        (C memcpy) instead of per-edge Python appends — the cost scales
        with the *edit*, not the graph.  ``self`` is returned untouched
        when there is nothing to merge.
        """
        if not extra:
            return self
        old_start, old_nbr, old_ixp = self.start, self.nbr, self.ixp
        n = len(old_start) - 1
        nbr = array("i")
        ixp = array("i")
        starts = list(old_start)
        prev = 0
        for node in sorted(extra):
            lo, hi = old_start[prev], old_start[node]
            nbr += old_nbr[lo:hi]
            ixp += old_ixp[lo:hi]
            row = sorted(list(zip(old_nbr[old_start[node]:
                                          old_start[node + 1]],
                                  old_ixp[old_start[node]:
                                          old_start[node + 1]]))
                         + extra[node])
            for j, x in row:
                nbr.append(j)
                ixp.append(x)
            grew = len(extra[node])
            for i in range(node + 1, n + 1):
                starts[i] += grew
            prev = node + 1
        nbr += old_nbr[old_start[prev]:]
        ixp += old_ixp[old_start[prev]:]
        out = _CSR.__new__(_CSR)
        out.start = array("q", starts)
        out.nbr = nbr
        out.ixp = ixp
        out._rows = None
        return out


class CompiledTopology:
    """Frozen dense-index view of one topology's AS-level graph.

    Built once per (topology, link filter) and treated as immutable —
    every consumer (routing engines, valley-free checks, what-if dirty
    sets) shares the same arrays.  The per-AS dense index is sorted-ASN
    order, so comparing indexes is exactly comparing ASNs.
    """

    __slots__ = ("asns", "index", "n",
                 "providers", "customers", "peers",
                 "_kind_tmpl", "_int_tmpl")

    def __init__(self, topo: "Topology",
                 link_filter: Optional[LinkFilter] = None) -> None:
        asns = tuple(sorted(topo.ases))
        index = {asn: i for i, asn in enumerate(asns)}
        n = len(asns)
        prov: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        cust: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        peer: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        for link in topo.links:
            if link_filter is not None and not link_filter(link):
                continue
            ia, ib = index[link.a], index[link.b]
            ixp = -1 if link.ixp_id is None else link.ixp_id
            if link.rel is Relationship.PROVIDER_TO_CUSTOMER:
                cust[ia].append((ib, ixp))
                prov[ib].append((ia, ixp))
            else:
                peer[ia].append((ib, ixp))
                peer[ib].append((ia, ixp))
        self.asns = asns
        self.index = index
        self.n = n
        self.providers = _CSR(prov)
        self.customers = _CSR(cust)
        self.peers = _CSR(peer)
        # Work-buffer templates: copied per table compute, so the hot
        # loop never pays a per-element list build.
        self._kind_tmpl = [NO_ROUTE] * n
        self._int_tmpl = [-1] * n

    # ------------------------------------------------------------------
    @classmethod
    def of(cls, topo: "Topology") -> "CompiledTopology":
        """The (unfiltered) compiled form of ``topo``, built once.

        Cached on the topology instance; ``Topology.add_link``
        invalidates the cache so a later compile sees the new edge.
        """
        cached = topo.__dict__.get(_CACHE_ATTR)
        if cached is None:
            cached = cls(topo)
            topo.__dict__[_CACHE_ATTR] = cached
        return cached

    def extended(self, added_links: list[ASLink]) -> "CompiledTopology":
        """This view plus ``added_links``, by splicing — not recompiling.

        Exactly what ``CompiledTopology(topo)`` would build for the
        extended edge list (every endpoint must already be indexed),
        but only the affected CSR rows are rebuilt; everything else —
        index, untouched roles, work-buffer templates — is shared with
        this view.  This is what keeps a ``DeltaRouting`` attach
        proportional to the edit instead of the graph.
        """
        prov: dict[int, list[tuple[int, int]]] = {}
        cust: dict[int, list[tuple[int, int]]] = {}
        peer: dict[int, list[tuple[int, int]]] = {}
        for link in added_links:
            ia, ib = self.index[link.a], self.index[link.b]
            ixp = -1 if link.ixp_id is None else link.ixp_id
            if link.rel is Relationship.PROVIDER_TO_CUSTOMER:
                cust.setdefault(ia, []).append((ib, ixp))
                prov.setdefault(ib, []).append((ia, ixp))
            else:
                peer.setdefault(ia, []).append((ib, ixp))
                peer.setdefault(ib, []).append((ia, ixp))
        out = CompiledTopology.__new__(CompiledTopology)
        out.asns = self.asns
        out.index = self.index
        out.n = self.n
        out.providers = self.providers.spliced(prov)
        out.customers = self.customers.spliced(cust)
        out.peers = self.peers.spliced(peer)
        out._kind_tmpl = self._kind_tmpl
        out._int_tmpl = self._int_tmpl
        return out

    # ------------------------------------------------------------------
    def step_kind(self, a: int, b: int) -> Optional[str]:
        """Classify the hop a→b from the sender's perspective:
        ``"up"`` (to a provider), ``"down"`` (to a customer),
        ``"peer"``, or ``None`` when the ASes are not adjacent (or
        unknown)."""
        ia = self.index.get(a)
        ib = self.index.get(b)
        if ia is None or ib is None:
            return None
        if self.customers.contains(ia, ib):
            return "down"
        if self.providers.contains(ia, ib):
            return "up"
        if self.peers.contains(ia, ib):
            return "peer"
        return None

    def customer_cone(self, asn: int) -> set[int]:
        """ASNs reachable from ``asn`` by only walking customer edges
        (including ``asn`` itself) — the set of destinations a
        Gao-Rexford AS exports across its peer links."""
        start, nbr = self.customers.start, self.customers.nbr
        root = self.index[asn]
        seen = {root}
        frontier = deque([root])
        while frontier:
            cur = frontier.popleft()
            for k in range(start[cur], start[cur + 1]):
                child = nbr[k]
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        asns = self.asns
        return {asns[i] for i in seen}

    def share(self) -> "CompiledShare":
        """Publish this view's CSR columns into one shared-memory block.

        The batch-dispatch form: the returned :class:`CompiledShare`
        travels to forked workers through the pool's payload channel,
        and each worker attaches zero-copy views over the block instead
        of touching (or pickling) these arrays.  The caller owns the
        block and must ``close()`` it when the batch is harvested.
        """
        return CompiledShare(self)


#: (attribute, column-prefix) pairs for the three CSR roles of a share.
_SHARE_ROLES = (("providers", "p"), ("customers", "c"), ("peers", "e"))


class CompiledShare:
    """One topology's CSR adjacency, published once in shared memory.

    Holds the six flat *edge* columns (``nbr``/``ixp`` per role) in a
    single :class:`~repro.exec.shm.SharedColumnBlock`.  The three
    ``array('q')`` row-offset columns are **not** copied into the
    block: they are immutable once compiled, so the share keeps direct
    references to the compiled topology's own ``start`` arrays and the
    fork hands workers the same pages copy-on-write — exactly like
    ``asns`` and the dense ``index``.  That identity is what lets
    scenario copies built with :meth:`CompiledTopology.extended` share
    one offset array per untouched role across the base view, the
    share and every worker, instead of re-materialising ~n×8 bytes per
    copy (``tests/test_shared_memory.py`` asserts it).  :meth:`view`
    builds — once per process — a :class:`CompiledTopology` whose edge
    arrays are memoryview casts over the block: workers compute tables
    over the exact bytes the parent published, zero copies anywhere.

    Does not pickle (by design): reach workers via ``payload=``.
    """

    __slots__ = ("n", "asns", "index", "starts", "_block", "_view")

    def __init__(self, ct: CompiledTopology) -> None:
        columns: list[tuple[str, str, int]] = []
        for attr, prefix in _SHARE_ROLES:
            csr: _CSR = getattr(ct, attr)
            columns.append((f"{prefix}.nbr", "i", len(csr.nbr)))
            columns.append((f"{prefix}.ixp", "i", len(csr.ixp)))
        self._block = SharedColumnBlock(columns)
        #: Role prefix → the compiled topology's own offset array,
        #: shared by reference (parent) / fork inheritance (workers).
        self.starts: dict[str, array] = {}
        for attr, prefix in _SHARE_ROLES:
            csr = getattr(ct, attr)
            self._block.write(f"{prefix}.nbr", 0, csr.nbr)
            self._block.write(f"{prefix}.ixp", 0, csr.ixp)
            self.starts[prefix] = csr.start
        self.n = ct.n
        self.asns = ct.asns
        self.index = ct.index
        self._view: Optional[CompiledTopology] = None

    def view(self) -> CompiledTopology:
        """The attached compiled topology (built lazily, cached per
        process — after a fork each worker caches its own)."""
        view = self._view
        if view is None:
            view = CompiledTopology.__new__(CompiledTopology)
            view.asns = self.asns
            view.index = self.index
            view.n = self.n
            for attr, prefix in _SHARE_ROLES:
                setattr(view, attr, _CSR.from_columns(
                    self.starts[prefix],
                    self._block.column(f"{prefix}.nbr"),
                    self._block.column(f"{prefix}.ixp")))
            view._kind_tmpl = [NO_ROUTE] * self.n
            view._int_tmpl = [-1] * self.n
            self._view = view
        return view

    @property
    def nbytes(self) -> int:
        return self._block.nbytes

    def close(self) -> None:
        """Release and unlink the block (idempotent; parent only)."""
        self._view = None
        self._block.close()

    def __enter__(self) -> "CompiledShare":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RouteTable:
    """One destination's routing table as four parallel flat arrays.

    A mapping-compatible view over ``kind``/``length``/``next_hop``/
    ``via_ixp`` (indexed by the compiled dense AS index) that behaves
    exactly like the ``dict[int, RouteEntry]`` it replaced: ``in``,
    ``[]``, iteration over routed ASNs, ``len``, equality — while
    storing ~10x fewer bytes and pickling as raw arrays.  ``next_hop``
    holds dense indexes; ``via_ixp`` holds ``-1`` for "no fabric".
    """

    __slots__ = ("kind", "length", "next_hop", "via_ixp",
                 "_compiled", "_size")

    def __init__(self, kind: array, length: array, next_hop: array,
                 via_ixp: array,
                 compiled: Optional[CompiledTopology] = None) -> None:
        self.kind = kind
        self.length = length
        self.next_hop = next_hop
        self.via_ixp = via_ixp
        self._compiled = compiled
        self._size: Optional[int] = None

    # -- pickling: arrays travel, the (fork-shared) compiled topo does
    # -- not; the parent re-binds after a parallel precompute.
    def __getstate__(self):
        return (self.kind, self.length, self.next_hop, self.via_ixp)

    def __setstate__(self, state) -> None:
        self.kind, self.length, self.next_hop, self.via_ixp = state
        self._compiled = None
        self._size = None

    def bind(self, compiled: CompiledTopology) -> "RouteTable":
        """Attach the compiled topology (after crossing a process
        boundary); returns ``self`` for chaining."""
        self._compiled = compiled
        return self

    # ------------------------------------------------------------------
    def __contains__(self, asn: object) -> bool:
        i = self._compiled.index.get(asn)
        return i is not None and self.kind[i] != NO_ROUTE

    def __getitem__(self, asn: int) -> RouteEntry:
        i = self._compiled.index.get(asn)
        if i is None or self.kind[i] == NO_ROUTE:
            raise KeyError(asn)
        via = self.via_ixp[i]
        return RouteEntry(RouteKind(self.kind[i]), self.length[i],
                          self._compiled.asns[self.next_hop[i]],
                          None if via == -1 else via)

    def get(self, asn: int, default=None):
        i = self._compiled.index.get(asn)
        if i is None or self.kind[i] == NO_ROUTE:
            return default
        return self[asn]

    def __iter__(self) -> Iterator[int]:
        kind = self.kind
        asns = self._compiled.asns
        return (asns[i] for i in range(len(kind))
                if kind[i] != NO_ROUTE)

    def __len__(self) -> int:
        size = self._size
        if size is None:
            no_route = NO_ROUTE
            size = sum(1 for k in self.kind if k != no_route)
            self._size = size
        return size

    def keys(self):
        return list(self)

    def items(self):
        return ((asn, self[asn]) for asn in self)

    def values(self):
        return (self[asn] for asn in self)

    def to_dict(self) -> dict[int, RouteEntry]:
        """Materialize the old object-graph form (tests, digests)."""
        return {asn: self[asn] for asn in self}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RouteTable):
            if self._compiled.asns != other._compiled.asns:
                return self.to_dict() == other.to_dict()
            return (self.kind == other.kind
                    and self.length == other.length
                    and self.next_hop == other.next_hop
                    and self.via_ixp == other.via_ixp)
        if isinstance(other, dict):
            if len(self) != len(other):
                return False
            return all(other.get(asn) == entry
                       for asn, entry in self.items())
        return NotImplemented

    __hash__ = None  # mutable-ish view, like dict

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RouteTable {len(self)} routed of {len(self.kind)}>"


def compute_table(ct: CompiledTopology, dst_index: int) -> RouteTable:
    """One destination's valley-free table over the compiled arrays.

    Same three Gao-Rexford phases — and the exact (kind, length,
    lowest-next-hop-ASN) tie-break — as the retained dict reference
    implementation, but relaxing flat int work-buffers instead of
    allocating a ``RouteEntry`` per candidate.  Index comparisons stand
    in for ASN comparisons because the dense index is sorted-ASN order.
    """
    kind, length, nh, via = compute_columns(ct, dst_index)
    return RouteTable(array("b", kind), array("i", length),
                      array("i", nh), array("i", via), ct)


def compute_columns(ct: CompiledTopology, dst_index: int
                    ) -> tuple[list[int], list[int],
                               list[int], list[int]]:
    """The table compute itself: raw (kind, length, next_hop, via_ixp)
    work-buffers for one destination.  :func:`compute_table` wraps them
    into a :class:`RouteTable`; the shared-memory dispatch path writes
    them straight into a :class:`SharedTableStore` slot instead."""
    n = ct.n
    kind = ct._kind_tmpl[:]
    length = [0] * n
    nh = ct._int_tmpl[:]
    via = ct._int_tmpl[:]
    kind[dst_index] = 0  # SELF
    nh[dst_index] = dst_index

    # Phase 1 — customer routes: BFS "up" provider edges from dst.
    prov_rows = ct.providers.rows()
    frontier = deque([dst_index])
    pop = frontier.popleft
    push = frontier.append
    while frontier:
        cur = pop()
        clen = length[cur] + 1
        for p, ix in prov_rows[cur]:
            pk = kind[p]
            if pk > 1 or (pk == 1 and (clen < length[p] or (
                    clen == length[p] and cur < nh[p]))):
                kind[p] = 1  # CUSTOMER
                length[p] = clen
                nh[p] = cur
                via[p] = ix
                push(p)

    # Phase 2 — peer routes: one hop across a peering edge from any AS
    # holding a customer (or self) route; never re-exported, and never
    # displacing a customer/self route, so the exporter set is fixed.
    peer_rows = ct.peers.rows()
    for i in range(n):
        if kind[i] <= 1:
            clen = length[i] + 1
            for q, ix in peer_rows[i]:
                qk = kind[q]
                if qk > 2 or (qk == 2 and (clen < length[q] or (
                        clen == length[q] and i < nh[q]))):
                    kind[q] = 2  # PEER
                    length[q] = clen
                    nh[q] = i
                    via[q] = ix

    # Phase 3 — provider routes: BFS "down" customer edges from every
    # routed AS, shortest-and-lowest first.
    cust_rows = ct.customers.rows()
    ordered = sorted((length[i], i) for i in range(n) if kind[i] != 4)
    frontier = deque(i for _, i in ordered)
    pop = frontier.popleft
    push = frontier.append
    while frontier:
        cur = pop()
        clen = length[cur] + 1
        for c, ix in cust_rows[cur]:
            ck = kind[c]
            if ck > 3 or (ck == 3 and (clen < length[c] or (
                    clen == length[c] and cur < nh[c]))):
                kind[c] = 3  # PROVIDER
                length[c] = clen
                nh[c] = cur
                push(c)
                via[c] = ix

    return kind, length, nh, via


#: The four parallel columns of a :class:`RouteTable`, with typecodes.
_TABLE_COLUMNS = (("kind", "b"), ("length", "i"),
                  ("next_hop", "i"), ("via_ixp", "i"))


class SharedTableStore:
    """Preallocated shared-memory result columns for a table batch.

    One slot per destination: ``RouteTable``'s four columns, each slot
    ``n`` elements wide, all living in a single segment the parent
    allocates before the pool forks.  Workers fill their slot in place
    (:meth:`write_row` — idempotent, so crash recovery just re-runs);
    the parent harvests with :meth:`table`, which materializes plain
    arrays via one bulk copy per column so the tables outlive the
    segment, then closes the block.  Nothing is ever pickled.
    """

    __slots__ = ("n", "n_tables", "_block")

    def __init__(self, n_tables: int, n: int) -> None:
        self.n = n
        self.n_tables = n_tables
        self._block = SharedColumnBlock(
            [(name, typecode, n_tables * n)
             for name, typecode in _TABLE_COLUMNS])

    def write_row(self, slot: int, kind: list[int], length: list[int],
                  next_hop: list[int], via_ixp: list[int]) -> None:
        """Fill one destination's slot from compute work-buffers."""
        base = slot * self.n
        block = self._block
        block.write("kind", base, array("b", kind))
        block.write("length", base, array("i", length))
        block.write("next_hop", base, array("i", next_hop))
        block.write("via_ixp", base, array("i", via_ixp))

    def table(self, slot: int,
              compiled: Optional[CompiledTopology] = None) -> RouteTable:
        """Materialize one slot as a standalone :class:`RouteTable`."""
        base = slot * self.n
        block = self._block
        return RouteTable(block.read_array("kind", base, self.n),
                          block.read_array("length", base, self.n),
                          block.read_array("next_hop", base, self.n),
                          block.read_array("via_ixp", base, self.n),
                          compiled)

    @property
    def nbytes(self) -> int:
        return self._block.nbytes

    def close(self) -> None:
        """Release and unlink the segment (idempotent; parent only)."""
        self._block.close()

    def __enter__(self) -> "SharedTableStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
