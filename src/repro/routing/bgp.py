"""Valley-free (Gao-Rexford) interdomain routing.

Route computation follows the standard model:

* An AS prefers routes learned from customers over peers over providers
  (economics: customers pay you), then shorter AS paths, then a
  deterministic tie-break (lowest next-hop ASN).
* Export rules: routes learned from customers are exported to everyone;
  routes learned from peers/providers are exported only to customers.

These policies — not shortest paths — are what produce the paper's
detours: two African stubs whose only common upstream is a European
carrier will exchange traffic through Europe even though a shorter
geographic path exists (§4.1).  The ablation benchmark
``bench_ablation_routing`` quantifies exactly this gap.

Since the compiled-core rewrite, :class:`BGPRouting` runs the three
Gao-Rexford phases over the flat CSR arrays of a shared
:class:`~repro.routing.compiled.CompiledTopology` and emits
array-backed :class:`~repro.routing.compiled.RouteTable` views —
~3-4x faster and ~10x smaller per table than the retained
:class:`ReferenceRouting` dict implementation, which stays around as
the equivalence oracle for tests and ``scripts/bench_routing.py``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro.routing.compiled import (
    NO_ROUTE,
    CompiledTopology,
    LinkFilter,
    RouteEntry,
    RouteKind,
    RouteTable,
    SharedTableStore,
    compute_columns,
    compute_table,
)
from repro.topology import Relationship, Topology
from repro import telemetry

_TABLE_COMPUTES = telemetry.counter(
    "repro_routing_table_computations_total",
    "Per-destination routing tables computed (cache misses)")
_TABLE_HITS = telemetry.counter(
    "repro_routing_table_cache_hits_total",
    "Routing-table lookups served from cache")
_PATHS_RESOLVED = telemetry.counter(
    "repro_routing_paths_resolved_total",
    "AS paths resolved", labels=("found",))
_PATH_LENGTH = telemetry.histogram(
    "repro_routing_path_length_hops", "AS-path length of resolved paths",
    buckets=(1, 2, 3, 4, 5, 6, 8, 10, 14))
# Labelled children resolved once at import: ``.labels()`` walks a
# lock-guarded child map, far too much work for a per-path call site.
_PATH_FOUND = _PATHS_RESOLVED.labels(found="yes")
_PATH_MISS = _PATHS_RESOLVED.labels(found="no")


class BGPRouting:
    """Per-destination valley-free routing over a :class:`Topology`.

    Routing tables are computed lazily per destination AS and cached;
    pass ``link_filter`` to exclude failed adjacencies (the outage
    engine builds one from the physical layer).  Tables come out of the
    compiled array core as :class:`RouteTable` views — drop-in
    replacements for the ``dict[int, RouteEntry]`` they used to be.
    """

    def __init__(self, topo: Topology,
                 link_filter: Optional[LinkFilter] = None) -> None:
        self._topo = topo
        self._filtered = link_filter is not None
        self._compiled = (CompiledTopology(topo, link_filter)
                          if self._filtered else CompiledTopology.of(topo))
        self._tables: dict[int, RouteTable] = {}

    @property
    def compiled(self) -> CompiledTopology:
        """The shared compiled topology this engine routes over."""
        return self._compiled

    # ------------------------------------------------------------------
    def routes_to(self, dst: int) -> RouteTable:
        """Best route of every AS that can reach ``dst``."""
        cached = self._tables.get(dst)
        if cached is None:
            if dst not in self._topo.ases:
                raise KeyError(f"unknown destination AS{dst}")
            _TABLE_COMPUTES.inc()
            cached = self._compute(dst)
            self._tables[dst] = cached
        else:
            _TABLE_HITS.inc()
        return cached

    def path(self, src: int, dst: int) -> Optional[list[int]]:
        """AS path from ``src`` to ``dst`` (inclusive), or ``None``."""
        if src == dst:
            return [src]
        table = self.routes_to(dst)
        path = _walk_next_hops(table, src, dst)
        if telemetry.enabled():
            if path is None:
                _PATH_MISS.inc()
            else:
                _PATH_FOUND.inc()
                _PATH_LENGTH.observe(len(path))
        return path

    def path_links(self, src: int, dst: int
                   ) -> Optional[list[tuple[int, int, Optional[int]]]]:
        """The (a, b, ixp_id) hops of the path, or ``None``.

        Resolves the destination table once and walks next-hop indexes
        directly — the hop list and the path come out of one pass.
        """
        table = self.routes_to(dst)
        if src == dst:
            return []
        path = _walk_next_hops(table, src, dst)
        if path is None:
            if telemetry.enabled():
                _PATH_MISS.inc()
            return None
        if telemetry.enabled():
            _PATH_FOUND.inc()
            _PATH_LENGTH.observe(len(path))
        ct = table._compiled
        index = ct.index
        via = table.via_ixp
        hops = []
        for a, b in zip(path, path[1:]):
            ixp = via[index[a]]
            hops.append((a, b, None if ixp == -1 else ixp))
        return hops

    def reachable_from(self, dst: int) -> set[int]:
        """ASes with any route to ``dst`` (including ``dst``)."""
        return set(self.routes_to(dst))

    def precompute(self, dests: Iterable[int],
                   workers: Optional[int] = None) -> int:
        """Warm the per-destination table cache, optionally in parallel.

        Tables are pure functions of the (already compiled) adjacency
        arrays, so fanning the cache misses out over ``workers``
        processes yields exactly the tables a serial loop would.

        The parallel data plane is zero-copy end to end: the compiled
        CSR columns are published once per batch through a shared
        :class:`~repro.routing.compiled.CompiledShare`, workers write
        their four result columns straight into a preallocated
        :class:`~repro.routing.compiled.SharedTableStore` slot, and the
        only thing a worker returns is its slot index.  No table —
        input or output — ever crosses the pipe as a pickle.  (On
        platforms without POSIX shared memory the legacy path ships
        bare arrays back instead.)  Returns the number of tables
        computed.
        """
        pending = [d for d in dict.fromkeys(dests)
                   if d not in self._tables]
        for dst in pending:
            if dst not in self._topo.ases:
                raise KeyError(f"unknown destination AS{dst}")
        if not pending:
            return 0
        from repro.exec import map_tasks, resolve_workers, shm_supported
        if resolve_workers(workers) == 1:
            for dst in pending:
                self.routes_to(dst)
            return len(pending)
        compiled = self._compiled
        if shm_supported():
            with compiled.share() as share, \
                    SharedTableStore(len(pending), compiled.n) as store:
                tasks = [(slot, compiled.index[dst])
                         for slot, dst in enumerate(pending)]
                map_tasks(_precompute_shared_table, tasks,
                          workers=workers, payload=share, shared=store,
                          label="routing_tables")
                for slot, dst in enumerate(pending):
                    _TABLE_COMPUTES.inc()
                    self._tables[dst] = store.table(slot, compiled)
            return len(pending)
        # Fallback data plane: pickle bare table columns back.
        tables = map_tasks(_precompute_table, pending, workers=workers,
                           payload=self, label="routing_tables")
        for dst, table in zip(pending, tables):
            _TABLE_COMPUTES.inc()
            self._tables[dst] = table.bind(compiled)
        return len(pending)

    # ------------------------------------------------------------------
    def _compute(self, dst: int) -> RouteTable:
        return compute_table(self._compiled, self._compiled.index[dst])


def _walk_next_hops(table: RouteTable, src: int,
                    dst: int) -> Optional[list[int]]:
    """Follow the table's next-hop indexes src→dst, or ``None``."""
    ct = table._compiled
    cursor = ct.index.get(src)
    kind = table.kind
    if cursor is None or kind[cursor] == NO_ROUTE:
        return None
    asns = ct.asns
    nh = table.next_hop
    target = ct.index[dst]
    path = [src]
    visited = {cursor}
    while cursor != target:
        cursor = nh[cursor]
        if cursor in visited:  # pragma: no cover - defensive
            raise RuntimeError(f"routing loop toward AS{dst}: {path}")
        visited.add(cursor)
        path.append(asns[cursor])
    return path


def _precompute_table(dst: int) -> RouteTable:
    """Worker task (fallback data plane): one destination's routing
    table, pickled back from the fork-inherited :class:`BGPRouting`
    payload.  Only used when :func:`repro.exec.shm_supported` is
    false."""
    from repro.exec import current_payload
    return current_payload()._compute(dst)


def _precompute_shared_table(task: tuple[int, int]) -> int:
    """Worker task (shared-memory data plane): compute one table and
    write its columns into the batch's shared store slot.

    The payload is the batch's ``CompiledShare`` (CSR columns in shared
    memory, viewed zero-copy) and the ``shared=`` channel carries the
    preallocated ``SharedTableStore``.  The return value is just the
    slot index — the slot write is idempotent, so crash recovery and
    retries are free.
    """
    from repro.exec import current_payload, current_shared
    slot, dst_index = task
    kind, length, nh, via = compute_columns(
        current_payload().view(), dst_index)
    current_shared().write_row(slot, kind, length, nh, via)
    return slot


class ReferenceRouting:
    """The retained pure-dict routing engine (pre-compiled-core).

    Byte-for-byte the original implementation: Python adjacency lists,
    one ``dict[int, RouteEntry]`` per destination.  It exists as the
    equivalence oracle — ``tests/test_compiled_routing.py`` asserts the
    array engine produces identical entries, paths and reachable sets,
    and ``scripts/bench_routing.py`` measures the speedup against it —
    so keep its semantics frozen.
    """

    def __init__(self, topo: Topology,
                 link_filter: Optional[LinkFilter] = None) -> None:
        self._topo = topo
        self._tables: dict[int, dict[int, RouteEntry]] = {}
        # Adjacency lists split by role, pre-filtered once.
        self._providers_of: dict[int, list[tuple[int, Optional[int]]]] = {}
        self._customers_of: dict[int, list[tuple[int, Optional[int]]]] = {}
        self._peers_of: dict[int, list[tuple[int, Optional[int]]]] = {}
        for asn in topo.ases:
            self._providers_of[asn] = []
            self._customers_of[asn] = []
            self._peers_of[asn] = []
        for link in topo.links:
            if link_filter is not None and not link_filter(link):
                continue
            if link.rel is Relationship.PROVIDER_TO_CUSTOMER:
                self._customers_of[link.a].append((link.b, link.ixp_id))
                self._providers_of[link.b].append((link.a, link.ixp_id))
            else:
                self._peers_of[link.a].append((link.b, link.ixp_id))
                self._peers_of[link.b].append((link.a, link.ixp_id))
        for index in (self._providers_of, self._customers_of,
                      self._peers_of):
            for lst in index.values():
                lst.sort()

    # ------------------------------------------------------------------
    def routes_to(self, dst: int) -> dict[int, RouteEntry]:
        """Best route of every AS that can reach ``dst``."""
        if dst not in self._topo.ases:
            raise KeyError(f"unknown destination AS{dst}")
        cached = self._tables.get(dst)
        if cached is None:
            cached = self._compute(dst)
            self._tables[dst] = cached
        return cached

    def path(self, src: int, dst: int) -> Optional[list[int]]:
        """AS path from ``src`` to ``dst`` (inclusive), or ``None``."""
        if src == dst:
            return [src]
        table = self.routes_to(dst)
        if src not in table:
            return None
        path = [src]
        visited = {src}
        cursor = src
        while cursor != dst:
            cursor = table[cursor].next_hop
            if cursor in visited:  # pragma: no cover - defensive
                raise RuntimeError(f"routing loop toward AS{dst}: {path}")
            visited.add(cursor)
            path.append(cursor)
        return path

    def path_links(self, src: int, dst: int
                   ) -> Optional[list[tuple[int, int, Optional[int]]]]:
        """The (a, b, ixp_id) hops of the path, or ``None``."""
        path = self.path(src, dst)
        if path is None:
            return None
        table = self.routes_to(dst)
        hops = []
        for a in path[:-1]:
            entry = table[a]
            hops.append((a, entry.next_hop, entry.via_ixp))
        return hops

    def reachable_from(self, dst: int) -> set[int]:
        """ASes with any route to ``dst`` (including ``dst``)."""
        return set(self.routes_to(dst))

    # ------------------------------------------------------------------
    def _compute(self, dst: int) -> dict[int, RouteEntry]:
        best: dict[int, RouteEntry] = {
            dst: RouteEntry(RouteKind.SELF, 0, dst)}

        def better(candidate: RouteEntry, incumbent: Optional[RouteEntry]
                   ) -> bool:
            if incumbent is None:
                return True
            return (candidate.kind, candidate.length, candidate.next_hop) < \
                   (incumbent.kind, incumbent.length, incumbent.next_hop)

        # Phase 1 — customer routes: BFS "up" provider edges from dst.
        # An AS whose (transitive) customer originates the route learns
        # it from a customer.
        frontier = deque([dst])
        while frontier:
            current = frontier.popleft()
            length = best[current].length
            for provider, ixp_id in self._providers_of[current]:
                candidate = RouteEntry(RouteKind.CUSTOMER, length + 1,
                                       current, ixp_id)
                if better(candidate, best.get(provider)):
                    best[provider] = candidate
                    frontier.append(provider)

        # Phase 2 — peer routes: one hop across a peering edge from any
        # AS holding a customer (or self) route.  Peer routes are not
        # re-exported to peers/providers, so no propagation.
        exporters = [(asn, entry) for asn, entry in best.items()
                     if entry.kind in (RouteKind.SELF, RouteKind.CUSTOMER)]
        for asn, entry in sorted(exporters):
            for peer, ixp_id in self._peers_of[asn]:
                candidate = RouteEntry(RouteKind.PEER, entry.length + 1,
                                       asn, ixp_id)
                if better(candidate, best.get(peer)):
                    best[peer] = candidate

        # Phase 3 — provider routes: BFS "down" customer edges from every
        # routed AS (providers export everything to customers, and those
        # customers re-export provider routes to their own customers).
        ordered = sorted(best.items(), key=lambda kv: (kv[1].length, kv[0]))
        frontier = deque(asn for asn, _ in ordered)
        while frontier:
            current = frontier.popleft()
            entry = best.get(current)
            if entry is None:  # pragma: no cover - defensive
                continue
            for customer, ixp_id in self._customers_of[current]:
                candidate = RouteEntry(RouteKind.PROVIDER, entry.length + 1,
                                       current, ixp_id)
                if better(candidate, best.get(customer)):
                    best[customer] = candidate
                    frontier.append(customer)
        return best


def is_valley_free(topo: Topology, path: list[int]) -> bool:
    """Check the Gao-Rexford pattern: zero+ up, ≤1 peer, zero+ down.

    Used by tests and the routing ablation to validate produced paths.
    Hop classification runs over the compiled CSR adjacency (binary
    search per hop) instead of per-hop link lookups; non-adjacent
    consecutive ASes still fail the check.
    """
    if len(path) < 2:
        return True
    compiled = CompiledTopology.of(topo)
    # Valid pattern: up* (peer)? down*
    state = "up"
    for a, b in zip(path, path[1:]):
        step = compiled.step_kind(a, b)
        if step is None:
            return False
        if state == "up":
            if step == "up":
                continue
            state = "down" if step == "down" else "peered"
        elif state == "peered":
            if step != "down":
                return False
            state = "down"
        else:  # down
            if step != "down":
                return False
    return True
