"""Incremental what-if routing: recompute only what an edit can change.

``run_scenarios`` used to pay full-topology routing per scenario even
though a typical what-if edit (mandating peering at one IXP, landing
one cable) leaves almost every destination's routing table untouched.
:class:`DeltaRouting` wraps the *baseline* engine and recomputes only
destinations inside the edit's dirty set, serving everything else from
the baseline's already-computed array tables.

The dirty set comes from valley-free export rules.  A new peer edge
``(a, b)`` only ever carries routes whose destination sits in the
customer cone of ``a`` or ``b`` (peers export exactly their
customer/self routes), so every other destination's table is provably
identical to the baseline's.  Edits that add provider/customer edges
export the full table across the new link — their cone is the whole
graph — and fall back to a normal full compute, as does any edit the
journal can't prove is additive (removed links, changed AS sets,
filtered baselines).

Eligibility is detected structurally rather than declared: topology
copies carry a ``routing_base`` back-reference and an ``added_links``
edit journal (see :meth:`Topology.structured_copy` /
:meth:`Topology.add_link`), which :meth:`DeltaRouting.for_copy`
validates before committing to the incremental path.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.routing.bgp import BGPRouting
from repro.routing.compiled import RouteTable
from repro.topology import Relationship, Topology

__all__ = ["DeltaRouting"]


class DeltaRouting(BGPRouting):
    """A :class:`BGPRouting` that recomputes only dirty destinations.

    Construct via :meth:`for_copy`; direct construction assumes the
    caller already proved ``topo`` is ``base``'s topology plus the
    links in ``topo.added_links``.  Tables served for clean
    destinations are the baseline's own (shared arrays, zero copy);
    dirty destinations are computed over this topology's compiled
    adjacency exactly like a full engine would.
    """

    def __init__(self, topo: Topology, base: BGPRouting) -> None:
        if "_compiled_topology" not in topo.__dict__:
            # Seed the copy's compiled cache from the baseline instead
            # of recompiling the whole graph: identical link set shares
            # the arrays outright, an additive journal splices only the
            # affected CSR rows (cost proportional to the edit).
            compiled = (base.compiled.extended(topo.added_links)
                        if topo.added_links else base.compiled)
            topo.__dict__["_compiled_topology"] = compiled
        super().__init__(topo)
        self._base = base
        self._dirty = self._dirty_set()
        #: Introspection counters for tests and the bench harness.
        self.delegated = 0
        self.recomputed = 0

    # ------------------------------------------------------------------
    @classmethod
    def for_copy(cls, base: BGPRouting,
                 topo: Topology) -> Optional["DeltaRouting"]:
        """A delta engine over ``base``, or ``None`` if ineligible.

        Validates the edit journal structurally: ``topo`` must be a
        structured copy of ``base``'s topology (``routing_base``
        back-reference), its links must be exactly the baseline's links
        (same objects, same order) followed by ``added_links``, and the
        AS roster must be unchanged.  A filtered baseline (outage
        engine) never qualifies — its tables don't describe the intact
        world.
        """
        if base._filtered or isinstance(base, DeltaRouting):
            return None
        base_topo = base._topo
        if getattr(topo, "routing_base", None) is not base_topo:
            return None
        added = topo.added_links
        base_links = base_topo.links
        if len(topo.links) != len(base_links) + len(added):
            return None
        if any(ours is not theirs
               for ours, theirs in zip(topo.links, base_links)):
            return None
        if topo.links[len(base_links):] != added:
            return None
        if topo.ases.keys() != base_topo.ases.keys():
            return None
        return cls(topo, base)

    # ------------------------------------------------------------------
    @property
    def dirty(self) -> Optional[frozenset[int]]:
        """Destination ASNs whose tables may differ from the baseline;
        ``None`` means every destination (full-compute fallback)."""
        return self._dirty

    def routes_to(self, dst: int) -> RouteTable:
        dirty = self._dirty
        if dirty is None or dst in dirty:
            before = len(self._tables)
            table = super().routes_to(dst)
            if len(self._tables) != before:
                self.recomputed += 1
            return table
        cached = self._tables.get(dst)
        if cached is None:
            cached = self._base.routes_to(dst)
            self._tables[dst] = cached
            self.delegated += 1
        return cached

    def precompute(self, dests: Iterable[int],
                   workers: Optional[int] = None) -> int:
        """Warm tables for ``dests``: only the dirty subset is actually
        computed (through the parent's shared-memory fan-out when
        parallel); clean destinations delegate to the baseline's cached
        arrays without ever touching the pool."""
        dirty = self._dirty
        if dirty is None:
            return super().precompute(dests, workers)
        pending = list(dict.fromkeys(dests))
        to_compute = [d for d in pending if d in dirty]
        computed = (super().precompute(to_compute, workers)
                    if to_compute else 0)
        for dst in pending:
            if dst not in dirty:
                self.routes_to(dst)
        return computed

    # ------------------------------------------------------------------
    def _dirty_set(self) -> Optional[frozenset[int]]:
        """Destinations the edit journal can affect, or ``None``.

        Union of the customer cones of every added peer edge's
        endpoints.  Any provider/customer edge means full fallback:
        it exports the entire table to the new customer subtree and
        grows cones transitively.
        """
        dirty: set[int] = set()
        for link in self._topo.added_links:
            if link.rel is not Relationship.PEER_TO_PEER:
                return None
            dirty |= self._compiled.customer_cone(link.a)
            dirty |= self._compiled.customer_cone(link.b)
        if len(dirty) >= self._compiled.n:
            return None
        return frozenset(dirty)
