"""Routing layer: valley-free BGP (compiled array core) + the physical
cable/terrestrial map."""

from repro.routing.bgp import (
    BGPRouting,
    ReferenceRouting,
    RouteEntry,
    RouteKind,
    is_valley_free,
)
from repro.routing.compiled import CompiledTopology, RouteTable
from repro.routing.delta import DeltaRouting
from repro.routing.latency import (
    HopSite,
    as_path_geography,
    countries_on_path,
    path_rtt_ms,
    pop_countries,
    INTRA_AS_MS,
    MOBILE_LAST_MILE_MS,
)
from repro.routing.flows import CORE_COUNTRIES, FlowAnalyzer
from repro.routing.physical import (
    PhysicalEdge,
    PhysicalNetwork,
    PhysicalRoute,
    SATELLITE_RTT_MS,
)

__all__ = [
    "BGPRouting", "RouteEntry", "RouteKind", "is_valley_free",
    "CompiledTopology", "RouteTable", "DeltaRouting", "ReferenceRouting",
    "HopSite", "as_path_geography", "countries_on_path", "path_rtt_ms",
    "pop_countries", "INTRA_AS_MS", "MOBILE_LAST_MILE_MS",
    "PhysicalEdge", "PhysicalNetwork", "PhysicalRoute", "SATELLITE_RTT_MS",
    "CORE_COUNTRIES", "FlowAnalyzer",
]
