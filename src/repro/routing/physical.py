"""Physical-layer network: subsea cable segments + terrestrial fiber.

The AS-level graph says *who* exchanges traffic; this layer says *over
what glass*.  It is the substrate for:

* latency modelling (traceroute RTT synthesis),
* cable-cut impact (which country pairs lose connectivity/capacity and
  whether backups exist — §5.1),
* Nautilus-style cable inference and its ambiguity (§6.2): multiple
  cables along the same corridor are candidates for one wet IP link.

Countries are the nodes; each active cable segment and terrestrial link
is a parallel edge.  Routing is Dijkstra on latency.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.geo import country, fiber_rtt_ms, haversine_km
from repro.topology import Topology

#: Terrestrial routes are more circuitous than subsea ones.
SUBSEA_INFLATION = 1.15
TERRESTRIAL_INFLATION = 1.7
#: Fixed per-edge equipment delay (ms, round trip).
EDGE_OVERHEAD_MS = 0.8
#: Satellite fallback (§2: "non-terrestrial routes, e.g. ... satellite
#: links"): always available, but at GEO latency and trivial capacity.
SATELLITE_RTT_MS = 550.0
SATELLITE_CAPACITY_TBPS = 0.005

#: Shared cache key for the (overwhelmingly common) intact network —
#: saves a frozenset build per ``route()`` call on the hot path.
_NO_CABLES_DOWN: frozenset[int] = frozenset()


@dataclass(frozen=True)
class PhysicalEdge:
    """One parallel edge of the country-level multigraph."""

    a: str
    b: str
    medium: str               # "cable" | "terrestrial" | "satellite"
    carrier_id: int           # cable_id, or -1 for terrestrial/satellite
    carrier_name: str
    rtt_ms: float
    capacity_tbps: float

    def other(self, iso2: str) -> str:
        return self.b if iso2 == self.a else self.a


@dataclass(frozen=True)
class PhysicalRoute:
    """A physical path between two countries."""

    src: str
    dst: str
    edges: tuple[PhysicalEdge, ...]
    rtt_ms: float

    @property
    def cables_used(self) -> set[int]:
        return {e.carrier_id for e in self.edges if e.medium == "cable"}

    @property
    def uses_satellite(self) -> bool:
        return any(e.medium == "satellite" for e in self.edges)

    @property
    def bottleneck_tbps(self) -> float:
        return min((e.capacity_tbps for e in self.edges), default=0.0)


class PhysicalNetwork:
    """Country-level multigraph of cables and terrestrial fiber."""

    def __init__(self, topo: Topology, year: Optional[int] = None,
                 enable_satellite: bool = True) -> None:
        self._topo = topo
        self._year = year if year is not None else topo.params.current_year
        self._enable_satellite = enable_satellite
        self._edges: dict[str, list[PhysicalEdge]] = {}
        self._build()
        self._route_cache: dict[tuple, Optional[PhysicalRoute]] = {}

    def _add(self, edge: PhysicalEdge) -> None:
        self._edges.setdefault(edge.a, []).append(edge)
        self._edges.setdefault(edge.b, []).append(edge)

    def _build(self) -> None:
        for cable in self._topo.active_cables(self._year):
            for seg in cable.segments():
                if seg.a.iso2 == seg.b.iso2:
                    continue
                rtt = fiber_rtt_ms(seg.length_km, SUBSEA_INFLATION,
                                   EDGE_OVERHEAD_MS)
                self._add(PhysicalEdge(seg.a.iso2, seg.b.iso2, "cable",
                                       cable.cable_id, cable.name, rtt,
                                       cable.capacity_tbps))
        for link in self._topo.terrestrial:
            if link.built_year > self._year:
                continue
            rtt = fiber_rtt_ms(link.length_km, TERRESTRIAL_INFLATION,
                               EDGE_OVERHEAD_MS * 2)
            self._add(PhysicalEdge(link.a, link.b, "terrestrial", -1,
                                   f"terrestrial:{link.a}-{link.b}", rtt,
                                   0.4 * link.quality))

    # ------------------------------------------------------------------
    def countries(self) -> set[str]:
        return set(self._edges)

    def edges_at(self, iso2: str) -> list[PhysicalEdge]:
        return list(self._edges.get(iso2, []))

    def route(self, src: str, dst: str,
              down_cables: Iterable[int] = (),
              avoid_satellite: bool = False) -> Optional[PhysicalRoute]:
        """Lowest-latency physical route, skipping failed cables.

        Falls back to a satellite hop when fiber is unavailable (unless
        ``avoid_satellite``); returns ``None`` only when nothing at all
        connects the two countries.

        Like ``BGPRouting`` tables, results are memoized per query key;
        unlike the AS layer there is no compiled form — the country
        multigraph is small and cut state is per-query, which is why
        one ``PhysicalNetwork`` serves every cut world of a topology
        (see ``repro.exec.RoutingContext``).
        """
        if src == dst:
            return PhysicalRoute(src, dst, (), 0.0)
        down = frozenset(down_cables) if down_cables else _NO_CABLES_DOWN
        key = (src, dst, down, avoid_satellite)
        if key in self._route_cache:
            return self._route_cache[key]
        result = self._dijkstra(src, dst, down)
        if result is None and self._enable_satellite and not avoid_satellite:
            result = PhysicalRoute(src, dst, (PhysicalEdge(
                src, dst, "satellite", -1, "satellite", SATELLITE_RTT_MS,
                SATELLITE_CAPACITY_TBPS),), SATELLITE_RTT_MS)
        self._route_cache[key] = result
        return result

    def _dijkstra(self, src: str, dst: str,
                  down: frozenset[int]) -> Optional[PhysicalRoute]:
        dist: dict[str, float] = {src: 0.0}
        prev: dict[str, PhysicalEdge] = {}
        heap: list[tuple[float, str]] = [(0.0, src)]
        visited: set[str] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == dst:
                break
            for edge in self._edges.get(node, []):
                if edge.medium == "cable" and edge.carrier_id in down:
                    continue
                other = edge.other(node)
                nd = d + edge.rtt_ms
                if nd < dist.get(other, float("inf")):
                    dist[other] = nd
                    prev[other] = edge
                    heapq.heappush(heap, (nd, other))
        if dst not in prev and dst != src:
            return None
        edges: list[PhysicalEdge] = []
        cursor = dst
        while cursor != src:
            edge = prev[cursor]
            edges.append(edge)
            cursor = edge.other(cursor)
        edges.reverse()
        return PhysicalRoute(src, dst, tuple(edges), dist[dst])

    # ------------------------------------------------------------------
    def candidate_cables(self, src: str, dst: str,
                         slack_ms: float = 25.0) -> set[int]:
        """All cables appearing on near-optimal routes src→dst.

        This is what makes passive cable inference ambiguous (§6.2): a
        wet IP link between two countries is compatible with *every*
        cable on any route within ``slack_ms`` of the best one.
        """
        best = self.route(src, dst, avoid_satellite=True)
        if best is None:
            return set()
        budget = best.rtt_ms + slack_ms
        candidates: set[int] = set(best.cables_used)
        # Re-run the search excluding each used cable; any alternative
        # within budget contributes its cables too.
        frontier = list(best.cables_used)
        seen_exclusions: set[frozenset[int]] = set()
        while frontier:
            cable_id = frontier.pop()
            exclusion = frozenset([cable_id])
            if exclusion in seen_exclusions:
                continue
            seen_exclusions.add(exclusion)
            alt = self.route(src, dst, down_cables=exclusion,
                             avoid_satellite=True)
            if alt is None or alt.rtt_ms > budget:
                continue
            for c in alt.cables_used:
                if c not in candidates:
                    candidates.add(c)
                    frontier.append(c)
        return candidates

    def direct_cables(self, cc_a: str, cc_b: str) -> set[int]:
        """Cables with *adjacent landings* in the two countries.

        This is the unambiguous case for cable inference: the wet IP
        link corresponds to one hop of a specific system's landing
        chain.
        """
        out = set()
        for edge in self._edges.get(cc_a, []):
            if edge.medium == "cable" and edge.other(cc_a) == cc_b:
                out.add(edge.carrier_id)
        return out

    def country_cable_dependencies(self, iso2: str) -> set[int]:
        """Cables with a landing in ``iso2`` (first-order dependency)."""
        return {c.cable_id for c in self._topo.cables_landing_in(
            iso2, self._year)}

    def international_capacity(self, iso2: str,
                               down_cables: Iterable[int] = ()) -> float:
        """Total working international capacity (Tbps) of a country."""
        down = set(down_cables)
        total = 0.0
        for edge in self._edges.get(iso2, []):
            if edge.medium == "cable" and edge.carrier_id in down:
                continue
            total += edge.capacity_tbps
        return total

    def international_traffic_weight(self, iso2: str,
                                     down_cables: Iterable[int] = ()
                                     ) -> float:
        """Working *lit-traffic* weight of a country's international links.

        Uses :meth:`SubseaCable.traffic_weight` (capacity damped by how
        long the system has been in service) plus a modest terrestrial
        contribution — the denominator for cable-cut severity.
        """
        down = set(down_cables)
        total = 0.0
        for cable in self._topo.cables_landing_in(iso2, self._year):
            if cable.cable_id in down:
                continue
            total += cable.traffic_weight(self._year)
        for link in self._topo.terrestrial:
            if link.built_year <= self._year and link.involves(iso2):
                total += 0.5 * link.quality
        return total
