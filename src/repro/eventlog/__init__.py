"""repro.eventlog — the Observatory's append-only measurement record.

The always-on write path (ROADMAP item 3): every measurement producer
appends typed :class:`Event` rows into an :class:`EventLog` — a
dependency-free columnar store built from crc-framed fsynced appends,
atomic tmp+rename segment rotation and integrity-checked reads, with
plain sequence-number cursors for incremental consumers.  The
streaming heartbeat detector (:mod:`repro.monitoring`) and the
``/v1/events`` API are both such consumers.

Format, durability contract and recovery semantics are documented in
``docs/eventlog.md``.
"""

from repro.eventlog.log import (
    CursorFile,
    DEFAULT_SEGMENT_EVENTS,
    EventLog,
    EventLogError,
    SegmentInfo,
    drain,
    min_acked_seq,
)
from repro.eventlog.schema import (
    COLUMNS,
    Event,
    EventType,
    FIELD_DOC,
    decode_records,
    encode_commit,
    encode_record,
    event_type_from_name,
    make_event,
)

__all__ = [
    "COLUMNS", "CursorFile", "DEFAULT_SEGMENT_EVENTS", "Event",
    "EventLog", "EventLogError", "EventType", "FIELD_DOC",
    "SegmentInfo", "decode_records", "drain", "encode_commit",
    "encode_record", "event_type_from_name", "make_event",
    "min_acked_seq",
]
