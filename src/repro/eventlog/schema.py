"""Event taxonomy and wire encoding for the measurement event log.

Every always-on producer — traceroutes, pings, DNS checks, probe
power transitions, outage-engine transitions and the heartbeat
detector itself — emits :class:`Event` records with one shared shape:

======  =======  ====================================================
field   type     meaning
======  =======  ====================================================
seq     uint64   global append order (assigned by the log)
ts      float64  simulated time in days from window start
etype   uint8    :class:`EventType` code
scope   str      where it happened (country ISO2, ``AS<asn>``, "")
a       int64    per-type integer payload (see ``FIELD_DOC``)
b       int64    per-type integer payload
value   float64  per-type float payload (``-1.0`` == not applicable)
ok      bool     success flag
======  =======  ====================================================

Two encodings share this schema:

* the write-ahead tail uses framed rows —
  ``<u32 len><payload><u32 crc32>`` with a fixed ``struct`` prefix and
  a UTF-8 scope suffix — so a torn final write is detectable byte by
  byte;
* finalized segments store the same records as flat stdlib ``array``
  columns (see :mod:`repro.eventlog.log`), one contiguous block per
  column, which is what makes range scans cheap.

Timestamps are *simulated* days, never wall clock: the log contents of
a pinned-seed run are required to be byte-identical across runs.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass
from typing import Optional


class EventType(enum.IntEnum):
    """Stable on-disk codes; append new types, never renumber."""

    TRACEROUTE = 1
    PING = 2
    DNS = 3
    PROBE_CONNECT = 4
    PROBE_DISCONNECT = 5
    OUTAGE_BEGIN = 6
    OUTAGE_END = 7
    ALERT_RAISED = 8
    ALERT_CLEARED = 9
    # Fleet control plane (repro.fleet): the coordinator's campaign
    # lifecycle, agent membership and lease churn.
    AGENT_JOIN = 10
    AGENT_LOST = 11
    LEASE_GRANTED = 12
    LEASE_EXPIRED = 13
    SHARD_DONE = 14
    CAMPAIGN_BEGIN = 15
    CAMPAIGN_DONE = 16

    @property
    def wire_name(self) -> str:
        return self.name.lower()


#: Per-type meaning of the generic ``a``/``b``/``value`` payload slots.
FIELD_DOC: dict[EventType, dict[str, str]] = {
    EventType.TRACEROUTE: {"a": "probe_id", "b": "responding hops",
                           "value": "end-to-end rtt_ms"},
    EventType.PING: {"a": "probe_id", "b": "packets received",
                     "value": "median rtt_ms"},
    EventType.DNS: {"a": "probe_id", "b": "client asn",
                    "value": "resolution rtt_ms"},
    EventType.PROBE_CONNECT: {"a": "probe_id", "b": "asn",
                              "value": "unused"},
    EventType.PROBE_DISCONNECT: {"a": "probe_id", "b": "asn",
                                 "value": "unused"},
    EventType.OUTAGE_BEGIN: {"a": "outage event_id", "b": "cause code",
                             "value": "severity"},
    EventType.OUTAGE_END: {"a": "outage event_id", "b": "cause code",
                           "value": "severity"},
    EventType.ALERT_RAISED: {"a": "alert kind code", "b": "bucket index",
                             "value": "estimated severity"},
    EventType.ALERT_CLEARED: {"a": "alert kind code", "b": "bucket index",
                              "value": "buckets active"},
    EventType.AGENT_JOIN: {"a": "agent pid", "b": "registered agents",
                           "value": "unused"},
    EventType.AGENT_LOST: {"a": "agent pid", "b": "leases released",
                           "value": "unused"},
    EventType.LEASE_GRANTED: {"a": "round", "b": "shard index",
                              "value": "unit attempt"},
    EventType.LEASE_EXPIRED: {"a": "round", "b": "shard index",
                              "value": "unit attempt"},
    EventType.SHARD_DONE: {"a": "round", "b": "shard index",
                           "value": "measurements in the unit"},
    EventType.CAMPAIGN_BEGIN: {"a": "rounds", "b": "shards",
                               "value": "unused"},
    EventType.CAMPAIGN_DONE: {"a": "rounds", "b": "shards",
                              "value": "total measurements"},
}

_BY_WIRE_NAME = {t.wire_name: t for t in EventType}


def event_type_from_name(name: str) -> Optional[EventType]:
    """Wire-name lookup (``"dns"`` → :attr:`EventType.DNS`)."""
    return _BY_WIRE_NAME.get(name.strip().lower())


@dataclass(frozen=True)
class Event:
    """One immutable measurement event (see module docstring)."""

    seq: int
    ts: float
    etype: EventType
    scope: str
    a: int = 0
    b: int = 0
    value: float = -1.0
    ok: bool = True

    def to_dict(self) -> dict:
        """JSON-safe view served by ``/v1/events``."""
        return {"seq": self.seq, "ts": self.ts,
                "type": self.etype.wire_name, "scope": self.scope,
                "a": self.a, "b": self.b, "value": self.value,
                "ok": self.ok}


def make_event(ts: float, etype: EventType, scope: str, a: int = 0,
               b: int = 0, value: float = -1.0, ok: bool = True) -> Event:
    """An event awaiting a sequence number (``seq`` assigned on append)."""
    return Event(seq=-1, ts=float(ts), etype=etype, scope=scope,
                 a=int(a), b=int(b),
                 value=-1.0 if value is None else float(value),
                 ok=bool(ok))


# ----------------------------------------------------------------------
# Write-ahead row framing
# ----------------------------------------------------------------------

#: Fixed-size record prefix: seq, ts, etype, a, b, value, ok, scope len.
_PREFIX = struct.Struct("<QdBqqdBH")
_FRAME_HEAD = struct.Struct("<I")
_FRAME_CRC = struct.Struct("<I")

#: Scope strings are identifiers, not documents.
MAX_SCOPE_BYTES = 0xFFFF

#: Reserved etype code marking a batch commit (never a real event).
#: ``append`` terminates every batch with one; rows after the last
#: commit marker are an *uncommitted* batch prefix — a crash landed
#: some of the batch's bytes — and recovery must discard them, or a
#: failed append that the caller retries would duplicate events.
COMMIT_CODE = 0


def encode_commit(last_seq: int) -> bytes:
    """A framed batch-commit marker covering rows up to ``last_seq``."""
    payload = _PREFIX.pack(max(0, last_seq), 0.0, COMMIT_CODE,
                           0, 0, 0.0, 1, 0)
    return _FRAME_HEAD.pack(len(payload)) + payload \
        + _FRAME_CRC.pack(zlib.crc32(payload))


def encode_record(event: Event) -> bytes:
    """One framed WAL row for ``event`` (length + payload + crc32)."""
    scope = event.scope.encode("utf-8")
    if len(scope) > MAX_SCOPE_BYTES:
        raise ValueError(f"scope too long ({len(scope)} bytes)")
    payload = _PREFIX.pack(event.seq, event.ts, int(event.etype),
                           event.a, event.b, event.value,
                           1 if event.ok else 0, len(scope)) + scope
    return _FRAME_HEAD.pack(len(payload)) + payload \
        + _FRAME_CRC.pack(zlib.crc32(payload))


def decode_records(data: bytes) -> tuple[list[Event], int]:
    """Decode every *committed* framed row in ``data``.

    Returns ``(events, good_offset)``: the events covered by a batch
    commit marker, and the byte offset just past the last commit.
    Anything beyond it — torn bytes *or* intact rows whose commit
    never landed — is a failed batch the caller should quarantine
    (all-or-nothing append semantics).
    """
    events: list[Event] = []
    committed = 0
    committed_offset = 0
    offset = 0
    n = len(data)
    while True:
        head_end = offset + _FRAME_HEAD.size
        if head_end > n:
            break
        (length,) = _FRAME_HEAD.unpack_from(data, offset)
        body_end = head_end + length + _FRAME_CRC.size
        if length < _PREFIX.size or body_end > n:
            break
        payload = data[head_end:head_end + length]
        (crc,) = _FRAME_CRC.unpack_from(data, head_end + length)
        if zlib.crc32(payload) != crc:
            break
        seq, ts, code, a, b, value, ok, scope_len = \
            _PREFIX.unpack_from(payload, 0)
        if len(payload) != _PREFIX.size + scope_len:
            break
        offset = body_end
        if code == COMMIT_CODE:
            committed = len(events)
            committed_offset = offset
            continue
        try:
            etype = EventType(code)
        except ValueError:
            break
        scope = payload[_PREFIX.size:].decode("utf-8")
        events.append(Event(seq=seq, ts=ts, etype=etype, scope=scope,
                            a=a, b=b, value=value, ok=bool(ok)))
    return events[:committed], committed_offset


#: Column layout of a finalized segment, in file order.  Scope strings
#: are interned per segment: the column stores indexes into the
#: manifest's ``scopes`` table.
COLUMNS: tuple[tuple[str, str], ...] = (
    ("seq", "Q"), ("ts", "d"), ("etype", "B"), ("scope", "I"),
    ("a", "q"), ("b", "q"), ("value", "d"), ("ok", "B"),
)
