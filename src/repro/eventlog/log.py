"""Append-only columnar event store with crash-safe rotation.

Layout (all under one root directory)::

    <root>/segments/seg-00000001.seg   finalized columnar segment
    <root>/segments/seg-00000001.json  manifest (counts, digests, scopes)
    <root>/wal.log                     framed live tail (fsynced appends)
    <root>/quarantine/                 torn tails and corrupt segments
    <root>/tmp/                        staging for atomic writes

Appends land in ``wal.log`` as crc-framed rows and are fsynced per
batch — once :meth:`EventLog.append` returns, the batch survives a
crash.  When the tail reaches ``segment_events`` rows it is *packed*:
the rows become flat stdlib ``array`` columns written to a ``.seg``
file, a JSON manifest with per-column digests lands next to it (both
via tmp+rename, manifest last), and the tail is reset.  Every step is
idempotent: a crash between pack and tail reset just leaves rows whose
``seq`` is already finalized, and reopening skips them.

Reads are integrity-checked: a finalized segment is re-hashed against
its manifest before first use and moved to ``quarantine/`` on a
mismatch; a torn WAL tail (crash mid-write) is detected by the row
framing, quarantined and truncated away on open.  Consumers resume
exactly once via plain sequence-number cursors (:class:`CursorFile`).

Nothing in this module reads the wall clock on the write path — the
log contents of a pinned-seed run are byte-identical across runs.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from array import array
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro import faults, telemetry
from repro.eventlog.schema import (
    COLUMNS,
    Event,
    EventType,
    decode_records,
    encode_commit,
    encode_record,
)
from repro.store.keys import canonical_bytes, digest_bytes

#: Rows per finalized segment (kept modest so rotation is exercised).
DEFAULT_SEGMENT_EVENTS = 4096

_APPENDS = telemetry.counter(
    "repro_eventlog_appends_total", "Event batches appended to the log")
_EVENTS = telemetry.counter(
    "repro_eventlog_events_total", "Events appended to the log",
    labels=("etype",))
_APPEND_FAILURES = telemetry.counter(
    "repro_eventlog_append_failures_total",
    "Append batches aborted by a write failure")
_ROTATIONS = telemetry.counter(
    "repro_eventlog_rotations_total",
    "WAL tails packed into finalized segments")
_TORN = telemetry.counter(
    "repro_eventlog_torn_tails_total",
    "Torn WAL tails quarantined during recovery")
_QUARANTINED = telemetry.counter(
    "repro_eventlog_quarantined_segments_total",
    "Finalized segments quarantined after failing integrity checks")
_DROPPED = telemetry.counter(
    "repro_eventlog_segments_dropped_total",
    "Fully-consumed finalized segments dropped by retention gc")
_HEAD = telemetry.gauge(
    "repro_eventlog_head_seq", "Highest sequence number in the log")
_SEGMENTS = telemetry.gauge(
    "repro_eventlog_segments", "Finalized segments on disk")
_APPEND_SECONDS = telemetry.histogram(
    "repro_eventlog_append_seconds",
    "Wall-clock seconds per appended batch (including fsync)")

#: Manifest format marker.
MANIFEST_FORMAT = "repro-eventlog/1"


class EventLogError(RuntimeError):
    """The log directory is in a state appends cannot continue from."""


@dataclass(frozen=True)
class SegmentInfo:
    """Manifest summary of one finalized segment."""

    name: str
    index: int
    events: int
    first_seq: int
    last_seq: int
    first_ts: float
    last_ts: float
    content_digest: str
    size_bytes: int


def _segment_name(index: int) -> str:
    return f"seg-{index:08d}"


class EventLog:
    """Single-writer append-only event log (readers are lock-free safe).

    Thread-safe within one process; the on-disk format assumes one
    writing process per directory (the heartbeat loop), with any number
    of reading processes (``repro serve``).
    """

    def __init__(self, root: str | os.PathLike,
                 segment_events: int = DEFAULT_SEGMENT_EVENTS,
                 fsync: bool = True) -> None:
        if segment_events < 1:
            raise ValueError("segment_events must be >= 1")
        self.root = pathlib.Path(root)
        self.segment_events = int(segment_events)
        self.fsync = bool(fsync)
        self._segments_dir = self.root / "segments"
        self._quarantine_dir = self.root / "quarantine"
        self._tmp_dir = self.root / "tmp"
        self._wal_path = self.root / "wal.log"
        for d in (self._segments_dir, self._quarantine_dir,
                  self._tmp_dir):
            d.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._wal_file = None
        self._dirty = False
        #: Decoded events of finalized segments, by name (bounded).
        self._segment_cache: dict[str, list[Event]] = {}
        self._segment_cache_cap = 8
        self._recover()

    # -- lifecycle -----------------------------------------------------
    def _recover(self) -> None:
        """(Re)load finalized segments and the WAL tail from disk."""
        with self._lock:
            if self._wal_file is not None:
                try:
                    self._wal_file.close()
                except OSError:
                    pass
                self._wal_file = None
            self._infos: list[SegmentInfo] = []
            for manifest_path in sorted(
                    self._segments_dir.glob("seg-*.json")):
                info = self._load_manifest(manifest_path)
                if info is not None:
                    self._infos.append(info)
            self._infos.sort(key=lambda i: i.index)
            finalized_seq = max((i.last_seq for i in self._infos),
                                default=-1)
            self._tail: list[Event] = []
            self._load_wal(finalized_seq)
            self._next_seq = max(
                [finalized_seq] + [e.seq for e in self._tail]) + 1
            self._dirty = False
            if telemetry.enabled():
                _HEAD.set(self._next_seq - 1)
                _SEGMENTS.set(len(self._infos))

    def _load_manifest(self, manifest_path: pathlib.Path
                       ) -> Optional[SegmentInfo]:
        name = manifest_path.name[:-len(".json")]
        seg_path = self._segments_dir / f"{name}.seg"
        try:
            doc = json.loads(manifest_path.read_bytes())
            size = seg_path.stat().st_size
        except (OSError, ValueError):
            self._quarantine_segment(name)
            return None
        if doc.get("format") != MANIFEST_FORMAT \
                or doc.get("size_bytes") != size:
            self._quarantine_segment(name)
            return None
        return SegmentInfo(
            name=name, index=int(doc["index"]),
            events=int(doc["events"]),
            first_seq=int(doc["first_seq"]),
            last_seq=int(doc["last_seq"]),
            first_ts=float(doc["first_ts"]),
            last_ts=float(doc["last_ts"]),
            content_digest=doc["content_digest"],
            size_bytes=size)

    def _load_wal(self, finalized_seq: int) -> None:
        """Scan the WAL, quarantine any torn tail, open for append."""
        data = b""
        if self._wal_path.exists():
            data = self._wal_path.read_bytes()
        events, good_offset = decode_records(data)
        if good_offset < len(data):
            torn = data[good_offset:]
            last_good = events[-1].seq if events else finalized_seq
            quarantine = self._quarantine_dir / \
                f"wal-tail-after-{last_good}.bin"
            quarantine.write_bytes(torn)
            with open(self._wal_path, "r+b") as fh:
                fh.truncate(good_offset)
            if telemetry.enabled():
                _TORN.inc()
        # Rows already packed into a segment (crash between pack and
        # WAL reset) are duplicates; keep only the unpacked suffix.
        self._tail = [e for e in events if e.seq > finalized_seq]
        self._wal_file = open(self._wal_path, "ab")

    def close(self) -> None:
        with self._lock:
            if self._wal_file is not None:
                self._wal_file.close()
                self._wal_file = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- write path ----------------------------------------------------
    def append(self, events: Sequence[Event]) -> int:
        """Durably append ``events`` in order; returns the last seq.

        Assigns sequence numbers, writes framed rows to the WAL and
        fsyncs before returning — all-or-nothing per batch: on a write
        failure the WAL is rolled back to its pre-batch state and the
        batch is not in the log.  Rotation (packing a full tail into a
        columnar segment) happens inside the same call.
        """
        if not events:
            return self._next_seq - 1
        import time as _time
        started = _time.perf_counter()
        with self._lock:
            if self._dirty:
                raise EventLogError(
                    "log needs recovery after a failed append; "
                    "call recover()")
            if self._wal_file is None:
                raise EventLogError("log is closed")
            first_seq = self._next_seq
            stamped = [Event(seq=first_seq + i, ts=e.ts, etype=e.etype,
                             scope=e.scope, a=e.a, b=e.b, value=e.value,
                             ok=e.ok)
                       for i, e in enumerate(events)]
            # The trailing commit marker is what makes the batch
            # all-or-nothing: recovery discards any rows not covered
            # by a commit, so a retried batch can never duplicate.
            blob = b"".join(encode_record(e) for e in stamped) \
                + encode_commit(stamped[-1].seq)
            try:
                if faults.active():
                    if faults.should_fire("eventlog.write_error",
                                          str(first_seq)):
                        raise OSError(
                            f"injected eventlog write failure "
                            f"(seq {first_seq})")
                    if faults.should_fire("eventlog.torn_write",
                                          str(first_seq)):
                        # Land half the batch's bytes — exactly what a
                        # power cut mid-write leaves behind — then die.
                        self._wal_file.write(blob[:max(1,
                                                       len(blob) // 2)])
                        self._wal_file.flush()
                        os.fsync(self._wal_file.fileno())
                        raise OSError(
                            f"injected torn eventlog write "
                            f"(seq {first_seq})")
                self._wal_file.write(blob)
                self._wal_file.flush()
                if self.fsync:
                    os.fsync(self._wal_file.fileno())
            except Exception:
                self._dirty = True
                if telemetry.enabled():
                    _APPEND_FAILURES.inc()
                raise
            self._tail.extend(stamped)
            self._next_seq = first_seq + len(stamped)
            while len(self._tail) >= self.segment_events:
                self._pack(self._tail[:self.segment_events])
            last = self._next_seq - 1
        if telemetry.enabled():
            _APPENDS.inc()
            for e in stamped:
                _EVENTS.labels(etype=e.etype.wire_name).inc()
            _HEAD.set(last)
            _APPEND_SECONDS.observe(_time.perf_counter() - started)
        return last

    def recover(self) -> None:
        """Re-scan the directory after a failed append (crash stand-in).

        Quarantines any torn WAL tail and resumes from the last durable
        row — the same code path a fresh process runs on open.
        """
        self._recover()

    def seal(self) -> None:
        """Pack the current tail into a final (possibly short) segment."""
        with self._lock:
            if self._dirty:
                raise EventLogError(
                    "log needs recovery after a failed append; "
                    "call recover()")
            while len(self._tail) >= self.segment_events:
                self._pack(self._tail[:self.segment_events])
            if self._tail:
                self._pack(list(self._tail))

    def _pack(self, rows: list[Event]) -> None:
        """Freeze ``rows`` (a tail prefix) into a columnar segment."""
        index = (self._infos[-1].index + 1) if self._infos else 1
        name = _segment_name(index)
        scopes: list[str] = []
        scope_index: dict[str, int] = {}
        columns = {cname: array(typecode) for cname, typecode in COLUMNS}
        for e in rows:
            idx = scope_index.get(e.scope)
            if idx is None:
                idx = scope_index[e.scope] = len(scopes)
                scopes.append(e.scope)
            columns["seq"].append(e.seq)
            columns["ts"].append(e.ts)
            columns["etype"].append(int(e.etype))
            columns["scope"].append(idx)
            columns["a"].append(e.a)
            columns["b"].append(e.b)
            columns["value"].append(e.value)
            columns["ok"].append(1 if e.ok else 0)
        blobs = [(cname, columns[cname].tobytes())
                 for cname, _ in COLUMNS]
        payload = b"".join(blob for _, blob in blobs)
        manifest = {
            "format": MANIFEST_FORMAT,
            "name": name,
            "index": index,
            "events": len(rows),
            "first_seq": rows[0].seq,
            "last_seq": rows[-1].seq,
            "first_ts": rows[0].ts,
            "last_ts": rows[-1].ts,
            "counts_by_type": _counts_by_type(rows),
            "scopes": scopes,
            "columns": _column_manifest(blobs),
            "size_bytes": len(payload),
            "content_digest": digest_bytes(payload),
        }
        seg_path = self._segments_dir / f"{name}.seg"
        self._atomic_write(seg_path, payload, sync=True)
        self._atomic_write(self._segments_dir / f"{name}.json",
                           canonical_bytes(manifest), sync=True)
        info = SegmentInfo(
            name=name, index=index, events=len(rows),
            first_seq=rows[0].seq, last_seq=rows[-1].seq,
            first_ts=rows[0].ts, last_ts=rows[-1].ts,
            content_digest=manifest["content_digest"],
            size_bytes=len(payload))
        self._infos.append(info)
        self._reset_wal(rows[-1].seq)
        if telemetry.enabled():
            _ROTATIONS.inc()
            _SEGMENTS.set(len(self._infos))

    def _reset_wal(self, packed_through: int) -> None:
        """Rewrite the WAL with only rows newer than ``packed_through``.

        A crash before the replace leaves the old WAL whose packed rows
        are skipped on reopen (their seq is <= the manifest's
        last_seq), so this is idempotent.
        """
        self._tail = [e for e in self._tail if e.seq > packed_through]
        blob = b"".join(encode_record(e) for e in self._tail)
        if self._tail:
            blob += encode_commit(self._tail[-1].seq)
        self._wal_file.close()
        self._atomic_write(self._wal_path, blob, sync=True)
        self._wal_file = open(self._wal_path, "ab")

    def _atomic_write(self, dest: pathlib.Path, data: bytes,
                      sync: bool = False) -> None:
        tmp = self._tmp_dir / f".{os.getpid()}.{dest.name}"
        with open(tmp, "wb") as fh:
            fh.write(data)
            if sync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, dest)

    # -- read path -----------------------------------------------------
    @property
    def head_seq(self) -> int:
        """Highest sequence number in the log (-1 when empty)."""
        with self._lock:
            return self._next_seq - 1

    def __len__(self) -> int:
        with self._lock:
            return sum(i.events for i in self._infos) + len(self._tail)

    def segments(self) -> list[SegmentInfo]:
        with self._lock:
            return list(self._infos)

    def refresh(self) -> None:
        """Pick up segments/rows another process appended since open."""
        with self._lock:
            known = {i.name for i in self._infos}
            on_disk = sorted(self._segments_dir.glob("seg-*.json"))
            changed = {p.name[:-len(".json")] for p in on_disk} != known
            if changed or self._wal_file is None:
                self._recover()
            else:
                finalized = max((i.last_seq for i in self._infos),
                                default=-1)
                data = self._wal_path.read_bytes() \
                    if self._wal_path.exists() else b""
                events, _good = decode_records(data)
                self._tail = [e for e in events if e.seq > finalized]
                self._next_seq = max(
                    [finalized] + [e.seq for e in self._tail]) + 1

    def read(self, after: int = -1, limit: Optional[int] = None,
             etypes: Optional[Iterable[EventType]] = None,
             scope: Optional[str] = None) -> list[Event]:
        """Events with ``seq > after`` in order, integrity-checked.

        ``etypes``/``scope`` filter before ``limit`` applies, so a
        cursor over filtered reads still advances monotonically (use
        the last returned event's ``seq`` as the next ``after``).
        """
        wanted = frozenset(etypes) if etypes is not None else None
        out: list[Event] = []
        with self._lock:
            infos = list(self._infos)
            tail = list(self._tail)
        for info in infos:
            if info.last_seq <= after:
                continue
            rows = self._segment_rows(info)
            if rows is None:
                continue
            if not self._collect(rows, out, after, limit, wanted, scope):
                return out
        self._collect(tail, out, after, limit, wanted, scope)
        return out

    @staticmethod
    def _collect(rows: list[Event], out: list[Event], after: int,
                 limit: Optional[int], wanted, scope) -> bool:
        """Append matching rows to ``out``; False once limit is hit."""
        for e in rows:
            if e.seq <= after:
                continue
            if wanted is not None and e.etype not in wanted:
                continue
            if scope is not None and e.scope != scope:
                continue
            out.append(e)
            if limit is not None and len(out) >= limit:
                return False
        return True

    def _segment_rows(self, info: SegmentInfo) -> Optional[list[Event]]:
        """Decoded, digest-verified rows of one finalized segment."""
        with self._lock:
            cached = self._segment_cache.get(info.name)
            if cached is not None:
                return cached
            seg_path = self._segments_dir / f"{info.name}.seg"
            manifest_path = self._segments_dir / f"{info.name}.json"
            try:
                payload = seg_path.read_bytes()
                doc = json.loads(manifest_path.read_bytes())
            except (OSError, ValueError):
                self._drop_segment(info)
                return None
            if digest_bytes(payload) != info.content_digest:
                self._drop_segment(info)
                return None
            try:
                rows = _decode_segment(payload, doc)
            except (KeyError, ValueError, TypeError):
                self._drop_segment(info)
                return None
            while len(self._segment_cache) >= self._segment_cache_cap:
                self._segment_cache.pop(
                    next(iter(self._segment_cache)))
            self._segment_cache[info.name] = rows
            return rows

    def _drop_segment(self, info: SegmentInfo) -> None:
        self._quarantine_segment(info.name)
        self._infos = [i for i in self._infos if i.name != info.name]
        if telemetry.enabled():
            _SEGMENTS.set(len(self._infos))

    def _quarantine_segment(self, name: str) -> None:
        moved = False
        for suffix in (".seg", ".json"):
            src = self._segments_dir / f"{name}{suffix}"
            if src.exists():
                try:
                    os.replace(src, self._quarantine_dir / src.name)
                    moved = True
                except OSError:
                    pass
        if moved and telemetry.enabled():
            _QUARANTINED.inc()

    # -- retention -----------------------------------------------------
    def gc(self, keep_days: Optional[float] = None,
           keep_bytes: Optional[int] = None,
           min_acked_seq: Optional[int] = None) -> list[SegmentInfo]:
        """Drop old finalized segments per the retention policy.

        Only *packed* segments are candidates — the WAL tail is never
        touched — and with ``min_acked_seq`` set no segment containing
        an event past that seq is dropped, so a registered consumer's
        unconsumed events always survive (pass the minimum acked seq
        across every cursor; see :func:`min_acked_seq`).

        ``keep_days`` drops segments whose newest event is more than
        that many *simulated* days behind the log head; ``keep_bytes``
        drops oldest-first while total segment bytes exceed the cap.
        Either alone is a sufficient reason to drop; with neither set,
        nothing is dropped.  Returns the dropped segment infos.
        """
        if keep_days is None and keep_bytes is None:
            return []
        dropped: list[SegmentInfo] = []
        with self._lock:
            head_ts = self._tail[-1].ts if self._tail else (
                self._infos[-1].last_ts if self._infos else 0.0)
            total = sum(i.size_bytes for i in self._infos)
            # Oldest first; stop at the first segment that must stay —
            # retention never punches holes in the middle of the log.
            # The newest segment always survives: it anchors the next
            # sequence number for a process reopening an idle log.
            for info in list(self._infos[:-1]):
                if min_acked_seq is not None \
                        and info.last_seq > min_acked_seq:
                    break
                stale = keep_days is not None \
                    and head_ts - info.last_ts > keep_days
                over_cap = keep_bytes is not None and total > keep_bytes
                if not (stale or over_cap):
                    break
                for suffix in (".seg", ".json"):
                    try:
                        (self._segments_dir
                         / f"{info.name}{suffix}").unlink()
                    except OSError:
                        pass
                self._segment_cache.pop(info.name, None)
                self._infos.remove(info)
                total -= info.size_bytes
                dropped.append(info)
            if dropped and telemetry.enabled():
                _DROPPED.inc(len(dropped))
                _SEGMENTS.set(len(self._infos))
        return dropped

    # -- inspection ----------------------------------------------------
    def counts_by_type(self) -> dict[str, int]:
        """Total events per type across segments and the live tail."""
        counts: dict[str, int] = {}
        with self._lock:
            infos, tail = list(self._infos), list(self._tail)
        for info in infos:
            doc = self._manifest_doc(info)
            for name, n in (doc.get("counts_by_type") or {}).items():
                counts[name] = counts.get(name, 0) + int(n)
        for e in tail:
            counts[e.etype.wire_name] = \
                counts.get(e.etype.wire_name, 0) + 1
        return dict(sorted(counts.items()))

    def _manifest_doc(self, info: SegmentInfo) -> dict:
        try:
            return json.loads(
                (self._segments_dir / f"{info.name}.json").read_bytes())
        except (OSError, ValueError):
            return {}

    def stats(self) -> dict:
        with self._lock:
            return {
                "root": str(self.root),
                "head_seq": self._next_seq - 1,
                "events": sum(i.events for i in self._infos)
                + len(self._tail),
                "segments": len(self._infos),
                "tail_events": len(self._tail),
                "segment_bytes": sum(i.size_bytes for i in self._infos),
                "quarantined": len(list(
                    self._quarantine_dir.iterdir())),
            }


def _counts_by_type(rows: list[Event]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for e in rows:
        counts[e.etype.wire_name] = counts.get(e.etype.wire_name, 0) + 1
    return dict(sorted(counts.items()))


def _column_manifest(blobs: list[tuple[str, bytes]]) -> dict:
    offset = 0
    out = {}
    typecodes = dict(COLUMNS)
    for cname, blob in blobs:
        out[cname] = {"typecode": typecodes[cname], "offset": offset,
                      "bytes": len(blob),
                      "digest": digest_bytes(blob)}
        offset += len(blob)
    return out


def _decode_segment(payload: bytes, doc: dict) -> list[Event]:
    """Rebuild Event rows from a segment file plus its manifest."""
    scopes = list(doc["scopes"])
    columns: dict[str, array] = {}
    for cname, typecode in COLUMNS:
        spec = doc["columns"][cname]
        col = array(typecode)
        col.frombytes(payload[spec["offset"]:
                              spec["offset"] + spec["bytes"]])
        columns[cname] = col
    n = int(doc["events"])
    lengths = {len(col) for col in columns.values()}
    if lengths != {n}:
        raise ValueError("column length mismatch")
    return [Event(seq=columns["seq"][i], ts=columns["ts"][i],
                  etype=EventType(columns["etype"][i]),
                  scope=scopes[columns["scope"][i]],
                  a=columns["a"][i], b=columns["b"][i],
                  value=columns["value"][i],
                  ok=bool(columns["ok"][i]))
            for i in range(n)]


class CursorFile:
    """Durable consumer cursor: a tiny JSON file of the acked seq.

    ``load()`` → resume point (``-1`` when never acked); ``ack(seq)``
    lands atomically, so a consumer that processes a batch and then
    acks its last seq gets resume-exactly-once delivery across
    restarts.
    """

    def __init__(self, path: str | os.PathLike, name: str = "consumer"
                 ) -> None:
        self.path = pathlib.Path(path)
        self.name = name

    def load(self) -> int:
        try:
            doc = json.loads(self.path.read_bytes())
            return int(doc["ack"])
        except (OSError, ValueError, KeyError, TypeError):
            return -1

    def ack(self, seq: int) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(canonical_bytes(
            {"name": self.name, "ack": int(seq)}))
        os.replace(tmp, self.path)


def min_acked_seq(cursors_dir: str | os.PathLike) -> Optional[int]:
    """The minimum acked seq across every cursor file in a directory.

    The retention contract's consumer boundary: ``EventLog.gc`` with
    this value never drops a segment any registered consumer has yet
    to see.  Returns ``None`` when the directory holds no cursors (no
    registered consumers — retention alone governs).
    """
    directory = pathlib.Path(cursors_dir)
    if not directory.is_dir():
        return None
    acks = [CursorFile(path).load()
            for path in sorted(directory.glob("*.json"))]
    return min(acks) if acks else None


def drain(log: EventLog, cursor: CursorFile,
          handle: Callable[[list[Event]], None],
          batch: int = 1024) -> int:
    """Feed unacked events through ``handle`` in batches, acking after
    each — the resume-exactly-once consumption idiom in one helper.
    Returns the number of events processed."""
    after = cursor.load()
    processed = 0
    while True:
        events = log.read(after=after, limit=batch)
        if not events:
            return processed
        handle(events)
        after = events[-1].seq
        cursor.ack(after)
        processed += len(events)
