"""IP geolocation with an Africa-calibrated error model.

Section 6.2: "Techniques for probing and identifying subsea cables face
challenges due to known geolocation accuracy problems in Africa."
Commercial geolocation databases routinely place African IPs at the
operator's headquarters (often Johannesburg or Europe for multinational
carriers) or in the wrong country outright.  The error model here is
what inflates Nautilus' candidate-cable ambiguity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geo import AFRICAN_COUNTRIES, country
from repro.topology import ASKind, Topology
from repro.util import derive_rng

#: Country-level accuracy for African IPs (fraction located correctly).
AFRICA_ACCURACY = 0.72
#: Accuracy elsewhere (mature markets).
REFERENCE_ACCURACY = 0.95
#: When an African IP is mis-located, where it lands.
MISLOCATION_MIX = (
    ("operator_hq", 0.45),   # the AS's registered home country
    ("south_africa", 0.25),  # the classic "everything is ZA" failure
    ("europe", 0.08),        # RIPE-registered space mapped to Europe
    ("neighbor", 0.22),      # adjacent-country confusion
)


@dataclass(frozen=True)
class GeoAnswer:
    """A geolocation verdict for one address."""

    ip: int
    iso2: Optional[str]
    lat: Optional[float]
    lon: Optional[float]
    #: Ground-truth country (for evaluation only; analyses must not use).
    true_iso2: Optional[str]

    @property
    def correct(self) -> bool:
        return self.iso2 is not None and self.iso2 == self.true_iso2


class GeolocationService:
    """An IPInfo-like lookup over the simulated address space.

    Deterministic per (seed, ip): the same address always geolocates to
    the same (possibly wrong) place, as with a real database snapshot.
    """

    def __init__(self, topo: Topology, seed: Optional[int] = None,
                 africa_accuracy: float = AFRICA_ACCURACY,
                 reference_accuracy: float = REFERENCE_ACCURACY) -> None:
        self._topo = topo
        self._seed = seed if seed is not None else topo.params.seed
        self._africa_accuracy = africa_accuracy
        self._reference_accuracy = reference_accuracy
        self._cache: dict[tuple[int, Optional[str]], GeoAnswer] = {}

    def locate(self, ip: int, true_iso2: Optional[str] = None) -> GeoAnswer:
        """Geolocate one address.

        ``true_iso2`` tells the model where the address *really* is
        (e.g. the PoP a traceroute hop sits in); when omitted, the
        owning AS's home country is assumed.
        """
        # Plain tuple key: hash((ip, true_iso2)) could collide with a
        # bare-ip key and is salted per process (PYTHONHASHSEED).
        key = (ip, true_iso2)
        if key in self._cache:
            return self._cache[key]
        owner = self._topo.as_for_ip(ip)
        ixp = self._topo.ixp_for_ip(ip)
        if true_iso2 is None:
            if owner is not None:
                true_iso2 = owner.country_iso2
            elif ixp is not None:
                true_iso2 = ixp.country_iso2
        answer = self._decide(ip, owner, true_iso2)
        self._cache[key] = answer
        return answer

    def _decide(self, ip, owner, true_iso2) -> GeoAnswer:
        if true_iso2 is None:
            return GeoAnswer(ip, None, None, None, None)
        rng = derive_rng(self._seed, "geolocate", str(ip), str(true_iso2))
        truth = country(true_iso2)
        accuracy = (self._africa_accuracy if truth.is_african
                    else self._reference_accuracy)
        if rng.random() < accuracy:
            return GeoAnswer(ip, true_iso2, truth.lat, truth.lon,
                             true_iso2)
        mode = rng.choices([m for m, _ in MISLOCATION_MIX],
                           weights=[w for _, w in MISLOCATION_MIX])[0]
        wrong = self._mislocate(mode, owner, true_iso2, rng)
        c = country(wrong)
        return GeoAnswer(ip, wrong, c.lat, c.lon, true_iso2)

    def _mislocate(self, mode, owner, true_iso2, rng) -> str:
        if mode == "operator_hq" and owner is not None:
            return owner.country_iso2
        if mode == "south_africa":
            return "ZA"
        if mode == "europe":
            return rng.choice(("DE", "GB", "FR", "NL"))
        # neighbor confusion: nearest other African country.
        truth = country(true_iso2)
        if truth.is_african:
            from repro.geo import haversine_km
            others = [c for cc, c in sorted(AFRICAN_COUNTRIES.items())
                      if cc != true_iso2]
            return min(others, key=lambda c: haversine_km(
                truth.lat, truth.lon, c.lat, c.lon)).iso2
        return "DE"
