"""Anycast catchment measurement (MAnycast-style census).

§7.2 lists anycast research among the Observatory's user communities
([35, 36]).  Public-cloud resolvers and CDN front-ends are anycast: the
same address is served from many sites, and *which* site an African
client lands on decides whether their traffic stays on the continent.
This module measures catchments from vantage points and quantifies the
"African clients drain to Europe" phenomenon that underlies Fig. 2b/2c.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.geo import country
from repro.routing import PhysicalNetwork
from repro.topology import Topology
from repro.util import derive_rng


@dataclass(frozen=True)
class AnycastSite:
    """One deployment site of an anycast service."""

    iso2: str
    #: Relative capacity weight; bigger sites win ties more often.
    weight: float = 1.0


@dataclass(frozen=True)
class AnycastService:
    """An anycast service and its site footprint."""

    name: str
    asn: int
    sites: tuple[AnycastSite, ...]

    def __post_init__(self) -> None:
        if not self.sites:
            raise ValueError(f"anycast service {self.name} has no sites")


@dataclass(frozen=True)
class CatchmentObservation:
    """One client's measured landing site."""

    client_cc: str
    service: str
    site_cc: str
    rtt_ms: float

    @property
    def stayed_in_africa(self) -> bool:
        return (country(self.client_cc).is_african
                and country(self.site_cc).is_african)


@dataclass
class CatchmentCensus:
    observations: list[CatchmentObservation] = field(default_factory=list)

    def african_locality(self) -> float:
        """Share of African clients landing on African sites."""
        african = [o for o in self.observations
                   if country(o.client_cc).is_african]
        if not african:
            return 0.0
        return sum(o.stayed_in_africa for o in african) / len(african)

    def site_distribution(self, service: Optional[str] = None
                          ) -> dict[str, int]:
        out: dict[str, int] = {}
        for o in self.observations:
            if service is not None and o.service != service:
                continue
            out[o.site_cc] = out.get(o.site_cc, 0) + 1
        return out


def services_from_topology(topo: Topology) -> list[AnycastService]:
    """Anycast services implied by the world: cloud resolvers and CDNs.

    African sites carry less capacity weight than the European ones —
    the §4.2 catchment-spill mechanism.
    """
    services = []
    for svc in topo.cloud_resolvers:
        sites = tuple(
            AnycastSite(cc, 1.0 if country(cc).is_african else 3.0)
            for cc in svc.pop_countries)
        services.append(AnycastService(svc.name, svc.asn, sites))
    for cdn in topo.cdns:
        sites = tuple(
            AnycastSite(cc, 1.0 if country(cc).is_african else 3.0)
            for cc in cdn.pop_countries)
        services.append(AnycastService(cdn.name, cdn.asn, sites))
    return services


class AnycastMeasurement:
    """Measures catchments by latency with capacity-weighted ties."""

    def __init__(self, topo: Topology, phys: PhysicalNetwork,
                 seed: Optional[int] = None,
                 tie_window_ms: float = 80.0) -> None:
        self._topo = topo
        self._phys = phys
        self._tie_window = tie_window_ms
        self._seed = seed if seed is not None else topo.params.seed

    def catchment(self, client_cc: str, service: AnycastService,
                  down_cables: Sequence[int] = ()
                  ) -> Optional[CatchmentObservation]:
        """Which site a client lands on (None if nothing reachable).

        BGP anycast is *not* lowest-latency: within a latency window,
        the better-connected (heavier) site usually wins the routing
        tie — which is exactly how African clients end up in Europe
        despite a nearer African site.
        """
        reachable: list[tuple[float, AnycastSite]] = []
        for site in service.sites:
            if site.iso2 == client_cc:
                reachable.append((5.0, site))
                continue
            route = self._phys.route(client_cc, site.iso2,
                                     down_cables=down_cables)
            if route is None or route.uses_satellite:
                continue
            reachable.append((route.rtt_ms, site))
        if not reachable:
            return None
        reachable.sort(key=lambda pair: pair[0])
        best_rtt = reachable[0][0]
        contenders = [(rtt, site) for rtt, site in reachable
                      if rtt <= best_rtt + self._tie_window]
        rng = derive_rng(self._seed, "anycast", service.name, client_cc,
                         *(str(c) for c in sorted(down_cables)))
        weights = [site.weight for _, site in contenders]
        rtt, site = rng.choices(contenders, weights=weights)[0]
        return CatchmentObservation(client_cc, service.name, site.iso2,
                                    rtt)

    def census(self, client_ccs: Iterable[str],
               services: Optional[Sequence[AnycastService]] = None,
               down_cables: Sequence[int] = ()) -> CatchmentCensus:
        """MAnycast-style sweep over clients x services."""
        services = (list(services) if services is not None
                    else services_from_topology(self._topo))
        census = CatchmentCensus()
        for client_cc in sorted(set(client_ccs)):
            for service in services:
                observation = self.catchment(client_cc, service,
                                             down_cables)
                if observation is not None:
                    census.observations.append(observation)
        return census
