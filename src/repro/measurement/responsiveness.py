"""Probe-response model: who answers active measurements.

Coverage differences between scanners (Table 1) are driven by *how*
targets are chosen, not by magic: a harvested hitlist (ANT) remembers
which addresses historically answered, while prefix-guided scanners
(CAIDA Routed /24, YARRP) fire at random addresses and mostly miss the
sparse responsive population of African networks — CGN'd mobile space
in particular.  This module centralises those per-/24 response
probabilities so scanners, traceroute synthesis, and tests all agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology import ASKind, IXP, Topology
from repro.topology.calibration import REFERENCE_PROFILE, REGION_PROFILES


@dataclass(frozen=True)
class ResponseModel:
    """Per-/24 response probabilities by targeting strategy."""

    #: P(a /24 of this AS yields a responder for a *harvested* hitlist
    #: that accumulated known-good addresses over years of scanning).
    harvested_p24: dict[ASKind, float]
    #: P(one *random* address in a /24 answers a probe) — the
    #: prefix-guided strategies.
    random_p24: dict[ASKind, float]
    #: Per-probe probability that a YARRP traceroute toward a random
    #: address elicits a response from inside the destination AS (the
    #: target itself or its edge router answering TTL exhaustion).
    yarrp_dest_p24: dict[ASKind, float] | None = None
    #: P(an IXP fabric address responds when probed directly).
    ixp_fabric_response: float = 0.85
    #: P(an intermediate router hop reveals itself in a traceroute).
    hop_response: float = 0.80

    def region_multiplier(self, topo: Topology, asn: int) -> float:
        a = topo.as_(asn)
        profile = (REGION_PROFILES[a.region] if a.is_african
                   else REFERENCE_PROFILE)
        return profile.responsiveness

    def harvested(self, topo: Topology, asn: int) -> float:
        a = topo.as_(asn)
        return min(0.95, self.harvested_p24[a.kind]
                   * self.region_multiplier(topo, asn))

    def random(self, topo: Topology, asn: int) -> float:
        a = topo.as_(asn)
        return min(0.95, self.random_p24[a.kind]
                   * self.region_multiplier(topo, asn))

    def yarrp(self, topo: Topology, asn: int) -> float:
        a = topo.as_(asn)
        table = self.yarrp_dest_p24 or self.random_p24
        return min(0.95, table[a.kind]
                   * self.region_multiplier(topo, asn))


#: Default calibration.  Mobile networks have many allocated /24s whose
#: gateways answered *some* probe historically (high harvested rate)
#: but whose random addresses are CGN pool space that answers nothing
#: (very low random rate).  Enterprises hold mostly dark space.
DEFAULT_RESPONSE_MODEL = ResponseModel(
    harvested_p24={
        ASKind.MOBILE: 0.042,
        ASKind.FIXED: 0.026,
        ASKind.TRANSIT: 0.032,
        ASKind.CLOUD: 0.060,
        ASKind.CONTENT: 0.055,
        ASKind.EDUCATION: 0.070,
        ASKind.ENTERPRISE: 0.095,
    },
    random_p24={
        ASKind.MOBILE: 0.012,
        ASKind.FIXED: 0.010,
        ASKind.TRANSIT: 0.013,
        ASKind.CLOUD: 0.030,
        ASKind.CONTENT: 0.026,
        ASKind.EDUCATION: 0.020,
        ASKind.ENTERPRISE: 0.028,
    },
    yarrp_dest_p24={
        ASKind.MOBILE: 0.034,
        ASKind.FIXED: 0.022,
        ASKind.TRANSIT: 0.022,
        ASKind.CLOUD: 0.045,
        ASKind.CONTENT: 0.040,
        ASKind.EDUCATION: 0.050,
        ASKind.ENTERPRISE: 0.060,
    },
)


def slash24s_of(topo: Topology, asn: int) -> int:
    """Number of /24 blocks allocated to an AS."""
    return sum(p.slash24_count() for p in topo.as_(asn).prefixes)


def ixp_hitlist_inclusion_prob(ixp: IXP) -> float:
    """P(a harvested hitlist carries an address from this IXP's LAN).

    Fabric addresses enter hitlists only via archived traceroutes that
    crossed the exchange, so bigger fabrics are likelier to be seen.
    """
    return min(0.90, 0.14 + 0.045 * len(ixp.members))
