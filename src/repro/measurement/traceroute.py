"""Traceroute and ping simulation.

Synthesizes IP-level traceroutes over the BGP + physical layers the
same way real paths would look to a measurement probe:

* each AS on the path contributes one or two router hops numbered from
  its own address space,
* an IXP crossing contributes the *member's fabric port address* from
  the exchange's LAN prefix (what traIXroute keys on),
* per-hop RTTs accumulate physical latency plus jitter, and some hops
  silently drop TTL-expired responses,
* cable cuts (``down_cables``) reroute or sever the physical path —
  severed paths fall back to satellite-class latency and heavy loss,
  which is how outage degradation becomes visible to measurement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.routing import (
    BGPRouting,
    HopSite,
    PhysicalNetwork,
    as_path_geography,
)
from repro.routing.latency import (
    FIXED_LAST_MILE_MS,
    INTRA_AS_MS,
    MOBILE_LAST_MILE_MS,
)
from repro.measurement.probes import AccessTech, VantagePoint
from repro.measurement.responsiveness import (
    DEFAULT_RESPONSE_MODEL,
    ResponseModel,
)
from repro.topology import ASKind, Topology, format_ip
from repro.util import derive_rng, derive_seed
from repro import telemetry

_TRACEROUTES = telemetry.counter(
    "repro_measurement_traceroutes_total",
    "Traceroutes synthesized", labels=("outcome",))
# Pre-bound labelled children: one dict hit per traceroute instead of a
# lock-guarded child resolution in the per-measurement hot path.
_TRACEROUTES_BY_OUTCOME = {
    outcome: _TRACEROUTES.labels(outcome=outcome)
    for outcome in ("reached", "incomplete", "unrouted", "unresolved")}
_HOPS = telemetry.counter(
    "repro_measurement_hops_synthesized_total",
    "Traceroute hops synthesized")
_PINGS = telemetry.counter(
    "repro_measurement_pings_total", "Ping rounds issued")
_WIRE_BYTES = telemetry.counter(
    "repro_measurement_wire_bytes_total",
    "Simulated bytes on the wire (budget model input)")
_HOPS_PER_TRACE = telemetry.histogram(
    "repro_measurement_traceroute_hops",
    "Hops per completed traceroute",
    buckets=(2, 4, 6, 8, 10, 14, 18, 24, 32))


@dataclass(frozen=True)
class Hop:
    """One TTL step of a traceroute."""

    ttl: int
    ip: Optional[int]            # None == no reply ("* * *")
    rtt_ms: Optional[float]
    asn: Optional[int]           # ground truth (hidden from analyses)
    country_iso2: Optional[str]  # ground truth
    is_ixp_fabric: bool = False
    ixp_id: Optional[int] = None

    @property
    def responded(self) -> bool:
        return self.ip is not None

    def ip_str(self) -> str:
        return format_ip(self.ip) if self.ip is not None else "*"


@dataclass
class TracerouteResult:
    """A completed traceroute measurement."""

    probe_id: int
    src_asn: int
    src_country: str
    target_ip: int
    dst_asn: Optional[int]
    hops: list[Hop] = field(default_factory=list)
    reached: bool = False
    #: Bytes on the wire (for the Observatory budget model).
    bytes_used: int = 0

    def responding_hops(self) -> list[Hop]:
        return [h for h in self.hops if h.responded]

    def hop_ips(self) -> list[int]:
        return [h.ip for h in self.hops if h.ip is not None]

    def end_to_end_rtt(self) -> Optional[float]:
        for hop in reversed(self.hops):
            if hop.rtt_ms is not None:
                return hop.rtt_ms
        return None


@dataclass(frozen=True)
class PingResult:
    probe_id: int
    target_ip: int
    sent: int
    received: int
    rtt_ms: Optional[float]
    #: Bytes on the wire (for the Observatory budget model).
    bytes_used: int = 0

    @property
    def loss_rate(self) -> float:
        return 1.0 - self.received / self.sent if self.sent else 1.0


#: Approximate wire cost of measurements (request+responses, bytes).
TRACEROUTE_BYTES_PER_HOP = 3 * 120
PING_BYTES_PER_PACKET = 84
#: Wire cost of the default 4-packet echo round (legacy constant).
PING_BYTES = 4 * PING_BYTES_PER_PACKET


class MeasurementEngine:
    """Issues simulated measurements from vantage points.

    Every measurement derives its own RNG from the engine seed and the
    measurement's identity ``(probe, target)``, never from a shared
    stream, so measurements are order-independent: a batch fanned out
    over :mod:`repro.exec` workers is byte-identical to the same batch
    run serially.
    """

    def __init__(self, topo: Topology, routing: BGPRouting,
                 phys: PhysicalNetwork,
                 response_model: ResponseModel = DEFAULT_RESPONSE_MODEL,
                 down_cables: Sequence[int] = (),
                 seed: Optional[int] = None) -> None:
        self._topo = topo
        self._routing = routing
        self._phys = phys
        self._model = response_model
        self._down = tuple(down_cables)
        self._seed = seed if seed is not None else topo.params.seed
        #: ixp_id -> (membership size, fabric IP -> member ASN).
        self._fabric_index: dict[int, tuple[int, dict[int, int]]] = {}

    @property
    def routing(self) -> BGPRouting:
        """The underlying routing instance (shared, cache-bearing)."""
        return self._routing

    # ------------------------------------------------------------------
    def resolve_target_asn(self, target_ip: int) -> Optional[int]:
        """Origin AS of a target address (IXP LANs resolve to members).

        For fabric addresses this is the *exact inverse* of
        :meth:`IXP.lan_ip_for`: the member whose assigned fabric port
        is ``target_ip`` (smallest ASN on a modulo collision, matching
        the deterministic assignment order).  Addresses on the LAN that
        belong to no member resolve to ``None``.
        """
        a = self._topo.as_for_ip(target_ip)
        if a is not None:
            return a.asn
        ixp = self._topo.ixp_for_ip(target_ip)
        if ixp is not None and ixp.members:
            cached = self._fabric_index.get(ixp.ixp_id)
            if cached is None or cached[0] != len(ixp.members):
                table: dict[int, int] = {}
                for member in sorted(ixp.members):
                    table.setdefault(ixp.lan_ip_for(member), member)
                cached = (len(ixp.members), table)
                self._fabric_index[ixp.ixp_id] = cached
            return cached[1].get(target_ip)
        return None

    # ------------------------------------------------------------------
    def traceroute(self, probe: VantagePoint, target_ip: int,
                   access: Optional[AccessTech] = None
                   ) -> TracerouteResult:
        """Run one traceroute from ``probe`` toward ``target_ip``."""
        dst_asn = self.resolve_target_asn(target_ip)
        result = TracerouteResult(
            probe_id=probe.probe_id, src_asn=probe.asn,
            src_country=probe.country_iso2, target_ip=target_ip,
            dst_asn=dst_asn)
        if dst_asn is None:
            result.bytes_used = 5 * TRACEROUTE_BYTES_PER_HOP
            self._record_traceroute(result, "unresolved")
            return result
        sites = as_path_geography(self._topo, self._routing, probe.asn,
                                  dst_asn)
        if sites is None:
            result.bytes_used = 5 * TRACEROUTE_BYTES_PER_HOP
            self._record_traceroute(result, "unrouted")
            return result
        access = access or probe.access
        rng = self._measurement_rng("trace", probe.probe_id, target_ip)
        self._emit_hops(result, sites, target_ip, access, rng)
        result.bytes_used = len(result.hops) * TRACEROUTE_BYTES_PER_HOP
        self._record_traceroute(
            result, "reached" if result.reached else "incomplete")
        return result

    def _measurement_rng(self, kind: str, probe_id: int,
                         target_ip: int) -> random.Random:
        """Per-measurement RNG: a pure function of (seed, probe,
        target), independent of every other measurement."""
        return derive_rng(self._seed, "measurement", kind,
                          str(probe_id), str(target_ip))

    @staticmethod
    def _record_traceroute(result: TracerouteResult,
                           outcome: str) -> None:
        if not telemetry.enabled():
            return
        _TRACEROUTES_BY_OUTCOME[outcome].inc()
        _WIRE_BYTES.inc(result.bytes_used)
        if result.hops:
            _HOPS.inc(len(result.hops))
            _HOPS_PER_TRACE.observe(len(result.hops))

    def _emit_hops(self, result: TracerouteResult,
                   sites: Sequence[HopSite], target_ip: int,
                   access: AccessTech, rng: random.Random) -> None:
        cumulative = (MOBILE_LAST_MILE_MS
                      if access is AccessTech.CELLULAR
                      else FIXED_LAST_MILE_MS)
        severed = False
        ttl = 0
        prev_cc = sites[0].country_iso2
        for idx, site in enumerate(sites):
            ttl += 1
            cumulative += INTRA_AS_MS
            if site.country_iso2 != prev_cc:
                route = self._phys.route(prev_cc, site.country_iso2,
                                         down_cables=self._down)
                if route is None:
                    severed = True
                else:
                    cumulative += route.rtt_ms
                    if route.uses_satellite:
                        # Oversubscribed fallback: high loss, jitter.
                        severed = rng.random() < 0.5
            else:
                cumulative += 1.0
            prev_cc = site.country_iso2
            if severed:
                result.hops.append(Hop(ttl, None, None, site.asn,
                                       site.country_iso2))
                continue
            is_last = idx == len(sites) - 1
            hop_ip, responds = self._hop_address(site, target_ip, is_last,
                                                 rng)
            if not responds:
                result.hops.append(Hop(ttl, None, None, site.asn,
                                       site.country_iso2,
                                       is_ixp_fabric=site.is_ixp,
                                       ixp_id=site.ixp_id))
                continue
            rtt = max(0.5, cumulative + rng.gauss(0.0, 2.0))
            result.hops.append(Hop(ttl, hop_ip, rtt, site.asn,
                                   site.country_iso2,
                                   is_ixp_fabric=site.is_ixp,
                                   ixp_id=site.ixp_id))
            if is_last:
                result.reached = True

    def _hop_address(self, site: HopSite, target_ip: int, is_last: bool,
                     rng: random.Random) -> tuple[Optional[int], bool]:
        topo = self._topo
        if site.is_ixp and site.ixp_id is not None:
            ixp = topo.ixps[site.ixp_id]
            try:
                ip = ixp.lan_ip_for(site.asn)
            except ValueError:
                return None, False
            return ip, rng.random() < self._model.hop_response
        if is_last:
            # Destination probe-response: the target address itself.
            owner = topo.as_for_ip(target_ip)
            if owner is not None and owner.asn == site.asn:
                return target_ip, rng.random() < self._model.hop_response
        a = topo.as_(site.asn)
        # Routers of *transit* exchange members often answer from their
        # fabric port address when it is the preferred source on the
        # reverse path — the classic way traIXroute spots carriers at
        # IXPs even on customer-bound traffic.  Stub routers answer
        # from their own space.
        for ixp_id in sorted(a.ixps if a.tier <= 2 else ()):
            ixp = topo.ixps.get(ixp_id)
            if ixp is None or ixp.country_iso2 != site.country_iso2:
                continue
            if rng.random() < 0.3:
                try:
                    ip = ixp.lan_ip_for(site.asn)
                except ValueError:
                    break
                return ip, rng.random() < self._model.hop_response
            break
        if not a.prefixes:
            return None, False
        prefix = a.prefixes[0]
        # Deterministic router loopback: low addresses of the first
        # prefix, varied per country so multi-PoP ASes differ.  Derived
        # via sha256, not builtin hash(), which is salted per process
        # (PYTHONHASHSEED) and made loopbacks differ across runs.
        offset = 1 + (derive_seed(site.asn, site.country_iso2) % 240)
        ip = prefix.network + offset
        return ip, rng.random() < self._model.hop_response

    # ------------------------------------------------------------------
    def ping(self, probe: VantagePoint, target_ip: int,
             count: int = 4) -> PingResult:
        """ICMP echo round: loss and median RTT.

        Wire-byte accounting scales with ``count``: every echo request
        goes on the wire whether or not the target resolves or
        responds — exactly what a metered data plan bills for.
        """
        if count <= 0:
            raise ValueError(f"ping count must be positive, got {count}")
        nbytes = count * PING_BYTES_PER_PACKET
        dst_asn = self.resolve_target_asn(target_ip)
        if dst_asn is None:
            return self._record_ping(PingResult(
                probe.probe_id, target_ip, count, 0, None,
                bytes_used=nbytes))
        sites = as_path_geography(self._topo, self._routing, probe.asn,
                                  dst_asn)
        if sites is None:
            return self._record_ping(PingResult(
                probe.probe_id, target_ip, count, 0, None,
                bytes_used=nbytes))
        from repro.routing import path_rtt_ms
        base = path_rtt_ms(self._topo, self._phys, sites,
                           down_cables=self._down)
        if base is None:
            return self._record_ping(PingResult(
                probe.probe_id, target_ip, count, 0, None,
                bytes_used=nbytes))
        rng = self._measurement_rng("ping", probe.probe_id, target_ip)
        respond_p = self._model.hop_response
        received = sum(rng.random() < respond_p for _ in range(count))
        rtt = (max(0.5, base + rng.gauss(0.0, 1.5))
               if received else None)
        return self._record_ping(PingResult(
            probe.probe_id, target_ip, count, received, rtt,
            bytes_used=nbytes))

    @staticmethod
    def _record_ping(result: PingResult) -> PingResult:
        if telemetry.enabled():
            _PINGS.inc()
            _WIRE_BYTES.inc(result.bytes_used)
        return result
