"""Measurement layer: probes, traceroute/ping/DNS, scanners, geolocation."""

from repro.measurement.probes import (
    AccessTech,
    ProbeKind,
    ProbePlatform,
    VantagePoint,
    build_atlas_platform,
    build_observatory_platform,
    ATLAS_HOST_RATE,
)
from repro.measurement.responsiveness import (
    DEFAULT_RESPONSE_MODEL,
    ResponseModel,
    ixp_hitlist_inclusion_prob,
    slash24s_of,
)
from repro.measurement.traceroute import (
    Hop,
    MeasurementEngine,
    PingResult,
    TracerouteResult,
    PING_BYTES,
    PING_BYTES_PER_PACKET,
    TRACEROUTE_BYTES_PER_HOP,
)
from repro.measurement.scanners import (
    ScanResult,
    default_yarrp_vantage,
    run_ant_hitlist,
    run_caida_prefix_scan,
    run_yarrp_scan,
)
from repro.measurement.geolocate import GeoAnswer, GeolocationService
from repro.measurement.ixp_detect import (
    IXPCrossing,
    IXPDirectory,
    IXPDirectoryEntry,
    detect_ixp_crossings,
    detected_ixps,
    traverses_ixp,
)
from repro.measurement.dns_measure import DNSMeasurement, DNSResult
from repro.measurement.pageload import (
    PageLoadResult,
    PageLoadSimulator,
    PageLoadStudy,
    ThirdPartyDependency,
    ThirdPartyKind,
    dependencies_of,
    run_pageload_study,
)
from repro.measurement.anycast import (
    AnycastMeasurement,
    AnycastService,
    AnycastSite,
    CatchmentCensus,
    CatchmentObservation,
    services_from_topology,
)

__all__ = [
    "AccessTech", "ProbeKind", "ProbePlatform", "VantagePoint",
    "build_atlas_platform", "build_observatory_platform", "ATLAS_HOST_RATE",
    "DEFAULT_RESPONSE_MODEL", "ResponseModel", "ixp_hitlist_inclusion_prob",
    "slash24s_of",
    "Hop", "MeasurementEngine", "PingResult", "TracerouteResult",
    "PING_BYTES", "PING_BYTES_PER_PACKET", "TRACEROUTE_BYTES_PER_HOP",
    "ScanResult", "default_yarrp_vantage", "run_ant_hitlist",
    "run_caida_prefix_scan", "run_yarrp_scan",
    "GeoAnswer", "GeolocationService",
    "IXPCrossing", "IXPDirectory", "IXPDirectoryEntry",
    "detect_ixp_crossings", "detected_ixps", "traverses_ixp",
    "DNSMeasurement", "DNSResult",
    "PageLoadResult", "PageLoadSimulator", "PageLoadStudy",
    "ThirdPartyDependency", "ThirdPartyKind", "dependencies_of",
    "run_pageload_study",
    "AnycastMeasurement", "AnycastService", "AnycastSite",
    "CatchmentCensus", "CatchmentObservation", "services_from_topology",
]
