"""Internet-scanning strategies: hitlists and randomized traceroute.

Reproduces the three methodologies of §6.1 / Table 1:

* **ANT-style harvested hitlist** — one known-responsive representative
  per /24, accumulated from historical probing; includes legacy and
  unrouted space (even some IXP fabric addresses seen in archived
  traceroutes).
* **CAIDA Routed /24-style prefix scan** — one random address per /24
  *present in the global BGP table*; IXP LANs are normally unrouted
  (RFC 7454) and hence invisible.
* **YARRP-style randomized traceroute** — traceroutes to random
  addresses across the routed table from a single vantage point;
  observes destinations *and* the transit path, but from one viewpoint.

Each strategy yields a :class:`ScanResult` with the observed African
ASNs/IXPs; :mod:`repro.analysis.coverage` turns those into Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.measurement.responsiveness import (
    DEFAULT_RESPONSE_MODEL,
    ResponseModel,
    ixp_hitlist_inclusion_prob,
    slash24s_of,
)
from repro.routing import BGPRouting, as_path_geography
from repro.topology import ASKind, IXPOwner, Topology
from repro.util import derive_rng
from repro import telemetry

_SCAN_ENTRIES = telemetry.counter(
    "repro_scan_entries_total", "Scan targets probed",
    labels=("dataset",))
_SCAN_ASNS = telemetry.gauge(
    "repro_scan_asns_observed", "ASNs observed by the last scan",
    labels=("dataset",))
_SCAN_IXPS = telemetry.gauge(
    "repro_scan_ixps_observed", "IXPs observed by the last scan",
    labels=("dataset",))


def _record_scan(result: ScanResult) -> None:
    if not telemetry.enabled():
        return
    _SCAN_ENTRIES.labels(dataset=result.dataset).inc(result.entries)
    _SCAN_ASNS.labels(dataset=result.dataset).set(
        len(result.observed_asns))
    _SCAN_IXPS.labels(dataset=result.dataset).set(
        len(result.observed_ixps))


@dataclass
class ScanResult:
    """Outcome of one scanning campaign."""

    dataset: str
    entries: int
    observed_asns: set[int] = field(default_factory=set)
    observed_ixps: set[int] = field(default_factory=set)

    def observed_african_asns(self, topo: Topology) -> set[int]:
        return {asn for asn in self.observed_asns
                if topo.as_(asn).is_african}

    def observed_african_ixps(self, topo: Topology) -> set[int]:
        return {i for i in self.observed_ixps if topo.ixps[i].is_african}


def _routed_ixps(topo: Topology):
    return [x for x in topo.ixps.values() if x.lan_routed]


def run_ant_hitlist(topo: Topology,
                    model: ResponseModel = DEFAULT_RESPONSE_MODEL,
                    seed: Optional[int] = None) -> ScanResult:
    """Harvested hitlist scan (ANT IPv4 hitlist analogue)."""
    seed = seed if seed is not None else topo.params.seed
    rng = derive_rng(seed, "scan", "ant")
    result = ScanResult(dataset="ANT Hitlist", entries=0)
    with telemetry.span("scan.ant_hitlist"):
        return _run_ant_hitlist(topo, model, rng, result)


def _run_ant_hitlist(topo, model, rng, result) -> ScanResult:
    for a in sorted(topo.ases.values(), key=lambda x: x.asn):
        p24 = model.harvested(topo, a.asn)
        n24 = slash24s_of(topo, a.asn)
        hits = sum(rng.random() < p24 for _ in range(n24))
        # The hitlist keeps a representative per /24 it has *ever*
        # probed — including legacy, unrouted and long-dead entries —
        # which is why it is much larger than the routed-space scans.
        result.entries += round(n24 * 1.55)
        if hits:
            result.observed_asns.add(a.asn)
    for ixp in sorted(topo.ixps.values(), key=lambda x: x.ixp_id):
        included = rng.random() < ixp_hitlist_inclusion_prob(ixp)
        if included and rng.random() < model.ixp_fabric_response:
            result.observed_ixps.add(ixp.ixp_id)
            result.entries += max(1, len(ixp.members) // 3)
    _record_scan(result)
    return result


def run_caida_prefix_scan(topo: Topology,
                          model: ResponseModel = DEFAULT_RESPONSE_MODEL,
                          seed: Optional[int] = None) -> ScanResult:
    """Prefix-guided scan: one random address per routed /24."""
    seed = seed if seed is not None else topo.params.seed
    rng = derive_rng(seed, "scan", "caida")
    result = ScanResult(dataset="CAIDA Routed /24", entries=0)
    with telemetry.span("scan.caida_prefix"):
        for a in sorted(topo.ases.values(), key=lambda x: x.asn):
            p24 = model.random(topo, a.asn)
            n24 = slash24s_of(topo, a.asn)
            result.entries += n24  # one probe target per routed /24
            hits = sum(rng.random() < p24 for _ in range(n24))
            if hits:
                result.observed_asns.add(a.asn)
        # Only leaked IXP LANs appear in the routed table at all.
        for ixp in _routed_ixps(topo):
            result.entries += 1
            if rng.random() < model.ixp_fabric_response:
                result.observed_ixps.add(ixp.ixp_id)
    _record_scan(result)
    return result


def default_yarrp_vantage(topo: Topology) -> int:
    """The paper ran YARRP "in Rwanda using both a residential network
    and a campus network" — the campus NREN is the default vantage."""
    for a in sorted(topo.ases.values(), key=lambda x: x.asn):
        if a.country_iso2 == "RW" and a.kind is ASKind.EDUCATION:
            return a.asn
    raise LookupError("no Rwandan campus network in this world")


def run_yarrp_scan(topo: Topology, routing: BGPRouting,
                   vantage_asn: int | None = None,
                   model: ResponseModel = DEFAULT_RESPONSE_MODEL,
                   seed: Optional[int] = None,
                   sample_rate: float = 0.3) -> ScanResult:
    """Randomized traceroute scan from one vantage AS.

    Targets random addresses in routed /24s (destination responsiveness
    as in the prefix scan, scaled by ``yarrp_factor``) and additionally
    observes every AS/IXP that reveals itself on the forward path.
    """
    if vantage_asn is None:
        vantage_asn = default_yarrp_vantage(topo)
    seed = seed if seed is not None else topo.params.seed
    rng = derive_rng(seed, "scan", "yarrp")
    result = ScanResult(dataset="YARRP", entries=0)
    with telemetry.span("scan.yarrp", vantage=vantage_asn):
        return _run_yarrp_scan(topo, routing, vantage_asn, model, rng,
                               sample_rate, result)


def _run_yarrp_scan(topo, routing, vantage_asn, model, rng, sample_rate,
                    result) -> ScanResult:
    path_cache: dict[int, Optional[list]] = {}
    for a in sorted(topo.ases.values(), key=lambda x: x.asn):
        n24 = slash24s_of(topo, a.asn)
        probed = sum(rng.random() < sample_rate for _ in range(n24))
        result.entries += probed
        if not probed:
            continue
        p_dst = model.yarrp(topo, a.asn)
        dst_hits = sum(rng.random() < p_dst for _ in range(probed))
        if dst_hits:
            result.observed_asns.add(a.asn)
        # Transit visibility: the traced path reveals intermediate ASes
        # and IXP fabric crossings regardless of destination response.
        if a.asn not in path_cache:
            sites = as_path_geography(topo, routing, vantage_asn, a.asn)
            path_cache[a.asn] = sites
        sites = path_cache[a.asn]
        if sites is None:
            continue
        for site in sites[:-1]:
            if rng.random() >= model.hop_response:
                continue
            if site.is_ixp and site.ixp_id is not None:
                result.observed_ixps.add(site.ixp_id)
            else:
                result.observed_asns.add(site.asn)
    _record_scan(result)
    return result
