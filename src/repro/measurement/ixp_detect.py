"""traIXroute-style IXP detection in traceroute paths.

An IXP crossing is detected when a hop address falls inside a peering
LAN listed in an *IXP directory* (PeeringDB/PCH analogue).  Detection
is therefore only as good as the directory: exchanges absent from it
are invisible — the mechanism behind Fig. 3 excluding Northern Africa
("lack of IXPs showing up in our data set").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.measurement.traceroute import TracerouteResult
from repro.topology import IXP, Prefix, Topology


@dataclass(frozen=True)
class IXPDirectoryEntry:
    """One exchange as listed in the public directory."""

    ixp_id: int
    name: str
    country_iso2: str
    lan_prefix: Prefix


@dataclass
class IXPDirectory:
    """A PeeringDB/PCH-like registry of exchanges and their LANs."""

    entries: list[IXPDirectoryEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def ixp_ids(self) -> set[int]:
        return {e.ixp_id for e in self.entries}

    def lookup(self, ip: int) -> Optional[IXPDirectoryEntry]:
        for entry in self.entries:
            if entry.lan_prefix.contains_ip(ip):
                return entry
        return None


@dataclass(frozen=True)
class IXPCrossing:
    """A detected IXP traversal inside one traceroute."""

    ixp_id: int
    name: str
    hop_index: int
    fabric_ip: int


def detect_ixp_crossings(trace: TracerouteResult,
                         directory: IXPDirectory) -> list[IXPCrossing]:
    """All IXP crossings visible in ``trace`` per the directory."""
    crossings: list[IXPCrossing] = []
    for idx, hop in enumerate(trace.hops):
        if hop.ip is None:
            continue
        entry = directory.lookup(hop.ip)
        if entry is not None:
            crossings.append(IXPCrossing(entry.ixp_id, entry.name, idx,
                                         hop.ip))
    return crossings


def traverses_ixp(trace: TracerouteResult,
                  directory: IXPDirectory) -> bool:
    return bool(detect_ixp_crossings(trace, directory))


def detected_ixps(traces: Iterable[TracerouteResult],
                  directory: IXPDirectory) -> set[int]:
    """Union of IXPs detected across a batch of traceroutes."""
    out: set[int] = set()
    for trace in traces:
        for crossing in detect_ixp_crossings(trace, directory):
            out.add(crossing.ixp_id)
    return out
