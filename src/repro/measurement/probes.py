"""Vantage points and measurement platforms.

Two platform archetypes matter to the paper:

* **Atlas-like** (§6.2, §7.1): volunteer-driven, so probe placement
  follows where volunteers are — biased toward mature markets and
  fixed-line/academic networks, thin on mobile networks and on many
  African countries entirely ("geographic bias in the platform
  deployments limits their representativeness").
* **Observatory** (§7): intentionally placed probes — Raspberry Pis
  with wired *and* cellular uplinks, mobile handsets, and residential
  VPN proxies — selected to cover specific infrastructure (IXPs, cable
  landings, resolvers).

Both produce :class:`VantagePoint` objects the measurement primitives
consume; the difference is *where* they are, which is the whole point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.geo import AFRICAN_COUNTRIES, Region, country
from repro.topology import ASKind, Topology
from repro.util import derive_rng


class AccessTech(enum.Enum):
    """Access technology of a vantage point's uplink."""

    FIXED = "fixed"
    CELLULAR = "cellular"
    VPN_PROXY = "vpn-proxy"


class ProbeKind(enum.Enum):
    """Hardware/deployment class of a probe."""

    ATLAS_PROBE = "atlas-probe"
    ATLAS_ANCHOR = "atlas-anchor"
    RASPBERRY_PI = "raspberry-pi"
    MOBILE_HANDSET = "mobile-handset"
    RESIDENTIAL_VPN = "residential-vpn"


@dataclass(frozen=True)
class VantagePoint:
    """A measurement vantage point inside some AS."""

    probe_id: int
    asn: int
    country_iso2: str
    kind: ProbeKind
    access: AccessTech
    #: Second uplink (Observatory RPis carry a cellular dongle, §7.1).
    secondary_access: Optional[AccessTech] = None

    @property
    def region(self) -> Region:
        return country(self.country_iso2).region

    @property
    def is_mobile(self) -> bool:
        return self.access is AccessTech.CELLULAR

    def uplinks(self) -> tuple[AccessTech, ...]:
        if self.secondary_access is None:
            return (self.access,)
        return (self.access, self.secondary_access)


@dataclass
class ProbePlatform:
    """A set of vantage points plus platform metadata."""

    name: str
    probes: list[VantagePoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.probes)

    def in_region(self, region: Region) -> list[VantagePoint]:
        return [p for p in self.probes if p.region is region]

    def in_country(self, iso2: str) -> list[VantagePoint]:
        return [p for p in self.probes if p.country_iso2 == iso2]

    def asns(self) -> set[int]:
        return {p.asn for p in self.probes}

    def countries(self) -> set[str]:
        return {p.country_iso2 for p in self.probes}

    def mobile_share(self) -> float:
        if not self.probes:
            return 0.0
        return sum(p.is_mobile for p in self.probes) / len(self.probes)


#: Per-region probability that a given eyeball AS hosts any Atlas-like
#: probe, reflecting the volunteer-driven geographic bias the paper
#: measures (§6.2): dense in Europe/NA, concentrated in ZA/KE/NG within
#: Africa, near-absent in Central Africa.
ATLAS_HOST_RATE: dict[Region, float] = {
    Region.SOUTHERN_AFRICA: 0.60,
    Region.EASTERN_AFRICA: 0.38,
    Region.NORTHERN_AFRICA: 0.28,
    Region.WESTERN_AFRICA: 0.26,
    Region.CENTRAL_AFRICA: 0.12,
    Region.EUROPE: 0.85,
    Region.NORTH_AMERICA: 0.75,
    Region.SOUTH_AMERICA: 0.35,
    Region.ASIA_PACIFIC: 0.40,
}


def build_atlas_platform(topo: Topology, seed: Optional[int] = None
                         ) -> ProbePlatform:
    """Synthesize an Atlas-like deployment over the topology.

    Volunteer bias: probes land in fixed-line and academic networks of
    better-connected markets; mobile networks are underrepresented
    (volunteers plug probes into home broadband, not SIM dongles).
    """
    seed = seed if seed is not None else topo.params.seed
    rng = derive_rng(seed, "platform", "atlas")
    platform = ProbePlatform(name="atlas-like")
    probe_id = 1
    for a in sorted(topo.ases.values(), key=lambda x: x.asn):
        if a.tier != 3 and a.kind is not ASKind.EDUCATION:
            continue
        if not (a.kind.is_eyeball or a.kind is ASKind.EDUCATION):
            continue
        host_rate = ATLAS_HOST_RATE[a.region]
        # Fixed-line and academic networks attract volunteers; mobile
        # carriers rarely host probes.
        if a.kind is ASKind.MOBILE:
            host_rate *= 0.18
        if rng.random() >= host_rate:
            continue
        n = 1 + (rng.random() < 0.3)
        for _ in range(n):
            is_anchor = rng.random() < 0.12
            platform.probes.append(VantagePoint(
                probe_id=probe_id,
                asn=a.asn,
                country_iso2=a.country_iso2,
                kind=(ProbeKind.ATLAS_ANCHOR if is_anchor
                      else ProbeKind.ATLAS_PROBE),
                access=(AccessTech.CELLULAR if a.kind is ASKind.MOBILE
                        else AccessTech.FIXED),
            ))
            probe_id += 1
    # Anchors: the NCC co-locates anchors with African IXPs and NRENs,
    # so countries with a sizeable exchange get one regardless of
    # volunteer luck — this is how intra-country paths enter the data.
    anchors_per_cc: dict[str, int] = {}
    for ixp in sorted(topo.ixps.values(), key=lambda x: x.ixp_id):
        if not ixp.is_african or len(ixp.members) < 4:
            continue
        if anchors_per_cc.get(ixp.country_iso2, 0) >= 3:
            continue
        hosted = {p.asn for p in platform.probes
                  if p.country_iso2 == ixp.country_iso2}
        hosts = [m for m in sorted(ixp.members)
                 if topo.as_(m).tier == 3 and m not in hosted
                 and topo.as_(m).country_iso2 == ixp.country_iso2]
        if not hosts:
            continue
        # Anchors are typically hosted by NRENs and universities.
        nren_hosts = [m for m in hosts
                      if topo.as_(m).kind is ASKind.EDUCATION]
        if nren_hosts:
            hosts = nren_hosts + [m for m in hosts if m not in nren_hosts]
            hosts = hosts[:max(2, len(nren_hosts))]
        # Large exchanges co-host two anchors (different member ASes).
        n_anchors = 2 if len(ixp.members) >= 8 else 1
        for asn in rng.sample(hosts, k=min(n_anchors, len(hosts))):
            platform.probes.append(VantagePoint(
                probe_id=probe_id, asn=asn,
                country_iso2=ixp.country_iso2, kind=ProbeKind.ATLAS_ANCHOR,
                access=AccessTech.FIXED))
            anchors_per_cc[ixp.country_iso2] = \
                anchors_per_cc.get(ixp.country_iso2, 0) + 1
            probe_id += 1
    return platform


def build_observatory_platform(topo: Topology, host_asns: Iterable[int],
                               seed: Optional[int] = None,
                               probes_per_asn: int = 1) -> ProbePlatform:
    """Deploy Observatory probes inside an explicit set of host ASes.

    The host list normally comes from
    :func:`repro.observatory.placement.place_probes`; each RPi probe
    carries a wired uplink plus a cellular dongle (§7.1 "Mobile-focus"),
    and mobile-network hosts get handset probes.
    """
    seed = seed if seed is not None else topo.params.seed
    rng = derive_rng(seed, "platform", "observatory")
    platform = ProbePlatform(name="observatory")
    probe_id = 100_000
    for asn in sorted(set(host_asns)):
        a = topo.as_(asn)
        for _ in range(probes_per_asn):
            if a.kind is ASKind.MOBILE:
                kind, access, secondary = (ProbeKind.MOBILE_HANDSET,
                                           AccessTech.CELLULAR, None)
            else:
                kind, access, secondary = (ProbeKind.RASPBERRY_PI,
                                           AccessTech.FIXED,
                                           AccessTech.CELLULAR)
            platform.probes.append(VantagePoint(
                probe_id=probe_id, asn=asn,
                country_iso2=a.country_iso2, kind=kind, access=access,
                secondary_access=secondary))
            probe_id += 1
    return platform
