"""DNS resolution measurement.

Models the §5.2 failure mode end to end: a client's query must first
reach its configured recursive resolver (which may sit in another
country or on a cloud PoP), and the resolver must then reach
authoritative servers — which for most zones live outside Africa.
During a cable cut, an outsourced resolver is unreachable and even a
reachable one cannot resolve uncached names, so "local" services with
remote DNS still break.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.routing import PhysicalNetwork
from repro.topology import ResolverLocality, Topology
from repro.util import derive_rng

#: Probability a popular name is answerable from resolver cache.
CACHE_HIT_RATE = 0.65
#: Server-side processing (ms) per resolution leg.
RESOLVER_PROCESSING_MS = 3.0
#: Authoritative infrastructure for most zones is hosted here.
AUTHORITATIVE_COUNTRIES = ("US", "GB", "DE", "NL")


@dataclass(frozen=True)
class DNSResult:
    """Outcome of one simulated resolution."""

    client_asn: int
    domain: str
    ok: bool
    rtt_ms: Optional[float]
    resolver_country: str
    locality: ResolverLocality
    cache_hit: bool
    failure_reason: Optional[str] = None


class DNSMeasurement:
    """Resolution simulator over the physical layer.

    Failure has two modes: hard partition (no physical route / satellite
    fallback) and *congestion collapse* — when a country has lost a
    large share of its lit international capacity, the surviving links
    saturate and queries time out in proportion to the loss.  The
    congestion mode is what made March 2024 a DNS event even for
    countries that kept some fiber (§5.2).
    """

    def __init__(self, topo: Topology, phys: PhysicalNetwork,
                 seed: Optional[int] = None,
                 cache_hit_rate: float = CACHE_HIT_RATE,
                 congestion_onset: float = 0.35) -> None:
        self._topo = topo
        self._phys = phys
        self._cache_hit_rate = cache_hit_rate
        self._congestion_onset = congestion_onset
        self._severity_cache: dict[tuple, float] = {}
        self._seed = seed if seed is not None else topo.params.seed
        self._rng = derive_rng(self._seed, "measurement", "dns")

    def _congestion(self, iso2: str, down: tuple) -> float:
        """Timeout probability for international legs from ``iso2``."""
        if not down:
            return 0.0
        key = (iso2, down)
        if key not in self._severity_cache:
            before = self._phys.international_traffic_weight(iso2)
            if before <= 0:
                severity = 0.0
            else:
                after = self._phys.international_traffic_weight(
                    iso2, down_cables=down)
                severity = max(0.0, 1.0 - after / before)
            self._severity_cache[key] = severity
        severity = self._severity_cache[key]
        if severity <= self._congestion_onset:
            return 0.0
        return min(0.95, (severity - self._congestion_onset)
                   / (1.0 - self._congestion_onset))

    def resolve(self, client_asn: int, domain: str,
                down_cables: Sequence[int] = (),
                rng: Optional[random.Random] = None) -> DNSResult:
        """Resolve ``domain`` for a client inside ``client_asn``.

        ``rng`` overrides the instance stream — parallel drivers (the
        monitoring runner) pass a per-unit RNG derived from the unit's
        identity so resolutions are order-independent across workers.
        """
        if rng is None:
            rng = self._rng
        topo = self._topo
        cfg = topo.resolver_configs.get(client_asn)
        if cfg is None:
            raise KeyError(f"AS{client_asn} has no resolver config")
        client_cc = topo.as_(client_asn).country_iso2
        down = tuple(down_cables)

        # Cloud resolvers re-anchor when the in-Africa PoP is cut off.
        resolver_cc = cfg.hosted_in
        if cfg.locality is ResolverLocality.CLOUD and down:
            leg = self._phys.route(client_cc, resolver_cc,
                                   down_cables=down)
            if leg is None or leg.uses_satellite:
                svc = next((s for s in topo.cloud_resolvers
                            if s.asn == cfg.operator_asn), None)
                if svc is not None:
                    resolver_cc = svc.nearest_pop(client_cc,
                                                  african_pops_up=False)

        # Leg 1: client -> resolver.
        rtt = 0.0
        congestion = self._congestion(client_cc, down)
        if resolver_cc != client_cc:
            leg = self._phys.route(client_cc, resolver_cc,
                                   down_cables=down)
            if leg is None:
                return self._fail(client_asn, domain, cfg, resolver_cc,
                                  "resolver unreachable")
            if leg.uses_satellite and rng.random() < 0.6:
                return self._fail(client_asn, domain, cfg, resolver_cc,
                                  "resolver unreachable (congested fallback)")
            if rng.random() < congestion:
                return self._fail(client_asn, domain, cfg, resolver_cc,
                                  "resolver timeout (congestion)")
            rtt += leg.rtt_ms
        rtt += RESOLVER_PROCESSING_MS

        # Leg 2: resolver -> authoritative (skipped on cache hit).
        cache_hit = rng.random() < self._cache_hit_rate
        if not cache_hit:
            auth_leg = self._best_authoritative_leg(resolver_cc, down)
            if auth_leg is None:
                return self._fail(client_asn, domain, cfg, resolver_cc,
                                  "authoritative unreachable", cache_hit)
            if rng.random() < self._congestion(resolver_cc, down):
                return self._fail(client_asn, domain, cfg, resolver_cc,
                                  "authoritative timeout (congestion)",
                                  cache_hit)
            rtt += auth_leg + RESOLVER_PROCESSING_MS
        return DNSResult(client_asn, domain, True,
                         max(1.0, rtt + rng.gauss(0.0, 1.0)),
                         resolver_cc, cfg.locality, cache_hit)

    def _best_authoritative_leg(self, resolver_cc: str,
                                down: tuple) -> Optional[float]:
        best: Optional[float] = None
        for auth_cc in AUTHORITATIVE_COUNTRIES:
            if auth_cc == resolver_cc:
                return RESOLVER_PROCESSING_MS
            leg = self._phys.route(resolver_cc, auth_cc, down_cables=down)
            if leg is None or leg.uses_satellite:
                continue
            if best is None or leg.rtt_ms < best:
                best = leg.rtt_ms
        return best

    def _fail(self, client_asn, domain, cfg, resolver_cc, reason,
              cache_hit: bool = False) -> DNSResult:
        return DNSResult(client_asn, domain, False, None, resolver_cc,
                         cfg.locality, cache_hit, failure_reason=reason)
