"""Application-layer measurement: full page loads.

The paper's §1 motivation is user-facing: the 2024 cable cuts
"disrupted banking transactions and digital payments of utilities".
A page load is the unit of that experience, and it fails in more ways
than a ping: DNS must resolve (§5.2), the TCP/TLS handshakes pay the
detour RTT several times over (§4.1), the transfer rides congested
links, and *third-party dependencies* (analytics, fonts, payment APIs
— Kashaf et al., cited as [45]) each add their own remote fetch.

The Observatory's "rich application frameworks" requirement (§7) exists
precisely because packet-level platforms cannot see this composite
failure mode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.geo import country
from repro.measurement.dns_measure import DNSMeasurement
from repro.measurement.probes import AccessTech
from repro.routing import PhysicalNetwork
from repro.topology import Topology, Website
from repro.util import derive_rng

#: Handshake round trips before the first content byte (TCP + TLS1.3).
HANDSHAKE_RTTS = 3
#: Access-technology peak rates (Mbps) for the transfer model.
ACCESS_MBPS = {AccessTech.FIXED: 40.0, AccessTech.CELLULAR: 12.0,
               AccessTech.VPN_PROXY: 20.0}
#: TCP throughput degrades with RTT (window-limited transfer).
RTT_REFERENCE_MS = 50.0
#: Page weight (bytes) for the main document + assets.
PAGE_BYTES_MAIN = 1_600_000
PAGE_BYTES_PER_DEPENDENCY = 350_000


class ThirdPartyKind(enum.Enum):
    """Categories of third-party services embedded in pages."""

    ANALYTICS = "analytics"       # hosted US
    FONTS_CDN = "fonts/assets"    # hosted EU
    PAYMENT_API = "payment API"   # hosted EU/US, *critical*
    CAPTCHA = "captcha/auth"      # hosted US, *critical*

    @property
    def critical(self) -> bool:
        """Critical dependencies block the page when unreachable."""
        return self in (ThirdPartyKind.PAYMENT_API,
                        ThirdPartyKind.CAPTCHA)

    @property
    def hosted_in(self) -> str:
        if self in (ThirdPartyKind.FONTS_CDN, ThirdPartyKind.PAYMENT_API):
            return "DE"
        return "US"


@dataclass(frozen=True)
class ThirdPartyDependency:
    kind: ThirdPartyKind
    hosted_in: str


def dependencies_of(site: Website) -> tuple[ThirdPartyDependency, ...]:
    """Deterministic third-party dependency set for a site.

    Derived from the domain so every client sees the same page
    composition; higher-ranked (more commercial) sites carry more
    dependencies, matching the [45] observation that African sites lean
    heavily on foreign third parties.
    """
    rng = derive_rng(0, "pageload", "deps", site.domain)
    kinds = [ThirdPartyKind.ANALYTICS]
    if rng.random() < 0.8:
        kinds.append(ThirdPartyKind.FONTS_CDN)
    if rng.random() < (0.45 if site.rank <= 20 else 0.25):
        kinds.append(ThirdPartyKind.PAYMENT_API)
    if rng.random() < 0.3:
        kinds.append(ThirdPartyKind.CAPTCHA)
    return tuple(ThirdPartyDependency(k, k.hosted_in) for k in kinds)


@dataclass(frozen=True)
class PageLoadResult:
    """One simulated page load."""

    client_asn: int
    domain: str
    ok: bool
    total_ms: Optional[float]
    dns_ms: Optional[float] = None
    handshake_ms: Optional[float] = None
    transfer_ms: Optional[float] = None
    dependencies_fetched: int = 0
    failure_reason: Optional[str] = None


@dataclass
class PageLoadStudy:
    """Aggregate of many loads (per country, per condition)."""

    results: list[PageLoadResult] = field(default_factory=list)

    def failure_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(not r.ok for r in self.results) / len(self.results)

    def median_load_ms(self) -> Optional[float]:
        times = sorted(r.total_ms for r in self.results
                       if r.ok and r.total_ms is not None)
        if not times:
            return None
        return times[len(times) // 2]


class PageLoadSimulator:
    """Composite application-level measurement over all substrates."""

    def __init__(self, topo: Topology, phys: PhysicalNetwork,
                 dns: Optional[DNSMeasurement] = None,
                 seed: Optional[int] = None) -> None:
        self._topo = topo
        self._phys = phys
        self._dns = dns or DNSMeasurement(topo, phys, seed=seed)
        self._rng = derive_rng(
            seed if seed is not None else topo.params.seed,
            "measurement", "pageload")

    # ------------------------------------------------------------------
    def load(self, client_asn: int, site: Website,
             access: AccessTech = AccessTech.CELLULAR,
             down_cables: Sequence[int] = ()) -> PageLoadResult:
        """Load one page for a client in ``client_asn``."""
        down = tuple(down_cables)
        dns_result = self._dns.resolve(client_asn, site.domain,
                                       down_cables=down)
        if not dns_result.ok:
            return PageLoadResult(client_asn, site.domain, False, None,
                                  failure_reason="DNS: "
                                  + (dns_result.failure_reason or "?"))
        client_cc = self._topo.as_(client_asn).country_iso2

        rtt = self._rtt(client_cc, site.server_country, down)
        if rtt is None:
            return PageLoadResult(
                client_asn, site.domain, False, None,
                dns_ms=dns_result.rtt_ms,
                failure_reason="server unreachable")
        handshake = HANDSHAKE_RTTS * rtt
        transfer = self._transfer_ms(PAGE_BYTES_MAIN, rtt, access)

        # Third-party dependencies each cost a resolution + fetch; a
        # failed *critical* dependency blocks the page.
        deps_ms = 0.0
        fetched = 0
        for dep in dependencies_of(site):
            dep_rtt = self._rtt(client_cc, dep.hosted_in, down)
            if dep_rtt is None:
                if dep.kind.critical:
                    return PageLoadResult(
                        client_asn, site.domain, False, None,
                        dns_ms=dns_result.rtt_ms,
                        failure_reason=f"critical dependency "
                        f"({dep.kind.value}) unreachable")
                continue
            fetched += 1
            deps_ms += 2 * dep_rtt + self._transfer_ms(
                PAGE_BYTES_PER_DEPENDENCY, dep_rtt, access)
        total = (dns_result.rtt_ms or 0.0) + handshake + transfer \
            + deps_ms
        return PageLoadResult(
            client_asn, site.domain, True,
            max(1.0, total + self._rng.gauss(0.0, 20.0)),
            dns_ms=dns_result.rtt_ms, handshake_ms=handshake,
            transfer_ms=transfer, dependencies_fetched=fetched)

    # ------------------------------------------------------------------
    def _rtt(self, client_cc: str, server_cc: str,
             down: tuple) -> Optional[float]:
        if client_cc == server_cc:
            return 8.0
        route = self._phys.route(client_cc, server_cc, down_cables=down)
        if route is None:
            return None
        if route.uses_satellite and self._rng.random() < 0.6:
            return None  # congested fallback drops the connection
        congestion = self._congestion(client_cc, down)
        if self._rng.random() < congestion:
            return None
        return route.rtt_ms * (1.0 + congestion)

    def _congestion(self, iso2: str, down: tuple) -> float:
        return self._dns._congestion(iso2, down)

    @staticmethod
    def _transfer_ms(nbytes: int, rtt_ms: float,
                     access: AccessTech) -> float:
        peak = ACCESS_MBPS[access]
        # Window-limited: throughput shrinks as RTT grows.
        effective = peak * min(1.0, RTT_REFERENCE_MS / max(rtt_ms, 1.0))
        effective = max(0.3, effective)
        return nbytes * 8 / (effective * 1e6) * 1000.0


def run_pageload_study(topo: Topology, phys: PhysicalNetwork,
                       client_country: str,
                       down_cables: Sequence[int] = (),
                       sites_per_client: int = 10,
                       access: AccessTech = AccessTech.CELLULAR,
                       seed: Optional[int] = None) -> PageLoadStudy:
    """Load each client's top sites; the §1 user-experience metric."""
    simulator = PageLoadSimulator(topo, phys, seed=seed)
    study = PageLoadStudy()
    sites = topo.websites.get(client_country, [])[:sites_per_client]
    clients = [a.asn for a in topo.ases_in_country(client_country)
               if a.asn in topo.resolver_configs]
    for asn in clients:
        for site in sites:
            study.results.append(simulator.load(
                asn, site, access=access, down_cables=down_cables))
    return study
