"""Recovery dynamics after connectivity failures.

Section 4.1: during cable cuts "many ASes are cut off from their
providers and will need to re-negotiate new peering relationships" —
Ghana's ministry documented exactly this in March 2024 — while
prearranged backups (KENET via South Africa) "are often
over-subscribed, rendering them ineffective".

The model: each country either has a prearranged backup transit
arrangement (probability rising with regional maturity) or must
renegotiate ad hoc.  During *correlated* multi-cable events backups are
likely oversubscribed because everyone fails onto them at once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.geo import Region, country
from repro.util import derive_rng

#: P(country has prearranged backup transit), by region maturity.
PREARRANGED_BACKUP_RATE: dict[Region, float] = {
    Region.SOUTHERN_AFRICA: 0.75,
    Region.EASTERN_AFRICA: 0.55,
    Region.NORTHERN_AFRICA: 0.55,
    Region.WESTERN_AFRICA: 0.35,
    Region.CENTRAL_AFRICA: 0.20,
    Region.EUROPE: 0.98,
    Region.NORTH_AMERICA: 0.98,
    Region.SOUTH_AMERICA: 0.85,
    Region.ASIA_PACIFIC: 0.90,
}

#: P(backup is oversubscribed) when the failure is correlated
#: (multi-cable) vs. isolated (single cable).
OVERSUBSCRIBED_PROB_CORRELATED = 0.70
OVERSUBSCRIBED_PROB_ISOLATED = 0.20


@dataclass(frozen=True)
class RecoveryOutcome:
    """How one country restored service after losing capacity."""

    iso2: str
    backup_prearranged: bool
    backup_activated: bool
    backup_oversubscribed: bool
    #: Days until the country restored acceptable service (may be well
    #: before the physical repair completes).
    restore_days: float


class RecoveryModel:
    """Samples per-country recovery outcomes."""

    def __init__(self, seed: int) -> None:
        self._seed = seed

    def has_prearranged_backup(self, iso2: str) -> bool:
        rng = derive_rng(self._seed, "recovery", "prearranged", iso2)
        return rng.random() < PREARRANGED_BACKUP_RATE[country(iso2).region]

    def recover(self, iso2: str, severity: float, repair_days: float,
                correlated: bool, rng: random.Random) -> RecoveryOutcome:
        """Sample the restoration path for one affected country."""
        prearranged = self.has_prearranged_backup(iso2)
        oversub_p = (OVERSUBSCRIBED_PROB_CORRELATED if correlated
                     else OVERSUBSCRIBED_PROB_ISOLATED)
        if prearranged:
            oversubscribed = rng.random() < oversub_p
            if not oversubscribed:
                # Backup soaks the load within hours.
                restore = min(repair_days, rng.uniform(0.1, 0.6))
                return RecoveryOutcome(iso2, True, True, False, restore)
            # Backup exists but is saturated: fall through to ad-hoc
            # renegotiation with more expensive carriers (§4.1).
            renegotiate = rng.uniform(1.0, 5.0)
            restore = min(repair_days, renegotiate)
            return RecoveryOutcome(iso2, True, True, True, restore)
        # No prearrangement: manual negotiations prolong the outage.
        renegotiate = rng.uniform(2.0, 8.0)
        restore = min(repair_days, renegotiate + rng.uniform(0.0, 2.0))
        return RecoveryOutcome(iso2, False, False, False, restore)
