"""Outage event model.

Events are what Cloudflare Radar's outage center records (§3): a cause,
a time window, and the set of affected countries with how hard each was
hit.  The engine (:mod:`repro.outages.engine`) produces them from the
physical layer; the synthetic Radar feed and the Fig. 4 analysis
consume them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OutageCause(enum.Enum):
    """Root cause taxonomy (mirrors Radar's verification categories)."""

    SUBSEA_CABLE_CUT = "subsea cable cut"
    POWER_OUTAGE = "power outage"
    GOVERNMENT_SHUTDOWN = "government-directed shutdown"
    TERRESTRIAL_FIBER_CUT = "terrestrial fiber cut"
    NATURAL_DISASTER = "natural disaster"


@dataclass(frozen=True)
class CountryImpact:
    """How one country was affected by one event."""

    iso2: str
    #: Peak fraction of the country's traffic lost (0..1).
    severity: float
    #: Time until service was fully restored for this country (days).
    outage_days: float
    #: Whether a prearranged backup was activated (§4.1 — KENET-style).
    backup_activated: bool = False
    #: Whether that backup was oversubscribed and ineffective (§4.1).
    backup_oversubscribed: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError(f"bad severity {self.severity}")
        if self.outage_days < 0:
            raise ValueError("negative outage duration")


@dataclass
class OutageEvent:
    """One outage as simulated by the engine."""

    event_id: int
    cause: OutageCause
    #: Day offset from simulation start.
    start_day: float
    #: Time until the root cause was repaired (e.g. cable splice).
    repair_days: float
    impacts: list[CountryImpact] = field(default_factory=list)
    #: Cables severed (cable-cut events only).
    cables_cut: tuple[int, ...] = ()
    description: str = ""

    @property
    def affected_countries(self) -> list[str]:
        return [i.iso2 for i in self.impacts]

    def impact_for(self, iso2: str) -> CountryImpact | None:
        for impact in self.impacts:
            if impact.iso2 == iso2:
                return impact
        return None

    def max_severity(self) -> float:
        return max((i.severity for i in self.impacts), default=0.0)

    def longest_outage_days(self) -> float:
        return max((i.outage_days for i in self.impacts), default=0.0)
