"""Corridor-correlated cable failures.

Section 5.1: "many cables are laid along similar paths and thus
failures are correlated.  For example, during the outage in March 2024,
... four cables (WACS, MainOne, SAT3, ACE) were cut due to a rock slide
under the sea near Abidjan."  A corridor incident therefore damages
each co-located cable with high probability; geographically diverse
systems (Equiano, 2Africa) escape with a much lower one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.topology import CableCorridor, SubseaCable, Topology

#: Probability a corridor incident also damages a *diverse-route* cable
#: sharing only the corridor's broad region.
DIVERSE_CUT_PROB = 0.08


@dataclass(frozen=True)
class CorridorIncident:
    """One physical incident (anchor drag, rock slide) in a corridor."""

    corridor: CableCorridor
    #: Country whose offshore approach the incident happened in (the
    #: "near Abidjan" of March 2024).
    chokepoint: str
    cut_cable_ids: tuple[int, ...]

    @property
    def multi_cable(self) -> bool:
        return len(self.cut_cable_ids) > 1


def cables_in_corridor(topo: Topology, corridor: CableCorridor,
                       year: int | None = None) -> list[SubseaCable]:
    """Active cables exposed to a given corridor."""
    return [c for c in topo.active_cables(year)
            if c.corridor is corridor]


def corridor_chokepoints(topo: Topology, corridor: CableCorridor,
                         year: int | None = None) -> dict[str, int]:
    """Landing countries of a corridor weighted by co-located cables.

    The count is how many systems pass the same offshore approach —
    the geographic concentration that makes failures correlated.
    """
    counts: dict[str, int] = {}
    for cable in cables_in_corridor(topo, corridor, year):
        for cc in cable.countries:
            counts[cc] = counts.get(cc, 0) + 1
    return counts


def draw_corridor_incident(topo: Topology, corridor: CableCorridor,
                           rng: random.Random,
                           cut_prob: float,
                           year: int | None = None
                           ) -> CorridorIncident | None:
    """Sample one localized corridor incident.

    A physical event (rock slide, anchor drag) happens in *one*
    country's offshore approach — chosen proportionally to how many
    systems pass it — and severs each co-located cable with
    ``cut_prob`` (much less for geographically diverse systems).
    Returns ``None`` when the incident misses everything.
    """
    chokepoints = corridor_chokepoints(topo, corridor, year)
    if not chokepoints:
        return None
    countries = sorted(chokepoints)
    weights = [chokepoints[cc] for cc in countries]
    anchor = rng.choices(countries, weights=weights)[0]
    cut: list[int] = []
    for cable in cables_in_corridor(topo, corridor, year):
        if anchor not in cable.countries:
            continue
        prob = DIVERSE_CUT_PROB if cable.diverse_route else cut_prob
        if rng.random() < prob:
            cut.append(cable.cable_id)
    if not cut:
        return None
    return CorridorIncident(corridor=corridor, chokepoint=anchor,
                            cut_cable_ids=tuple(cut))


def expected_joint_failures(topo: Topology, corridor: CableCorridor,
                            cut_prob: float,
                            year: int | None = None) -> float:
    """Expected number of cables severed by one corridor incident."""
    total = 0.0
    for cable in cables_in_corridor(topo, corridor, year):
        total += DIVERSE_CUT_PROB if cable.diverse_route else cut_prob
    return total
