"""Outage simulation engine.

Runs a multi-year event process over the world:

* corridor incidents (possibly severing several co-located cables at
  once), plus independent single-cable faults,
* country-level power-grid failures, government shutdowns, terrestrial
  fiber cuts / natural disasters.

Cable-cut impact is *computed*, not asserted: a country's severity is
the fraction of its international capacity lost after rerouting over
surviving cables and terrestrial links, and its outage duration comes
from the recovery model (backup activation vs. ad-hoc renegotiation).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.geo import AFRICAN_COUNTRIES, COUNTRIES, country
from repro.outages.correlate import draw_corridor_incident
from repro.outages.events import CountryImpact, OutageCause, OutageEvent
from repro.outages.recovery import RecoveryModel
from repro.routing import PhysicalNetwork
from repro.topology import CableCorridor, Topology
from repro.topology.calibration import OutageRates
from repro.util import derive_rng
from repro import telemetry

_EVENTS = telemetry.counter(
    "repro_outage_events_total", "Outage events injected",
    labels=("cause",))
_RECOVERIES = telemetry.counter(
    "repro_outage_recovery_ticks_total",
    "Country recovery computations (backup activation draws)")
_IMPACTED = telemetry.histogram(
    "repro_outage_countries_per_event",
    "Countries impacted per injected event",
    buckets=(1, 2, 3, 5, 8, 13, 21))

#: Minimum severity for an event to register on a Radar-style monitor.
DETECTION_THRESHOLD = 0.25
#: Cable repair: ship mobilisation + splice, days (lognormal-ish).
REPAIR_DAYS_MIN, REPAIR_DAYS_MODE, REPAIR_DAYS_MAX = 4.0, 11.0, 35.0


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's algorithm; adequate for the small rates used here."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


@dataclass
class SimulationResult:
    """All events of one simulated window."""

    events: list[OutageEvent] = field(default_factory=list)
    years: float = 2.0

    def by_cause(self, cause: OutageCause) -> list[OutageEvent]:
        return [e for e in self.events if e.cause is cause]

    def detected(self, threshold: float = DETECTION_THRESHOLD
                 ) -> list[OutageEvent]:
        """Events visible to a traffic-drop monitor (Radar analogue)."""
        return [e for e in self.events if e.max_severity() >= threshold]

    def countries_hit_by_cable_cuts(self,
                                    threshold: float = DETECTION_THRESHOLD,
                                    african_only: bool = True) -> set[str]:
        out: set[str] = set()
        for event in self.by_cause(OutageCause.SUBSEA_CABLE_CUT):
            for impact in event.impacts:
                if impact.severity < threshold:
                    continue
                if african_only and not country(impact.iso2).is_african:
                    continue
                out.add(impact.iso2)
        return out


class OutageSimulator:
    """Seeded multi-year outage process over a topology."""

    def __init__(self, topo: Topology, phys: Optional[PhysicalNetwork] = None,
                 rates: Optional[OutageRates] = None,
                 seed: Optional[int] = None) -> None:
        self._topo = topo
        self._phys = phys or PhysicalNetwork(topo)
        self._rates = rates or topo.params.outage_rates
        self._seed = seed if seed is not None else topo.params.seed
        self._recovery = RecoveryModel(self._seed)
        self._next_event_id = 1

    # ------------------------------------------------------------------
    def simulate(self, years: float = 2.0) -> SimulationResult:
        """Run the full event process for ``years``."""
        rng = derive_rng(self._seed, "outage", "simulate")
        result = SimulationResult(years=years)
        with telemetry.span("outages.simulate", years=years):
            with telemetry.span("outages.cable_cuts"):
                self._simulate_cable_cuts(result, years, rng)
            with telemetry.span("outages.country_events"):
                self._simulate_country_events(result, years, rng)
        result.events.sort(key=lambda e: e.start_day)
        if telemetry.enabled():
            for event in result.events:
                _EVENTS.labels(cause=event.cause.value).inc()
                _IMPACTED.observe(len(event.impacts))
        return result

    # ------------------------------------------------------------------
    def _new_id(self) -> int:
        event_id = self._next_event_id
        self._next_event_id += 1
        return event_id

    def _repair_days(self, rng: random.Random) -> float:
        return rng.triangular(REPAIR_DAYS_MIN, REPAIR_DAYS_MAX,
                              REPAIR_DAYS_MODE)

    def _simulate_cable_cuts(self, result: SimulationResult, years: float,
                             rng: random.Random) -> None:
        rates = self._rates
        for corridor in CableCorridor:
            rate = rates.corridor_event_rate.get(corridor.value, 0.0)
            for _ in range(_poisson(rng, rate * years)):
                incident = draw_corridor_incident(
                    self._topo, corridor, rng, rates.corridor_cut_prob)
                if incident is None:
                    continue
                self._emit_cable_event(result, incident.cut_cable_ids,
                                       years, rng,
                                       f"corridor incident ({corridor})")
        # Independent single-cable faults (component failure, isolated
        # anchor drag) — these are the uncorrelated baseline.
        for cable in self._topo.active_cables():
            lam = rates.independent_cable_fault_rate * years
            for _ in range(_poisson(rng, lam)):
                self._emit_cable_event(result, (cable.cable_id,), years,
                                       rng, f"isolated fault on {cable.name}")

    def _emit_cable_event(self, result: SimulationResult,
                          cut_ids: tuple[int, ...], years: float,
                          rng: random.Random, description: str) -> None:
        start = rng.uniform(0.0, years * 365.0)
        repair = self._repair_days(rng)
        correlated = len(cut_ids) > 1
        # Directly exposed: landing countries of the severed systems.
        exposed = {cc for cable_id in cut_ids
                   for cc in self._cable_countries(cable_id)}
        severity_by_cc: dict[str, float] = {}
        for iso2 in sorted(exposed):
            severity = self._capacity_loss(iso2, cut_ids)
            if severity >= 0.02:
                severity_by_cc[iso2] = severity
        # Landlocked countries transit through their coastal neighbors
        # (§2): they inherit a quality-weighted share of the impact.
        for link in self._topo.terrestrial:
            for iso2, neighbor in ((link.a, link.b), (link.b, link.a)):
                if iso2 in exposed or not country(iso2).is_african:
                    continue
                if country(iso2).coastal:
                    continue
                neighbor_sev = severity_by_cc.get(neighbor, 0.0)
                if neighbor_sev <= 0:
                    continue
                inherited = self._inherited_severity(iso2, severity_by_cc)
                if inherited >= 0.02:
                    severity_by_cc[iso2] = max(
                        severity_by_cc.get(iso2, 0.0), inherited)
        impacts = []
        for iso2, severity in sorted(severity_by_cc.items()):
            _RECOVERIES.inc()
            recovery = self._recovery.recover(iso2, severity, repair,
                                              correlated, rng)
            impacts.append(CountryImpact(
                iso2=iso2, severity=severity,
                outage_days=recovery.restore_days,
                backup_activated=recovery.backup_activated,
                backup_oversubscribed=recovery.backup_oversubscribed))
        if not impacts:
            return
        result.events.append(OutageEvent(
            event_id=self._new_id(), cause=OutageCause.SUBSEA_CABLE_CUT,
            start_day=start, repair_days=repair, impacts=impacts,
            cables_cut=cut_ids, description=description))

    def _cable_countries(self, cable_id: int) -> list[str]:
        for cable in self._topo.cables:
            if cable.cable_id == cable_id:
                return cable.countries
        return []

    def _capacity_loss(self, iso2: str, cut_ids: tuple[int, ...]) -> float:
        """Fraction of *lit* international traffic capacity lost."""
        before = self._phys.international_traffic_weight(iso2)
        if before <= 0:
            return 0.0
        after = self._phys.international_traffic_weight(
            iso2, down_cables=cut_ids)
        return max(0.0, min(1.0, 1.0 - after / before))

    def _inherited_severity(self, iso2: str,
                            severity_by_cc: dict[str, float]) -> float:
        """Impact a landlocked country inherits from transit neighbors."""
        weight_total = 0.0
        weighted = 0.0
        for link in self._topo.terrestrial:
            if not link.involves(iso2):
                continue
            neighbor = link.other(iso2)
            weight_total += link.quality
            weighted += link.quality * severity_by_cc.get(neighbor, 0.0)
        if weight_total <= 0:
            return 0.0
        return weighted / weight_total

    # ------------------------------------------------------------------
    def _simulate_country_events(self, result: SimulationResult,
                                 years: float, rng: random.Random) -> None:
        rates = self._rates
        for iso2 in sorted(COUNTRIES):
            c = COUNTRIES[iso2]
            # Power-grid failures scale with grid unreliability.
            lam_power = rates.power_outage_scale * (1.0 - c.grid_reliability)
            for _ in range(_poisson(rng, lam_power * years)):
                severity = rng.uniform(0.15, 0.85)
                duration = rng.uniform(0.05, 0.6)  # hours to half a day
                result.events.append(OutageEvent(
                    event_id=self._new_id(),
                    cause=OutageCause.POWER_OUTAGE,
                    start_day=rng.uniform(0.0, years * 365.0),
                    repair_days=duration,
                    impacts=[CountryImpact(iso2, severity, duration)],
                    description=f"grid failure in {c.name}"))
            shutdown_rate = (rates.shutdown_rate_africa if c.is_african
                             else rates.shutdown_rate_reference)
            for _ in range(_poisson(rng, shutdown_rate * years)):
                duration = rng.uniform(0.3, 6.0)
                result.events.append(OutageEvent(
                    event_id=self._new_id(),
                    cause=OutageCause.GOVERNMENT_SHUTDOWN,
                    start_day=rng.uniform(0.0, years * 365.0),
                    repair_days=duration,
                    impacts=[CountryImpact(iso2, rng.uniform(0.7, 1.0),
                                           duration)],
                    description=f"directed shutdown in {c.name}"))
            misc_rate = (rates.misc_rate_africa if c.is_african
                         else rates.misc_rate_reference)
            for _ in range(_poisson(rng, misc_rate * years)):
                cause = (OutageCause.TERRESTRIAL_FIBER_CUT
                         if rng.random() < 0.7
                         else OutageCause.NATURAL_DISASTER)
                duration = rng.uniform(0.1, 2.5)
                severity = rng.uniform(0.1, 0.7)
                if not c.is_african:
                    severity *= 0.85  # redundancy absorbs part of it
                result.events.append(OutageEvent(
                    event_id=self._new_id(), cause=cause,
                    start_day=rng.uniform(0.0, years * 365.0),
                    repair_days=duration,
                    impacts=[CountryImpact(iso2, severity, duration)],
                    description=f"{cause.value} in {c.name}"))


def march_2024_scenario(topo: Topology) -> tuple[tuple[int, ...],
                                                 tuple[int, ...]]:
    """The paper's concrete March-2024 events as cable-id tuples.

    Returns (west_coast_cut, east_coast_cut): WACS/MainOne/SAT-3/ACE
    near Abidjan, and EIG/Seacom/AAE-1 in the Red Sea (§5.1).
    """
    by_name = {c.name: c.cable_id for c in topo.cables}
    west = tuple(by_name[n] for n in ("WACS", "MainOne", "SAT-3/WASC", "ACE")
                 if n in by_name)
    east = tuple(by_name[n] for n in ("EIG", "SEACOM", "AAE-1")
                 if n in by_name)
    return west, east
