"""Outage substrate: events, corridor correlation, recovery, simulation."""

from repro.outages.events import CountryImpact, OutageCause, OutageEvent
from repro.outages.correlate import (
    CorridorIncident,
    cables_in_corridor,
    draw_corridor_incident,
    expected_joint_failures,
    DIVERSE_CUT_PROB,
)
from repro.outages.recovery import (
    RecoveryModel,
    RecoveryOutcome,
    PREARRANGED_BACKUP_RATE,
)
from repro.outages.engine import (
    OutageSimulator,
    SimulationResult,
    march_2024_scenario,
    DETECTION_THRESHOLD,
)

__all__ = [
    "CountryImpact", "OutageCause", "OutageEvent",
    "CorridorIncident", "cables_in_corridor", "draw_corridor_incident",
    "expected_joint_failures", "DIVERSE_CUT_PROB",
    "RecoveryModel", "RecoveryOutcome", "PREARRANGED_BACKUP_RATE",
    "OutageSimulator", "SimulationResult", "march_2024_scenario",
    "DETECTION_THRESHOLD",
]
