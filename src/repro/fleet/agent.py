"""The measurement agent: one simulated vantage-point process.

An agent is a pull loop against a coordinator: register, poll for a
lease, rebuild the unit's inputs from the spec (never from the wire),
run the measurements through :mod:`repro.fleet.campaign`, submit, and
repeat until the coordinator says to drain or there is no more work.

Two transports share the loop:

* :class:`TcpClient` — the real thing: ``repro agent`` subprocesses
  talking JSON-over-TCP (:mod:`repro.fleet.rpc`), retrying lost
  messages;
* :class:`LocalClient` — the same protocol dispatched in-process
  (fault injection included), used by tests and ``repro campaign``'s
  threaded mode where byte-identity with the serial oracle is the
  point, not throughput.

Fault sites: ``fleet.agent_crash`` kills the agent on a leased unit —
``os._exit`` with :data:`repro.faults.CRASH_EXIT_CODE` in a real
process (``hard_exit=True``), an :class:`AgentCrashed` raise when
in-process (exiting the thread; taking the whole test process down
would be the one thing a *simulated* crash must not do).
``fleet.agent_stall`` sleeps through the lease timeout instead, and
``fleet.msg_drop`` is injected in the transports.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro import faults
from repro.fleet import rpc
from repro.fleet.campaign import (
    CampaignSpec,
    bundle_for,
    run_unit,
    shards_for,
)
from repro.fleet.coordinator import FleetCoordinator


class AgentCrashed(RuntimeError):
    """In-process stand-in for an injected hard agent death."""


class LocalClient:
    """Protocol dispatch straight into a coordinator object.

    Same retry/drop semantics as the TCP path so in-process fleets
    exercise the full loss-tolerance machinery.
    """

    def __init__(self, coordinator: FleetCoordinator,
                 retries: int = rpc.DEFAULT_RETRIES) -> None:
        self._coordinator = coordinator
        self._retries = retries

    def call(self, doc: dict[str, Any], ident: str = "") -> dict[str, Any]:
        op = str(doc.get("op", ""))
        last: Optional[Exception] = None
        for attempt in range(self._retries + 1):
            try:
                rpc.maybe_drop(op, ident, "request")
                resp = rpc.dispatch(self._coordinator, doc)
                rpc.maybe_drop(op, ident, "response")
                return resp
            except rpc.MessageDropped as exc:
                last = exc
                if attempt < self._retries:
                    time.sleep(rpc.BACKOFF_S * (attempt + 1))
        assert last is not None
        raise last


class TcpClient:
    """Protocol dispatch over the JSON-line TCP transport."""

    def __init__(self, address: tuple[str, int], timeout: float = 10.0,
                 retries: int = rpc.DEFAULT_RETRIES) -> None:
        self._address = (address[0], int(address[1]))
        self._timeout = timeout
        self._retries = retries

    def call(self, doc: dict[str, Any], ident: str = "") -> dict[str, Any]:
        return rpc.call(self._address, doc, timeout=self._timeout,
                        retries=self._retries, ident=ident)


@dataclass
class AgentStats:
    """What one agent loop did before exiting."""

    agent_id: str
    units_done: int = 0
    polls: int = 0
    heartbeats: int = 0
    shutdown: bool = False
    errors: list[str] = field(default_factory=list)


class Agent:
    """The pull loop (see module docstring)."""

    def __init__(self, client: Any, agent_id: str, workers: int = 1,
                 poll_s: float = 0.2, hard_exit: bool = False,
                 max_idle_polls: Optional[int] = None) -> None:
        self._client = client
        self.agent_id = agent_id
        self._workers = max(1, int(workers))
        self._poll_s = poll_s
        self._hard_exit = hard_exit
        #: Stop after this many consecutive no-work polls (None = only
        #: a drain stops us — the daemon mode).
        self._max_idle_polls = max_idle_polls
        self.stats = AgentStats(agent_id=agent_id)
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    # ------------------------------------------------------------------
    def _call(self, doc: dict[str, Any], ident: str = "") -> dict[str, Any]:
        doc = {**doc, "agent_id": self.agent_id, "pid": os.getpid()}
        return self._client.call(doc, ident=ident)

    def _run_unit(self, unit: dict[str, Any]) -> None:
        spec = CampaignSpec.from_dict(unit["spec"])
        round_idx = int(unit["round"])
        shard_idx = int(unit["shard"])
        ident = f"{unit['campaign_id']}:{round_idx}:{shard_idx}"
        if faults.should_fire("fleet.agent_crash", ident):
            if self._hard_exit:
                os._exit(faults.CRASH_EXIT_CODE)
            raise AgentCrashed(f"injected crash on {ident}")
        faults.sleep_if("fleet.agent_stall", ident)
        bundle = bundle_for(spec.seed, spec.scale)
        shard = shards_for(bundle, spec)[shard_idx]
        result = run_unit(bundle, spec, round_idx, shard,
                          workers=self._workers)
        self._call({"op": "submit",
                    "campaign_id": unit["campaign_id"],
                    "lease_id": unit["lease_id"],
                    "round": round_idx, "shard": shard_idx,
                    "result": result},
                   ident=f"submit:{self.agent_id}:{ident}")
        self.stats.units_done += 1

    def run(self) -> AgentStats:
        """Register and pull until drained, stopped or idled out."""
        self._call({"op": "register"},
                   ident=f"register:{self.agent_id}")
        idle = 0
        while not self._stop.is_set():
            self.stats.polls += 1
            resp = self._call(
                {"op": "lease"},
                ident=f"lease:{self.agent_id}:{self.stats.polls}")
            if resp.get("shutdown"):
                self.stats.shutdown = True
                break
            unit = resp.get("unit")
            if unit is None:
                idle += 1
                if self._max_idle_polls is not None \
                        and idle >= self._max_idle_polls:
                    break
                self._call({"op": "heartbeat"},
                           ident=f"hb:{self.agent_id}:{idle}")
                self.stats.heartbeats += 1
                self._stop.wait(self._poll_s)
                continue
            idle = 0
            self._run_unit(unit)
        return self.stats


def spawn_local_agents(coordinator: FleetCoordinator, count: int,
                       workers: int = 1, poll_s: float = 0.05,
                       prefix: str = "local") -> list[tuple[threading.Thread,
                                                            Agent]]:
    """Start ``count`` in-process agents on daemon threads.

    An :class:`AgentCrashed` raise ends its thread only — from the
    coordinator's point of view that agent just went silent, which is
    exactly the failure being simulated.
    """
    out: list[tuple[threading.Thread, Agent]] = []
    for i in range(count):
        agent = Agent(LocalClient(coordinator),
                      agent_id=f"{prefix}-{i}", workers=workers,
                      poll_s=poll_s)

        def _loop(a: Agent = agent) -> None:
            try:
                a.run()
            except AgentCrashed as exc:
                a.stats.errors.append(str(exc))

        t = threading.Thread(target=_loop, daemon=True,
                             name=f"fleet-agent-{i}")
        t.start()
        out.append((t, agent))
    return out


__all__ = [
    "Agent", "AgentCrashed", "AgentStats", "LocalClient", "TcpClient",
    "spawn_local_agents",
]
