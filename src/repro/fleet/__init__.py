"""repro.fleet — the distributed observatory.

The paper's observatory is not one machine: it is a coordinator and a
fleet of cheap vantage-point agents scattered across unreliable
infrastructure (§7).  This package reproduces that shape:

* :mod:`repro.fleet.campaign` — the determinism contract: campaigns
  are pure functions of a :class:`CampaignSpec`, shards are derived
  from the topology, and every re-execution of a unit is
  byte-identical.
* :mod:`repro.fleet.coordinator` — membership, lease-based work
  assignment, idempotent result ingestion, round barriers, merge.
* :mod:`repro.fleet.agent` — the pull loop an agent runs, in-process
  or as a ``repro agent`` subprocess.
* :mod:`repro.fleet.rpc` — one-JSON-line-per-connection TCP protocol
  with injected message loss (``fleet.msg_drop``).

``docs/distributed.md`` documents the protocol and failure matrix.
"""

from repro.fleet.agent import (
    Agent,
    AgentCrashed,
    AgentStats,
    LocalClient,
    TcpClient,
    spawn_local_agents,
)
from repro.fleet.campaign import (
    ARTIFACT_KIND,
    CampaignSpec,
    MERGED_FORMAT,
    Shard,
    WorldBundle,
    bundle_for,
    merge_results,
    merged_digest,
    plan_shards,
    run_campaign_serial,
    run_unit,
    shards_for,
)
from repro.fleet.coordinator import (
    AgentInfo,
    Campaign,
    FleetCoordinator,
    UnitState,
)
from repro.fleet.rpc import CoordinatorServer, MessageDropped, RpcError

__all__ = [
    "ARTIFACT_KIND", "Agent", "AgentCrashed", "AgentInfo",
    "AgentStats", "Campaign", "CampaignSpec", "CoordinatorServer",
    "FleetCoordinator", "LocalClient", "MERGED_FORMAT",
    "MessageDropped", "RpcError", "Shard", "TcpClient", "UnitState",
    "WorldBundle", "bundle_for", "merge_results", "merged_digest",
    "plan_shards", "run_campaign_serial", "run_unit", "shards_for",
    "spawn_local_agents",
]
