"""Deterministic campaign planning, execution and merging.

The distributed observatory's correctness contract lives here: a
campaign is a pure function of its :class:`CampaignSpec`.  Both sides
of the fleet protocol recompute everything they need from the spec —

* the coordinator partitions the African AS roster into
  region-contiguous :class:`Shard`\\ s with :func:`plan_shards`;
* an agent handed a ``(round, shard)`` lease rebuilds the same world,
  the same shard membership and the same per-probe target samples from
  the spec alone (lease messages carry only indices, never data);
* every measurement RNG is derived from ``(spec.seed, identity)`` via
  :func:`repro.util.derive_seed`, so a unit's result bytes do not
  depend on which agent ran it, how many workers it used, or how many
  times it was retried after a crash.

That is what makes loss tolerance cheap: re-running a unit after an
agent dies produces the *identical* result document, so the merged
artifact from any survivor set is byte-identical to the single-process
oracle (:func:`run_campaign_serial`).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.exec import current_payload, map_tasks, pair_for
from repro.measurement import (
    DNSMeasurement,
    MeasurementEngine,
    ProbePlatform,
    VantagePoint,
    build_atlas_platform,
)
from repro.store.keys import canonical_bytes, digest_bytes
from repro.topology import Topology, WorldParams, build_world
from repro.util import derive_rng, derive_seed

#: Merged-artifact format tag (bump on any layout change).
MERGED_FORMAT = "repro-fleet-campaign/1"

#: Store kind for merged campaign artifacts.
ARTIFACT_KIND = "fleet.campaign"


@dataclass(frozen=True)
class CampaignSpec:
    """Everything needed to reproduce a campaign, bit for bit."""

    seed: int = 2025
    scale: float = 0.25
    rounds: int = 2
    shards: int = 4
    probes_per_shard: int = 8
    targets_per_probe: int = 8

    def __post_init__(self) -> None:
        if self.rounds < 1 or self.shards < 1:
            raise ValueError("rounds and shards must be >= 1")
        if self.probes_per_shard < 1 or self.targets_per_probe < 1:
            raise ValueError("probes/targets per shard must be >= 1")

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "scale": self.scale,
                "rounds": self.rounds, "shards": self.shards,
                "probes_per_shard": self.probes_per_shard,
                "targets_per_probe": self.targets_per_probe}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "CampaignSpec":
        return cls(seed=int(doc["seed"]), scale=float(doc["scale"]),
                   rounds=int(doc["rounds"]), shards=int(doc["shards"]),
                   probes_per_shard=int(doc["probes_per_shard"]),
                   targets_per_probe=int(doc["targets_per_probe"]))

    @property
    def digest(self) -> str:
        return digest_bytes(canonical_bytes(self.to_dict()))

    def units(self) -> list[tuple[int, int]]:
        """Every ``(round, shard)`` work unit, in canonical order."""
        return [(r, s) for r in range(self.rounds)
                for s in range(self.shards)]


@dataclass(frozen=True)
class Shard:
    """A region-contiguous slice of the African AS roster."""

    index: int
    region: str
    asns: tuple[int, ...]

    def to_dict(self) -> dict[str, Any]:
        return {"index": self.index, "region": self.region,
                "asns": list(self.asns)}


def plan_shards(topo: Topology, n_shards: int) -> list[Shard]:
    """Partition African ASes into exactly ``n_shards`` region shards.

    Every African AS lands in exactly one shard, and the plan is a
    pure function of the topology and ``n_shards`` (capped at the AS
    count).  With at least one shard per region available, each region
    gets shards proportional to its AS population (D'Hondt rounding
    over a sorted region list) and its sorted ASN roster is split into
    contiguous chunks.  With fewer shards than regions, the
    region-major roster is chunked directly and straddling chunks are
    labelled ``"mixed"``.
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    by_region: dict[str, list[int]] = {}
    for a in topo.african_ases():
        by_region.setdefault(a.region.name, []).append(a.asn)
    regions = sorted(by_region)
    for name in regions:
        by_region[name].sort()
    total = sum(len(by_region[name]) for name in regions)
    if total == 0:
        raise ValueError("topology has no African ASes to shard")
    n_shards = min(n_shards, total)

    def _chunks(asns: list[int], k: int) -> list[tuple[int, ...]]:
        base, extra = divmod(len(asns), k)
        out, start = [], 0
        for j in range(k):
            size = base + (1 if j < extra else 0)
            out.append(tuple(asns[start:start + size]))
            start += size
        return [c for c in out if c]

    shards: list[Shard] = []
    if n_shards >= len(regions):
        # One seat per region, then award the rest by highest
        # population-per-seat (D'Hondt; ties break on region name).
        counts = {name: 1 for name in regions}
        for _ in range(n_shards - len(regions)):
            name = max((n for n in regions
                        if counts[n] < len(by_region[n])),
                       key=lambda n: (len(by_region[n])
                                      / (counts[n] + 1), n))
            counts[name] += 1
        for name in regions:
            for chunk in _chunks(by_region[name], counts[name]):
                shards.append(Shard(index=len(shards), region=name,
                                    asns=chunk))
    else:
        roster = [(name, asn) for name in regions
                  for asn in by_region[name]]
        for chunk in _chunks(list(range(total)), n_shards):
            rows = [roster[i] for i in chunk]
            names = {name for name, _ in rows}
            label = rows[0][0] if len(names) == 1 else "mixed"
            shards.append(Shard(
                index=len(shards), region=label,
                asns=tuple(asn for _, asn in rows)))
    return shards


# ----------------------------------------------------------------------
# World bundle cache
# ----------------------------------------------------------------------

@dataclass
class WorldBundle:
    """One built world plus the derived state campaigns reuse."""

    topo: Topology
    platform: ProbePlatform
    target_pool: tuple[int, ...]
    shard_cache: dict[int, list[Shard]]


_BUNDLES: dict[tuple[int, float], WorldBundle] = {}
_BUNDLE_LOCK = threading.Lock()


def _target_pool(topo: Topology) -> tuple[int, ...]:
    """Campaign-wide target addresses: one per African eyeball AS."""
    pool: list[int] = []
    for a in sorted(topo.african_ases(), key=lambda x: x.asn):
        if a.kind.is_eyeball and a.prefixes:
            pool.append(a.prefixes[0].network + 7)
    return tuple(pool)


def bundle_for(seed: int, scale: float) -> WorldBundle:
    """Build (or reuse) the world for ``(seed, scale)``.

    Worlds are deterministic in their params, so one cache entry
    serves every campaign, agent and test in the process.
    """
    key = (int(seed), round(float(scale), 6))
    with _BUNDLE_LOCK:
        bundle = _BUNDLES.get(key)
        if bundle is None:
            topo = build_world(params=WorldParams(seed=key[0],
                                                  scale=key[1]))
            pair_for(topo)  # warm the shared routing context
            bundle = WorldBundle(topo=topo,
                                 platform=build_atlas_platform(topo),
                                 target_pool=_target_pool(topo),
                                 shard_cache={})
            _BUNDLES[key] = bundle
        return bundle


def shards_for(bundle: WorldBundle, spec: CampaignSpec) -> list[Shard]:
    with _BUNDLE_LOCK:
        plan = bundle.shard_cache.get(spec.shards)
        if plan is None:
            plan = plan_shards(bundle.topo, spec.shards)
            bundle.shard_cache[spec.shards] = plan
        return plan


# ----------------------------------------------------------------------
# Unit execution
# ----------------------------------------------------------------------

def _shard_probes(bundle: WorldBundle, spec: CampaignSpec,
                  shard: Shard) -> list[VantagePoint]:
    """The shard's vantage points: platform probes inside its ASes,
    sorted by probe id, capped at ``probes_per_shard``."""
    member = frozenset(shard.asns)
    probes = [p for p in bundle.platform.probes if p.asn in member]
    probes.sort(key=lambda p: p.probe_id)
    return probes[:spec.probes_per_shard]


def _probe_targets(bundle: WorldBundle, spec: CampaignSpec,
                   round_idx: int, probe: VantagePoint) -> list[int]:
    """Per-(round, probe) target sample — identity-derived, so every
    re-execution of the unit aims at the same addresses."""
    rng = derive_rng(spec.seed, "fleet", "targets", str(round_idx),
                     str(probe.probe_id))
    pool = bundle.target_pool
    k = min(spec.targets_per_probe, len(pool))
    return rng.sample(pool, k) if k else []


def _fmt(x: Optional[float]) -> str:
    return "-" if x is None else f"{x:.6f}"


def _measure_probe(bundle: WorldBundle, spec: CampaignSpec,
                   round_idx: int, probe: VantagePoint) -> dict[str, Any]:
    """All of one probe's measurements for one round.

    Returns a compact, JSON-safe summary plus a digest over the full
    measurement stream — identical no matter where or when it runs.
    """
    topo = bundle.topo
    routing, phys = pair_for(topo)
    engine = MeasurementEngine(
        topo, routing, phys,
        seed=derive_seed(spec.seed, "fleet", "round", str(round_idx)))
    dns = DNSMeasurement(topo, phys, seed=spec.seed)
    h = hashlib.sha256()
    measurements = reached = rtt_count = dns_ok = dns_runs = 0
    rtt_sum = 0.0
    wire = 0
    for target in _probe_targets(bundle, spec, round_idx, probe):
        tr = engine.traceroute(probe, target)
        pg = engine.ping(probe, target)
        measurements += 2
        wire += tr.bytes_used + pg.bytes_used
        if tr.reached:
            reached += 1
        rtt = tr.end_to_end_rtt()
        if rtt is not None:
            rtt_sum += rtt
            rtt_count += 1
        h.update(f"tr:{probe.probe_id}:{target}:{int(tr.reached)}:"
                 f"{len(tr.hops)}:{_fmt(rtt)}|".encode())
        h.update(f"pg:{probe.probe_id}:{target}:{pg.received}:"
                 f"{_fmt(pg.rtt_ms)}|".encode())
    sites = topo.websites.get(probe.country_iso2, ())
    if sites and probe.asn in topo.resolver_configs:
        # Explicit per-identity RNG: resolutions must not consume a
        # shared stream, or worker partitioning would change bytes.
        res = dns.resolve(
            probe.asn, sites[0].domain,
            rng=derive_rng(spec.seed, "fleet", "dns", str(round_idx),
                           str(probe.probe_id)))
        measurements += 1
        dns_runs += 1
        if res.ok:
            dns_ok += 1
        h.update(f"dns:{probe.probe_id}:{res.domain}:{int(res.ok)}:"
                 f"{_fmt(res.rtt_ms)}|".encode())
    return {"probe_id": probe.probe_id, "measurements": measurements,
            "reached": reached, "rtt_sum_ms": round(rtt_sum, 6),
            "rtt_count": rtt_count, "dns_runs": dns_runs,
            "dns_ok": dns_ok, "wire_bytes": wire,
            "digest": h.hexdigest()}


def _probe_task(probe: VantagePoint) -> dict[str, Any]:
    """Pool task: measure one probe (payload = (bundle, spec, round))."""
    bundle, spec, round_idx = current_payload()
    return _measure_probe(bundle, spec, round_idx, probe)


def run_unit(bundle: WorldBundle, spec: CampaignSpec, round_idx: int,
             shard: Shard, workers: Optional[int] = None
             ) -> dict[str, Any]:
    """Execute one ``(round, shard)`` unit and return its document.

    ``workers > 1`` fans probes out over :func:`repro.exec.map_tasks`
    (fork-based — subprocess agents only); the default serial path is
    byte-identical because every measurement derives its own RNG.
    """
    probes = _shard_probes(bundle, spec, shard)
    if workers is not None and workers > 1 and probes:
        rows = map_tasks(_probe_task, probes, workers=workers,
                         payload=(bundle, spec, round_idx),
                         label=f"fleet-r{round_idx}s{shard.index}")
    else:
        rows = [_measure_probe(bundle, spec, round_idx, p)
                for p in probes]
    h = hashlib.sha256()
    for row in rows:
        h.update(row["digest"].encode())
    totals = {k: sum(r[k] for r in rows)
              for k in ("measurements", "reached", "rtt_count",
                        "dns_runs", "dns_ok", "wire_bytes")}
    totals["rtt_sum_ms"] = round(sum(r["rtt_sum_ms"] for r in rows), 6)
    return {"round": round_idx, "shard": shard.index,
            "region": shard.region, "asns": len(shard.asns),
            "probes": [r["probe_id"] for r in rows],
            "digest": h.hexdigest(), **totals}


# ----------------------------------------------------------------------
# Merge + serial oracle
# ----------------------------------------------------------------------

def merge_results(spec: CampaignSpec,
                  unit_docs: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-unit documents into the canonical campaign artifact.

    Canonical order is ``(round, shard)``; nothing about agent
    identity, lease attempts or wall-clock timing may appear here —
    the merged document must be a pure function of the spec.
    """
    expected = spec.units()
    by_unit = {(d["round"], d["shard"]): d for d in unit_docs}
    missing = [u for u in expected if u not in by_unit]
    if missing:
        raise ValueError(f"merge is missing units {missing[:4]}"
                         f"{'...' if len(missing) > 4 else ''}")
    units = [by_unit[u] for u in expected]
    totals = {k: sum(u[k] for u in units)
              for k in ("measurements", "reached", "rtt_count",
                        "dns_runs", "dns_ok", "wire_bytes")}
    totals["rtt_sum_ms"] = round(sum(u["rtt_sum_ms"] for u in units), 6)
    return {"format": MERGED_FORMAT, "spec": spec.to_dict(),
            "units": units, "totals": totals}


def merged_digest(doc: dict[str, Any]) -> str:
    return digest_bytes(canonical_bytes(doc))


def run_campaign_serial(spec: CampaignSpec,
                        workers: Optional[int] = None) -> dict[str, Any]:
    """The single-process oracle every distributed run must match."""
    bundle = bundle_for(spec.seed, spec.scale)
    plan = shards_for(bundle, spec)
    docs = [run_unit(bundle, spec, r, plan[s], workers=workers)
            for r, s in spec.units()]
    return merge_results(spec, docs)


__all__ = [
    "ARTIFACT_KIND", "CampaignSpec", "MERGED_FORMAT", "Shard",
    "WorldBundle", "bundle_for", "merge_results", "merged_digest",
    "plan_shards", "run_campaign_serial", "run_unit", "shards_for",
]
