"""The fleet coordinator: membership, leases, merge.

One process owns the campaign state machine.  Agents *pull* work —
the coordinator never initiates a connection — which keeps the
protocol loss-tolerant by construction:

* a **lease** on a ``(round, shard)`` unit expires after
  ``lease_timeout_s``; an agent that crashed or stalled simply stops
  renewing its claim and the unit flips back to ``PENDING`` for the
  next poller (attempt counter bumped, ``LEASE_EXPIRED`` event
  emitted);
* an agent missing heartbeats past ``heartbeat_timeout_s`` is marked
  ``LOST`` and its outstanding leases are released immediately — but
  the record is kept, and the same agent polling again is simply
  marked ``ALIVE`` (loss is a *state*, not an exile);
* submissions are idempotent: units are deterministic
  (:mod:`repro.fleet.campaign`), so duplicate or late results are
  accepted and acknowledged — at most the duplicate counter moves.
  A digest disagreement between two executions of the same unit is
  counted as an integrity error (it means determinism broke, which is
  a bug worth an alarm, not silent acceptance).

Rounds are barriers: units of round ``r+1`` are granted only once
every round-``r`` unit is done, mirroring how a real observatory
schedules repeated sweeps.  When the last unit lands the coordinator
merges (:func:`repro.fleet.campaign.merge_results`), optionally
persists the artifact in the content-addressed store, and wakes
:meth:`FleetCoordinator.wait` callers.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro import telemetry
from repro.eventlog import EventLog, EventType, make_event
from repro.fleet.campaign import (
    ARTIFACT_KIND,
    CampaignSpec,
    Shard,
    bundle_for,
    merge_results,
    merged_digest,
    shards_for,
)
from repro.store.disk import ArtifactStore
from repro.store.keys import ArtifactKey, canonical_bytes

_AGENTS = telemetry.gauge(
    "repro_fleet_agents", "Registered fleet agents", labels=("state",))
_HEARTBEATS = telemetry.counter(
    "repro_fleet_heartbeats_total", "Agent heartbeats received")
_LEASES = telemetry.counter(
    "repro_fleet_leases_total", "Unit leases by outcome",
    labels=("outcome",))
_UNITS = telemetry.counter(
    "repro_fleet_units_total", "Unit submissions by outcome",
    labels=("outcome",))
_CAMPAIGNS = telemetry.counter(
    "repro_fleet_campaigns_total", "Campaigns by lifecycle step",
    labels=("step",))

#: Unit states.
PENDING, LEASED, DONE = "pending", "leased", "done"

#: Agent states.
ALIVE, LOST = "alive", "lost"


@dataclass
class AgentInfo:
    """What the coordinator knows about one agent."""

    agent_id: str
    pid: int = 0
    state: str = ALIVE
    last_seen: float = 0.0
    units_done: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {"agent_id": self.agent_id, "pid": self.pid,
                "state": self.state, "units_done": self.units_done}


@dataclass
class UnitState:
    """Lifecycle of one ``(round, shard)`` unit."""

    round: int
    shard: int
    status: str = PENDING
    attempts: int = 0
    lease_id: Optional[str] = None
    agent_id: Optional[str] = None
    deadline: float = 0.0
    result: Optional[dict[str, Any]] = None


@dataclass
class Campaign:
    """One campaign's full coordinator-side state."""

    campaign_id: str
    spec: CampaignSpec
    units: dict[tuple[int, int], UnitState]
    current_round: int = 0
    done: bool = False
    merged: Optional[dict[str, Any]] = None
    digest: Optional[str] = None
    artifact_digest: Optional[str] = None
    shard_plan: list[Shard] = field(default_factory=list)

    def round_done(self, r: int) -> bool:
        return all(u.status == DONE for u in self.units.values()
                   if u.round == r)

    def to_dict(self) -> dict[str, Any]:
        counts = {PENDING: 0, LEASED: 0, DONE: 0}
        for u in self.units.values():
            counts[u.status] += 1
        return {"campaign_id": self.campaign_id,
                "spec": self.spec.to_dict(),
                "current_round": self.current_round,
                "units": counts, "done": self.done,
                "digest": self.digest,
                "artifact_digest": self.artifact_digest}


class FleetCoordinator:
    """Thread-safe campaign state machine (see module docstring)."""

    def __init__(self, heartbeat_timeout_s: float = 10.0,
                 lease_timeout_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic,
                 eventlog: Optional[EventLog] = None,
                 store: Optional[ArtifactStore] = None) -> None:
        if lease_timeout_s <= 0 or heartbeat_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        self._heartbeat_timeout_s = heartbeat_timeout_s
        self._lease_timeout_s = lease_timeout_s
        self._clock = clock
        self._eventlog = eventlog
        self._store = store
        self._agents: dict[str, AgentInfo] = {}
        self._campaigns: dict[str, Campaign] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._lease_counter = 0
        self._campaign_counter = 0
        self._draining = False

    # ------------------------------------------------------------------
    # Internals (callers hold the lock)
    # ------------------------------------------------------------------
    def _emit(self, etype: EventType, scope: str, a: int = 0, b: int = 0,
              value: float = -1.0, ok: bool = True) -> None:
        if self._eventlog is None:
            return
        # Logical timestamp: the campaign round currently executing —
        # never wall clock, so pinned-seed logs stay reproducible.
        ts = 0.0
        for cid in self._order:
            c = self._campaigns[cid]
            if not c.done:
                ts = float(c.current_round)
                break
        self._eventlog.append([make_event(ts, etype, scope, a=a, b=b,
                                          value=value, ok=ok)])

    def _gauge_agents(self) -> None:
        if not telemetry.enabled():
            return
        alive = sum(1 for a in self._agents.values() if a.state == ALIVE)
        _AGENTS.labels(state=ALIVE).set(alive)
        _AGENTS.labels(state=LOST).set(len(self._agents) - alive)

    def _release(self, unit: UnitState, why: str) -> None:
        unit.status = PENDING
        unit.lease_id = None
        unit.agent_id = None
        unit.deadline = 0.0
        if telemetry.enabled():
            _LEASES.labels(outcome=why).inc()

    def _sweep(self) -> None:
        """Expire dead agents and stale leases (lock held)."""
        now = self._clock()
        lost_agents = [a for a in self._agents.values()
                       if a.state == ALIVE
                       and now - a.last_seen > self._heartbeat_timeout_s]
        for agent in lost_agents:
            agent.state = LOST
            released = 0
            for c in self._campaigns.values():
                for unit in c.units.values():
                    if unit.status == LEASED \
                            and unit.agent_id == agent.agent_id:
                        self._release(unit, "agent_lost")
                        self._emit(EventType.LEASE_EXPIRED,
                                   agent.agent_id, a=unit.round,
                                   b=unit.shard, value=unit.attempts,
                                   ok=False)
                        released += 1
            self._emit(EventType.AGENT_LOST, agent.agent_id,
                       a=agent.pid, b=released, ok=False)
        expired = 0
        for c in self._campaigns.values():
            for unit in c.units.values():
                if unit.status == LEASED and now > unit.deadline:
                    agent_id = unit.agent_id or ""
                    self._release(unit, "expired")
                    self._emit(EventType.LEASE_EXPIRED, agent_id,
                               a=unit.round, b=unit.shard,
                               value=unit.attempts, ok=False)
                    expired += 1
        if lost_agents:
            self._gauge_agents()
        if lost_agents or expired:
            self._changed.notify_all()

    def _touch(self, agent_id: str, pid: int = 0) -> AgentInfo:
        """Register-or-refresh an agent (lock held)."""
        agent = self._agents.get(agent_id)
        if agent is None:
            agent = AgentInfo(agent_id=agent_id, pid=pid,
                              last_seen=self._clock())
            self._agents[agent_id] = agent
            self._emit(EventType.AGENT_JOIN, agent_id, a=pid,
                       b=len(self._agents))
            self._gauge_agents()
        else:
            agent.last_seen = self._clock()
            if pid:
                agent.pid = pid
            if agent.state == LOST:
                agent.state = ALIVE
                self._gauge_agents()
        return agent

    def _finish(self, c: Campaign) -> None:
        """Merge and persist a fully-done campaign (lock held)."""
        docs = [u.result for u in c.units.values()]
        c.merged = merge_results(c.spec, docs)
        c.digest = merged_digest(c.merged)
        c.done = True
        if self._store is not None:
            key = ArtifactKey.make(
                kind=ARTIFACT_KIND, seed=c.spec.seed,
                params={"scale": c.spec.scale, "rounds": c.spec.rounds,
                        "shards": c.spec.shards,
                        "probes_per_shard": c.spec.probes_per_shard,
                        "targets_per_probe": c.spec.targets_per_probe},
                schema_version=1)
            self._store.put(key, canonical_bytes(c.merged))
            c.artifact_digest = key.digest
        self._emit(EventType.CAMPAIGN_DONE, c.campaign_id,
                   a=c.spec.rounds, b=c.spec.shards,
                   value=c.merged["totals"]["measurements"])
        if telemetry.enabled():
            _CAMPAIGNS.labels(step="done").inc()
        self._changed.notify_all()

    # ------------------------------------------------------------------
    # Agent-facing operations
    # ------------------------------------------------------------------
    def register(self, agent_id: str, pid: int = 0) -> dict[str, Any]:
        with self._lock:
            self._sweep()
            self._touch(agent_id, pid)
            return {"ok": True, "agent_id": agent_id,
                    "agents": len(self._agents),
                    "shutdown": self._draining}

    def heartbeat(self, agent_id: str, pid: int = 0) -> dict[str, Any]:
        with self._lock:
            self._sweep()
            self._touch(agent_id, pid)
            if telemetry.enabled():
                _HEARTBEATS.inc()
            return {"ok": True, "shutdown": self._draining}

    def lease(self, agent_id: str, pid: int = 0) -> dict[str, Any]:
        """Grant (or re-grant) one unit lease to ``agent_id``.

        Re-polling while holding an unexpired lease returns the same
        lease — a lost grant response (``fleet.msg_drop``) is repaired
        by the agent's retry, not by double-assignment.
        """
        with self._lock:
            self._sweep()
            self._touch(agent_id, pid)
            if self._draining:
                return {"ok": True, "unit": None, "shutdown": True}
            now = self._clock()
            for cid in self._order:
                c = self._campaigns[cid]
                if c.done:
                    continue
                held = [u for u in c.units.values()
                        if u.status == LEASED and u.agent_id == agent_id]
                if held:
                    unit = held[0]
                    if telemetry.enabled():
                        _LEASES.labels(outcome="regrant").inc()
                else:
                    pending = sorted(
                        (u for u in c.units.values()
                         if u.status == PENDING
                         and u.round == c.current_round),
                        key=lambda u: (u.round, u.shard))
                    if not pending:
                        continue
                    unit = pending[0]
                    self._lease_counter += 1
                    unit.status = LEASED
                    unit.lease_id = f"l{self._lease_counter:06d}"
                    unit.agent_id = agent_id
                    unit.attempts += 1
                    if telemetry.enabled():
                        _LEASES.labels(outcome="granted").inc()
                    self._emit(EventType.LEASE_GRANTED, agent_id,
                               a=unit.round, b=unit.shard,
                               value=unit.attempts)
                unit.deadline = now + self._lease_timeout_s
                return {"ok": True, "shutdown": False,
                        "unit": {"campaign_id": c.campaign_id,
                                 "lease_id": unit.lease_id,
                                 "round": unit.round,
                                 "shard": unit.shard,
                                 "attempt": unit.attempts,
                                 "spec": c.spec.to_dict()}}
            return {"ok": True, "unit": None, "shutdown": False}

    def submit(self, agent_id: str, campaign_id: str, lease_id: str,
               round_idx: int, shard: int,
               result: dict[str, Any]) -> dict[str, Any]:
        """Accept one unit result (idempotent; see module docstring)."""
        with self._lock:
            self._sweep()
            agent = self._touch(agent_id)
            c = self._campaigns.get(campaign_id)
            if c is None:
                return {"ok": False, "error": "unknown campaign"}
            unit = c.units.get((round_idx, shard))
            if unit is None:
                return {"ok": False, "error": "unknown unit"}
            if unit.status == DONE:
                outcome = "duplicate"
                if unit.result is not None \
                        and unit.result.get("digest") \
                        != result.get("digest"):
                    outcome = "mismatch"
                if telemetry.enabled():
                    _UNITS.labels(outcome=outcome).inc()
                return {"ok": True, "accepted": True,
                        "duplicate": True,
                        "mismatch": outcome == "mismatch"}
            # A lease that expired (or was re-granted elsewhere) does
            # not invalidate the bytes: units are deterministic, so a
            # late result is as good as the one we were waiting for.
            late = unit.lease_id != lease_id or unit.agent_id != agent_id
            unit.status = DONE
            unit.result = result
            unit.lease_id = None
            unit.agent_id = None
            agent.units_done += 1
            if telemetry.enabled():
                _UNITS.labels(outcome="late" if late else "done").inc()
            self._emit(EventType.SHARD_DONE, c.campaign_id,
                       a=round_idx, b=shard,
                       value=result.get("measurements", -1))
            while c.current_round < c.spec.rounds - 1 \
                    and c.round_done(c.current_round):
                c.current_round += 1
            if all(u.status == DONE for u in c.units.values()):
                self._finish(c)
            self._changed.notify_all()
            return {"ok": True, "accepted": True, "duplicate": False,
                    "mismatch": False}

    # ------------------------------------------------------------------
    # Control-plane operations
    # ------------------------------------------------------------------
    def submit_campaign(self, spec: CampaignSpec) -> str:
        """Queue a campaign; returns its id.  Re-submitting an
        identical spec returns the existing campaign (idempotent)."""
        with self._lock:
            for cid in self._order:
                c = self._campaigns[cid]
                if c.spec == spec and not c.done:
                    return cid
            bundle = bundle_for(spec.seed, spec.scale)
            plan = shards_for(bundle, spec)
            spec = CampaignSpec(**{**spec.to_dict(),
                                   "shards": len(plan)})
            self._campaign_counter += 1
            cid = f"c{self._campaign_counter:03d}-{spec.digest[:8]}"
            units = {(r, s): UnitState(round=r, shard=s)
                     for r, s in spec.units()}
            self._campaigns[cid] = Campaign(
                campaign_id=cid, spec=spec, units=units,
                shard_plan=plan)
            self._order.append(cid)
            self._emit(EventType.CAMPAIGN_BEGIN, cid, a=spec.rounds,
                       b=spec.shards)
            if telemetry.enabled():
                _CAMPAIGNS.labels(step="submitted").inc()
            self._changed.notify_all()
            return cid

    def wait(self, campaign_id: str,
             timeout: Optional[float] = None) -> Optional[dict[str, Any]]:
        """Block until the campaign merges; returns the merged doc
        (or ``None`` on timeout).  Runs the sweep while waiting, so a
        coordinator with no other traffic still expires dead leases."""
        deadline = None if timeout is None else self._clock() + timeout
        with self._lock:
            while True:
                c = self._campaigns.get(campaign_id)
                if c is None:
                    raise KeyError(f"unknown campaign {campaign_id!r}")
                if c.done:
                    return c.merged
                if deadline is not None and self._clock() >= deadline:
                    return None
                self._changed.wait(timeout=0.2)
                self._sweep()

    def campaign(self, campaign_id: str) -> Optional[Campaign]:
        with self._lock:
            return self._campaigns.get(campaign_id)

    def drain(self) -> None:
        """Tell every future poll to shut its agent down."""
        with self._lock:
            self._draining = True
            self._changed.notify_all()

    def status(self) -> dict[str, Any]:
        """JSON-safe snapshot for ``/v1/fleet/*`` and the CLI."""
        with self._lock:
            self._sweep()
            return {"agents": [self._agents[k].to_dict()
                               for k in sorted(self._agents)],
                    "campaigns": [self._campaigns[cid].to_dict()
                                  for cid in self._order],
                    "draining": self._draining}


__all__ = [
    "ALIVE", "AgentInfo", "Campaign", "DONE", "FleetCoordinator",
    "LEASED", "LOST", "PENDING", "UnitState",
]
