"""Fleet wire protocol: one JSON document per TCP connection.

Deliberately minimal — a request is a single JSON line, the response
is a single JSON line, and the connection closes.  No persistent
sockets, no framing state machines: every exchange is independently
retryable, which is the property the loss-tolerance story rests on.
Agents assume any message can vanish (`fleet.msg_drop` injects
exactly that, on either leg) and simply retry; every coordinator
operation is idempotent, so retries are safe by construction.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from typing import Any, Optional

from repro import faults, telemetry
from repro.fleet.campaign import CampaignSpec
from repro.fleet.coordinator import FleetCoordinator

_RPC = telemetry.counter(
    "repro_fleet_rpc_total", "Fleet RPC requests served",
    labels=("op",))
_DROPS = telemetry.counter(
    "repro_fleet_msg_dropped_total",
    "Fleet protocol messages lost (injected)", labels=("leg",))

#: Bound on one request/response line (a submit carries one unit doc).
MAX_LINE_BYTES = 4 << 20

#: Client retry schedule: attempt n sleeps ``BACKOFF_S * n``.
DEFAULT_RETRIES = 5
BACKOFF_S = 0.05


class MessageDropped(OSError):
    """An injected in-flight message loss (client retries)."""


class RpcError(RuntimeError):
    """The coordinator rejected the request."""


def _read_line(sock: socket.socket) -> bytes:
    chunks: list[bytes] = []
    size = 0
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        chunks.append(chunk)
        size += len(chunk)
        if chunk.endswith(b"\n") or size > MAX_LINE_BYTES:
            break
    return b"".join(chunks)


def dispatch(coordinator: FleetCoordinator,
             doc: dict[str, Any]) -> dict[str, Any]:
    """Execute one protocol operation against ``coordinator``.

    Shared by the TCP server and the in-process ``LocalClient`` so
    both paths exercise identical semantics.
    """
    op = doc.get("op")
    if telemetry.enabled() and isinstance(op, str):
        _RPC.labels(op=op).inc()
    agent_id = str(doc.get("agent_id", ""))
    pid = int(doc.get("pid", 0))
    if op == "register":
        return coordinator.register(agent_id, pid=pid)
    if op == "heartbeat":
        return coordinator.heartbeat(agent_id, pid=pid)
    if op == "lease":
        return coordinator.lease(agent_id, pid=pid)
    if op == "submit":
        return coordinator.submit(
            agent_id, str(doc["campaign_id"]), str(doc["lease_id"]),
            int(doc["round"]), int(doc["shard"]), doc["result"])
    if op == "campaign":
        spec = CampaignSpec.from_dict(doc["spec"])
        return {"ok": True,
                "campaign_id": coordinator.submit_campaign(spec)}
    if op == "campaign_status":
        c = coordinator.campaign(str(doc.get("campaign_id", "")))
        if c is None:
            return {"ok": False, "error": "unknown campaign"}
        out = {"ok": True, **c.to_dict()}
        if doc.get("include_result") and c.done:
            out["result"] = c.merged
        return out
    if op == "status":
        return {"ok": True, **coordinator.status()}
    if op == "drain":
        coordinator.drain()
        return {"ok": True}
    return {"ok": False, "error": f"unknown op {op!r}"}


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via TCP
        line = self.rfile.readline(MAX_LINE_BYTES)
        if not line.strip():
            return
        try:
            doc = json.loads(line)
            resp = dispatch(self.server.coordinator, doc)
        except Exception as exc:
            resp = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        self.wfile.write(json.dumps(resp).encode() + b"\n")


class CoordinatorServer(socketserver.ThreadingTCPServer):
    """TCP front for a :class:`FleetCoordinator` (port 0 = ephemeral)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, coordinator: FleetCoordinator,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__((host, port), _Handler)
        self.coordinator = coordinator
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        return self.socket.getsockname()[:2]

    def start(self) -> "CoordinatorServer":
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="fleet-rpc", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)


def raw_call(address: tuple[str, int], doc: dict[str, Any],
             timeout: float = 10.0) -> dict[str, Any]:
    """One request/response exchange, no retries, no fault injection."""
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(json.dumps(doc).encode() + b"\n")
        sock.shutdown(socket.SHUT_WR)
        line = _read_line(sock)
    if not line.strip():
        raise RpcError("empty response")
    return json.loads(line)


def maybe_drop(op: str, ident: str, leg: str) -> None:
    """Injection point for ``fleet.msg_drop`` (either protocol leg).

    ``leg="request"`` fires *before* the operation reaches the
    coordinator (the coordinator never sees it); ``leg="response"``
    fires after it executed (the coordinator's state moved but the
    caller never learns) — the latter is what makes idempotent
    retries mandatory, so both are injected explicitly.
    """
    if faults.should_fire("fleet.msg_drop", f"{leg}:{op}:{ident}"):
        if telemetry.enabled():
            _DROPS.labels(leg=leg).inc()
        raise MessageDropped(f"injected {leg} loss for {op}")


def call(address: tuple[str, int], doc: dict[str, Any],
         timeout: float = 10.0, retries: int = DEFAULT_RETRIES,
         ident: str = "") -> dict[str, Any]:
    """Exchange ``doc`` with the coordinator, retrying lost messages.

    Retries cover connection failures, timeouts and injected drops
    with linear backoff; the terminal failure re-raises the last
    error so callers see the real cause.
    """
    op = str(doc.get("op", ""))
    last: Optional[Exception] = None
    for attempt in range(retries + 1):
        try:
            maybe_drop(op, ident, "request")
            resp = raw_call(address, doc, timeout=timeout)
            maybe_drop(op, ident, "response")
            return resp
        except (OSError, ValueError, RpcError) as exc:
            last = exc
            if attempt < retries:
                time.sleep(BACKOFF_S * (attempt + 1))
    assert last is not None
    raise last


__all__ = [
    "BACKOFF_S", "CoordinatorServer", "DEFAULT_RETRIES",
    "MAX_LINE_BYTES", "MessageDropped", "RpcError", "call",
    "dispatch", "maybe_drop", "raw_call",
]
