"""Seeded generator for the synthetic Internet.

Builds a :class:`~repro.topology.model.Topology` whose *structure*
matches the paper's description of Africa's ecosystem (§2): no African
Tier-1s, a thin layer of regional Tier-2s, mobile-dominated eyeballs,
IXPs concentrated in a few markets, European transit and hosting
dependence, and a subsea-cable map with shared corridors.

Everything is derived deterministically from ``WorldParams.seed``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from repro.geo import (
    AFRICAN_COUNTRIES,
    COUNTRIES,
    Region,
    country,
)
from repro.topology.asn import AS, ASKind, ASLink, Relationship
from repro.topology.cables import (
    CableCorridor,
    CableSpec,
    REAL_CABLE_SPECS,
    REFERENCE_CABLE_SPECS,
    SubseaCable,
    build_cable,
)
from repro.topology.calibration import (
    REFERENCE_PROFILE,
    REGION_CDN_CATCHMENT,
    REGION_PROFILES,
    WorldParams,
)
from repro.topology.content import CDNProvider, HostingClass, Website
from repro.topology.datacenters import FacilityTier, build_datacenters
from repro.topology.dns import (
    CloudResolverService,
    ResolverConfig,
    ResolverLocality,
)
from repro.topology.ixp import IXP
from repro.topology.model import IXPOwner, Topology
from repro.topology.prefixes import Prefix, PrefixAllocator
from repro.topology.terrestrial import (
    REFERENCE_TERRESTRIAL_LINKS,
    TERRESTRIAL_LINKS,
)
from repro.util import derive_rng
from repro import telemetry

_WORLDS_BUILT = telemetry.counter(
    "repro_topology_worlds_built_total", "Topologies generated")
_ASES_BUILT = telemetry.counter(
    "repro_topology_ases_built_total", "ASes created during generation",
    labels=("kind",))
_IXPS_BUILT = telemetry.counter(
    "repro_topology_ixps_built_total", "IXPs created during generation",
    labels=("region",))
_LINKS_BUILT = telemetry.counter(
    "repro_topology_links_built_total", "AS links created",
    labels=("rel",))
_BUILD_SECONDS = telemetry.histogram(
    "repro_topology_build_seconds", "End-to-end world build time",
    buckets=(0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0))


# ----------------------------------------------------------------------
# Static rosters: the named players of the ecosystem
# ----------------------------------------------------------------------

#: Global transit-free carriers (all outside Africa — the paper's point).
TIER1_SPECS = (
    (174, "Cogent", "US"),
    (1299, "Arelion", "DE"),
    (3356, "Lumen", "US"),
    (2914, "NTT-GIN", "US"),
    (3257, "GTT", "DE"),
    (5511, "Orange-OTI", "FR"),
    (6762, "TI-Sparkle", "IT"),
    (3491, "PCCW-Global", "GB"),
)

#: Public clouds / large hosters.
CLOUD_SPECS = (
    (16509, "AWS", "US"),
    (8075, "Microsoft", "US"),
    (15169, "Google", "US"),
    (16276, "OVH", "FR"),
    (24940, "Hetzner", "DE"),
)

#: CDNs with their African PoP footprint and top-site market share.
CDN_SPECS = (
    (13335, "Cloudflare", ("ZA", "KE", "NG", "EG", "DE", "GB", "US"), 0.32),
    (20940, "Akamai", ("ZA", "KE", "NG", "DE", "FR", "US"), 0.24),
    (15169, "Google-CDN", ("ZA", "NG", "KE", "DE", "US"), 0.22),
    (32934, "Meta-CDN", ("ZA", "DE", "US"), 0.12),
    (54113, "Fastly", ("ZA", "DE", "US"), 0.10),
)

#: Public cloud resolver services (§5.2: anycast catchments put African
#: clients on the South Africa PoP when it is reachable).
CLOUD_RESOLVER_SPECS = (
    (15169, "GooglePublicDNS", ("ZA", "DE", "US")),
    (13335, "Cloudflare-1111", ("ZA", "KE", "NG", "DE", "US")),
    (19281, "Quad9", ("ZA", "DE", "US")),
)

#: African regional transit carriers (the thin Tier-2 layer, §4.1) with
#: their multi-country footprints.
AFRICAN_TRANSIT_SPECS = (
    (30844, "LiquidTelecom", "ZA",
     ("ZA", "ZW", "ZM", "KE", "UG", "RW", "TZ", "CD", "BW", "MZ", "MW")),
    (37100, "SEACOM-AS", "ZA", ("ZA", "KE", "TZ", "MZ", "UG")),
    (37662, "WIOCC", "KE",
     ("KE", "TZ", "DJ", "ZA", "NG", "GH", "UG", "RW", "ET")),
    (16637, "MTN-GlobalConnect", "ZA",
     ("ZA", "NG", "GH", "CI", "CM", "UG", "RW", "BJ", "SN")),
    (8452, "TelecomEgypt-Intl", "EG", ("EG", "SD", "LY")),
    (6713, "MarocTelecom-Intl", "MA", ("MA", "MR", "ML", "BF", "GA")),
    (8346, "Sonatel-Transit", "SN", ("SN", "ML", "GN", "GM", "GW")),
    (37282, "MainOne-AS", "NG", ("NG", "GH", "CI")),
    (37468, "Angola-Cables", "AO", ("AO", "CD", "NA", "BR")),
    (37273, "Bofinet-Transit", "BW", ("BW", "ZA", "ZM")),
)

#: Flagship African IXPs that existed before 2015 (drives the Fig. 1
#: baseline: 11 IXPs continent-wide in 2015, per calibration).
FLAGSHIP_IXPS = {
    Region.SOUTHERN_AFRICA: (("JINX", "ZA", 1996), ("NAPAfrica", "ZA", 2012),
                             ("CINX", "ZA", 2009)),
    Region.EASTERN_AFRICA: (("KIXP", "KE", 2002), ("TIX", "TZ", 2004),
                            ("RINEX", "RW", 2004), ("UIXP", "UG", 2001)),
    Region.NORTHERN_AFRICA: (("CAIX", "EG", 2013),),
    Region.WESTERN_AFRICA: (("IXPN", "NG", 2007), ("GIXA", "GH", 2005)),
    Region.CENTRAL_AFRICA: (("KINIX", "CD", 2012),),
}

#: European exchanges where African ASes meet their transit providers.
EU_IXP_SPECS = (
    ("LINX", "GB", 1994), ("AMS-IX", "NL", 1997), ("DE-CIX", "DE", 1995),
    ("France-IX", "FR", 2010), ("ESPANIX", "ES", 1997), ("MIX-Milan", "IT", 2000),
)

#: AfriNIC-style IPv4 pools for African allocations (196/8 is reserved
#: below for IXP LANs so pools never overlap).
AFRINIC_POOLS = ("41.0.0.0/8", "102.0.0.0/8", "105.0.0.0/8",
                 "154.0.0.0/8", "197.0.0.0/8")
AFRINIC_IXP_LAN_POOL = "196.60.0.0/16"
REFERENCE_POOLS = {
    Region.EUROPE: ("62.0.0.0/8", "80.0.0.0/8", "93.0.0.0/8"),
    Region.NORTH_AMERICA: ("23.0.0.0/8", "34.0.0.0/8"),
    Region.SOUTH_AMERICA: ("177.0.0.0/8", "181.0.0.0/8"),
    Region.ASIA_PACIFIC: ("101.0.0.0/8", "110.0.0.0/8"),
}
REFERENCE_IXP_LAN_POOL = "185.1.0.0/16"

#: Synthetic pre-2015 regional cables to complete the Fig. 1 baseline
#: (the real catalog under-counts small festoon systems).
SYNTHETIC_OLD_CABLE_SPECS = (
    CableSpec("GLO-Coastal", CableCorridor.WEST_AFRICA,
              ("NG", "GH", "CI"), 2011, 1.0),
    CableSpec("Benguela-Link", CableCorridor.WEST_AFRICA,
              ("AO", "NA"), 2013, 1.5),
    CableSpec("RedSea-Festoon", CableCorridor.RED_SEA,
              ("EG:redsea", "SD", "DJ"), 2008, 0.6),
    CableSpec("Comoros-Link", CableCorridor.INDIAN_OCEAN_ISLANDS,
              ("KM", "MG", "MU"), 2012, 0.4),
    CableSpec("Maghreb-Festoon", CableCorridor.MEDITERRANEAN,
              ("MA", "DZ", "TN"), 2010, 0.8),
    CableSpec("Gulf-of-Guinea", CableCorridor.WEST_AFRICA,
              ("CM", "GQ", "ST", "GA"), 2012, 0.8),
    CableSpec("Mauritania-Link", CableCorridor.WEST_AFRICA,
              ("MR", "SN"), 2013, 0.5),
    CableSpec("Canaries-Festoon", CableCorridor.WEST_AFRICA,
              ("MA", "MR", "SN"), 2012, 0.6),
    CableSpec("Monrovia-Link", CableCorridor.WEST_AFRICA,
              ("LR", "CI"), 2013, 0.4),
    CableSpec("Bight-Festoon", CableCorridor.WEST_AFRICA,
              ("NG", "CM", "GQ"), 2014, 0.7),
    CableSpec("Nile-Bay", CableCorridor.MEDITERRANEAN,
              ("EG", "IT"), 2011, 1.2),
    CableSpec("Cyrene-Link", CableCorridor.MEDITERRANEAN,
              ("LY", "EG"), 2012, 0.5),
    CableSpec("Swahili-Coast", CableCorridor.EAST_AFRICA,
              ("KE", "TZ"), 2014, 0.8),
    CableSpec("Pemba-Link", CableCorridor.EAST_AFRICA,
              ("TZ", "MZ"), 2013, 0.5),
    CableSpec("Aden-Gateway", CableCorridor.RED_SEA,
              ("DJ", "EG:redsea"), 2010, 0.9),
    CableSpec("Agulhas-Festoon", CableCorridor.EAST_AFRICA,
              ("ZA:east", "MZ"), 2012, 0.7),
)

#: Synthetic post-2015 builds (new entrants through 2025).
SYNTHETIC_NEW_CABLE_SPECS = (
    CableSpec("WestLink-2", CableCorridor.WEST_AFRICA,
              ("SN", "CV", "PT"), 2019, 8.0),
    CableSpec("EastBay", CableCorridor.EAST_AFRICA,
              ("TZ", "KE", "SO"), 2020, 12.0),
    CableSpec("Horn-Connect", CableCorridor.RED_SEA,
              ("DJ", "ER", "SD", "EG:redsea"), 2021, 16.0),
    CableSpec("Atlantic-South-2", CableCorridor.SOUTH_ATLANTIC,
              ("NA", "BR"), 2024, 48.0, diverse_route=True),
    CableSpec("Mozambique-Channel", CableCorridor.INDIAN_OCEAN_ISLANDS,
              ("MZ", "MG", "KM"), 2022, 10.0),
)


@dataclass
class _Counters:
    """Mutable id/ASN counters used during generation."""

    next_african_asn: int = 37300
    next_reference_asn: int = 12000
    next_eu_transit_asn: int = 8800
    next_ixp_id: int = 1
    next_cable_id: int = 1

    def african_asn(self, used: set[int]) -> int:
        while self.next_african_asn in used:
            self.next_african_asn += 1
        asn = self.next_african_asn
        self.next_african_asn += 1
        return asn

    def reference_asn(self, used: set[int]) -> int:
        while self.next_reference_asn in used:
            self.next_reference_asn += 1
        asn = self.next_reference_asn
        self.next_reference_asn += 1
        return asn


class TopologyGenerator:
    """Builds the world from :class:`WorldParams`."""

    def __init__(self, params: WorldParams | None = None) -> None:
        self.params = params or WorldParams()

    # ------------------------------------------------------------------
    def build(self) -> Topology:
        with telemetry.span("topology.build", seed=self.params.seed):
            topo = self._build_phases()
        if telemetry.enabled():
            _WORLDS_BUILT.inc()
            for a in topo.ases.values():
                _ASES_BUILT.labels(kind=a.kind.value).inc()
            for ixp in topo.ixps.values():
                _IXPS_BUILT.labels(region=ixp.region.value).inc()
            for link in topo.links:
                _LINKS_BUILT.labels(rel=link.rel.value).inc()
        return topo

    def _build_phases(self) -> Topology:
        import time as _time
        p = self.params
        seed = p.seed
        t0 = _time.perf_counter()
        counters = _Counters()
        ases: dict[int, AS] = {}
        used_asns: set[int] = set()

        def add_as(a: AS) -> AS:
            if a.asn in ases:
                raise ValueError(f"duplicate ASN {a.asn}")
            ases[a.asn] = a
            used_asns.add(a.asn)
            return a

        with telemetry.span("topology.ases"):
            self._build_backbone(ases, add_as)
            self._build_african_transit(add_as)
            self._build_african_edge(add_as, counters, used_asns)
            self._build_reference_edge(add_as, counters, used_asns)

        with telemetry.span("topology.ixps"):
            ixps = self._build_ixps(counters)
            self._populate_ixp_members(ases, ixps, seed)

        with telemetry.span("topology.relationships"):
            links = self._build_relationships(ases, ixps, seed)

        with telemetry.span("topology.physical"):
            cables = self._build_cables(counters)
            datacenters = build_datacenters()
        cdns = [CDNProvider(asn=a, name=n, pop_countries=pc, market_share=s)
                for a, n, pc, s in CDN_SPECS]
        cloud_resolvers = [CloudResolverService(asn=a, name=n,
                                                pop_countries=pc)
                           for a, n, pc in CLOUD_RESOLVER_SPECS]

        with telemetry.span("topology.addressing"):
            self._assign_prefixes(ases, ixps, seed)
        with telemetry.span("topology.resolvers"):
            resolver_configs = self._assign_resolvers(ases, cloud_resolvers,
                                                      seed)
        with telemetry.span("topology.websites"):
            websites = self._build_websites(ases, ixps, cdns, datacenters,
                                            seed)

        topo = Topology(
            params=p,
            ases=ases,
            links=links,
            ixps=ixps,
            cables=cables,
            terrestrial=list(TERRESTRIAL_LINKS
                             + REFERENCE_TERRESTRIAL_LINKS),
            datacenters=datacenters,
            cdns=cdns,
            cloud_resolvers=cloud_resolvers,
            resolver_configs=resolver_configs,
            websites=websites,
        )
        with telemetry.span("topology.validate"):
            self._register_prefixes(topo)
            topo.validate()
        _BUILD_SECONDS.observe(_time.perf_counter() - t0)
        return topo

    # ------------------------------------------------------------------
    # AS population
    # ------------------------------------------------------------------
    def _build_backbone(self, ases, add_as) -> None:
        for asn, name, cc in TIER1_SPECS:
            add_as(AS(asn=asn, name=name, country_iso2=cc,
                      kind=ASKind.TRANSIT, tier=1, founded_year=1995))
        for asn, name, cc in CLOUD_SPECS:
            add_as(AS(asn=asn, name=name, country_iso2=cc,
                      kind=ASKind.CLOUD, tier=2, founded_year=2006))
        for asn, name, pops, _share in CDN_SPECS:
            if asn in ases:  # Google runs CDN and cloud on one ASN
                continue
            add_as(AS(asn=asn, name=name, country_iso2="US",
                      kind=ASKind.CONTENT, tier=2, founded_year=2008))
        add_as(AS(asn=19281, name="Quad9", country_iso2="US",
                  kind=ASKind.CONTENT, tier=3, founded_year=2016))
        # European wholesale Tier-2s: the carriers African ISPs buy from.
        eu_homes = ("DE", "NL", "GB", "FR", "PT", "ES", "IT")
        for i in range(14):
            cc = eu_homes[i % len(eu_homes)]
            add_as(AS(asn=8800 + i, name=f"EU-Transit-{i + 1}",
                      country_iso2=cc, kind=ASKind.TRANSIT, tier=2,
                      founded_year=1998 + (i % 8)))

    def _build_african_transit(self, add_as) -> None:
        for asn, name, home, footprint in AFRICAN_TRANSIT_SPECS:
            a = add_as(AS(asn=asn, name=name, country_iso2=home,
                          kind=ASKind.TRANSIT, tier=2, founded_year=2009))
            a.footprint = tuple(footprint)  # type: ignore[attr-defined]

    def _build_african_edge(self, add_as, counters, used_asns) -> None:
        p = self.params
        rng = derive_rng(p.seed, "topology", "african-edge")
        for iso2 in sorted(AFRICAN_COUNTRIES):
            c = AFRICAN_COUNTRIES[iso2]
            profile = REGION_PROFILES[c.region]
            n_eyeballs = max(2, round(profile.asn_density
                                      * c.population_m * p.scale))
            n_mobile = max(1, round(n_eyeballs * c.mobile_share))
            for i in range(n_eyeballs):
                kind = ASKind.MOBILE if i < n_mobile else ASKind.FIXED
                if iso2 == "RW" and i == n_eyeballs - 1:
                    # The paper's Kigali vantage (GVA/Canalbox, §7.3).
                    kind = ASKind.FIXED
                    asn = 36924
                    used_asns.add(asn)
                    name = "GVA-Canalbox-RW"
                else:
                    asn = counters.african_asn(used_asns)
                    label = "Mobile" if kind is ASKind.MOBILE else "ISP"
                    name = f"{iso2}-{label}-{i + 1}"
                founded = (rng.randint(2016, 2025) if rng.random() < 0.55
                           else rng.randint(1998, 2015))
                add_as(AS(asn=asn, name=name, country_iso2=iso2, kind=kind,
                          tier=3, founded_year=founded))
            # One NREN per country, plus a couple of enterprise networks
            # in the bigger economies.
            add_as(AS(asn=counters.african_asn(used_asns),
                      name=f"{iso2}-NREN", country_iso2=iso2,
                      kind=ASKind.EDUCATION, tier=3,
                      founded_year=rng.randint(2004, 2018)))
            n_ent = 1 + (c.population_m > 30) + (c.population_m > 80)
            for j in range(n_ent):
                add_as(AS(asn=counters.african_asn(used_asns),
                          name=f"{iso2}-Enterprise-{j + 1}",
                          country_iso2=iso2, kind=ASKind.ENTERPRISE, tier=3,
                          founded_year=rng.randint(2008, 2023)))

    def _build_reference_edge(self, add_as, counters, used_asns) -> None:
        p = self.params
        rng = derive_rng(p.seed, "topology", "reference-edge")
        for iso2 in sorted(COUNTRIES):
            c = COUNTRIES[iso2]
            if c.is_african:
                continue
            n = min(10, max(3, round(REFERENCE_PROFILE.asn_density
                                     * c.population_m * p.scale * 0.25)))
            n_mobile = max(1, round(n * c.mobile_share))
            for i in range(n):
                kind = ASKind.MOBILE if i < n_mobile else ASKind.FIXED
                label = "Mobile" if kind is ASKind.MOBILE else "ISP"
                add_as(AS(asn=counters.reference_asn(used_asns),
                          name=f"{iso2}-{label}-{i + 1}", country_iso2=iso2,
                          kind=kind, tier=3,
                          founded_year=rng.randint(1995, 2020)))

    # ------------------------------------------------------------------
    # IXPs
    # ------------------------------------------------------------------
    def _build_ixps(self, counters) -> dict[int, IXP]:
        p = self.params
        rng = derive_rng(p.seed, "topology", "ixps")
        lan_alloc = PrefixAllocator([Prefix.parse(AFRINIC_IXP_LAN_POOL)])
        eu_lan_alloc = PrefixAllocator([Prefix.parse(REFERENCE_IXP_LAN_POOL)])
        ixps: dict[int, IXP] = {}

        def new_ixp(name, cc, year, alloc) -> IXP:
            ixp = IXP(ixp_id=counters.next_ixp_id, name=name,
                      country_iso2=cc, lan_prefix=alloc.allocate(24),
                      founded_year=year,
                      lan_routed=rng.random() < p.ixp_lan_leak_rate)
            counters.next_ixp_id += 1
            ixps[ixp.ixp_id] = ixp
            return ixp

        for region, flagships in FLAGSHIP_IXPS.items():
            profile = REGION_PROFILES[region]
            for name, cc, year in flagships:
                new_ixp(name, cc, year, lan_alloc)
            remaining_old = profile.ixp_count_2015 - len(flagships)
            remaining_new = profile.ixp_count_2025 - profile.ixp_count_2015
            region_countries = sorted(
                c.iso2 for c in AFRICAN_COUNTRIES.values()
                if c.region is region)
            weights = [AFRICAN_COUNTRIES[cc].population_m
                       for cc in region_countries]
            for k in range(max(0, remaining_old) + max(0, remaining_new)):
                cc = rng.choices(region_countries, weights=weights)[0]
                year = (rng.randint(2006, 2014) if k < remaining_old
                        else rng.randint(2016, 2025))
                serial = sum(1 for x in ixps.values()
                             if x.country_iso2 == cc) + 1
                new_ixp(f"{cc}-IX-{serial}", cc, year, lan_alloc)

        for name, cc, year in EU_IXP_SPECS:
            new_ixp(name, cc, year, eu_lan_alloc)
        return ixps

    def _populate_ixp_members(self, ases, ixps, seed) -> None:
        rng = derive_rng(seed, "topology", "ixp-members")
        cdn_asns = {spec[0] for spec in CDN_SPECS}
        transit = [a for a in ases.values()
                   if a.kind is ASKind.TRANSIT and a.tier == 2
                   and a.is_african]
        for ixp in sorted(ixps.values(), key=lambda x: x.ixp_id):
            cc = ixp.country_iso2
            region = ixp.region

            def join(asn: int) -> None:
                ixp.members.add(asn)
                ases[asn].ixps.add(ixp.ixp_id)

            if ixp.is_african:
                pass  # handled below, AS-by-AS (stubs join 1-2 exchanges)
            else:
                # European exchanges: EU Tier-2s, clouds, CDNs, and the
                # occasional remote-peering African carrier.
                for a in sorted(ases.values(), key=lambda x: x.asn):
                    if a.is_african:
                        continue
                    if a.kind is ASKind.TRANSIT and a.tier == 2 \
                            and rng.random() < 0.35:
                        join(a.asn)
                    elif a.kind in (ASKind.CLOUD, ASKind.CONTENT) \
                            and rng.random() < 0.9:
                        join(a.asn)
                    elif a.kind.is_eyeball and a.region is Region.EUROPE \
                            and rng.random() < 0.5:
                        join(a.asn)
                for t in transit:
                    if rng.random() < 0.35:
                        join(t.asn)

        # African exchanges, from the member side: a stub connects to
        # its primary local exchange and only sometimes to a second —
        # real ISPs rarely maintain ports at many fabrics.  Regional
        # transit providers pick up to two exchanges per footprint
        # country.
        african_ixps_by_cc: dict[str, list[IXP]] = {}
        for ixp in sorted(ixps.values(), key=lambda x: x.ixp_id):
            if ixp.is_african:
                african_ixps_by_cc.setdefault(ixp.country_iso2,
                                              []).append(ixp)
        for a in sorted(ases.values(), key=lambda x: x.asn):
            if not a.is_african or a.tier != 3:
                continue
            local = african_ixps_by_cc.get(a.country_iso2, [])
            if not local:
                continue
            profile = REGION_PROFILES[a.region]
            # Everyone's first port goes to the flagship (the oldest,
            # biggest exchange — NAPAfrica, KIXP, IXPN...); secondary
            # ports at younger fabrics are much rarer.
            order = sorted(local, key=lambda x: (x.founded_year, x.ixp_id))
            rate = profile.ixp_join_rate
            for ixp in order:
                if rng.random() < rate:
                    ixp.members.add(a.asn)
                    a.ixps.add(ixp.ixp_id)
                rate *= 0.25  # steep drop-off after the primary port
        for t in transit:
            footprint = getattr(t, "footprint", (t.country_iso2,))
            for cc in footprint:
                local = african_ixps_by_cc.get(cc, [])
                for ixp in local[:2]:
                    if rng.random() < 0.85:
                        ixp.members.add(t.asn)
                        ases[t.asn].ixps.add(ixp.ixp_id)
        # The Kigali vantage joins its local exchange (RINEX).
        if 36924 in ases:
            for ixp in african_ixps_by_cc.get("RW", [])[:1]:
                ixp.members.add(36924)
                ases[36924].ixps.add(ixp.ixp_id)
        # Every exchange that exists has at least two local members.
        for cc, local in sorted(african_ixps_by_cc.items()):
            candidates = sorted(
                (x for x in ases.values()
                 if x.country_iso2 == cc and x.tier == 3),
                key=lambda x: -sum(p.size for p in x.prefixes))
            for ixp in local:
                for x in candidates:
                    if len(ixp.members) >= 2:
                        break
                    ixp.members.add(x.asn)
                    x.ixps.add(ixp.ixp_id)
        # CDN off-nets at the larger exchanges (§2).
        for ixp in sorted(ixps.values(), key=lambda x: x.ixp_id):
            if not ixp.is_african or len(ixp.members) < 4:
                continue
            profile = REGION_PROFILES[ixp.region]
            for cdn_asn in sorted(cdn_asns):
                if rng.random() < profile.offnet_cache_rate:
                    ixp.members.add(cdn_asn)
                    ases[cdn_asn].ixps.add(ixp.ixp_id)
                    ixp.offnet_providers.add(cdn_asn)

    # ------------------------------------------------------------------
    # Relationships
    # ------------------------------------------------------------------
    def _build_relationships(self, ases, ixps, seed) -> list[ASLink]:
        rng = derive_rng(seed, "topology", "relationships")
        links: list[ASLink] = []
        linked: set[tuple[int, int]] = set()

        def key(a, b):
            return (a, b) if a <= b else (b, a)

        def p2c(provider: int, customer: int) -> None:
            if provider == customer or key(provider, customer) in linked:
                return
            linked.add(key(provider, customer))
            links.append(ASLink(provider, customer,
                                Relationship.PROVIDER_TO_CUSTOMER))
            ases[provider].customers.add(customer)
            ases[customer].providers.add(provider)

        def p2p(a: int, b: int, ixp_id: int | None = None) -> None:
            if a == b or key(a, b) in linked:
                return
            linked.add(key(a, b))
            links.append(ASLink(a, b, Relationship.PEER_TO_PEER,
                                ixp_id=ixp_id))
            ases[a].peers.add(b)
            ases[b].peers.add(a)

        tier1s = sorted(a.asn for a in ases.values() if a.tier == 1)
        for a, b in itertools.combinations(tier1s, 2):
            p2p(a, b)

        eu_tier2 = sorted(a.asn for a in ases.values()
                          if a.kind is ASKind.TRANSIT and a.tier == 2
                          and not a.is_african)
        for asn in eu_tier2:
            for provider in rng.sample(tier1s, k=rng.randint(1, 3)):
                p2c(provider, asn)
        for a, b in itertools.combinations(eu_tier2, 2):
            if rng.random() < 0.10:
                p2p(a, b)

        clouds = sorted(a.asn for a in ases.values()
                        if a.kind in (ASKind.CLOUD, ASKind.CONTENT))
        for asn in clouds:
            for provider in rng.sample(tier1s, k=2):
                p2c(provider, asn)
            for t2 in eu_tier2:
                if rng.random() < 0.5:
                    p2p(asn, t2)

        african_transit = sorted(a.asn for a in ases.values()
                                 if a.kind is ASKind.TRANSIT and a.tier == 2
                                 and a.is_african)
        for asn in african_transit:
            choices = rng.sample(eu_tier2, k=rng.randint(1, 2))
            for provider in choices:
                p2c(provider, asn)
            if rng.random() < 0.4:
                p2c(rng.choice(tier1s), asn)
        for a, b in itertools.combinations(african_transit, 2):
            if rng.random() < 0.55:
                p2p(a, b)

        # African edge networks buy transit; the regional_transit_rate is
        # the probability they can find an African upstream at all (§4.1:
        # "a lack of sufficient Tier-2 providers in Africa").
        transit_by_cc: dict[str, list[int]] = {}
        for asn in african_transit:
            for cc in getattr(ases[asn], "footprint",
                              (ases[asn].country_iso2,)):
                transit_by_cc.setdefault(cc, []).append(asn)
        for a in sorted(ases.values(), key=lambda x: x.asn):
            if not a.is_african or a.tier != 3:
                continue
            if a.asn == 36924:
                continue  # the Kigali vantage is wired explicitly below
            profile = REGION_PROFILES[a.region]
            if a.kind is ASKind.EDUCATION:
                # NRENs buy international academic transit from Europe
                # (GEANT-style), regardless of the local market.
                p2c(rng.choice(eu_tier2), a.asn)
                continue
            local_upstreams = transit_by_cc.get(a.country_iso2, [])
            if local_upstreams and rng.random() < profile.regional_transit_rate:
                p2c(rng.choice(local_upstreams), a.asn)
                if rng.random() < 0.3:
                    p2c(rng.choice(eu_tier2), a.asn)
            else:
                p2c(rng.choice(eu_tier2), a.asn)
                if rng.random() < 0.25:
                    p2c(rng.choice(eu_tier2), a.asn)

        # The Kigali vantage of §7.3 is wired the way the paper
        # describes it: peering locally and buying regional transit
        # whose providers peer at exchanges across the continent.
        if 36924 in ases:
            for provider in (30844, 37662):  # Liquid, WIOCC
                if provider in ases:
                    p2c(provider, 36924)

        # Reference eyeballs: single-homed to in-region wholesale.
        for a in sorted(ases.values(), key=lambda x: x.asn):
            if a.is_african or a.tier != 3 or a.kind is ASKind.CONTENT:
                continue
            if a.region is Region.EUROPE:
                p2c(rng.choice(eu_tier2), a.asn)
            else:
                p2c(rng.choice(tier1s), a.asn)

        # IXP fabrics: bilateral peering between members.  Big networks
        # (transit, cloud, content) that meet at an exchange frequently
        # interconnect via private cross-connects (PNI) instead of the
        # shared LAN, so the fabric IP never shows in traceroutes; stub
        # networks use the route-server fabric.
        for ixp in sorted(ixps.values(), key=lambda x: x.ixp_id):
            profile = (REGION_PROFILES[ixp.region] if ixp.is_african
                       else REFERENCE_PROFILE)
            members = sorted(ixp.members)
            for a, b in itertools.combinations(members, 2):
                if key(a, b) in linked:
                    continue
                # CDNs peer with everyone at the exchange; everyone else
                # peers with the fabric's base rate.
                rate = profile.ixp_peering_rate
                both_big = (ases[a].tier <= 2 and ases[b].tier <= 2)
                if ases[a].kind is ASKind.CONTENT \
                        or ases[b].kind is ASKind.CONTENT:
                    rate = min(0.95, rate + 0.25)
                # Route servers make transit<->stub fabric sessions easy.
                if ixp.is_african and not both_big and \
                        (ases[a].tier == 2 or ases[b].tier == 2):
                    rate = min(0.95, rate + 0.30)
                if rng.random() < rate:
                    pni = both_big and rng.random() < 0.55
                    p2p(a, b, ixp_id=None if pni else ixp.ixp_id)
        return links

    # ------------------------------------------------------------------
    # Cables
    # ------------------------------------------------------------------
    def _build_cables(self, counters) -> list[SubseaCable]:
        cables = []
        for spec in (REAL_CABLE_SPECS + SYNTHETIC_OLD_CABLE_SPECS
                     + SYNTHETIC_NEW_CABLE_SPECS + REFERENCE_CABLE_SPECS):
            cables.append(build_cable(counters.next_cable_id, spec))
            counters.next_cable_id += 1
        return cables

    # ------------------------------------------------------------------
    # Address space
    # ------------------------------------------------------------------
    _PREFIX_BUDGET = {
        ASKind.MOBILE: (4, 10), ASKind.FIXED: (2, 6),
        ASKind.TRANSIT: (2, 4), ASKind.CLOUD: (8, 12),
        ASKind.CONTENT: (4, 8), ASKind.EDUCATION: (1, 2),
        ASKind.ENTERPRISE: (1, 1),
    }

    def _assign_prefixes(self, ases, ixps, seed) -> None:
        rng = derive_rng(seed, "topology", "prefixes")
        african_alloc = PrefixAllocator(
            [Prefix.parse(p) for p in AFRINIC_POOLS])
        ref_allocs = {region: PrefixAllocator(
            [Prefix.parse(p) for p in pools])
            for region, pools in REFERENCE_POOLS.items()}
        for a in sorted(ases.values(), key=lambda x: x.asn):
            lo, hi = self._PREFIX_BUDGET[a.kind]
            n = rng.randint(lo, hi)
            alloc = (african_alloc if a.is_african
                     else ref_allocs[a.region])
            a.prefixes = [alloc.allocate(20) for _ in range(n)]

    def _register_prefixes(self, topo: Topology) -> None:
        for a in topo.ases.values():
            for prefix in a.prefixes:
                topo.prefix_registry.add(prefix, a.asn)
        for ixp in topo.ixps.values():
            topo.prefix_registry.add(ixp.lan_prefix, IXPOwner(ixp.ixp_id))

    # ------------------------------------------------------------------
    # DNS resolver assignments
    # ------------------------------------------------------------------
    def _assign_resolvers(self, ases, cloud_resolvers, seed
                          ) -> dict[int, ResolverConfig]:
        rng = derive_rng(seed, "topology", "resolvers")
        configs: dict[int, ResolverConfig] = {}
        # Outsourcing destinations skew to the hub markets (§5.2).
        hub_ccs = ("ZA", "KE", "NG", "EG", "MU")
        eu_ccs = ("DE", "NL", "GB", "FR")
        by_country: dict[str, list[int]] = {}
        for a in ases.values():
            if a.kind.is_eyeball or a.kind is ASKind.TRANSIT:
                by_country.setdefault(a.country_iso2, []).append(a.asn)

        for a in sorted(ases.values(), key=lambda x: x.asn):
            if not a.kind.is_eyeball and a.kind is not ASKind.EDUCATION \
                    and a.kind is not ASKind.ENTERPRISE:
                continue
            profile = (REGION_PROFILES[a.region] if a.is_african
                       else REFERENCE_PROFILE)
            localities = list(profile.resolver_mix.keys())
            weights = list(profile.resolver_mix.values())
            locality = rng.choices(localities, weights=weights)[0]
            if locality is ResolverLocality.LOCAL_AS:
                cfg = ResolverConfig(a.asn, locality, a.country_iso2, a.asn)
            elif locality is ResolverLocality.LOCAL_COUNTRY:
                candidates = [x for x in by_country.get(a.country_iso2, [])
                              if x != a.asn]
                op = rng.choice(candidates) if candidates else a.asn
                cfg = ResolverConfig(a.asn, locality, a.country_iso2, op)
            elif locality is ResolverLocality.OTHER_AFRICAN_COUNTRY:
                cc = rng.choice([c for c in hub_ccs
                                 if c != a.country_iso2])
                ops = by_country.get(cc, [])
                op = rng.choice(ops) if ops else a.asn
                cfg = ResolverConfig(a.asn, locality, cc, op)
            elif locality is ResolverLocality.CLOUD:
                svc = rng.choice(cloud_resolvers)
                pop = svc.nearest_pop(a.country_iso2)
                cfg = ResolverConfig(a.asn, locality, pop, svc.asn)
            else:  # FOREIGN
                cc = rng.choice(eu_ccs)
                cfg = ResolverConfig(a.asn, locality, cc, 24940)
            configs[a.asn] = cfg
        return configs

    # ------------------------------------------------------------------
    # Content / top sites
    # ------------------------------------------------------------------
    _GLOBAL_DOMAINS = (
        "google.com", "youtube.com", "facebook.com", "whatsapp.com",
        "wikipedia.org", "twitter.com", "instagram.com", "tiktok.com",
        "netflix.com", "amazon.com", "office.com", "zoom.us",
        "linkedin.com", "reddit.com", "telegram.org",
    )

    def _build_websites(self, ases, ixps, cdns, datacenters, seed
                        ) -> dict[str, list[Website]]:
        p = self.params
        rng = derive_rng(seed, "topology", "websites")
        dc_countries = {d.country_iso2 for d in datacenters}
        african_dc_ccs = [d.country_iso2 for d in datacenters
                          if d.is_african]
        cdn_weights = [c.market_share for c in cdns]
        offnet_ccs_by_cdn: dict[int, set[str]] = {c.asn: set() for c in cdns}
        for ixp in ixps.values():
            for cdn_asn in ixp.offnet_providers:
                offnet_ccs_by_cdn.setdefault(cdn_asn, set()).add(
                    ixp.country_iso2)

        clouds = [a for a in ases.values() if a.kind is ASKind.CLOUD]
        websites: dict[str, list[Website]] = {}
        for iso2 in sorted(AFRICAN_COUNTRIES):
            c = AFRICAN_COUNTRIES[iso2]
            profile = REGION_PROFILES[c.region]
            sites: list[Website] = []
            for rank in range(1, p.top_sites_per_country + 1):
                if rank <= len(self._GLOBAL_DOMAINS):
                    domain = self._GLOBAL_DOMAINS[rank - 1]
                else:
                    domain = f"site{rank}.{iso2.lower()}"
                uses_cdn = rng.random() < p.cdn_top_site_share
                if uses_cdn:
                    cdn = rng.choices(cdns, weights=cdn_weights)[0]
                    site = self._place_cdn_site(
                        domain, rank, iso2, cdn,
                        offnet_ccs_by_cdn.get(cdn.asn, set()), rng)
                else:
                    site = self._place_origin_site(
                        domain, rank, iso2, profile, clouds,
                        dc_countries, african_dc_ccs, rng)
                sites.append(site)
            websites[iso2] = sites
        return websites

    def _place_cdn_site(self, domain, rank, client_cc, cdn, offnet_ccs,
                        rng) -> Website:
        if client_cc in offnet_ccs:
            return Website(domain, rank, client_cc, True, cdn.asn,
                           client_cc, HostingClass.LOCAL_CACHE)
        african_pops = [cc for cc in cdn.pop_countries
                        if cc in AFRICAN_COUNTRIES]
        # Anycast catchment: an African PoP may exist, but capacity and
        # catchment quirks push a region-dependent share of requests to
        # Europe (§4.2: "a significant amount of content is also
        # sourced from Europe").
        catchment = REGION_CDN_CATCHMENT[AFRICAN_COUNTRIES[client_cc].region]
        if african_pops and rng.random() < catchment:
            cc = self._nearest_pop(client_cc, african_pops)
            cls = (HostingClass.LOCAL_DC if cc == client_cc
                   else HostingClass.AFRICAN_DC)
            return Website(domain, rank, client_cc, True, cdn.asn, cc, cls)
        eu_pops = [cc for cc in cdn.pop_countries
                   if cc in ("DE", "GB", "FR", "NL")]
        cc = eu_pops[0] if eu_pops else "US"
        cls = (HostingClass.EUROPE if cc in ("DE", "GB", "FR", "NL")
               else HostingClass.OTHER_FOREIGN)
        return Website(domain, rank, client_cc, True, cdn.asn, cc, cls)

    @staticmethod
    def _nearest_pop(client_cc: str, pops: list[str]) -> str:
        from repro.geo import haversine_km
        client = AFRICAN_COUNTRIES[client_cc]
        return min(pops, key=lambda cc: (haversine_km(
            client.lat, client.lon, country(cc).lat, country(cc).lon), cc))

    def _place_origin_site(self, domain, rank, client_cc, profile, clouds,
                           dc_countries, african_dc_ccs, rng) -> Website:
        if client_cc in dc_countries \
                and rng.random() < profile.local_hosting_rate:
            host = rng.choice(clouds)
            return Website(domain, rank, client_cc, False, host.asn,
                           client_cc, HostingClass.LOCAL_DC)
        if rng.random() < 0.10 and african_dc_ccs:
            cc = "ZA" if rng.random() < 0.6 else rng.choice(african_dc_ccs)
            host = rng.choice(clouds)
            return Website(domain, rank, client_cc, False, host.asn, cc,
                           HostingClass.AFRICAN_DC)
        host = rng.choice(clouds)
        if rng.random() < 0.75:
            return Website(domain, rank, client_cc, False, host.asn,
                           rng.choice(("DE", "NL", "GB", "FR")),
                           HostingClass.EUROPE)
        return Website(domain, rank, client_cc, False, host.asn, "US",
                       HostingClass.OTHER_FOREIGN)


def build_world(seed: int = 2025, params: WorldParams | None = None
                ) -> Topology:
    """Build the default world; the one-liner every example starts with."""
    if params is None:
        params = WorldParams(seed=seed)
    elif params.seed != seed and seed != 2025:
        raise ValueError("pass the seed via params when supplying params")
    return TopologyGenerator(params).build()
