"""Topology substrate: the synthetic African Internet.

Public surface: the :class:`Topology` container, the generator, and the
building-block models (ASes, IXPs, cables, prefixes, DNS, content).
"""

from repro.topology.asn import AS, ASKind, ASLink, Relationship
from repro.topology.cables import (
    CableCorridor,
    CableSegment,
    Landing,
    SubseaCable,
    REAL_CABLE_SPECS,
)
from repro.topology.calibration import (
    CONTINENTAL_SCALE,
    REGION_PROFILES,
    REFERENCE_PROFILE,
    WorldParams,
    OutageRates,
    DEFAULT_PRICING,
    CountryPricing,
    continental_params,
)
from repro.topology.content import CDNProvider, HostingClass, Website
from repro.topology.datacenters import DataCenter, FacilityTier
from repro.topology.dns import (
    CloudResolverService,
    ResolverConfig,
    ResolverLocality,
)
from repro.topology.generator import TopologyGenerator, build_world
from repro.topology.ixp import IXP
from repro.topology.model import IXPOwner, Topology
from repro.topology.prefixes import (
    Prefix,
    PrefixAllocator,
    PrefixRegistry,
    format_ip,
)
from repro.topology.serialize import (
    load_world,
    save_world,
    topology_from_dict,
    topology_to_dict,
    world_digest,
)
from repro.topology.terrestrial import TERRESTRIAL_LINKS, TerrestrialLink

__all__ = [
    "AS", "ASKind", "ASLink", "Relationship",
    "CableCorridor", "CableSegment", "Landing", "SubseaCable",
    "REAL_CABLE_SPECS",
    "CONTINENTAL_SCALE", "REGION_PROFILES", "REFERENCE_PROFILE",
    "WorldParams", "OutageRates",
    "DEFAULT_PRICING", "CountryPricing", "continental_params",
    "CDNProvider", "HostingClass", "Website",
    "DataCenter", "FacilityTier",
    "CloudResolverService", "ResolverConfig", "ResolverLocality",
    "TopologyGenerator", "build_world",
    "IXP", "IXPOwner", "Topology",
    "Prefix", "PrefixAllocator", "PrefixRegistry", "format_ip",
    "TERRESTRIAL_LINKS", "TerrestrialLink",
    "load_world", "save_world", "topology_from_dict", "topology_to_dict",
    "world_digest",
]
