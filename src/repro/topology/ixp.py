"""Internet exchange points.

IXPs are central to the paper: they are the instrument of traffic
localisation (§2), the blind spot of global scanners (Table 1 — LAN
prefixes are not announced in the global table), and the coverage
universe of the Observatory's set-cover probe placement (§7.3,
footnote 1: 34 ASNs cover all 77 African IXPs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo import Region, country
from repro.topology.prefixes import Prefix


@dataclass
class IXP:
    """An Internet exchange point with a peering LAN."""

    ixp_id: int
    name: str
    country_iso2: str
    lan_prefix: Prefix
    founded_year: int
    #: ASNs present on the peering fabric.
    members: set[int] = field(default_factory=set)
    #: Content/CDN ASNs with off-net caches hosted at this IXP (§2).
    offnet_providers: set[int] = field(default_factory=set)
    #: Whether the LAN prefix leaks into the global BGP table (rare;
    #: RFC 7454 recommends against announcing peering LANs).
    lan_routed: bool = False

    def __post_init__(self) -> None:
        if self.lan_prefix.plen < 22 or self.lan_prefix.plen > 24:
            raise ValueError(
                f"IXP LAN should be /22../24, got {self.lan_prefix}"
            )

    @property
    def region(self) -> Region:
        return country(self.country_iso2).region

    @property
    def is_african(self) -> bool:
        return self.region.is_african

    def lan_ip_for(self, asn: int) -> int:
        """Deterministic fabric address for a member AS.

        Real IXPs assign each member a stable address on the peering
        LAN; we derive one from the member ASN so traceroute synthesis
        and IXP detection agree.
        """
        if asn not in self.members:
            raise ValueError(f"AS{asn} is not a member of {self.name}")
        host_bits = self.lan_prefix.size - 2
        offset = 1 + (asn % host_bits)
        return self.lan_prefix.network + offset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IXP(id={self.ixp_id}, name={self.name!r},"
            f" cc={self.country_iso2}, members={len(self.members)})"
        )
