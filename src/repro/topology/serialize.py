"""World serialization: save/load a generated topology as JSON.

Lets downstream users pin a world artifact (e.g. ship the exact world a
report was produced from) instead of relying on seed + code version.
Round-trips every structure the analyses touch; the prefix registry is
rebuilt from the allocations on load.
"""

from __future__ import annotations

import dataclasses
import gzip
import json
import pathlib
from typing import Any

from repro.topology.asn import AS, ASKind, ASLink, Relationship
from repro.topology.cables import CableCorridor, Landing, SubseaCable
from repro.topology.calibration import OutageRates, WorldParams
from repro.topology.content import CDNProvider, HostingClass, Website
from repro.topology.datacenters import DataCenter, FacilityTier
from repro.topology.dns import (
    CloudResolverService,
    ResolverConfig,
    ResolverLocality,
)
from repro.topology.ixp import IXP
from repro.topology.model import IXPOwner, Topology
from repro.topology.prefixes import Prefix
from repro.topology.terrestrial import TerrestrialLink

FORMAT_VERSION = 1


def _prefix(p: Prefix) -> str:
    return str(p)


def _params_to_dict(params: WorldParams) -> dict:
    d = dataclasses.asdict(params)
    d["outage_rates"] = dataclasses.asdict(params.outage_rates)
    return d


def _params_from_dict(d: dict) -> WorldParams:
    d = dict(d)
    d["outage_rates"] = OutageRates(**d["outage_rates"])
    return WorldParams(**d)


def topology_to_dict(topo: Topology) -> dict[str, Any]:
    """A JSON-serializable snapshot of the world."""
    return {
        "format_version": FORMAT_VERSION,
        "params": _params_to_dict(topo.params),
        "ases": [{
            "asn": a.asn, "name": a.name, "cc": a.country_iso2,
            "kind": a.kind.value, "tier": a.tier,
            "founded": a.founded_year,
            "prefixes": [_prefix(p) for p in a.prefixes],
            "footprint": list(getattr(a, "footprint", ())),
        } for a in sorted(topo.ases.values(), key=lambda x: x.asn)],
        "links": [{
            "a": l.a, "b": l.b, "rel": l.rel.value, "ixp": l.ixp_id,
        } for l in topo.links],
        "ixps": [{
            "id": x.ixp_id, "name": x.name, "cc": x.country_iso2,
            "lan": _prefix(x.lan_prefix), "founded": x.founded_year,
            "members": sorted(x.members),
            "offnet": sorted(x.offnet_providers),
            "lan_routed": x.lan_routed,
        } for x in sorted(topo.ixps.values(), key=lambda x: x.ixp_id)],
        "cables": [{
            "id": c.cable_id, "name": c.name,
            "corridor": c.corridor.value,
            "landings": [[g.iso2, g.site, g.lat, g.lon]
                         for g in c.landings],
            "rfs": c.rfs_year, "capacity": c.capacity_tbps,
            "diverse": c.diverse_route, "retired": c.retired_year,
        } for c in topo.cables],
        "terrestrial": [{
            "a": t.a, "b": t.b, "quality": t.quality,
            "built": t.built_year,
        } for t in topo.terrestrial],
        "datacenters": [{
            "id": d.dc_id, "cc": d.country_iso2, "tier": d.tier.value,
            "opened": d.opened_year, "capacity": d.capacity,
        } for d in topo.datacenters],
        "cdns": [{
            "asn": c.asn, "name": c.name, "pops": list(c.pop_countries),
            "share": c.market_share,
        } for c in topo.cdns],
        "cloud_resolvers": [{
            "asn": s.asn, "name": s.name, "pops": list(s.pop_countries),
        } for s in topo.cloud_resolvers],
        "resolver_configs": [{
            "asn": cfg.asn, "locality": cfg.locality.value,
            "hosted_in": cfg.hosted_in, "operator": cfg.operator_asn,
        } for cfg in (topo.resolver_configs[a]
                      for a in sorted(topo.resolver_configs))],
        "websites": {cc: [{
            "domain": s.domain, "rank": s.rank, "cdn": s.uses_cdn,
            "server_asn": s.server_asn, "server_cc": s.server_country,
            "hosting": s.hosting.value,
        } for s in sites] for cc, sites in sorted(topo.websites.items())},
    }


def topology_from_dict(data: dict[str, Any]) -> Topology:
    """Rebuild a :class:`Topology` from a snapshot dict."""
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported world format {data.get('format_version')!r}")
    ases: dict[int, AS] = {}
    for row in data["ases"]:
        a = AS(asn=row["asn"], name=row["name"], country_iso2=row["cc"],
               kind=ASKind(row["kind"]), tier=row["tier"],
               founded_year=row["founded"],
               prefixes=[Prefix.parse(p) for p in row["prefixes"]])
        if row["footprint"]:
            a.footprint = tuple(row["footprint"])  # type: ignore
        ases[a.asn] = a
    links = []
    for row in data["links"]:
        link = ASLink(row["a"], row["b"], Relationship(row["rel"]),
                      ixp_id=row["ixp"])
        links.append(link)
        if link.rel is Relationship.PROVIDER_TO_CUSTOMER:
            ases[link.a].customers.add(link.b)
            ases[link.b].providers.add(link.a)
        else:
            ases[link.a].peers.add(link.b)
            ases[link.b].peers.add(link.a)
    ixps = {}
    for row in data["ixps"]:
        ixp = IXP(ixp_id=row["id"], name=row["name"],
                  country_iso2=row["cc"],
                  lan_prefix=Prefix.parse(row["lan"]),
                  founded_year=row["founded"],
                  members=set(row["members"]),
                  offnet_providers=set(row["offnet"]),
                  lan_routed=row["lan_routed"])
        ixps[ixp.ixp_id] = ixp
        for member in ixp.members:
            ases[member].ixps.add(ixp.ixp_id)
    cables = [SubseaCable(
        cable_id=row["id"], name=row["name"],
        corridor=CableCorridor(row["corridor"]),
        landings=[Landing(*g) for g in row["landings"]],
        rfs_year=row["rfs"], capacity_tbps=row["capacity"],
        diverse_route=row["diverse"], retired_year=row["retired"],
    ) for row in data["cables"]]
    terrestrial = [TerrestrialLink(row["a"], row["b"], row["quality"],
                                   row["built"])
                   for row in data["terrestrial"]]
    datacenters = [DataCenter(row["id"], row["cc"],
                              FacilityTier(row["tier"]), row["opened"],
                              row["capacity"])
                   for row in data["datacenters"]]
    cdns = [CDNProvider(row["asn"], row["name"], tuple(row["pops"]),
                        row["share"]) for row in data["cdns"]]
    cloud_resolvers = [CloudResolverService(row["asn"], row["name"],
                                            tuple(row["pops"]))
                       for row in data["cloud_resolvers"]]
    resolver_configs = {row["asn"]: ResolverConfig(
        asn=row["asn"], locality=ResolverLocality(row["locality"]),
        hosted_in=row["hosted_in"], operator_asn=row["operator"])
        for row in data["resolver_configs"]}
    websites = {cc: [Website(
        domain=row["domain"], rank=row["rank"], client_country=cc,
        uses_cdn=row["cdn"], server_asn=row["server_asn"],
        server_country=row["server_cc"],
        hosting=HostingClass(row["hosting"]))
        for row in rows] for cc, rows in data["websites"].items()}
    topo = Topology(
        params=_params_from_dict(data["params"]),
        ases=ases, links=links, ixps=ixps, cables=cables,
        terrestrial=terrestrial, datacenters=datacenters, cdns=cdns,
        cloud_resolvers=cloud_resolvers,
        resolver_configs=resolver_configs, websites=websites)
    for a in topo.ases.values():
        for prefix in a.prefixes:
            topo.prefix_registry.add(prefix, a.asn)
    for ixp in topo.ixps.values():
        topo.prefix_registry.add(ixp.lan_prefix, IXPOwner(ixp.ixp_id))
    topo.validate()
    return topo


def world_digest(topo: Topology) -> str:
    """Stable content digest of a world (hex SHA-256).

    Hashes the canonical JSON encoding of :func:`topology_to_dict`
    using the artifact store's hashing (`repro.store.keys`), so the
    digest is independent of on-disk formatting or compression: a
    ``save``/``load-check`` round trip reports the same digest, and any
    drift in the snapshot's *content* changes it.
    """
    from repro.store.keys import digest_obj
    return digest_obj(topology_to_dict(topo))


def save_world(topo: Topology, path: str | pathlib.Path) -> None:
    """Write a world snapshot (gzip-compressed when path ends .gz)."""
    path = pathlib.Path(path)
    payload = json.dumps(topology_to_dict(topo),
                         separators=(",", ":")).encode()
    if path.suffix == ".gz":
        path.write_bytes(gzip.compress(payload))
    else:
        path.write_bytes(payload)


def load_world(path: str | pathlib.Path) -> Topology:
    """Load a world snapshot saved by :func:`save_world`."""
    path = pathlib.Path(path)
    raw = path.read_bytes()
    if path.suffix == ".gz":
        raw = gzip.decompress(raw)
    return topology_from_dict(json.loads(raw))
