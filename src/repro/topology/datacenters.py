"""Data centers and cloud regions.

Africa "lacks data centers" and large public clouds are "generally
centralized in South Africa" (§2, §5.2).  The data-center map drives
where content origins, CDN PoPs, cloud DNS resolvers, and off-net
caches can physically live.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geo import Region, country


class FacilityTier(enum.Enum):
    """Rough size class of a data-center market."""

    HYPERSCALE = "hyperscale"   # full public-cloud region
    REGIONAL = "regional"       # carrier-neutral colo market
    EDGE = "edge"               # small colo / IXP-adjacent cache site


@dataclass(frozen=True)
class DataCenter:
    """A data-center market in one country."""

    dc_id: int
    country_iso2: str
    tier: FacilityTier
    opened_year: int
    #: Relative hosting capacity (arbitrary units; weights placement).
    capacity: float

    @property
    def region(self) -> Region:
        return country(self.country_iso2).region

    @property
    def is_african(self) -> bool:
        return self.region.is_african


@dataclass(frozen=True)
class DataCenterSpec:
    country_iso2: str
    tier: FacilityTier
    opened_year: int
    capacity: float


#: The data-center geography the paper describes: hyperscale regions in
#: Europe/US, one mature African market (ZA), a few regional markets
#: (KE, NG, EG), and edge sites elsewhere.
DATACENTER_SPECS: tuple[DataCenterSpec, ...] = (
    # Hyperscale cloud regions outside Africa.
    DataCenterSpec("DE", FacilityTier.HYPERSCALE, 2008, 100.0),
    DataCenterSpec("NL", FacilityTier.HYPERSCALE, 2008, 90.0),
    DataCenterSpec("GB", FacilityTier.HYPERSCALE, 2008, 90.0),
    DataCenterSpec("FR", FacilityTier.HYPERSCALE, 2010, 80.0),
    DataCenterSpec("US", FacilityTier.HYPERSCALE, 2006, 150.0),
    DataCenterSpec("SG", FacilityTier.HYPERSCALE, 2010, 70.0),
    DataCenterSpec("IN", FacilityTier.HYPERSCALE, 2015, 60.0),
    DataCenterSpec("BR", FacilityTier.HYPERSCALE, 2012, 50.0),
    # Africa: ZA is the only hyperscale market (AWS/Azure Cape Town &
    # Johannesburg); KE/NG/EG are growing regional colo markets.
    DataCenterSpec("ZA", FacilityTier.HYPERSCALE, 2019, 40.0),
    DataCenterSpec("KE", FacilityTier.REGIONAL, 2013, 8.0),
    DataCenterSpec("NG", FacilityTier.REGIONAL, 2014, 9.0),
    DataCenterSpec("EG", FacilityTier.REGIONAL, 2012, 7.0),
    DataCenterSpec("MA", FacilityTier.REGIONAL, 2015, 4.0),
    DataCenterSpec("GH", FacilityTier.EDGE, 2016, 2.0),
    DataCenterSpec("CI", FacilityTier.EDGE, 2017, 1.5),
    DataCenterSpec("SN", FacilityTier.EDGE, 2018, 1.5),
    DataCenterSpec("TZ", FacilityTier.EDGE, 2017, 1.2),
    DataCenterSpec("UG", FacilityTier.EDGE, 2018, 1.0),
    DataCenterSpec("RW", FacilityTier.EDGE, 2019, 1.0),
    DataCenterSpec("AO", FacilityTier.EDGE, 2019, 1.0),
    DataCenterSpec("MU", FacilityTier.EDGE, 2015, 1.0),
    DataCenterSpec("TN", FacilityTier.EDGE, 2016, 1.0),
    DataCenterSpec("DJ", FacilityTier.EDGE, 2018, 1.0),
)


def build_datacenters() -> list[DataCenter]:
    """Instantiate the registry with stable ids."""
    return [
        DataCenter(dc_id=i, country_iso2=s.country_iso2, tier=s.tier,
                   opened_year=s.opened_year, capacity=s.capacity)
        for i, s in enumerate(DATACENTER_SPECS)
    ]
