"""Web content hosting: popular sites, CDNs, and off-net caches.

Fig. 2b measures how much of each country's popular content is served
from inside Africa (ISOC Pulse methodology: fetch the top sites per
country, detect CDN usage, geolocate the serving edge).  We model each
country's top-N sites and where each is actually served from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class HostingClass(enum.Enum):
    """Where a site is served from, for a given client country."""

    LOCAL_CACHE = "IXP off-net cache in-country"
    LOCAL_DC = "in-country data center"
    AFRICAN_DC = "data center elsewhere in Africa"
    EUROPE = "Europe"
    OTHER_FOREIGN = "outside Africa (non-Europe)"

    @property
    def is_african(self) -> bool:
        return self in (HostingClass.LOCAL_CACHE, HostingClass.LOCAL_DC,
                        HostingClass.AFRICAN_DC)


@dataclass(frozen=True)
class Website:
    """One entry of a country's top-site list."""

    domain: str
    rank: int
    #: Country whose top list this site belongs to.
    client_country: str
    uses_cdn: bool
    #: AS serving this site for clients in ``client_country``.
    server_asn: int
    #: Country the serving infrastructure sits in.
    server_country: str
    hosting: HostingClass

    def is_served_from_africa(self) -> bool:
        return self.hosting.is_african


@dataclass(frozen=True)
class CDNProvider:
    """A content-delivery network and its African footprint."""

    asn: int
    name: str
    #: Countries with full CDN PoPs (data-center deployments).
    pop_countries: tuple[str, ...]
    #: Share of the global top-site market this CDN serves.
    market_share: float

    def __post_init__(self) -> None:
        if not 0.0 < self.market_share <= 1.0:
            raise ValueError(f"bad market share for {self.name}")
