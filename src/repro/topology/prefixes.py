"""IPv4 prefixes and an allocation registry.

We model real address-space structure where it matters to the paper:

* African networks are numbered out of AfriNIC supernets (41/8, 102/8,
  105/8, 154/8, 196/8, 197/8) so that AfriNIC "delegated" statistics can
  be synthesised (§6.1 uses them as the coverage denominator).
* IXP LAN prefixes come from dedicated pools and are **not announced**
  in the global BGP table — the mechanism behind the poor IXP coverage
  of prefix-guided scanners in Table 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional


def _parse_dotted(dotted: str) -> int:
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {dotted!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad IPv4 octet in {dotted!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Render a 32-bit integer as dotted-quad."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix (network base + mask length)."""

    network: int
    plen: int

    def __post_init__(self) -> None:
        if not 0 <= self.plen <= 32:
            raise ValueError(f"bad prefix length {self.plen}")
        if self.network & (self.size - 1):
            raise ValueError(
                f"network {format_ip(self.network)} not aligned to /{self.plen}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` into a :class:`Prefix`."""
        addr, _, plen = text.partition("/")
        if not plen:
            raise ValueError(f"missing prefix length in {text!r}")
        return cls(_parse_dotted(addr), int(plen))

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.plen)

    @property
    def last(self) -> int:
        return self.network + self.size - 1

    def contains_ip(self, ip: int) -> bool:
        return self.network <= ip <= self.last

    def contains(self, other: "Prefix") -> bool:
        return self.plen <= other.plen and self.contains_ip(other.network)

    def overlaps(self, other: "Prefix") -> bool:
        return self.network <= other.last and other.network <= self.last

    def subnets(self, new_plen: int) -> Iterator["Prefix"]:
        """Iterate the sub-prefixes of length ``new_plen``."""
        if new_plen < self.plen:
            raise ValueError("new prefix length must not be shorter")
        step = 1 << (32 - new_plen)
        for base in range(self.network, self.network + self.size, step):
            yield Prefix(base, new_plen)

    def slash24_count(self) -> int:
        """How many /24 blocks this prefix spans (1 if longer than /24)."""
        if self.plen >= 24:
            return 1
        return 1 << (24 - self.plen)

    def random_ip(self, rng: random.Random) -> int:
        """A uniformly random address inside the prefix (host part free)."""
        return self.network + rng.randrange(self.size)

    def __str__(self) -> str:
        return f"{format_ip(self.network)}/{self.plen}"


class PrefixRegistry:
    """Maps addresses to owners via non-overlapping allocated prefixes.

    Supports longest-possible lookup by binary search; allocations must
    not overlap (enforced at insert), which mirrors RIR delegation.
    """

    def __init__(self) -> None:
        self._prefixes: list[Prefix] = []
        self._owners: list[object] = []
        self._sorted = True

    def __len__(self) -> int:
        return len(self._prefixes)

    def add(self, prefix: Prefix, owner: object) -> None:
        """Register ``prefix`` as owned by ``owner``."""
        self._prefixes.append(prefix)
        self._owners.append(owner)
        self._sorted = False

    def _ensure_sorted(self) -> None:
        if self._sorted:
            return
        order = sorted(range(len(self._prefixes)), key=lambda i: self._prefixes[i])
        self._prefixes = [self._prefixes[i] for i in order]
        self._owners = [self._owners[i] for i in order]
        for a, b in zip(self._prefixes, self._prefixes[1:]):
            if a.overlaps(b):
                raise ValueError(f"overlapping allocations: {a} and {b}")
        self._sorted = True

    def lookup(self, ip: int) -> Optional[object]:
        """Owner of the allocation covering ``ip``, or ``None``."""
        self._ensure_sorted()
        idx = self._bisect(ip)
        if idx < 0:
            return None
        return self._owners[idx]

    def _bisect(self, ip: int) -> int:
        lo, hi = 0, len(self._prefixes)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._prefixes[mid].network <= ip:
                lo = mid + 1
            else:
                hi = mid
        idx = lo - 1
        if idx >= 0 and self._prefixes[idx].contains_ip(ip):
            return idx
        return -1

    def lookup_prefix(self, ip: int) -> Optional[Prefix]:
        """The allocated prefix covering ``ip``, or ``None``."""
        self._ensure_sorted()
        idx = self._bisect(ip)
        return self._prefixes[idx] if idx >= 0 else None

    def items(self) -> Iterator[tuple[Prefix, object]]:
        self._ensure_sorted()
        return iter(list(zip(self._prefixes, self._owners)))


class PrefixAllocator:
    """Carves successive aligned prefixes out of a pool of supernets."""

    def __init__(self, supernets: list[Prefix]) -> None:
        if not supernets:
            raise ValueError("allocator needs at least one supernet")
        self._supernets = sorted(supernets)
        for a, b in zip(self._supernets, self._supernets[1:]):
            if a.overlaps(b):
                raise ValueError(f"overlapping supernets: {a} and {b}")
        self._pool_idx = 0
        self._cursor = self._supernets[0].network

    def allocate(self, plen: int) -> Prefix:
        """Allocate the next free prefix of length ``plen``."""
        size = 1 << (32 - plen)
        while self._pool_idx < len(self._supernets):
            pool = self._supernets[self._pool_idx]
            base = (self._cursor + size - 1) & ~(size - 1)  # align up
            if base + size - 1 <= pool.last and base >= pool.network:
                self._cursor = base + size
                return Prefix(base, plen)
            self._pool_idx += 1
            if self._pool_idx < len(self._supernets):
                self._cursor = self._supernets[self._pool_idx].network
        raise RuntimeError(f"address pool exhausted allocating /{plen}")
