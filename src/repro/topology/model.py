"""The :class:`Topology` container — the fully built synthetic world.

Produced by :mod:`repro.topology.generator`; consumed by routing,
measurement, outage and observatory layers.  All lookups the analyses
need (IP → AS, IP → IXP, region rosters, cable geography) live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.geo import Region, country, AFRICAN_REGIONS
from repro.topology.asn import AS, ASKind, ASLink, Relationship
from repro.topology.cables import SubseaCable
from repro.topology.calibration import WorldParams
from repro.topology.content import CDNProvider, Website
from repro.topology.datacenters import DataCenter
from repro.topology.dns import CloudResolverService, ResolverConfig
from repro.topology.ixp import IXP
from repro.topology.prefixes import PrefixRegistry
from repro.topology.terrestrial import TerrestrialLink


@dataclass(frozen=True)
class IXPOwner:
    """Prefix-registry owner marker for IXP LAN prefixes."""

    ixp_id: int


@dataclass
class Topology:
    """The simulated Internet."""

    params: WorldParams
    ases: dict[int, AS]
    links: list[ASLink]
    ixps: dict[int, IXP]
    cables: list[SubseaCable]
    terrestrial: list[TerrestrialLink]
    datacenters: list[DataCenter]
    cdns: list[CDNProvider]
    cloud_resolvers: list[CloudResolverService]
    resolver_configs: dict[int, ResolverConfig]
    #: client country ISO2 -> its top-site list.
    websites: dict[str, list[Website]]
    prefix_registry: PrefixRegistry = field(default_factory=PrefixRegistry)
    #: (min(a, b), max(a, b)) -> ASLink index for O(1) adjacency checks.
    _link_index: dict[tuple[int, int], ASLink] = field(default_factory=dict)
    #: Edit journal: links appended via :meth:`add_link` since this
    #: object was constructed.  On a :meth:`structured_copy` (which
    #: starts a fresh journal and records ``routing_base``) this is what
    #: lets ``DeltaRouting`` prove the copy is "baseline + these edges"
    #: and recompute only the affected destinations.
    added_links: list[ASLink] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self._link_index:
            for link in self.links:
                self._link_index[self._key(link.a, link.b)] = link

    @staticmethod
    def _key(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    # ------------------------------------------------------------------
    # AS lookups
    # ------------------------------------------------------------------
    def as_(self, asn: int) -> AS:
        try:
            return self.ases[asn]
        except KeyError:
            raise KeyError(f"unknown ASN {asn}") from None

    def ases_in_country(self, iso2: str) -> list[AS]:
        return [a for a in self.ases.values() if a.country_iso2 == iso2]

    def ases_in_region(self, region: Region) -> list[AS]:
        return [a for a in self.ases.values() if a.region is region]

    def african_ases(self) -> list[AS]:
        return [a for a in self.ases.values() if a.is_african]

    def eyeball_ases(self, region: Optional[Region] = None) -> list[AS]:
        out = [a for a in self.ases.values() if a.kind.is_eyeball]
        if region is not None:
            out = [a for a in out if a.region is region]
        return out

    def tier1_ases(self) -> list[AS]:
        return [a for a in self.ases.values() if a.tier == 1]

    def link_between(self, a: int, b: int) -> Optional[ASLink]:
        return self._link_index.get(self._key(a, b))

    def add_link(self, link: ASLink) -> ASLink:
        """Add an adjacency, maintaining every derived index.

        The public mutation API for scenario engines: appends to
        ``links``, updates ``_link_index`` and mirrors the relationship
        into the per-AS ``providers``/``peers``/``customers`` sets —
        the invariants :meth:`validate` checks.  Raises ``KeyError``
        for unknown endpoints and ``ValueError`` if the pair is
        already connected.
        """
        a, b = self.as_(link.a), self.as_(link.b)
        if self.link_between(link.a, link.b) is not None:
            raise ValueError(
                f"AS{link.a} and AS{link.b} are already linked")
        self.links.append(link)
        self.added_links.append(link)
        self._link_index[self._key(link.a, link.b)] = link
        # Adjacency changed: a cached compiled view is stale.
        self.__dict__.pop("_compiled_topology", None)
        if link.rel is Relationship.PROVIDER_TO_CUSTOMER:
            a.customers.add(link.b)
            b.providers.add(link.a)
        else:
            a.peers.add(link.b)
            b.peers.add(link.a)
        return link

    def shared_ixps(self, a: int, b: int) -> list[IXP]:
        """IXPs where both ASes are members."""
        common = self.as_(a).ixps & self.as_(b).ixps
        return [self.ixps[i] for i in sorted(common)]

    # ------------------------------------------------------------------
    # IP-space lookups
    # ------------------------------------------------------------------
    def owner_of_ip(self, ip: int):
        """Registry owner of ``ip``: an ASN (int), IXPOwner, or None."""
        return self.prefix_registry.lookup(ip)

    def as_for_ip(self, ip: int) -> Optional[AS]:
        owner = self.owner_of_ip(ip)
        if isinstance(owner, int):
            return self.ases.get(owner)
        return None

    def ixp_for_ip(self, ip: int) -> Optional[IXP]:
        owner = self.owner_of_ip(ip)
        if isinstance(owner, IXPOwner):
            return self.ixps.get(owner.ixp_id)
        return None

    # ------------------------------------------------------------------
    # Infrastructure rosters
    # ------------------------------------------------------------------
    def african_ixps(self) -> list[IXP]:
        return [x for x in self.ixps.values() if x.is_african]

    def ixps_in_country(self, iso2: str) -> list[IXP]:
        return [x for x in self.ixps.values() if x.country_iso2 == iso2]

    def cables_landing_in(self, iso2: str,
                          year: Optional[int] = None) -> list[SubseaCable]:
        year = year if year is not None else self.params.current_year
        return [c for c in self.cables
                if iso2 in c.countries and c.active_in(year)]

    def active_cables(self, year: Optional[int] = None) -> list[SubseaCable]:
        year = year if year is not None else self.params.current_year
        return [c for c in self.cables if c.active_in(year)]

    def african_cables(self, year: Optional[int] = None) -> list[SubseaCable]:
        return [c for c in self.active_cables(year) if c.african_countries]

    def datacenters_in(self, iso2: str) -> list[DataCenter]:
        return [d for d in self.datacenters if d.country_iso2 == iso2]

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def structured_copy(self) -> "Topology":
        """A mutation-safe copy an order of magnitude cheaper than
        ``copy.deepcopy``.

        Containers and the mutable records scenario engines touch
        (``AS`` membership sets, ``IXP`` member sets) are copied;
        immutable leaves (``Prefix``, ``ASLink``, ``ResolverConfig``,
        ``WorldParams``, websites, landings) are shared.  The prefix
        registry is shared too: scenarios add cables, links and
        resolver configs, never address allocations.  What-if engines
        mutate the copy through :meth:`add_link` and the public
        container attributes while the baseline stays untouched.

        The copy carries ``routing_base`` (a back-reference to this
        topology) and a fresh ``added_links`` journal, so the routing
        layer can recognise it as "baseline plus edits" and reuse the
        baseline's compiled tables incrementally (``DeltaRouting``).
        """
        ases = {}
        for asn, a in self.ases.items():
            copied = replace(a, prefixes=list(a.prefixes),
                             providers=set(a.providers),
                             peers=set(a.peers),
                             customers=set(a.customers),
                             ixps=set(a.ixps))
            # ``replace`` only sees declared fields; the generator also
            # tacks on ad-hoc attributes (e.g. transit ``footprint``)
            # which must survive the copy.
            for key, value in vars(a).items():
                if key not in vars(copied):
                    setattr(copied, key, value)
            ases[asn] = copied
        ixps = {
            ixp_id: replace(x, members=set(x.members),
                            offnet_providers=set(x.offnet_providers))
            for ixp_id, x in self.ixps.items()}
        copied_topo = Topology(
            params=self.params,
            ases=ases,
            links=list(self.links),
            ixps=ixps,
            cables=list(self.cables),
            terrestrial=list(self.terrestrial),
            datacenters=list(self.datacenters),
            cdns=list(self.cdns),
            cloud_resolvers=list(self.cloud_resolvers),
            resolver_configs=dict(self.resolver_configs),
            websites={cc: list(sites)
                      for cc, sites in self.websites.items()},
            prefix_registry=self.prefix_registry,
            _link_index=dict(self._link_index))
        copied_topo.routing_base = self
        return copied_topo

    # ------------------------------------------------------------------
    # Summary / sanity
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, int]:
        """Headline counts, handy for logging and sanity tests."""
        african = self.african_ases()
        return {
            "ases_total": len(self.ases),
            "ases_african": len(african),
            "links": len(self.links),
            "ixps_total": len(self.ixps),
            "ixps_african": len(self.african_ixps()),
            "cables": len(self.cables),
            "cables_african": len(self.african_cables()),
            "terrestrial_links": len(self.terrestrial),
            "datacenters": len(self.datacenters),
            "countries_african": len(
                {a.country_iso2 for a in african}),
        }

    def validate(self) -> None:
        """Structural invariants; raises ``AssertionError`` on violation."""
        for link in self.links:
            if link.a not in self.ases or link.b not in self.ases:
                raise AssertionError(f"dangling link {link}")
            if link.rel is Relationship.PROVIDER_TO_CUSTOMER:
                if link.b not in self.ases[link.a].customers:
                    raise AssertionError(f"unrecorded customer on {link}")
                if link.a not in self.ases[link.b].providers:
                    raise AssertionError(f"unrecorded provider on {link}")
        for ixp in self.ixps.values():
            for member in ixp.members:
                if member not in self.ases:
                    raise AssertionError(
                        f"IXP {ixp.name} has unknown member AS{member}")
                if ixp.ixp_id not in self.ases[member].ixps:
                    raise AssertionError(
                        f"membership not mirrored for AS{member}")
        for asn, cfg in self.resolver_configs.items():
            if asn not in self.ases:
                raise AssertionError(f"resolver config for unknown AS{asn}")
            country(cfg.hosted_in)  # raises if bogus
