"""Cross-border terrestrial fiber links.

Terrestrial connectivity in Africa is sparse and often low quality
(§2: "poor terrestrial connectivity ... a need to use non-terrestrial
routes").  We model the major cross-border routes that exist today;
their ``quality`` (0..1) scales both capacity and reliability, and
landlocked countries depend on them entirely for international transit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo import country, haversine_km


@dataclass(frozen=True)
class TerrestrialLink:
    """A cross-border terrestrial fiber route between two countries."""

    a: str
    b: str
    #: 0..1 — combined capacity/reliability score.
    quality: float
    built_year: int = 2010

    def __post_init__(self) -> None:
        if not 0.0 < self.quality <= 1.0:
            raise ValueError(f"bad quality {self.quality} on {self.a}-{self.b}")

    @property
    def length_km(self) -> float:
        ca, cb = country(self.a), country(self.b)
        return haversine_km(ca.lat, ca.lon, cb.lat, cb.lon)

    def involves(self, iso2: str) -> bool:
        return iso2 in (self.a, self.b)

    def other(self, iso2: str) -> str:
        if iso2 == self.a:
            return self.b
        if iso2 == self.b:
            return self.a
        raise ValueError(f"{iso2} not on link {self.a}-{self.b}")


def _t(a: str, b: str, quality: float, year: int = 2010) -> TerrestrialLink:
    return TerrestrialLink(a=a, b=b, quality=quality, built_year=year)


#: The principal cross-border fiber routes.  Southern/Eastern Africa has
#: the densest mesh (SADC backbone, East African backhaul from Mombasa/
#: Dar es Salaam); Central Africa the sparsest.
TERRESTRIAL_LINKS: tuple[TerrestrialLink, ...] = (
    # Southern Africa (relatively strong SADC mesh).
    _t("ZA", "BW", 0.85, 2008), _t("ZA", "NA", 0.85, 2009),
    _t("ZA", "ZW", 0.80, 2009), _t("ZA", "MZ", 0.85, 2008),
    _t("ZA", "LS", 0.80, 2010), _t("ZA", "SZ", 0.80, 2010),
    _t("BW", "ZM", 0.70, 2012), _t("BW", "NA", 0.70, 2012),
    _t("ZW", "ZM", 0.70, 2011), _t("ZW", "MZ", 0.65, 2012),
    # Eastern Africa backhaul.
    _t("ZM", "MW", 0.60, 2012), _t("ZM", "TZ", 0.65, 2012),
    _t("ZM", "CD", 0.45, 2014), _t("MW", "MZ", 0.60, 2013),
    _t("MW", "TZ", 0.55, 2013), _t("TZ", "KE", 0.80, 2010),
    _t("TZ", "UG", 0.60, 2012), _t("TZ", "RW", 0.65, 2012),
    _t("TZ", "BI", 0.50, 2014), _t("KE", "UG", 0.80, 2010),
    _t("KE", "ET", 0.55, 2016), _t("KE", "SO", 0.35, 2018),
    _t("UG", "RW", 0.75, 2011), _t("UG", "SS", 0.40, 2016),
    _t("RW", "BI", 0.60, 2013), _t("RW", "CD", 0.40, 2015),
    _t("ET", "DJ", 0.75, 2012), _t("ET", "SD", 0.40, 2015),
    _t("SD", "EG", 0.55, 2014), _t("SS", "SD", 0.30, 2016),
    # Western Africa coastal + Sahel.
    _t("NG", "BJ", 0.65, 2011), _t("BJ", "TG", 0.65, 2011),
    _t("TG", "GH", 0.70, 2011), _t("GH", "CI", 0.70, 2012),
    _t("CI", "BF", 0.55, 2013), _t("CI", "ML", 0.50, 2014),
    _t("BF", "ML", 0.50, 2013), _t("BF", "NE", 0.45, 2014),
    _t("BF", "GH", 0.55, 2013), _t("ML", "SN", 0.55, 2012),
    _t("NE", "NG", 0.45, 2014), _t("NE", "BJ", 0.40, 2015),
    _t("SN", "GM", 0.60, 2012), _t("SN", "MR", 0.50, 2013),
    _t("SN", "GW", 0.45, 2015), _t("GN", "SL", 0.35, 2016),
    _t("GN", "ML", 0.35, 2016), _t("LR", "SL", 0.30, 2017),
    _t("MR", "MA", 0.45, 2014),
    # Central Africa (sparse).
    _t("CM", "TD", 0.40, 2014), _t("CM", "GA", 0.45, 2014),
    _t("CM", "NG", 0.50, 2013), _t("CM", "CF", 0.25, 2018),
    _t("GA", "CG", 0.40, 2015), _t("CG", "CD", 0.45, 2013),
    _t("AO", "CD", 0.40, 2015), _t("AO", "NA", 0.55, 2013),
    _t("TD", "SD", 0.20, 2019), _t("GQ", "GA", 0.35, 2016),
    _t("GQ", "CM", 0.35, 2016),
    # Northern Africa.
    _t("DZ", "TN", 0.75, 2008), _t("EG", "LY", 0.50, 2012),
    _t("LY", "TN", 0.45, 2013), _t("DZ", "ML", 0.25, 2018),
    _t("DZ", "NE", 0.20, 2019), _t("MA", "DZ", 0.15, 2005),
)


#: Dense terrestrial meshes of the reference regions (quality ~1.0).
REFERENCE_TERRESTRIAL_LINKS: tuple[TerrestrialLink, ...] = (
    _t("DE", "NL", 1.0, 1995), _t("DE", "FR", 1.0, 1995),
    _t("DE", "IT", 1.0, 1995), _t("FR", "GB", 1.0, 1995),
    _t("FR", "ES", 1.0, 1995), _t("FR", "IT", 1.0, 1995),
    _t("ES", "PT", 1.0, 1995), _t("GB", "NL", 1.0, 1995),
    _t("US", "CA", 1.0, 1995),
)


def links_for(iso2: str) -> list[TerrestrialLink]:
    """All terrestrial links touching ``iso2``."""
    return [link for link in TERRESTRIAL_LINKS if link.involves(iso2)]
