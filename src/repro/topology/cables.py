"""Subsea cables, landing sites, and corridors.

Section 5.1's core observation is that African cables are laid along a
small number of shared corridors ("cables are often laid next to each
other, resulting in correlated failures"): four west-coast cables (WACS,
MainOne, SAT3, ACE) were severed by one rock slide near Abidjan in March
2024, and three east-coast cables (EIG, Seacom, AAE-1) by one Red Sea
incident.  We therefore attach every cable to a :class:`CableCorridor`;
the outage engine draws *corridor events* that cut all co-located
cables at once.

The catalog below lists the real African cable systems the paper names,
with their actual landing sequences (approximate) and ready-for-service
years; the generator tops this up with synthetic systems to match
AfriNIC-scale counts and the Fig. 1 growth rates.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.geo import country, haversine_km


class CableCorridor(enum.Enum):
    """A physical corridor shared by multiple cable systems."""

    WEST_AFRICA = "West Africa Atlantic"
    EAST_AFRICA = "East Africa Indian Ocean"
    RED_SEA = "Red Sea"
    MEDITERRANEAN = "Mediterranean"
    SOUTH_ATLANTIC = "South Atlantic"
    INDIAN_OCEAN_ISLANDS = "Indian Ocean Islands"
    GLOBAL_BACKBONE = "Global backbone"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Coastal landing sites.  Most countries get one; South Africa and
#: Egypt land cables on two coasts.  Keys with a ``:suffix`` select the
#: alternate site.
LANDING_SITES: dict[str, tuple[str, float, float]] = {
    "ZA": ("Melkbosstrand", -33.72, 18.44),
    "ZA:east": ("Mtunzini", -28.95, 31.75),
    "EG": ("Alexandria", 31.20, 29.92),
    "EG:redsea": ("Zafarana", 29.11, 32.65),
    "NG": ("Lagos", 6.42, 3.40),
    "KE": ("Mombasa", -4.04, 39.67),
    "TZ": ("Dar es Salaam", -6.82, 39.29),
    "MZ": ("Maputo", -25.97, 32.57),
    "CI": ("Abidjan", 5.30, -4.02),
    "GH": ("Accra", 5.56, -0.20),
    "SN": ("Dakar", 14.72, -17.47),
    "AO": ("Luanda", -8.84, 13.23),
    "CM": ("Douala", 4.05, 9.70),
    "DJ": ("Djibouti City", 11.59, 43.15),
    "MA": ("Casablanca", 33.57, -7.59),
    "TN": ("Bizerte", 37.27, 9.87),
    "DZ": ("Algiers", 36.75, 3.06),
    "LY": ("Tripoli", 32.89, 13.19),
    "SD": ("Port Sudan", 19.62, 37.22),
    "NA": ("Swakopmund", -22.68, 14.53),
    "CD": ("Muanda", -5.93, 12.35),
    "CG": ("Pointe-Noire", -4.78, 11.86),
    "GA": ("Libreville", 0.39, 9.45),
    "BJ": ("Cotonou", 6.37, 2.39),
    "TG": ("Lome", 6.13, 1.22),
    "LR": ("Monrovia", 6.30, -10.80),
    "SL": ("Freetown", 8.48, -13.23),
    "GN": ("Conakry", 9.64, -13.58),
    "GW": ("Bissau", 11.86, -15.60),
    "GM": ("Banjul", 13.45, -16.58),
    "MR": ("Nouakchott", 18.08, -15.98),
    "CV": ("Praia", 14.93, -23.51),
    "ST": ("Sao Tome", 0.34, 6.73),
    "GQ": ("Bata", 1.86, 9.77),
    "SO": ("Mogadishu", 2.05, 45.32),
    "ER": ("Massawa", 15.61, 39.45),
    "MG": ("Toliara", -23.35, 43.67),
    "MU": ("Baie du Jacotet", -20.16, 57.50),
    "SC": ("Victoria", -4.62, 55.45),
    "KM": ("Moroni", -11.70, 43.26),
    # European / intercontinental landings.
    "PT": ("Sesimbra", 38.44, -9.10),
    "FR": ("Marseille", 43.30, 5.37),
    "GB": ("Bude", 50.83, -4.55),
    "ES": ("Barcelona", 41.39, 2.17),
    "IT": ("Genoa", 44.41, 8.93),
    "BR": ("Fortaleza", -3.73, -38.52),
    "IN": ("Mumbai", 19.08, 72.88),
    "SG": ("Singapore", 1.35, 103.82),
    "US": ("Virginia Beach", 36.85, -75.98),
}


def landing_site(key: str) -> tuple[str, str, float, float]:
    """Resolve a landing key (``"ZA"`` or ``"ZA:east"``) to its site.

    Returns ``(iso2, site_name, lat, lon)``; falls back to the country's
    capital coordinates if no coastal site is registered.
    """
    iso2 = key.split(":")[0]
    if key in LANDING_SITES:
        name, lat, lon = LANDING_SITES[key]
        return iso2, name, lat, lon
    c = country(iso2)
    return iso2, c.name, c.lat, c.lon


@dataclass(frozen=True)
class Landing:
    """One cable landing: a country plus the physical site."""

    iso2: str
    site: str
    lat: float
    lon: float


@dataclass
class SubseaCable:
    """A subsea cable system as an ordered chain of landings."""

    cable_id: int
    name: str
    corridor: CableCorridor
    landings: list[Landing]
    rfs_year: int
    capacity_tbps: float = 10.0
    #: Geographically diverse systems (Equiano, 2Africa) avoid the
    #: legacy chokepoints and are exempt from corridor-correlated cuts.
    diverse_route: bool = False
    retired_year: int | None = None

    def __post_init__(self) -> None:
        if len(self.landings) < 2:
            raise ValueError(f"cable {self.name} needs >= 2 landings")
        if self.capacity_tbps <= 0:
            raise ValueError(f"cable {self.name} has non-positive capacity")

    @property
    def countries(self) -> list[str]:
        """Landing countries in order (duplicates removed, order kept)."""
        seen: list[str] = []
        for landing in self.landings:
            if landing.iso2 not in seen:
                seen.append(landing.iso2)
        return seen

    @property
    def african_countries(self) -> list[str]:
        return [cc for cc in self.countries if country(cc).is_african]

    def active_in(self, year: int) -> bool:
        if year < self.rfs_year:
            return False
        return self.retired_year is None or year < self.retired_year

    def traffic_weight(self, year: int) -> float:
        """Share-of-traffic weight this cable carries in ``year``.

        Installed capacity is not lit capacity: operators migrate onto a
        new system over ~5 years, so a freshly landed giant (2Africa)
        initially carries far less traffic than its design capacity —
        which is why cutting the *legacy* corridor cables still cripples
        a country that nominally has huge new capacity (§5.1).
        """
        if not self.active_in(year):
            return 0.0
        ramp = min(1.0, (year - self.rfs_year + 1) / 5.0)
        return math.sqrt(self.capacity_tbps) * ramp

    def segments(self) -> list["CableSegment"]:
        """Adjacent landing pairs with great-circle segment lengths."""
        out = []
        for idx, (a, b) in enumerate(zip(self.landings, self.landings[1:])):
            length = haversine_km(a.lat, a.lon, b.lat, b.lon)
            out.append(CableSegment(self.cable_id, idx, a, b, length))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        chain = "-".join(self.countries)
        return f"SubseaCable({self.name!r}, {self.corridor.name}, {chain})"


@dataclass(frozen=True)
class CableSegment:
    """One wet segment between adjacent landings of a cable."""

    cable_id: int
    index: int
    a: Landing
    b: Landing
    length_km: float


@dataclass(frozen=True)
class CableSpec:
    """Static description used to instantiate real cable systems."""

    name: str
    corridor: CableCorridor
    landing_keys: tuple[str, ...]
    rfs_year: int
    capacity_tbps: float
    diverse_route: bool = False


#: Real African cable systems (approximate landing chains).  The March
#: 2024 incidents cut {WACS, MainOne, SAT-3, ACE} in the west and
#: {EIG, Seacom, AAE-1} in the east — all present here.
REAL_CABLE_SPECS: tuple[CableSpec, ...] = (
    CableSpec("SAT-3/WASC", CableCorridor.WEST_AFRICA,
              ("PT", "SN", "CI", "GH", "BJ", "NG", "CM", "GA", "AO", "ZA"),
              2002, 0.8),
    CableSpec("WACS", CableCorridor.WEST_AFRICA,
              ("GB", "PT", "CV", "CI", "GH", "TG", "NG", "CM", "CD", "AO",
               "NA", "ZA"), 2012, 14.5),
    CableSpec("ACE", CableCorridor.WEST_AFRICA,
              ("FR", "PT", "MR", "SN", "GM", "GW", "GN", "SL", "LR", "CI",
               "GH", "BJ", "NG", "CM", "GA", "ST"), 2012, 12.8),
    CableSpec("MainOne", CableCorridor.WEST_AFRICA,
              ("PT", "GH", "NG"), 2010, 10.0),
    CableSpec("Glo-1", CableCorridor.WEST_AFRICA,
              ("GB", "GH", "NG"), 2010, 2.5),
    CableSpec("NCSCS", CableCorridor.WEST_AFRICA,
              ("NG", "CM"), 2015, 12.8),
    CableSpec("Ceiba-2", CableCorridor.WEST_AFRICA,
              ("CM", "GQ"), 2017, 8.0),
    CableSpec("Equiano", CableCorridor.WEST_AFRICA,
              ("PT", "TG", "NG", "NA", "ZA"), 2022, 144.0,
              diverse_route=True),
    CableSpec("2Africa-West", CableCorridor.WEST_AFRICA,
              ("GB", "PT", "SN", "CI", "GH", "NG", "GA", "CG", "CD", "AO",
               "NA", "ZA"), 2023, 180.0, diverse_route=True),
    CableSpec("Amilcar-Cabral", CableCorridor.WEST_AFRICA,
              ("SN", "GW", "CV"), 2019, 4.0),
    # East coast / Indian Ocean.
    CableSpec("SEACOM", CableCorridor.EAST_AFRICA,
              ("ZA:east", "MZ", "TZ", "KE", "DJ", "EG:redsea"), 2009, 12.0),
    CableSpec("EASSy", CableCorridor.EAST_AFRICA,
              ("ZA:east", "MZ", "KM", "TZ", "KE", "SO", "DJ", "SD"),
              2010, 36.0),
    CableSpec("TEAMS", CableCorridor.EAST_AFRICA,
              ("KE", "DJ"), 2009, 5.0),
    CableSpec("DARE1", CableCorridor.EAST_AFRICA,
              ("KE", "SO", "DJ"), 2021, 36.0),
    CableSpec("2Africa-East", CableCorridor.EAST_AFRICA,
              ("ZA:east", "MZ", "MG", "TZ", "KE", "SO", "DJ", "EG:redsea"),
              2024, 180.0, diverse_route=True),
    # Red Sea transit toward Europe/Asia (the Egypt chokepoint).
    CableSpec("EIG", CableCorridor.RED_SEA,
              ("GB", "PT", "EG", "DJ", "IN"), 2011, 3.8),
    CableSpec("AAE-1", CableCorridor.RED_SEA,
              ("FR", "EG", "DJ", "IN", "SG"), 2017, 40.0),
    CableSpec("SMW4", CableCorridor.RED_SEA,
              ("FR", "DZ", "EG", "DJ", "IN", "SG"), 2005, 4.6),
    CableSpec("SMW5", CableCorridor.RED_SEA,
              ("FR", "EG", "DJ", "IN", "SG"), 2016, 24.0),
    CableSpec("PEACE", CableCorridor.RED_SEA,
              ("FR", "EG", "DJ", "KE"), 2022, 60.0),
    # Mediterranean (Northern Africa).
    CableSpec("SeaMeWe-4-Med", CableCorridor.MEDITERRANEAN,
              ("FR", "IT", "TN", "DZ", "EG"), 2005, 4.6),
    CableSpec("Medusa", CableCorridor.MEDITERRANEAN,
              ("PT", "ES", "MA", "DZ", "TN", "LY", "EG"), 2024, 20.0,
              diverse_route=True),
    CableSpec("Hannibal", CableCorridor.MEDITERRANEAN,
              ("TN", "IT"), 2009, 3.2),
    CableSpec("Didon", CableCorridor.MEDITERRANEAN,
              ("TN", "FR"), 2014, 3.2),
    CableSpec("Atlas-Offshore", CableCorridor.MEDITERRANEAN,
              ("MA", "FR"), 2007, 0.32),
    CableSpec("Tamares-North", CableCorridor.MEDITERRANEAN,
              ("LY", "IT"), 2013, 1.0),
    # South Atlantic (direct Brazil links).
    CableSpec("SACS", CableCorridor.SOUTH_ATLANTIC,
              ("AO", "BR"), 2018, 40.0, diverse_route=True),
    CableSpec("SAIL", CableCorridor.SOUTH_ATLANTIC,
              ("CM", "BR"), 2020, 32.0, diverse_route=True),
    CableSpec("Atlantis-2", CableCorridor.SOUTH_ATLANTIC,
              ("PT", "SN", "CV", "BR"), 2000, 0.16),
    # Indian Ocean islands.
    CableSpec("LION2", CableCorridor.INDIAN_OCEAN_ISLANDS,
              ("MU", "MG", "KE"), 2012, 1.3),
    CableSpec("METISS", CableCorridor.INDIAN_OCEAN_ISLANDS,
              ("MU", "MG", "ZA:east"), 2021, 24.0),
    CableSpec("SAFE", CableCorridor.INDIAN_OCEAN_ISLANDS,
              ("ZA:east", "MU", "IN"), 2002, 0.44),
)

#: Intercontinental backbone among the reference regions.  These exist
#: so the non-African comparison world has realistic fiber paths; the
#: African outage engine never touches them.
REFERENCE_CABLE_SPECS: tuple[CableSpec, ...] = (
    CableSpec("TransAtlantic-North", CableCorridor.GLOBAL_BACKBONE,
              ("US", "GB"), 2001, 160.0),
    CableSpec("TransAtlantic-South", CableCorridor.GLOBAL_BACKBONE,
              ("US", "FR"), 2003, 160.0),
    CableSpec("TransAtlantic-Iberia", CableCorridor.GLOBAL_BACKBONE,
              ("US", "ES"), 2017, 200.0),
    CableSpec("Americas-Express", CableCorridor.GLOBAL_BACKBONE,
              ("US", "CO", "BR"), 2000, 80.0),
    CableSpec("SAm-East", CableCorridor.GLOBAL_BACKBONE,
              ("BR", "AR"), 2001, 40.0),
    CableSpec("SAm-Pacific", CableCorridor.GLOBAL_BACKBONE,
              ("CL", "CO", "US"), 2007, 40.0),
    CableSpec("TransPacific-North", CableCorridor.GLOBAL_BACKBONE,
              ("US", "JP"), 2008, 120.0),
    CableSpec("TransPacific-South", CableCorridor.GLOBAL_BACKBONE,
              ("US", "AU"), 2009, 80.0),
    CableSpec("IntraAsia-North", CableCorridor.GLOBAL_BACKBONE,
              ("JP", "SG"), 2006, 100.0),
    CableSpec("IntraAsia-South", CableCorridor.GLOBAL_BACKBONE,
              ("SG", "ID", "AU"), 2011, 60.0),
    CableSpec("Bengal-Link", CableCorridor.GLOBAL_BACKBONE,
              ("IN", "SG"), 2004, 80.0),
)


def build_cable(cable_id: int, spec: CableSpec) -> SubseaCable:
    """Instantiate a :class:`SubseaCable` from a spec."""
    landings = []
    for key in spec.landing_keys:
        iso2, site, lat, lon = landing_site(key)
        landings.append(Landing(iso2, site, lat, lon))
    return SubseaCable(
        cable_id=cable_id,
        name=spec.name,
        corridor=spec.corridor,
        landings=landings,
        rfs_year=spec.rfs_year,
        capacity_tbps=spec.capacity_tbps,
        diverse_route=spec.diverse_route,
    )
