"""Calibration constants for the synthetic world.

This module is the **only** place tuned against the paper's reported
magnitudes.  Everything here is an *input* to the generative model
(probabilities, rates, counts); every number the benchmarks report is
*measured* from the simulated world, never copied from here.

The calibration encodes the paper's structural story per region:

* Southern Africa is the most mature market (highest content/route
  locality, Fig. 2b + §4.3), anchored on South Africa; Eastern follows,
  anchored on Kenya; Western is the least mature.
* Central Africa has very few ASes but the ones that exist concentrate
  on a single exchange, which is why its *IXP traversal share* is the
  regional outlier in Fig. 3 (~55%) even though the region is immature.
* Northern Africa is dominated by state telcos: decent local resolver
  share, but IXPs effectively absent from measurement data (Fig. 3
  excludes it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo import Region
from repro.topology.dns import ResolverLocality


@dataclass(frozen=True)
class RegionProfile:
    """Per-region generative parameters."""

    #: ASes per million population (scaled world).
    asn_density: float
    #: Probability a local eyeball/enterprise AS joins an IXP in its
    #: country (when one exists).
    ixp_join_rate: float
    #: Probability two IXP members actually peer across the fabric.
    ixp_peering_rate: float
    #: Probability an AS buys transit from an African regional transit
    #: provider (vs. going straight to a European carrier).
    regional_transit_rate: float
    #: Probability a CDN deploys an off-net cache at a given IXP here.
    offnet_cache_rate: float
    #: Probability a top site (non-CDN) is hosted in-country.
    local_hosting_rate: float
    #: Resolver locality distribution for eyeball ASes.
    resolver_mix: dict[ResolverLocality, float]
    #: Per-/24 probe responsiveness multiplier (infrastructure density).
    responsiveness: float
    #: Number of IXPs to seed in the region (2025 totals).
    ixp_count_2025: int
    #: IXPs already existing in 2015 (drives Fig. 1 growth).
    ixp_count_2015: int


def _mix(local_as, local_cc, other_cc, cloud, foreign):
    mix = {
        ResolverLocality.LOCAL_AS: local_as,
        ResolverLocality.LOCAL_COUNTRY: local_cc,
        ResolverLocality.OTHER_AFRICAN_COUNTRY: other_cc,
        ResolverLocality.CLOUD: cloud,
        ResolverLocality.FOREIGN: foreign,
    }
    total = sum(mix.values())
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"resolver mix sums to {total}, not 1.0")
    return mix


#: African IXP totals sum to 77 (paper footnote 1); the 2015 totals sum
#: to 11, giving the ~600% ten-year growth reported in §2.
REGION_PROFILES: dict[Region, RegionProfile] = {
    Region.SOUTHERN_AFRICA: RegionProfile(
        asn_density=1.6, ixp_join_rate=0.75, ixp_peering_rate=0.70,
        regional_transit_rate=0.75, offnet_cache_rate=0.60,
        local_hosting_rate=0.30,
        resolver_mix=_mix(0.30, 0.25, 0.08, 0.27, 0.10),
        responsiveness=1.0, ixp_count_2025=11, ixp_count_2015=3),
    Region.EASTERN_AFRICA: RegionProfile(
        asn_density=0.55, ixp_join_rate=0.60, ixp_peering_rate=0.60,
        regional_transit_rate=0.55, offnet_cache_rate=0.40,
        local_hosting_rate=0.18,
        resolver_mix=_mix(0.20, 0.20, 0.18, 0.27, 0.15),
        responsiveness=0.85, ixp_count_2025=26, ixp_count_2015=4),
    Region.NORTHERN_AFRICA: RegionProfile(
        asn_density=0.30, ixp_join_rate=0.15, ixp_peering_rate=0.30,
        regional_transit_rate=0.38, offnet_cache_rate=0.15,
        local_hosting_rate=0.22,
        resolver_mix=_mix(0.28, 0.22, 0.03, 0.17, 0.30),
        responsiveness=0.9, ixp_count_2025=4, ixp_count_2015=1),
    Region.WESTERN_AFRICA: RegionProfile(
        asn_density=0.50, ixp_join_rate=0.45, ixp_peering_rate=0.45,
        regional_transit_rate=0.30, offnet_cache_rate=0.25,
        local_hosting_rate=0.08,
        resolver_mix=_mix(0.10, 0.15, 0.25, 0.30, 0.20),
        responsiveness=0.7, ixp_count_2025=28, ixp_count_2015=2),
    Region.CENTRAL_AFRICA: RegionProfile(
        asn_density=0.28, ixp_join_rate=0.90, ixp_peering_rate=0.95,
        regional_transit_rate=0.22, offnet_cache_rate=0.15,
        local_hosting_rate=0.05,
        resolver_mix=_mix(0.07, 0.08, 0.30, 0.30, 0.25),
        responsiveness=0.55, ixp_count_2025=8, ixp_count_2015=1),
}

#: P(a CDN-served request from this region lands on an African PoP
#: rather than spilling to Europe).  Anycast catchments follow the PoP
#: map: Southern clients sit next to the ZA deployments, Western/Central
#: clients frequently drain to Europe despite nominal NG/KE PoPs (§4.2).
REGION_CDN_CATCHMENT: dict[Region, float] = {
    Region.SOUTHERN_AFRICA: 0.80,
    Region.EASTERN_AFRICA: 0.50,
    Region.NORTHERN_AFRICA: 0.35,
    Region.WESTERN_AFRICA: 0.25,
    Region.CENTRAL_AFRICA: 0.22,
}

#: Reference (non-African) regions: dense, mature, locally-served.
REFERENCE_PROFILE = RegionProfile(
    asn_density=0.9, ixp_join_rate=0.9, ixp_peering_rate=0.85,
    regional_transit_rate=0.95, offnet_cache_rate=0.95,
    local_hosting_rate=0.80,
    resolver_mix=_mix(0.55, 0.30, 0.0, 0.13, 0.02),
    responsiveness=1.2, ixp_count_2025=0, ixp_count_2015=0)


@dataclass(frozen=True)
class OutageRates:
    """Annual outage rates (events/year) by cause, per region group."""

    #: Corridor-level subsea incidents per year (each may cut several
    #: co-located cables — §5.1).
    corridor_event_rate: dict[str, float] = field(default_factory=lambda: {
        "West Africa Atlantic": 0.55,
        "East Africa Indian Ocean": 0.40,
        "Red Sea": 0.55,
        "Mediterranean": 0.25,
        "South Atlantic": 0.05,
        "Indian Ocean Islands": 0.15,
    })
    #: Probability a corridor event cuts each individual non-diverse
    #: cable in the corridor (physical co-location).
    corridor_cut_prob: float = 0.72
    #: Independent per-cable fault rate (events/cable/year).
    independent_cable_fault_rate: float = 0.04
    #: Country-level *national-scale* grid failure rate per year
    #: (multiplied by (1 - grid_reliability) of the country).  Radar
    #: only registers outages big enough to dent national traffic, so
    #: this is far below the rate of everyday load shedding.
    power_outage_scale: float = 2.6
    #: Government-ordered shutdown rate per African country per year.
    shutdown_rate_africa: float = 0.22
    shutdown_rate_reference: float = 0.005
    #: Other outages (fiber cuts inland, natural disaster) per country/yr.
    misc_rate_africa: float = 0.35
    misc_rate_reference: float = 0.45


@dataclass(frozen=True)
class WorldParams:
    """Top-level knobs for the world generator."""

    seed: int = 2025
    #: Scaling factor from the real Internet to the simulated one.
    #: The default 0.25 keeps tests and examples fast; values above 1
    #: grow the synthetic registry past the real one (see
    #: :data:`CONTINENTAL_SCALE` for the AFRINIC-approximating size).
    scale: float = 0.25
    #: Simulation "now" and the Fig. 1 look-back window.
    current_year: int = 2025
    growth_window_years: int = 10
    #: Target number of African subsea cables in 2015 / 2025 (the real
    #: catalog plus synthetic fill; +45% growth per §2).
    cable_count_2015: int = 22
    cable_count_2025: int = 32
    #: African IXP total (2025) — footnote 1's universe of 77.
    african_ixp_target: int = 77
    #: Content ecosystem.
    top_sites_per_country: int = 50
    cdn_top_site_share: float = 0.72
    #: Per-/24 base responsiveness by AS kind (before region multiplier).
    base_responsiveness: dict[str, float] = field(default_factory=lambda: {
        "mobile": 0.60, "fixed": 0.42, "transit": 0.30, "cloud": 0.55,
        "content": 0.50, "education": 0.22, "enterprise": 0.12,
    })
    #: Fraction of IXPs whose LAN prefix leaks into the global table
    #: (RFC 7454 notwithstanding) — the only way prefix-guided scanners
    #: see them (Table 1).
    ixp_lan_leak_rate: float = 0.08
    outage_rates: OutageRates = field(default_factory=OutageRates)

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.scale > MAX_SCALE:
            raise ValueError(f"scale must be in (0, {MAX_SCALE}]")
        if self.cable_count_2025 < self.cable_count_2015:
            raise ValueError("cable counts must grow")


#: Upper bound on :attr:`WorldParams.scale` — past this the generator's
#: ASN counters and AFRINIC prefix pools would collide.
MAX_SCALE = 16.0

#: ``scale`` at which the African AS roster approximates the real
#: AFRINIC registry (~2000+ allocated ASNs) — 10x the default world.
CONTINENTAL_SCALE = 2.5


def continental_params(seed: int = 2025,
                       factor: float = 10.0) -> WorldParams:
    """Params for a continent-scale world: ``factor`` times the default
    0.25-scale roster (``factor=10`` lands on :data:`CONTINENTAL_SCALE`,
    approximating real AFRINIC registration counts)."""
    return WorldParams(seed=seed, scale=0.25 * factor)


#: Mobile data pricing by country group (USD per GB, 2024-ish medians)
#: and the pricing model in force — §7.1's "different countries have
#: different pricing models".
@dataclass(frozen=True)
class CountryPricing:
    usd_per_gb: float
    model: str  # "prepaid_bundle" | "payg" | "postpaid_cap"
    #: Typical bundle size (MB) for prepaid markets.
    bundle_mb: int = 1024


DEFAULT_PRICING: dict[Region, CountryPricing] = {
    Region.NORTHERN_AFRICA: CountryPricing(1.05, "prepaid_bundle", 2048),
    Region.WESTERN_AFRICA: CountryPricing(3.30, "prepaid_bundle", 512),
    Region.CENTRAL_AFRICA: CountryPricing(5.80, "prepaid_bundle", 256),
    Region.EASTERN_AFRICA: CountryPricing(2.10, "prepaid_bundle", 1024),
    Region.SOUTHERN_AFRICA: CountryPricing(2.80, "postpaid_cap", 4096),
    Region.EUROPE: CountryPricing(0.80, "postpaid_cap", 20480),
    Region.NORTH_AMERICA: CountryPricing(3.00, "postpaid_cap", 20480),
    Region.SOUTH_AMERICA: CountryPricing(1.20, "prepaid_bundle", 2048),
    Region.ASIA_PACIFIC: CountryPricing(0.60, "prepaid_bundle", 2048),
}
