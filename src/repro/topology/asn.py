"""Autonomous systems and inter-AS business relationships.

The paper's structural claims hinge on the AS-level make-up of Africa's
ecosystem: no African Tier-1s, few Tier-2s, mobile-dominated eyeballs,
and transit bought from European carriers (§2).  The :class:`AS` model
carries exactly the attributes those analyses need — kind, tier,
country, prefixes, and founding year (for Fig. 1 growth).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geo import Region, country
from repro.topology.prefixes import Prefix


class ASKind(enum.Enum):
    """Functional classification of an AS (drives Table 1 grouping)."""

    MOBILE = "mobile"          # mobile carrier eyeball network
    FIXED = "fixed"            # fixed-line / wireless ISP eyeball
    TRANSIT = "transit"        # wholesale transit carrier
    CLOUD = "cloud"            # public cloud / hosting
    CONTENT = "content"        # CDN / content provider
    EDUCATION = "education"    # NREN / campus network
    ENTERPRISE = "enterprise"  # corporate / government network

    @property
    def is_eyeball(self) -> bool:
        return self in (ASKind.MOBILE, ASKind.FIXED)


class Relationship(enum.Enum):
    """CAIDA-style inter-AS business relationship."""

    PROVIDER_TO_CUSTOMER = "p2c"
    PEER_TO_PEER = "p2p"


@dataclass
class AS:
    """An autonomous system in the simulated Internet."""

    asn: int
    name: str
    country_iso2: str
    kind: ASKind
    #: 1 = global transit-free carrier; 2 = regional transit; 3 = stub/edge.
    tier: int = 3
    founded_year: int = 2005
    prefixes: list[Prefix] = field(default_factory=list)
    #: Providers / peers / customers by ASN (filled by the generator).
    providers: set[int] = field(default_factory=set)
    peers: set[int] = field(default_factory=set)
    customers: set[int] = field(default_factory=set)
    #: IXPs (by id) at which this AS is present.
    ixps: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"bad ASN {self.asn}")
        if self.tier not in (1, 2, 3):
            raise ValueError(f"bad tier {self.tier} for AS{self.asn}")

    @property
    def region(self) -> Region:
        return country(self.country_iso2).region

    @property
    def is_african(self) -> bool:
        return self.region.is_african

    @property
    def degree(self) -> int:
        return len(self.providers) + len(self.peers) + len(self.customers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AS(asn={self.asn}, name={self.name!r}, cc={self.country_iso2},"
            f" kind={self.kind.value}, tier={self.tier})"
        )


@dataclass(frozen=True)
class ASLink:
    """A relationship edge.  For P2C, ``a`` is the provider."""

    a: int
    b: int
    rel: Relationship
    #: IXP id if this adjacency is established across an IXP fabric.
    ixp_id: int | None = None

    def involves(self, asn: int) -> bool:
        return asn in (self.a, self.b)

    def other(self, asn: int) -> int:
        if asn == self.a:
            return self.b
        if asn == self.b:
            return self.a
        raise ValueError(f"AS{asn} not on link {self}")
