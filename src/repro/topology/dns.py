"""DNS resolver ecosystem.

Section 5.2 is about *hidden dependencies*: "many organizations do not
have a local resolver, and thus when disconnected from other countries,
they are unable to make the DNS queries required to connect to the
local infrastructure".  Each eyeball AS is assigned a resolver
configuration — where the recursive resolver its users hit actually
runs — in one of four locality classes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ResolverLocality(enum.Enum):
    """Where an eyeball AS's recursive resolver is hosted."""

    #: Resolver inside the AS itself, in-country.
    LOCAL_AS = "local (same AS)"
    #: Resolver run by another organisation in the same country.
    LOCAL_COUNTRY = "local (same country)"
    #: Outsourced to a resolver in a *different African* country (§5.2:
    #: "the use of local resolvers in other countries" as a cost centre).
    OTHER_AFRICAN_COUNTRY = "other African country"
    #: Public cloud resolver (8.8.8.8 / 1.1.1.1 class) — served from the
    #: nearest cloud PoP, which in Africa is usually South Africa.
    CLOUD = "cloud resolver"
    #: Resolver hosted outside Africa entirely (usually Europe).
    FOREIGN = "outside Africa"

    @property
    def survives_cable_cut(self) -> bool:
        """Whether resolution keeps working when the country is cut off
        from international connectivity."""
        return self in (ResolverLocality.LOCAL_AS,
                        ResolverLocality.LOCAL_COUNTRY)


@dataclass(frozen=True)
class ResolverConfig:
    """The resolver arrangement of one eyeball AS."""

    asn: int
    locality: ResolverLocality
    #: Country hosting the resolver service.
    hosted_in: str
    #: AS actually operating the resolver (cloud ASN, other ISP, self).
    operator_asn: int

    def is_local_to(self, iso2: str) -> bool:
        return self.hosted_in == iso2


@dataclass(frozen=True)
class CloudResolverService:
    """A public cloud resolver service and its PoP countries."""

    asn: int
    name: str
    #: Countries with serving PoPs, in priority order per continent.
    pop_countries: tuple[str, ...]

    def nearest_pop(self, client_iso2: str, african_pops_up: bool = True
                    ) -> str:
        """The PoP country a client in ``client_iso2`` is mapped to.

        Anycast catchments are coarse: African clients land on an
        African PoP when one exists (almost always South Africa),
        otherwise — or when African PoPs are unreachable — on Europe.
        """
        from repro.geo import country
        client = country(client_iso2)
        african = [cc for cc in self.pop_countries
                   if country(cc).is_african]
        european = [cc for cc in self.pop_countries
                    if country(cc).region.value == "Europe"]
        if client.is_african and african and african_pops_up:
            return african[0]
        if european:
            return european[0]
        return self.pop_countries[0]
