"""Supervised async job queue for expensive service queries.

Expensive endpoints (snapshot collection, outage sweeps, what-if
scenarios) do not block the HTTP thread: the request becomes a *job*
whose id is the artifact key digest of the answer it will produce.
That single choice buys three properties for free:

* **Dedup** — concurrent identical requests share one job; a client
  re-submitting after a disconnect reattaches to the running job.
* **Idempotence** — a job that already completed is answered straight
  from the store; nothing runs twice.
* **Byte-stable results** — the job writes the canonical payload into
  :class:`repro.store.ArtifactStore`, and *every* read path (sync hit,
  post-job poll, later cold restart) serves those same bytes.

Workers are plain daemon threads; the compute functions they run fan
out through :mod:`repro.exec` internally, so ``--workers`` parallelism
applies inside each job.

Supervision (see docs/robustness.md): every job carries a deadline and
a bounded retry budget with exponential backoff; a background *reaper*
fails jobs that outlive their deadline, jobs orphaned by a dead worker
thread, and queued jobs once no worker is left alive.  ``shutdown``
drains, then settles every still-unfinished job so ``Job.wait``
callers never block forever.  Cancellation settles queued jobs
immediately and running jobs at the next retry boundary.
"""

from __future__ import annotations

import enum
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro import faults, telemetry

_JOBS = telemetry.counter(
    "repro_service_jobs_total",
    "Jobs submitted to the service queue", labels=("endpoint",))
_JOB_STATES = telemetry.counter(
    "repro_service_job_transitions_total",
    "Job state transitions", labels=("state",))
_QUEUE_DEPTH = telemetry.gauge(
    "repro_service_queue_depth", "Jobs queued but not yet running")
_JOB_SECONDS = telemetry.histogram(
    "repro_service_job_seconds",
    "Wall-clock seconds per completed job", labels=("endpoint",))
_TIMEOUTS = telemetry.counter(
    "repro_jobs_timeout_total",
    "Jobs failed because their deadline passed", labels=("endpoint",))
_RETRIES = telemetry.counter(
    "repro_jobs_retries_total",
    "Job attempts retried after an exception", labels=("endpoint",))
_CANCELLED = telemetry.counter(
    "repro_jobs_cancelled_total",
    "Jobs cancelled by a client", labels=("endpoint",))
_REAPED = telemetry.counter(
    "repro_jobs_reaped_total",
    "Jobs settled by the reaper", labels=("reason",))


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves (its ``wait`` event is set).
SETTLED_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED})


@dataclass
class Job:
    """One unit of expensive work, addressed by its result's key digest."""

    job_id: str                 # == ArtifactKey.digest of the result
    endpoint: str
    request_path: str           # canonical URL that re-serves the result
    state: JobState = JobState.QUEUED
    error: Optional[str] = None
    deadline_s: Optional[float] = None
    max_retries: int = 0
    attempts: int = 0
    started_at: Optional[float] = None      # time.monotonic()
    cancel_requested: bool = False
    worker: Optional[threading.Thread] = field(default=None, repr=False)
    _done: threading.Event = field(default_factory=threading.Event,
                                   repr=False)

    @property
    def settled(self) -> bool:
        return self.state in SETTLED_STATES

    def to_dict(self) -> dict[str, Any]:
        out = {"job_id": self.job_id, "endpoint": self.endpoint,
               "state": self.state.value, "result": self.request_path,
               "attempts": self.attempts}
        if self.error is not None:
            out["error"] = self.error
        return out

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job settles (done, failed or cancelled)."""
        return self._done.wait(timeout)


class JobQueue:
    """Threaded FIFO of deduplicated, supervised jobs.

    ``submit`` is the only producer entry point; jobs are keyed by id
    and an id with a live (queued/running/done) job is never enqueued
    twice.  Failed and cancelled jobs are replaced on resubmit so a
    transient error is retryable.
    """

    def __init__(self, workers: int = 2,
                 default_deadline_s: Optional[float] = None,
                 default_max_retries: int = 1,
                 retry_backoff_s: float = 0.1,
                 reaper_interval_s: float = 0.25) -> None:
        self._queue: "queue.Queue[Optional[tuple[Job, Callable[[], None]]]]" \
            = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self.default_deadline_s = default_deadline_s
        self.default_max_retries = max(0, int(default_max_retries))
        self.retry_backoff_s = retry_backoff_s
        self._shutting_down = False
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-job-worker-{i}")
            for i in range(max(1, int(workers)))]
        for t in self._threads:
            t.start()
        self._reaper_stop = threading.Event()
        self._reaper_interval_s = reaper_interval_s
        self._reaper = threading.Thread(target=self._reap_loop,
                                        daemon=True,
                                        name="repro-job-reaper")
        self._reaper.start()

    # ------------------------------------------------------------------
    def submit(self, job_id: str, endpoint: str, request_path: str,
               fn: Callable[[], None],
               deadline_s: Optional[float] = None,
               max_retries: Optional[int] = None) -> tuple[Job, bool]:
        """Enqueue ``fn`` under ``job_id``; returns ``(job, created)``.

        ``fn`` must make the result durable itself (write the store);
        the queue only tracks lifecycle.  ``deadline_s`` caps wall
        clock from the moment the job starts running; ``max_retries``
        bounds re-attempts after an exception (both default to the
        queue-level settings).
        """
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None and existing.state not in (
                    JobState.FAILED, JobState.CANCELLED):
                return existing, False
            job = Job(
                job_id=job_id, endpoint=endpoint,
                request_path=request_path,
                deadline_s=self.default_deadline_s
                if deadline_s is None else deadline_s,
                max_retries=self.default_max_retries
                if max_retries is None else max(0, int(max_retries)))
            self._jobs[job_id] = job
        if telemetry.enabled():
            _JOBS.labels(endpoint=endpoint).inc()
            _JOB_STATES.labels(state="queued").inc()
            _QUEUE_DEPTH.inc()
        self._queue.put((job, fn))
        return job, True

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def stats(self) -> dict[str, Any]:
        """Queue snapshot for the ``/v1/jobs`` index route."""
        jobs = self.jobs()
        counts: dict[str, int] = {}
        for job in jobs:
            counts[job.state.value] = counts.get(job.state.value, 0) + 1
        return {
            "jobs": [j.to_dict()
                     for j in sorted(jobs, key=lambda j: j.job_id)],
            "counts": counts,
            "workers_alive": sum(t.is_alive() for t in self._threads),
            "shutting_down": self._shutting_down,
        }

    def wait(self, job_id: str, timeout: Optional[float] = None
             ) -> Optional[Job]:
        """Wait for a job to settle; returns it (or None if unknown)."""
        job = self.get(job_id)
        if job is not None:
            job.wait(timeout)
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a job: immediate while queued, at the next retry
        boundary while running.  Returns False for unknown or already
        settled jobs."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.settled:
                return False
            job.cancel_requested = True
            queued = job.state is JobState.QUEUED
        if queued:
            self._settle(job, JobState.CANCELLED, "cancelled by client")
        if telemetry.enabled():
            _CANCELLED.labels(endpoint=job.endpoint).inc()
        return True

    def shutdown(self, timeout: float = 5.0) -> None:
        """Drain, stop workers, and settle every unfinished job.

        Jobs already queued are given ``timeout`` seconds to drain;
        whatever is still unsettled afterwards — including jobs whose
        worker thread died — is failed so ``Job.wait`` callers always
        unblock.
        """
        self._shutting_down = True
        for _ in self._threads:
            self._queue.put(None)
        deadline = time.monotonic() + timeout
        for t in self._threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        self._reaper_stop.set()
        self._reaper.join(timeout=2.0)
        for job in self.jobs():
            self._settle(job, JobState.FAILED, "queue shutdown")

    # ------------------------------------------------------------------
    def _settle(self, job: Job, state: JobState,
                error: Optional[str] = None) -> bool:
        """Move ``job`` to a terminal state exactly once (thread-safe)."""
        with self._lock:
            if job.settled:
                return False
            job.state = state
            if error is not None:
                job.error = error
        if telemetry.enabled():
            _JOB_STATES.labels(state=state.value).inc()
        job._done.set()
        return True

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            job, fn = item
            if telemetry.enabled():
                _QUEUE_DEPTH.dec()
            try:
                self._run_job(job, fn)
            except BaseException:
                # Abnormal worker death (SystemExit, KeyboardInterrupt,
                # MemoryError...): never leave the job — or its waiters
                # — hanging.  The daemon thread dies; the reaper covers
                # anything it was about to pick up.
                self._settle(job, JobState.FAILED,
                             "worker died: " +
                             traceback.format_exc(limit=4))
                raise

    def _run_job(self, job: Job, fn: Callable[[], None]) -> None:
        with self._lock:
            if job.settled:       # cancelled while queued
                return
            job.state = JobState.RUNNING
            job.started_at = time.monotonic()
            job.worker = threading.current_thread()
        if telemetry.enabled():
            _JOB_STATES.labels(state="running").inc()
        started = time.perf_counter()
        with telemetry.span("service.job", endpoint=job.endpoint,
                            job=job.job_id[:12]):
            attempt = 0
            while True:
                job.attempts = attempt + 1
                try:
                    if faults.active():
                        ident = f"{job.job_id[:16]}#{attempt}"
                        faults.sleep_if("jobs.stall", ident)
                        faults.fire("jobs.error", ident)
                    fn()
                except Exception:  # noqa: BLE001 - job boundary
                    err = traceback.format_exc(limit=8)
                    if job.settled:
                        break     # reaper/cancel got there first
                    if job.cancel_requested:
                        self._settle(job, JobState.CANCELLED,
                                     "cancelled by client")
                        break
                    if attempt < job.max_retries \
                            and not self._past_deadline(job):
                        if telemetry.enabled():
                            _RETRIES.labels(endpoint=job.endpoint).inc()
                        time.sleep(self.retry_backoff_s * (2 ** attempt))
                        attempt += 1
                        continue
                    self._settle(job, JobState.FAILED, err)
                    break
                else:
                    # A late cancel loses to completion: the durable
                    # result already exists, so serve it.
                    self._settle(job, JobState.DONE)
                    break
        if telemetry.enabled():
            _JOB_SECONDS.labels(endpoint=job.endpoint).observe(
                time.perf_counter() - started)

    @staticmethod
    def _past_deadline(job: Job) -> bool:
        return (job.deadline_s is not None
                and job.started_at is not None
                and time.monotonic() - job.started_at > job.deadline_s)

    # ------------------------------------------------------------------
    def _reap_loop(self) -> None:
        while not self._reaper_stop.wait(self._reaper_interval_s):
            try:
                self._reap_once()
            except Exception:  # pragma: no cover - reaper must survive
                pass

    def _reap_once(self) -> None:
        """Fail jobs that can no longer finish on their own."""
        workers_alive = any(t.is_alive() for t in self._threads)
        for job in self.jobs():
            if job.settled:
                continue
            if job.state is JobState.RUNNING:
                if self._past_deadline(job):
                    if self._settle(
                            job, JobState.FAILED,
                            f"deadline exceeded "
                            f"({job.deadline_s:.3g}s)"):
                        if telemetry.enabled():
                            _TIMEOUTS.labels(
                                endpoint=job.endpoint).inc()
                            _REAPED.labels(reason="deadline").inc()
                elif job.worker is not None \
                        and not job.worker.is_alive():
                    if self._settle(job, JobState.FAILED,
                                    "worker thread died"):
                        if telemetry.enabled():
                            _REAPED.labels(reason="dead_worker").inc()
            elif job.state is JobState.QUEUED and not workers_alive \
                    and not self._shutting_down:
                if self._settle(job, JobState.FAILED,
                                "no job workers alive"):
                    if telemetry.enabled():
                        _REAPED.labels(reason="no_workers").inc()
