"""Async job queue for expensive service queries.

Expensive endpoints (snapshot collection, outage sweeps, what-if
scenarios) do not block the HTTP thread: the request becomes a *job*
whose id is the artifact key digest of the answer it will produce.
That single choice buys three properties for free:

* **Dedup** — concurrent identical requests share one job; a client
  re-submitting after a disconnect reattaches to the running job.
* **Idempotence** — a job that already completed is answered straight
  from the store; nothing runs twice.
* **Byte-stable results** — the job writes the canonical payload into
  :class:`repro.store.ArtifactStore`, and *every* read path (sync hit,
  post-job poll, later cold restart) serves those same bytes.

Workers are plain daemon threads; the compute functions they run fan
out through :mod:`repro.exec` internally, so ``--workers`` parallelism
applies inside each job.
"""

from __future__ import annotations

import enum
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro import telemetry

_JOBS = telemetry.counter(
    "repro_service_jobs_total",
    "Jobs submitted to the service queue", labels=("endpoint",))
_JOB_STATES = telemetry.counter(
    "repro_service_job_transitions_total",
    "Job state transitions", labels=("state",))
_QUEUE_DEPTH = telemetry.gauge(
    "repro_service_queue_depth", "Jobs queued but not yet running")
_JOB_SECONDS = telemetry.histogram(
    "repro_service_job_seconds",
    "Wall-clock seconds per completed job", labels=("endpoint",))


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Job:
    """One unit of expensive work, addressed by its result's key digest."""

    job_id: str                 # == ArtifactKey.digest of the result
    endpoint: str
    request_path: str           # canonical URL that re-serves the result
    state: JobState = JobState.QUEUED
    error: Optional[str] = None
    _done: threading.Event = field(default_factory=threading.Event,
                                   repr=False)

    def to_dict(self) -> dict[str, Any]:
        out = {"job_id": self.job_id, "endpoint": self.endpoint,
               "state": self.state.value, "result": self.request_path}
        if self.error is not None:
            out["error"] = self.error
        return out

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job settles (done or failed)."""
        return self._done.wait(timeout)


class JobQueue:
    """Threaded FIFO of deduplicated jobs.

    ``submit`` is the only producer entry point; jobs are keyed by id
    and an id with a live (queued/running/done) job is never enqueued
    twice.  Failed jobs are replaced on resubmit so a transient error
    is retryable.
    """

    def __init__(self, workers: int = 2) -> None:
        self._queue: "queue.Queue[Optional[tuple[Job, Callable[[], None]]]]" \
            = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-job-worker-{i}")
            for i in range(max(1, int(workers)))]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    def submit(self, job_id: str, endpoint: str, request_path: str,
               fn: Callable[[], None]) -> tuple[Job, bool]:
        """Enqueue ``fn`` under ``job_id``; returns ``(job, created)``.

        ``fn`` must make the result durable itself (write the store);
        the queue only tracks lifecycle.
        """
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None \
                    and existing.state is not JobState.FAILED:
                return existing, False
            job = Job(job_id=job_id, endpoint=endpoint,
                      request_path=request_path)
            self._jobs[job_id] = job
        if telemetry.enabled():
            _JOBS.labels(endpoint=endpoint).inc()
            _JOB_STATES.labels(state="queued").inc()
            _QUEUE_DEPTH.inc()
        self._queue.put((job, fn))
        return job, True

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: Optional[float] = None
             ) -> Optional[Job]:
        """Wait for a job to settle; returns it (or None if unknown)."""
        job = self.get(job_id)
        if job is not None:
            job.wait(timeout)
        return job

    def shutdown(self) -> None:
        """Stop workers after the queue drains (used by tests/serve)."""
        for _ in self._threads:
            self._queue.put(None)
        for t in self._threads:
            t.join(timeout=5.0)

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            job, fn = item
            job.state = JobState.RUNNING
            if telemetry.enabled():
                _QUEUE_DEPTH.dec()
                _JOB_STATES.labels(state="running").inc()
            started = time.perf_counter()
            with telemetry.span("service.job", endpoint=job.endpoint,
                                job=job.job_id[:12]):
                try:
                    fn()
                except Exception:  # noqa: BLE001 - job boundary
                    job.error = traceback.format_exc(limit=8)
                    job.state = JobState.FAILED
                    if telemetry.enabled():
                        _JOB_STATES.labels(state="failed").inc()
                else:
                    job.state = JobState.DONE
                    if telemetry.enabled():
                        _JOB_STATES.labels(state="done").inc()
            if telemetry.enabled():
                _JOB_SECONDS.labels(endpoint=job.endpoint).observe(
                    time.perf_counter() - started)
            job._done.set()
