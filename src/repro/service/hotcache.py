"""Bounded in-memory hot tier in front of the artifact store.

The disk store already makes warm hits cheap relative to recompute,
but every hit still costs two file reads, a recency ``utime`` and a
full SHA-256 re-hash — all under the store lock, so concurrent readers
queue.  The hot tier removes that from the serving path for the
artifacts that matter: a bounded, thread-safe LRU mapping the *same*
content-address key digests to the *same* canonical payload bytes the
store holds, plus the precomputed ETag so conditional GETs skip the
per-request hash too.

Invariants (asserted by ``tests/test_hotcache.py`` and the service
suite):

* a hot hit serves byte-identical payloads (and the identical ETag) to
  a disk-warm or cold read of the same key — the tier is a pure
  read-through cache, never an alternative source of truth;
* the tier only ever holds bytes that were just read from, or just
  written through to, the store — degraded/stale serving bypasses it;
* store-side eviction, GC, ``clear`` and quarantine invalidate the
  corresponding hot entries (wired via
  :meth:`repro.store.ArtifactStore.add_invalidation_hook`), so the hot
  tier can never outlive the durable artifact it mirrors.

Capacity is a byte budget over payload sizes (``--hot-cache-bytes``,
default 64 MiB; ``0`` disables the tier).  Payloads larger than the
whole budget are never admitted — one giant artifact must not flush
the working set.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional

from repro import telemetry

#: Default byte budget for the hot tier (plenty for every analysis
#: payload the service produces; one coverage doc is ~100 KiB).
DEFAULT_HOT_BYTES = 64 * 1024 * 1024

_HITS = telemetry.counter(
    "repro_service_hot_hits_total",
    "Requests served from the in-memory hot tier")
_MISSES = telemetry.counter(
    "repro_service_hot_misses_total",
    "Hot-tier lookups that fell through to the store")
_EVICTIONS = telemetry.counter(
    "repro_service_hot_evictions_total",
    "Hot-tier entries evicted by the LRU byte budget")
_INVALIDATIONS = telemetry.counter(
    "repro_service_hot_invalidations_total",
    "Hot-tier entries dropped because the store invalidated the key")
_BYTES = telemetry.gauge(
    "repro_service_hot_bytes", "Payload bytes held by the hot tier")
_ENTRIES = telemetry.gauge(
    "repro_service_hot_entries", "Entries held by the hot tier")


class HotCache:
    """Thread-safe LRU of ``key digest -> (payload bytes, etag)``.

    ``max_bytes <= 0`` disables the cache entirely: ``get`` always
    misses and ``put`` is a no-op, so callers never need to branch.
    """

    def __init__(self, max_bytes: int = DEFAULT_HOT_BYTES) -> None:
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, tuple[bytes, str]]" \
            = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0

    # ------------------------------------------------------------------
    def get(self, key_digest: str, *,
            count_miss: bool = True) -> Optional[tuple[bytes, str]]:
        """``(payload, etag)`` for a hot key, bumping recency.

        ``count_miss=False`` is for speculative probes (the async
        transport's event-loop fast path) whose misses fall through to
        a second, counted lookup on the slow path — counting both would
        double every miss in the hit-ratio telemetry.
        """
        with self._lock:
            entry = self._entries.get(key_digest)
            if entry is not None:
                self._entries.move_to_end(key_digest)
                self.hits += 1
            elif count_miss:
                self.misses += 1
        if telemetry.enabled():
            if entry is not None:
                _HITS.inc()
            elif count_miss:
                _MISSES.inc()
        return entry

    def put(self, key_digest: str, payload: bytes, etag: str) -> None:
        """Admit freshly read/written canonical bytes (idempotent)."""
        size = len(payload)
        if not self.enabled or size > self.max_bytes:
            return
        evicted = 0
        with self._lock:
            old = self._entries.pop(key_digest, None)
            if old is not None:
                self._bytes -= len(old[0])
            self._entries[key_digest] = (payload, etag)
            self._bytes += size
            while self._bytes > self.max_bytes and self._entries:
                _, (victim, _) = self._entries.popitem(last=False)
                self._bytes -= len(victim)
                evicted += 1
            self.evictions += evicted
            size_now, count_now = self._bytes, len(self._entries)
        if telemetry.enabled():
            if evicted:
                _EVICTIONS.inc(evicted)
            _BYTES.set(size_now)
            _ENTRIES.set(count_now)

    def invalidate(self, key_digest: str) -> bool:
        """Drop one key (store eviction/quarantine hook target)."""
        with self._lock:
            entry = self._entries.pop(key_digest, None)
            if entry is not None:
                self._bytes -= len(entry[0])
                self.invalidations += 1
            size_now, count_now = self._bytes, len(self._entries)
        if entry is not None and telemetry.enabled():
            _INVALIDATIONS.inc()
            _BYTES.set(size_now)
            _ENTRIES.set(count_now)
        return entry is not None

    def clear(self) -> None:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            self.invalidations += dropped
        if telemetry.enabled():
            if dropped:
                _INVALIDATIONS.inc(dropped)
            _BYTES.set(0)
            _ENTRIES.set(0)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
