"""Asyncio HTTP transport for the Observatory service.

``repro serve --async`` runs this instead of the threaded
``http.server`` transport.  The difference is purely how connections
are multiplexed: one event loop owns every socket (thousands of
keep-alive clients cost one task each, not one OS thread each), and
request *handling* — routing, hot tier, store, jobs, degraded mode —
is the exact same :meth:`repro.service.server.ObservatoryService.dispatch`
the threaded server calls, executed on a bounded thread pool so
blocking work (``wait=1`` requests, heartbeat long-polls, disk reads)
never stalls the loop.  One asymmetry is allowed: requests the hot
tier can answer outright go through
:meth:`~repro.service.server.ObservatoryService.dispatch_fast` on the
event loop itself — a pure in-memory lookup needs no thread handoff,
and the fast path is defined to be byte-identical to ``dispatch``.

Because both transports funnel through one handler core, they pass the
same test suite, the same smoke tests and the same chaos invariants;
``tests/test_service.py`` parametrizes over both to enforce that.

Protocol support is deliberately minimal (stdlib only, no h2/h3):
HTTP/1.1 with keep-alive by default, ``Connection: close`` honored,
HTTP/1.0 clients get ``keep-alive`` only when they ask for it.
Request bodies are drained (never parsed — the API is GET/HEAD/DELETE)
so pipelined framing survives clients that POST at us.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _REASONS
from typing import Optional, TextIO

from repro.service.server import (
    ObservatoryService,
    Response,
    access_log_entry,
    write_access_log,
)

#: Threads available for blocking dispatch work.  Generous relative to
#: job workers because requests can *wait* (``wait=1`` blocks up to
#: MAX_WAIT_S; ``/v1/heartbeat/stream`` long-polls) without computing.
DEFAULT_DISPATCH_WORKERS = 32

#: Maximum bytes in one request line or header line.
_LINE_LIMIT = 65536


class AsyncObservatoryServer:
    """One event loop serving :class:`ObservatoryService` over HTTP."""

    def __init__(self, service: ObservatoryService,
                 host: str = "127.0.0.1", port: int = 0,
                 access_log: Optional[TextIO] = None,
                 dispatch_workers: int = DEFAULT_DISPATCH_WORKERS
                 ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.access_log = access_log
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, int(dispatch_workers)),
            thread_name_prefix="repro-dispatch")
        self._server: Optional[asyncio.base_events.Server] = None
        self._conns: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and accept; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port,
            limit=_LINE_LIMIT)
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, close live connections, release threads."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    def _client_connected(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        task = asyncio.get_running_loop().create_task(
            self._serve_connection(reader, writer))
        self._conns.add(task)
        task.add_done_callback(self._conns.discard)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, target, version, headers = parsed
                started = time.perf_counter()
                keep_alive = self._wants_keep_alive(version, headers)
                # Hot-tier hits are pure in-memory lookups: serve them
                # on the loop and skip the executor handoff entirely.
                response = self.service.dispatch_fast(
                    method, target, headers)
                if response is None:
                    response = await loop.run_in_executor(
                        self._executor, self.service.dispatch,
                        method, target, headers)
                self._write_response(writer, response, keep_alive)
                await writer.drain()
                if self.access_log is not None:
                    write_access_log(self.access_log, access_log_entry(
                        method, target, started, response))
                if not keep_alive:
                    break
        except (asyncio.CancelledError, asyncio.IncompleteReadError,
                ConnectionError, TimeoutError):
            pass  # client went away / shutdown: nothing to answer
        except Exception:  # noqa: BLE001 - malformed request framing
            try:
                self._write_response(
                    writer, Response.error(400, "malformed request"),
                    keep_alive=False)
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[tuple[str, str, str,
                                                dict[str, str]]]:
        """Parse one request head; drain its body; None at EOF."""
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ValueError(f"bad request line {request_line!r}")
        method, target, version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip()] = value.strip()
        lowered = {k.lower(): v for k, v in headers.items()}
        try:
            length = int(lowered.get("content-length") or 0)
        except ValueError:
            length = 0
        if length > 0:  # drained, never parsed: keep framing intact
            await reader.readexactly(length)
        return method, target, version, headers

    @staticmethod
    def _wants_keep_alive(version: str,
                          headers: dict[str, str]) -> bool:
        conn = next((v for k, v in headers.items()
                     if k.lower() == "connection"), "").lower()
        if version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"

    @staticmethod
    def _write_response(writer: asyncio.StreamWriter,
                        response: Response, keep_alive: bool) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        lines = [f"HTTP/1.1 {response.status} {reason}"]
        lines += [f"{k}: {v}" for k, v in response.headers.items()]
        if "Content-Length" not in response.headers:
            lines.append(f"Content-Length: {len(response.body)}")
        lines.append("Server: repro-observatory")
        lines.append(
            f"Connection: {'keep-alive' if keep_alive else 'close'}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + response.body)


class AsyncServerThread:
    """An :class:`AsyncObservatoryServer` on its own event-loop thread.

    Lets synchronous callers (tests, the smoke harnesses) run the
    asyncio transport exactly like the threaded one: ``start()``
    returns the bound address, ``stop()`` tears everything down.
    """

    def __init__(self, service: ObservatoryService,
                 host: str = "127.0.0.1", port: int = 0,
                 access_log: Optional[TextIO] = None) -> None:
        self.server = AsyncObservatoryServer(service, host, port,
                                             access_log)
        self._started = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="repro-aserver")

    def start(self) -> tuple[str, int]:
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("async server failed to start") \
                from self._startup_error
        return self.server.address

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=timeout)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self._startup_error = exc
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._started.set()
        await self._stop.wait()
        await self.server.close()
