"""Service endpoints: parameter contracts and deterministic payloads.

Each endpoint declares the parameters it accepts (typed, with
defaults), a per-endpoint ``schema_version`` (bump when the payload
shape changes — old cache entries then simply miss), and a compute
function ``(seed, params) -> dict`` whose output depends *only* on
``(seed, params)``.  The service layer canonical-JSON-encodes that
dict (:func:`repro.store.canonical_bytes`) before storing or sending,
which is what makes cold and warm responses byte-identical.

Worlds are memoized per seed in a small in-process LRU; the shared
:class:`repro.exec.context.RoutingContext` then keys routing state off
the cached topology object, so concurrent requests against one seed
share one world and one routing table set.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from repro import build_world
from repro.store import ArtifactKey

#: Worlds kept alive per service process (seed → Topology).
WORLD_CACHE_SIZE = 4

_WORLDS: "OrderedDict[int, Any]" = OrderedDict()
_WORLDS_LOCK = threading.Lock()


def world_for(seed: int):
    """Get-or-build the topology for ``seed`` (process-wide LRU)."""
    with _WORLDS_LOCK:
        topo = _WORLDS.get(seed)
        if topo is not None:
            _WORLDS.move_to_end(seed)
            return topo
    built = build_world(seed=seed)
    with _WORLDS_LOCK:
        topo = _WORLDS.get(seed)
        if topo is None:
            _WORLDS[seed] = topo = built
            while len(_WORLDS) > WORLD_CACHE_SIZE:
                _WORLDS.popitem(last=False)
        return topo


class BadRequest(ValueError):
    """Client-side parameter error → HTTP 400."""


def parse_seed(query: Mapping[str, str], default: int) -> int:
    """The request's ``seed`` (every endpoint shares this contract)."""
    raw = query.get("seed")
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise BadRequest(f"parameter 'seed' must be int, "
                         f"got {raw!r}") from None


@dataclass(frozen=True)
class Param:
    """One accepted query parameter."""

    name: str
    kind: type            # int | float | str
    default: Any = None
    choices: tuple = ()

    def parse(self, raw: Optional[str]) -> Any:
        if raw is None:
            return self.default
        try:
            value = self.kind(raw)
        except (TypeError, ValueError):
            raise BadRequest(
                f"parameter {self.name!r} must be {self.kind.__name__}, "
                f"got {raw!r}") from None
        if self.choices and value not in self.choices:
            raise BadRequest(
                f"parameter {self.name!r} must be one of "
                f"{sorted(self.choices)}, got {value!r}")
        return value


@dataclass(frozen=True)
class Endpoint:
    """One queryable analysis product."""

    name: str
    schema_version: int
    expensive: bool       # expensive → async job on a cache miss
    params: tuple[Param, ...]
    compute: Callable[[int, dict[str, Any]], dict[str, Any]]
    help: str = ""

    def parse_params(self, query: Mapping[str, str]) -> dict[str, Any]:
        known = {p.name for p in self.params} | {"seed", "wait"}
        unknown = sorted(set(query) - known)
        if unknown:
            raise BadRequest(f"unknown parameter(s) {unknown} for "
                             f"/v1/{self.name}")
        return {p.name: p.parse(query.get(p.name)) for p in self.params}

    def key(self, seed: int, params: dict[str, Any]) -> ArtifactKey:
        return ArtifactKey.make(kind=f"api.{self.name}", seed=seed,
                                params=params,
                                schema_version=self.schema_version)

    def payload(self, seed: int, params: dict[str, Any]
                ) -> dict[str, Any]:
        """The canonical response document (deterministic in inputs)."""
        return {
            "endpoint": self.name,
            "schema_version": self.schema_version,
            "seed": seed,
            "params": params,
            "result": json_safe(self.compute(seed, params)),
        }


def json_safe(obj: Any) -> Any:
    """Map non-finite floats to ``None`` so canonical JSON stays
    strict (``allow_nan=False``); e.g. a rate ratio over a window with
    zero baseline events is ±inf and must serialize deterministically."""
    if isinstance(obj, float):
        return obj if obj == obj and obj not in (float("inf"),
                                                 float("-inf")) else None
    if isinstance(obj, dict):
        return {k: json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [json_safe(v) for v in obj]
    return obj


# ----------------------------------------------------------------------
# Compute functions (deterministic in (seed, params) by construction)
# ----------------------------------------------------------------------
def _compute_summary(seed: int, params: dict[str, Any]) -> dict:
    topo = world_for(seed)
    return {"summary": {k: v for k, v in sorted(topo.summary().items())}}


def _compute_placement(seed: int, params: dict[str, Any]) -> dict:
    from repro.observatory import ixp_cover_hosts
    topo = world_for(seed)
    budget = params["budget"] if params["budget"] > 0 else None
    cover = ixp_cover_hosts(topo, max_picks=budget)
    picks = [{"asn": asn, "name": topo.as_(asn).name,
              "country": topo.as_(asn).country_iso2,
              "ixps_covered": cover.curve[i]}
             for i, asn in enumerate(cover.chosen)]
    return {"picks": picks, "uncovered_ixps": sorted(cover.uncovered)}


def _compute_detours(seed: int, params: dict[str, Any]) -> dict:
    from repro.analysis import analyze_snapshot
    from repro.datasets import build_ixp_directory, collect_snapshot
    from repro.exec import pair_for
    from repro.geo import AFRICAN_REGIONS
    from repro.measurement import (GeolocationService, MeasurementEngine,
                                   build_atlas_platform)
    topo = world_for(seed)
    routing, phys = pair_for(topo)
    engine = MeasurementEngine(topo, routing, phys)
    snapshot = collect_snapshot(topo, engine, build_atlas_platform(topo),
                                max_pairs=params["pairs"])
    report = analyze_snapshot(topo, snapshot, GeolocationService(topo),
                              build_ixp_directory(topo))
    scopes = [{"scope": "all", "pairs": report.sample_count(),
               "detour_rate": report.detour_rate(),
               "ixp_traversal_rate": report.ixp_traversal_rate()}]
    for region in AFRICAN_REGIONS:
        scopes.append({
            "scope": region.value,
            "pairs": report.sample_count(region),
            "detour_rate": report.detour_rate(region),
            "ixp_traversal_rate": report.ixp_traversal_rate(region)})
    return {"scopes": scopes}


def _compute_snapshot(seed: int, params: dict[str, Any]) -> dict:
    """Raw traceroute records for open-data download (§5).

    Unlike ``detours`` (which aggregates the same campaign into rates),
    this publishes the per-measurement records a real observatory would
    serve: TTL / IP / RTT per hop — the wire-visible view only, never
    the simulator's hidden ground-truth AS and country labels.  These
    are the service's bulk artifacts (hundreds of KB), which is exactly
    the class the in-memory hot tier exists for.
    """
    from repro.datasets import collect_snapshot
    from repro.exec import pair_for
    from repro.measurement import MeasurementEngine, build_atlas_platform
    from repro.topology import format_ip
    topo = world_for(seed)
    routing, phys = pair_for(topo)
    engine = MeasurementEngine(topo, routing, phys)
    snapshot = collect_snapshot(topo, engine, build_atlas_platform(topo),
                                max_pairs=params["pairs"])
    records = []
    for (src, dst), tr in zip(snapshot.pairs, snapshot.traceroutes):
        records.append({
            "probe_id": tr.probe_id,
            "src_asn": tr.src_asn,
            "src_country": tr.src_country,
            "dst_probe_id": dst.probe_id,
            "dst_asn": tr.dst_asn,
            "target_ip": format_ip(tr.target_ip),
            "reached": tr.reached,
            "bytes_used": tr.bytes_used,
            "hops": [{"ttl": h.ttl, "ip": h.ip_str(),
                      "rtt_ms": h.rtt_ms} for h in tr.hops],
        })
    return {"platform": snapshot.platform_name,
            "pairs": len(records), "traceroutes": records}


def _compute_coverage(seed: int, params: dict[str, Any]) -> dict:
    from repro.analysis import build_coverage_table
    from repro.datasets import build_delegated_file
    from repro.exec import routing_for
    from repro.measurement import (run_ant_hitlist, run_caida_prefix_scan,
                                   run_yarrp_scan)
    topo = world_for(seed)
    scans = [run_ant_hitlist(topo), run_caida_prefix_scan(topo),
             run_yarrp_scan(topo, routing_for(topo))]
    table = build_coverage_table(topo, build_delegated_file(topo), scans)
    return {"rows": [{
        "dataset": r.dataset, "entries": r.entries,
        "mobile_coverage": r.mobile_coverage,
        "non_mobile_coverage": r.non_mobile_coverage,
        "ixp_coverage": r.ixp_coverage,
    } for r in table.rows]}


def _compute_outages(seed: int, params: dict[str, Any]) -> dict:
    from repro.analysis import analyze_outages
    from repro.datasets import build_radar_feed
    from repro.outages import OutageSimulator
    topo = world_for(seed)
    simulation = OutageSimulator(topo).simulate(years=params["years"])
    report = analyze_outages(simulation,
                             build_radar_feed(simulation, seed=seed))
    rows = [{"cause": r.cause, "events": r.events,
             "median_duration_days": r.median_duration_days,
             "mean_countries_affected": r.mean_countries_affected}
            for r in sorted(report.rows,
                            key=lambda r: (-r.median_duration_days,
                                           r.cause))]
    return {"rows": rows, "rate_ratio": report.rate_ratio()}


def _compute_whatif(seed: int, params: dict[str, Any]) -> dict:
    from repro.observatory import WhatIfCutCables
    from repro.outages import march_2024_scenario
    topo = world_for(seed)
    west, east = march_2024_scenario(topo)
    cut = west if params["scenario"] == "west" else east
    names = {c.cable_id: c.name for c in topo.cables}
    severities = WhatIfCutCables(topo).country_severities(cut)
    return {
        "scenario": params["scenario"],
        "cut_cables": [names[c] for c in cut],
        "severities": {cc: s for cc, s in sorted(severities.items())},
    }


#: Registry, in display order.  ``expensive`` mirrors the observed
#: costs: snapshot collection / sweeps dominate; inventory and set
#: cover are interactive even cold.
ENDPOINTS: dict[str, Endpoint] = {e.name: e for e in (
    Endpoint("summary", schema_version=1, expensive=False, params=(),
             compute=_compute_summary,
             help="world inventory for a seed"),
    Endpoint("placement", schema_version=1, expensive=False,
             params=(Param("budget", int, 0),),
             compute=_compute_placement,
             help="set-cover probe placement (footnote 1)"),
    Endpoint("detours", schema_version=1, expensive=True,
             params=(Param("pairs", int, 600),),
             compute=_compute_detours,
             help="Fig. 2a/3 connectivity report"),
    Endpoint("snapshot", schema_version=1, expensive=True,
             params=(Param("pairs", int, 600),),
             compute=_compute_snapshot,
             help="raw traceroute records (open-data download)"),
    Endpoint("coverage", schema_version=1, expensive=True, params=(),
             compute=_compute_coverage,
             help="Table 1 scanner coverage"),
    Endpoint("outages", schema_version=1, expensive=True,
             params=(Param("years", float, 2.0),),
             compute=_compute_outages,
             help="Fig. 4 outage simulation"),
    Endpoint("whatif", schema_version=1, expensive=True,
             params=(Param("scenario", str, "west",
                           choices=("west", "east")),),
             compute=_compute_whatif,
             help="March-2024 cable-cut replay severities"),
)}


def describe() -> list[dict[str, Any]]:
    """Machine-readable endpoint listing (``GET /v1/endpoints``)."""
    return [{
        "name": e.name,
        "path": f"/v1/{e.name}",
        "schema_version": e.schema_version,
        "expensive": e.expensive,
        "params": [{"name": p.name, "type": p.kind.__name__,
                    "default": p.default,
                    **({"choices": list(p.choices)} if p.choices else {})}
                   for p in e.params],
        "help": e.help,
    } for e in ENDPOINTS.values()]
