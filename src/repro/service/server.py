"""Threaded HTTP server: the Observatory as a queryable service.

Request flow for ``GET /v1/<endpoint>``::

    parse params ──> ArtifactKey(kind, seed, params, schema-version)
         │
         ├─ hot-tier hit ───────────> 200, cached bytes   (X-Repro-Source: hot)
         ├─ store hit ──────────────> 200, stored bytes   (X-Repro-Cache: hit)
         ├─ miss + cheap endpoint ──> compute, store ────> 200 (miss)
         ├─ miss + expensive ───────> submit job ────────> 202 {job_id,...}
         └─ miss + expensive + wait=1 ─> submit job, block, serve store

The payload placed in the store is the canonical JSON encoding of the
endpoint's deterministic document, and every path above — including
the in-memory hot tier (:class:`repro.service.hotcache.HotCache`) —
serves exactly those bytes: hot, cold and disk-warm responses are
byte-identical, which the service smoke test, the test suite and
``scripts/bench_load.py`` all assert.

:class:`ObservatoryService` is the transport-agnostic core:
``dispatch(method, target, headers)`` implements GET/HEAD/DELETE plus
405-with-``Allow`` for everything else, so the threaded transport here
and the asyncio transport in :mod:`repro.service.aserver` share every
byte of routing, caching, job and degraded-mode logic.

Built on ``http.server.ThreadingHTTPServer`` only; no third-party
dependencies.  Telemetry: per-endpoint request counters and latency
histograms here, hot-tier counters in ``repro.service.hotcache``,
cache hit/miss/eviction counters in ``repro.store``, job lifecycle
counters in ``repro.service.jobs``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, TextIO
from urllib.parse import parse_qsl, urlsplit

from repro import telemetry
from repro.eventlog import EventLog, event_type_from_name
from repro.service.endpoints import BadRequest, ENDPOINTS, describe, \
    json_safe, parse_seed
from repro.service.hotcache import DEFAULT_HOT_BYTES, HotCache
from repro.service.jobs import JobQueue, JobState
from repro.store import ArtifactStore, canonical_bytes, digest_bytes

#: Ceiling for ``wait=1`` blocking requests (seconds).
MAX_WAIT_S = 300.0
#: Default / maximum rows returned by one ``/v1/events`` page.
EVENTS_PAGE = 512
EVENTS_PAGE_MAX = 4096
#: Default / maximum seconds a ``/v1/heartbeat/stream`` poll blocks.
STREAM_WAIT_S = 10.0
STREAM_WAIT_MAX_S = 30.0

_REQUESTS = telemetry.counter(
    "repro_service_requests_total",
    "HTTP requests served", labels=("endpoint", "status"))
_LATENCY = telemetry.histogram(
    "repro_service_request_seconds",
    "HTTP request wall-clock seconds", labels=("endpoint",))
_DEGRADED = telemetry.counter(
    "repro_service_degraded_total",
    "Responses served in degraded mode", labels=("endpoint", "reason"))
_NOT_MODIFIED = telemetry.counter(
    "repro_service_not_modified_total",
    "Conditional GETs answered 304 via ETag", labels=("endpoint",))


class Response:
    """A fully materialized HTTP response."""

    __slots__ = ("status", "body", "headers")

    def __init__(self, status: int, body: bytes,
                 headers: Optional[dict[str, str]] = None) -> None:
        self.status = status
        self.body = body
        self.headers = {"Content-Type": "application/json"}
        if headers:
            self.headers.update(headers)

    @classmethod
    def json(cls, status: int, doc: Any,
             headers: Optional[dict[str, str]] = None) -> "Response":
        return cls(status, canonical_bytes(doc), headers)

    @classmethod
    def error(cls, status: int, message: str,
              headers: Optional[dict[str, str]] = None) -> "Response":
        return cls.json(status, {"error": message, "status": status},
                        headers)

    def head(self) -> "Response":
        """The HEAD variant: same status and headers, no body.

        ``Content-Length`` is pinned to the entity's real size, as
        RFC 9110 wants — the handler layer must not overwrite it with
        the (empty) body length."""
        headers = dict(self.headers)
        headers["Content-Length"] = str(len(self.body))
        return Response(self.status, b"", headers)


class ObservatoryService:
    """Transport-independent request handling (testable without sockets)."""

    def __init__(self, store: ArtifactStore,
                 queue: Optional[JobQueue] = None,
                 default_seed: int = 2025,
                 events_dir: Optional[str] = None,
                 coordinator=None,
                 hot_cache_bytes: Optional[int] = None) -> None:
        self.store = store
        self.queue = queue if queue is not None else JobQueue()
        self.default_seed = default_seed
        self.events_dir = events_dir
        #: Attached :class:`repro.fleet.FleetCoordinator` (or None) —
        #: backs the live ``/v1/fleet/*`` surface.
        self.coordinator = coordinator
        #: In-memory hot tier over the store (0 bytes disables it).
        #: Subscribed to store invalidations so a hot entry can never
        #: outlive the durable artifact it mirrors.
        self.hot = HotCache(DEFAULT_HOT_BYTES if hot_cache_bytes is None
                            else hot_cache_bytes)
        self.store.add_invalidation_hook(self.hot.invalidate)
        #: Request-target -> (endpoint, ArtifactKey) memo for the fast
        #: path.  The mapping is pure (the key is a deterministic hash
        #: of endpoint/seed/params), so entries never need
        #: invalidating; the bound only caps memory under hostile
        #: target diversity.
        self._target_memo: "OrderedDict[str, tuple[Any, Any]]" \
            = OrderedDict()
        self._target_memo_lock = threading.Lock()
        self._events_lock = threading.Lock()
        self._eventlog: Optional[EventLog] = None
        self._heartbeat = None

    # -- event-log access ----------------------------------------------
    def _events(self) -> Optional[EventLog]:
        """The served event log (opened lazily; ``None`` if unset)."""
        if self.events_dir is None:
            return None
        if self._eventlog is None:
            self._eventlog = EventLog(self.events_dir)
        return self._eventlog

    def _analyzer(self, log: EventLog):
        """A read-side heartbeat detector over the served log.

        ``emit_alerts=False``: the serving process replays detection
        (a pure function of the stream, so it reaches the writer's
        exact alert set) without appending to a log it doesn't own.
        """
        if self._heartbeat is None:
            from repro.monitoring import HeartbeatAnalyzer
            self._heartbeat = HeartbeatAnalyzer(log, emit_alerts=False)
        return self._heartbeat

    # ------------------------------------------------------------------
    def dispatch(self, method: str, target: str,
                 headers: Optional[dict[str, str]] = None) -> Response:
        """One request, any method — the transport-agnostic entry.

        Both HTTP transports (threaded and asyncio) funnel every
        request through here, so method semantics are identical by
        construction: ``GET``/``HEAD`` route normally (``HEAD`` keeps
        the headers and the entity's ``Content-Length`` but drops the
        body), ``DELETE`` cancels jobs, and anything else is a ``405``
        carrying an ``Allow`` header.  Unexpected exceptions become a
        500 here — the request boundary — rather than per-transport.
        """
        try:
            method = method.upper()
            if method in ("GET", "HEAD"):
                response = self.handle(target, headers=headers)
                return response.head() if method == "HEAD" else response
            path = urlsplit(target).path.rstrip("/")
            if method == "DELETE":
                if path.startswith("/v1/jobs/"):
                    return self.cancel_job(path[len("/v1/jobs/"):])
                return Response.error(
                    405, f"DELETE not supported for {path!r}",
                    {"Allow": "GET, HEAD"})
            return Response.error(
                405, f"method {method} not allowed",
                {"Allow": self._allow_for(path)})
        except Exception as exc:  # noqa: BLE001 - request boundary
            return Response.error(500, f"internal error: {exc}")

    @staticmethod
    def _allow_for(path: str) -> str:
        """Methods a target supports (the 405 ``Allow`` header)."""
        if path.startswith("/v1/jobs/"):
            return "DELETE, GET, HEAD"
        return "GET, HEAD"

    def dispatch_fast(self, method: str, target: str,
                      headers: Optional[dict[str, str]] = None
                      ) -> Optional[Response]:
        """Serve a request from the hot tier alone, or return ``None``.

        The asyncio transport calls this on the event loop before
        paying the executor handoff: a ``GET``/``HEAD`` of a cached
        endpoint artifact whose key is hot needs no store access, no
        job queue and no blocking work, so dispatching it inline keeps
        the dominant production request class off the thread pool
        entirely.  Anything else — plumbing routes, misses, writes,
        malformed parameters — returns ``None`` and takes the normal
        :meth:`dispatch` path, which is the sole source of truth for
        semantics (a fast-served response must be byte-identical to
        what ``dispatch`` would have produced; the service test suite
        asserts exactly that).
        """
        method = method.upper()
        if method not in ("GET", "HEAD") or not self.hot.enabled:
            return None
        resolved = self._resolve_target(target)
        if resolved is None:
            return None
        endpoint, key = resolved
        hot = self.hot.get(key.digest, count_miss=False)
        if hot is None:
            return None
        payload, etag = hot
        out = {"X-Repro-Cache": "hit", "X-Repro-Source": "hot",
               "X-Repro-Key": key.digest}
        lowered = {k.lower(): v for k, v in (headers or {}).items()}
        response = self._maybe_not_modified(
            endpoint.name, payload, lowered, out, etag=etag)
        if response is None:
            response = Response(200, payload, out)
        if telemetry.enabled():
            _REQUESTS.labels(endpoint=endpoint.name,
                             status=str(response.status)).inc()
        return response.head() if method == "HEAD" else response

    #: Bound on the request-target memo (hostile-diversity cap).
    _TARGET_MEMO_MAX = 512

    def _resolve_target(self, target: str):
        """``(endpoint, ArtifactKey)`` for a well-formed ``/v1`` query
        target, memoized by the exact target string; ``None`` for
        anything the fast path must not touch.  Pure: a target always
        parses to the same key, so entries never go stale."""
        with self._target_memo_lock:
            resolved = self._target_memo.get(target)
            if resolved is not None:
                self._target_memo.move_to_end(target)
                return resolved
        split = urlsplit(target)
        path = split.path.rstrip("/")
        if not path.startswith("/v1/"):
            return None
        endpoint = ENDPOINTS.get(path[len("/v1/"):])
        if endpoint is None:
            return None
        query = dict(parse_qsl(split.query))
        try:
            seed = parse_seed(query, self.default_seed)
            params = endpoint.parse_params(query)
        except BadRequest:
            return None  # slow path owns the 400
        if query.get("wait", "0") not in ("0", "", "false"):
            return None  # wait requests may block: never fast-path
        resolved = (endpoint, endpoint.key(seed, params))
        with self._target_memo_lock:
            self._target_memo[target] = resolved
            while len(self._target_memo) > self._TARGET_MEMO_MAX:
                self._target_memo.popitem(last=False)
        return resolved

    def handle(self, target: str,
               headers: Optional[dict[str, str]] = None) -> Response:
        """Dispatch one GET by request target (path + query string).

        ``headers`` (case-insensitive) enables conditional requests:
        an ``If-None-Match`` that matches a store-backed endpoint's
        ETag is answered ``304`` with an empty body.
        """
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = dict(parse_qsl(split.query))
        lowered = {k.lower(): v for k, v in (headers or {}).items()}
        started = time.perf_counter()
        endpoint_label, response = self._route(path, query, lowered)
        if telemetry.enabled():
            _REQUESTS.labels(endpoint=endpoint_label,
                             status=str(response.status)).inc()
            _LATENCY.labels(endpoint=endpoint_label).observe(
                time.perf_counter() - started)
        return response

    # ------------------------------------------------------------------
    def _route(self, path: str, query: dict[str, str],
               headers: Optional[dict[str, str]] = None
               ) -> tuple[str, Response]:
        headers = headers or {}
        if path == "/healthz":
            return "healthz", Response.json(200, {"ok": True})
        if path == "/metrics":
            return "metrics", Response(
                200, telemetry.to_prometheus().encode(),
                {"Content-Type": "text/plain; version=0.0.4"})
        if path == "/v1/endpoints":
            return "endpoints", Response.json(
                200, {"endpoints": describe()})
        if path == "/v1/store/stats":
            stats = self.store.stats()
            stats["hot"] = self.hot.stats()
            return "store_stats", Response.json(200, stats)
        if path == "/v1/telemetry":
            return "telemetry", Response.json(
                200, json_safe(telemetry.to_json()),
                {"X-Repro-Cache": "live"})
        if path == "/v1/events":
            try:
                return "events", self._events_page(query)
            except BadRequest as exc:
                return "events", Response.error(400, str(exc))
        if path == "/v1/heartbeat/stream":
            try:
                return "heartbeat_stream", self._heartbeat_stream(query)
            except BadRequest as exc:
                return "heartbeat_stream", Response.error(400, str(exc))
        if path == "/v1/heartbeat":
            return "heartbeat", self._heartbeat_status()
        if path == "/v1/jobs":
            return "jobs", Response.json(
                200, self.queue.stats(), {"X-Repro-Cache": "live"})
        if path.startswith("/v1/jobs/"):
            return "jobs", self._job_status(path[len("/v1/jobs/"):])
        if path in ("/v1/fleet/agents", "/v1/fleet/campaigns"):
            label = "fleet_" + path.rsplit("/", 1)[1]
            return label, self._fleet_status(path)
        if path.startswith("/v1/"):
            name = path[len("/v1/"):]
            endpoint = ENDPOINTS.get(name)
            if endpoint is None:
                return name, Response.error(
                    404, f"unknown endpoint {name!r}; "
                         f"see /v1/endpoints")
            try:
                return name, self._query(endpoint, query, headers)
            except BadRequest as exc:
                return name, Response.error(400, str(exc))
        return "unknown", Response.error(404, f"no route for {path!r}")

    # -- fleet surface -------------------------------------------------
    def _fleet_status(self, path: str) -> Response:
        if self.coordinator is None:
            return Response.error(
                404, "fleet coordinator not attached; start with "
                     "'repro coordinator --http-port'")
        status = self.coordinator.status()
        section = path.rsplit("/", 1)[1]
        return Response.json(
            200, {section: status[section],
                  "draining": status["draining"]},
            {"X-Repro-Cache": "live"})

    # -- conditional GETs ----------------------------------------------
    @staticmethod
    def _etag_for(payload: bytes) -> str:
        return f'"{digest_bytes(payload)}"'

    @staticmethod
    def _etag_matches(if_none_match: str, etag: str) -> bool:
        if if_none_match.strip() == "*":
            return True
        bare = etag.strip('"')
        for candidate in if_none_match.split(","):
            candidate = candidate.strip()
            if candidate.startswith("W/"):
                candidate = candidate[2:]
            if candidate.strip('"') == bare:
                return True
        return False

    def _maybe_not_modified(self, endpoint_name: str, payload: bytes,
                            headers: dict[str, str],
                            extra: dict[str, str],
                            etag: Optional[str] = None
                            ) -> Optional[Response]:
        """A 304 for a matching ``If-None-Match``, else ``None``.

        The ETag is the payload's content digest — artifacts are
        canonical bytes, so the validator is exact, and the 304 still
        carries the ETag plus the cache-disposition headers.  A hot-
        tier hit passes the ``etag`` it memoized so the serving path
        never re-hashes the payload."""
        if etag is None:
            etag = self._etag_for(payload)
        extra["ETag"] = etag
        match = headers.get("if-none-match")
        if match and self._etag_matches(match, etag):
            if telemetry.enabled():
                _NOT_MODIFIED.labels(endpoint=endpoint_name).inc()
            return Response(304, b"", extra)
        return None

    def _admit_hot(self, key, payload: bytes, etag: str) -> None:
        """Admit freshly computed bytes to the hot tier, via the disk.

        The tier must only ever mirror bytes a *verified store read*
        can reproduce — trusting the write we just issued would let a
        silently corrupted store entry (``store.corrupt`` in the fault
        harness, bit rot in life) hide behind good in-memory bytes
        until eviction, serving 200s while the durable copy is trash.
        The read-back costs one verified disk read per cold compute;
        a mismatch (or a quarantined read) simply leaves the key cold,
        and the next request discovers the damage the normal way."""
        if not self.hot.enabled:
            return
        readback = self.store.get(key)
        if readback == payload:
            self.hot.put(key.digest, payload, etag)

    # ------------------------------------------------------------------
    def _query(self, endpoint, query: dict[str, str],
               headers: Optional[dict[str, str]] = None) -> Response:
        headers = headers or {}
        seed = parse_seed(query, self.default_seed)
        params = endpoint.parse_params(query)
        wait = query.get("wait", "0") not in ("0", "", "false")
        key = endpoint.key(seed, params)
        request_path = self._canonical_path(endpoint, seed, params)

        if self.hot.enabled:
            hot = self.hot.get(key.digest)
            if hot is not None:
                payload, etag = hot
                out = {"X-Repro-Cache": "hit",
                       "X-Repro-Source": "hot",
                       "X-Repro-Key": key.digest}
                not_modified = self._maybe_not_modified(
                    endpoint.name, payload, headers, out, etag=etag)
                if not_modified is not None:
                    return not_modified
                return Response(200, payload, out)

        cached = self.store.get(key)
        if cached is not None:
            etag = self._etag_for(cached)
            self.hot.put(key.digest, cached, etag)
            out = {"X-Repro-Cache": "hit", "X-Repro-Source": "store",
                   "X-Repro-Key": key.digest}
            not_modified = self._maybe_not_modified(
                endpoint.name, cached, headers, out, etag=etag)
            if not_modified is not None:
                return not_modified
            return Response(200, cached, out)

        if not endpoint.expensive:
            try:
                payload, degraded = self._compute_and_store(
                    endpoint, key, seed, params, strict=False)
            except Exception as exc:  # noqa: BLE001 - degrade, not 500
                return self._degraded_response(
                    endpoint, key, seed,
                    f"compute failed: {exc}")
            out = {"X-Repro-Cache": "miss", "X-Repro-Source": "compute",
                   "X-Repro-Key": key.digest}
            if degraded is not None:
                out["X-Repro-Degraded"] = degraded
                if telemetry.enabled():
                    _DEGRADED.labels(endpoint=endpoint.name,
                                     reason=degraded).inc()
            etag = self._etag_for(payload)
            if degraded is None:
                # Durable in the store, so admissible to the hot tier
                # — but only through the read-back gate: the tier only
                # ever mirrors bytes the store verifiably re-serves.
                self._admit_hot(key, payload, etag)
            not_modified = self._maybe_not_modified(
                endpoint.name, payload, headers, out, etag=etag)
            if not_modified is not None:
                return not_modified
            return Response(200, payload, out)

        job, _created = self.queue.submit(
            key.digest, endpoint.name, request_path,
            lambda: self._compute_and_store(endpoint, key, seed,
                                            params, strict=True))
        if wait:
            self.queue.wait(job.job_id, timeout=MAX_WAIT_S)
            if job.state in (JobState.FAILED, JobState.CANCELLED):
                return self._degraded_response(
                    endpoint, key, seed,
                    f"job {job.state.value}: {job.error}")
            payload = self.store.get(key)
            from_store = durable = payload is not None
            if payload is None:  # evicted between job end and read
                try:
                    payload, degraded = self._compute_and_store(
                        endpoint, key, seed, params, strict=False)
                    durable = degraded is None
                except Exception as exc:  # noqa: BLE001
                    return self._degraded_response(
                        endpoint, key, seed,
                        f"recompute failed: {exc}")
            out = {"X-Repro-Cache": "miss", "X-Repro-Source": "compute",
                   "X-Repro-Key": key.digest}
            etag = self._etag_for(payload)
            if from_store:
                # store.get already verified these bytes on disk.
                self.hot.put(key.digest, payload, etag)
            elif durable:
                self._admit_hot(key, payload, etag)
            not_modified = self._maybe_not_modified(
                endpoint.name, payload, headers, out, etag=etag)
            if not_modified is not None:
                return not_modified
            return Response(200, payload, out)
        return Response.json(
            202, {**job.to_dict(), "poll": f"/v1/jobs/{job.job_id}"},
            {"X-Repro-Cache": "miss", "X-Repro-Key": key.digest})

    # -- event log + heartbeat surface ---------------------------------
    @staticmethod
    def _int_param(query: dict[str, str], name: str, default: int,
                   lo: Optional[int] = None,
                   hi: Optional[int] = None) -> int:
        raw = query.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise BadRequest(f"parameter {name!r} must be int, "
                             f"got {raw!r}") from None
        if lo is not None:
            value = max(lo, value)
        if hi is not None:
            value = min(hi, value)
        return value

    def _no_events(self) -> Response:
        return Response.error(
            404, "event log not configured; start serve with "
                 "--events-dir")

    def _events_page(self, query: dict[str, str]) -> Response:
        log = self._events()
        if log is None:
            return self._no_events()
        after = self._int_param(query, "after", -1, lo=-1)
        limit = self._int_param(query, "limit", EVENTS_PAGE, lo=1,
                                hi=EVENTS_PAGE_MAX)
        etypes = None
        etype_param = query.get("etype")
        if etype_param:
            parsed = []
            for name in etype_param.split(","):
                name = name.strip()
                if not name:
                    continue
                etype = event_type_from_name(name)
                if etype is None:
                    raise BadRequest(f"unknown etype {name!r}")
                parsed.append(etype)
            etypes = tuple(parsed) or None
        scope = query.get("scope") or None
        with self._events_lock:
            log.refresh()
            events = log.read(after=after, limit=limit, etypes=etypes,
                              scope=scope)
            head = log.head_seq
        cursor = events[-1].seq if events else after
        return Response.json(
            200, {"events": [e.to_dict() for e in events],
                  "count": len(events), "after": after,
                  "cursor": cursor, "head_seq": head},
            {"X-Repro-Cache": "live"})

    def _heartbeat_status(self) -> Response:
        log = self._events()
        if log is None:
            return self._no_events()
        with self._events_lock:
            log.refresh()
            analyzer = self._analyzer(log)
            analyzer.catch_up()
            doc = analyzer.status_doc()
        return Response.json(200, json_safe(doc),
                             {"X-Repro-Cache": "live"})

    def _heartbeat_stream(self, query: dict[str, str]) -> Response:
        """Long-poll: block until events past ``cursor`` (or timeout).

        With no ``cursor`` the current head is used, so the first call
        establishes a position and a subsequent call blocks for new
        activity — the pager-style consumption loop documented in
        ``docs/eventlog.md``.
        """
        log = self._events()
        if log is None:
            return self._no_events()
        with self._events_lock:
            log.refresh()
            head = log.head_seq
        cursor = self._int_param(query, "cursor", head, lo=-1)
        limit = self._int_param(query, "limit", EVENTS_PAGE, lo=1,
                                hi=EVENTS_PAGE_MAX)
        raw_timeout = query.get("timeout")
        try:
            timeout = float(raw_timeout) if raw_timeout \
                else STREAM_WAIT_S
        except ValueError:
            raise BadRequest(f"parameter 'timeout' must be a number, "
                             f"got {raw_timeout!r}") from None
        timeout = min(timeout, STREAM_WAIT_MAX_S)
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            with self._events_lock:
                log.refresh()
                head = log.head_seq
                if head > cursor:
                    events = log.read(after=cursor, limit=limit)
                    break
            if time.monotonic() >= deadline:
                events = []
                break
            time.sleep(0.05)
        new_cursor = events[-1].seq if events else cursor
        return Response.json(
            200, {"events": [e.to_dict() for e in events],
                  "count": len(events), "cursor": new_cursor,
                  "head_seq": head, "timed_out": not events},
            {"X-Repro-Cache": "live"})

    def _job_status(self, job_id: str) -> Response:
        job = self.queue.get(job_id)
        if job is None:
            return Response.error(404, f"unknown job {job_id!r}")
        doc = job.to_dict()
        status = 200 if job.settled else 202
        return Response.json(status, doc)

    def cancel_job(self, job_id: str) -> Response:
        """Cancel a queued/running job (``DELETE /v1/jobs/<id>``)."""
        job = self.queue.get(job_id)
        if job is None:
            return Response.error(404, f"unknown job {job_id!r}")
        cancelled = self.queue.cancel(job_id)
        return Response.json(200, {**job.to_dict(),
                                   "cancel_accepted": cancelled})

    def _compute_and_store(self, endpoint, key, seed: int,
                           params: dict[str, Any], strict: bool
                           ) -> tuple[bytes, Optional[str]]:
        """Compute the canonical payload and make it durable.

        Returns ``(payload, degraded_reason)``.  A store write failure
        either propagates (``strict`` — job path, so the bounded job
        retry gets another shot at durability) or downgrades to
        serving the freshly computed bytes uncached.
        """
        with telemetry.span("service.compute", endpoint=endpoint.name,
                            seed=seed):
            payload = canonical_bytes(endpoint.payload(seed, params))
        try:
            self.store.put(key, payload)
        except OSError:
            if strict:
                raise
            return payload, "store-write-failed"
        return payload, None

    def _degraded_response(self, endpoint, key, seed: int,
                           reason: str) -> Response:
        """Recompute failed: serve stale bytes if any exist, else 503.

        Degraded responses always carry ``X-Repro-Degraded`` — the
        chaos smoke's invariant is "no 5xx without that header", and a
        stale 200 additionally names the substitute artifact in
        ``X-Repro-Stale-Key``.
        """
        stale = self._stale_entry(endpoint, seed)
        mode = "stale" if stale is not None else "unavailable"
        if telemetry.enabled():
            _DEGRADED.labels(endpoint=endpoint.name, reason=mode).inc()
        if stale is not None:
            digest, payload = stale
            # Served under a *different* key than requested, so the
            # bytes must never populate the hot tier for this key.
            return Response(200, payload,
                            {"X-Repro-Cache": "stale",
                             "X-Repro-Source": "stale",
                             "X-Repro-Key": key.digest,
                             "X-Repro-Stale-Key": digest,
                             "X-Repro-Degraded": reason})
        return Response(503, canonical_bytes(
            {"error": reason, "status": 503,
             "endpoint": endpoint.name}),
            {"X-Repro-Degraded": reason, "Retry-After": "1"})

    def _stale_entry(self, endpoint, seed: int
                     ) -> Optional[tuple[str, bytes]]:
        """Most recent stored artifact for this endpoint, if any.

        Prefers entries computed for the same seed; falls back to any
        seed.  Returns ``(key_digest, payload)`` or ``None``.
        """
        kind = f"api.{endpoint.name}"
        candidates = [e for e in self.store.entries() if e.kind == kind]
        candidates.sort(key=lambda e: (e.seed != seed, -e.last_used))
        for entry in candidates:
            payload = self.store.get_by_digest(entry.key_digest)
            if payload is not None:
                return entry.key_digest, payload
        return None

    @staticmethod
    def _canonical_path(endpoint, seed: int,
                        params: dict[str, Any]) -> str:
        parts = [f"seed={seed}"]
        parts += [f"{k}={params[k]}" for k in sorted(params)]
        return f"/v1/{endpoint.name}?" + "&".join(parts)


def access_log_entry(method: str, path: str, started: float,
                     response: Response) -> dict[str, Any]:
    """One structured access-log record (shared by both transports).

    ``served`` is where the bytes came from — ``hot``/``store``/
    ``compute`` via ``X-Repro-Source``, falling back to the cache
    disposition (``stale``/``live``/``miss``) — so cache behavior is
    debuggable per request, not just in aggregate.
    """
    return {
        "method": method,
        "path": path,
        "status": response.status,
        "latency_ms": round(
            (time.perf_counter() - started) * 1000.0, 3),
        "cache": response.headers.get("X-Repro-Cache"),
        "served": response.headers.get(
            "X-Repro-Source", response.headers.get("X-Repro-Cache")),
        "degraded": "X-Repro-Degraded" in response.headers,
        "bytes": len(response.body),
    }


def write_access_log(access_log: Optional[TextIO],
                     entry: dict[str, Any]) -> None:
    if access_log is None:
        return
    try:
        access_log.write(json.dumps(entry, sort_keys=True) + "\n")
        access_log.flush()
    except (OSError, ValueError):
        pass  # a dead log stream must never kill a request


def make_handler(service: ObservatoryService,
                 access_log: Optional[TextIO] = None):
    """A ``BaseHTTPRequestHandler`` subclass bound to ``service``.

    Every method funnels through :meth:`ObservatoryService.dispatch`,
    so the threaded transport carries zero routing logic of its own.
    With ``access_log`` set, every request emits one JSON line to that
    stream: method, path, status, wall-clock latency, the response's
    cache disposition, where the bytes were served from and whether it
    was degraded — the access-level counterpart of ``/metrics``.
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-observatory"

        def _dispatch(self, method: str) -> None:
            started = time.perf_counter()
            try:  # drain any body so keep-alive framing stays intact
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                length = 0
            if length > 0:
                self.rfile.read(length)
            response = service.dispatch(method, self.path,
                                        headers=dict(self.headers))
            self._send(response)
            write_access_log(access_log, access_log_entry(
                method, self.path, started, response))

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("GET")

        def do_HEAD(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("HEAD")

        def do_DELETE(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("DELETE")

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("POST")

        do_PUT = do_PATCH = do_OPTIONS = do_POST

        def _send(self, response: Response) -> None:
            self.send_response(response.status)
            for name, value in response.headers.items():
                self.send_header(name, value)
            if "Content-Length" not in response.headers:
                self.send_header("Content-Length",
                                 str(len(response.body)))
            # Make connection reuse explicit and symmetric with the
            # asyncio transport: advertise exactly what will happen.
            self.send_header(
                "Connection",
                "close" if self.close_connection else "keep-alive")
            self.end_headers()
            self.wfile.write(response.body)

        def log_message(self, format: str, *args) -> None:
            pass  # quiet by default; telemetry carries the signal

    return Handler


def create_service(store: Optional[ArtifactStore] = None,
                   job_workers: int = 2,
                   default_seed: int = 2025,
                   job_deadline_s: Optional[float] = None,
                   job_retries: int = 1,
                   events_dir: Optional[str] = None,
                   coordinator=None,
                   hot_cache_bytes: Optional[int] = None
                   ) -> ObservatoryService:
    """The transport-agnostic service core, fully wired.

    Both ``create_server`` (threaded) and
    :func:`repro.service.aserver.create_async_server` build on this,
    so the store, hot tier, job queue and event-log surface are
    configured identically regardless of transport.
    """
    return ObservatoryService(
        store=store if store is not None else ArtifactStore(),
        queue=JobQueue(workers=job_workers,
                       default_deadline_s=job_deadline_s,
                       default_max_retries=job_retries),
        default_seed=default_seed,
        events_dir=events_dir,
        coordinator=coordinator,
        hot_cache_bytes=hot_cache_bytes)


def create_server(host: str = "127.0.0.1", port: int = 0,
                  store: Optional[ArtifactStore] = None,
                  job_workers: int = 2,
                  default_seed: int = 2025,
                  job_deadline_s: Optional[float] = None,
                  job_retries: int = 1,
                  events_dir: Optional[str] = None,
                  access_log: Optional[TextIO] = None,
                  coordinator=None,
                  hot_cache_bytes: Optional[int] = None
                  ) -> tuple[ThreadingHTTPServer, ObservatoryService]:
    """A bound (not yet serving) HTTP server plus its service core."""
    service = create_service(
        store=store, job_workers=job_workers,
        default_seed=default_seed, job_deadline_s=job_deadline_s,
        job_retries=job_retries, events_dir=events_dir,
        coordinator=coordinator, hot_cache_bytes=hot_cache_bytes)
    httpd = ThreadingHTTPServer((host, port),
                                make_handler(service, access_log))
    httpd.daemon_threads = True
    return httpd, service


def job_payload_for(service: ObservatoryService, job_id: str
                    ) -> Optional[bytes]:
    """Stored payload for a finished job (helper for clients/tests)."""
    job = service.queue.get(job_id)
    if job is None or job.state is not JobState.DONE:
        return None
    response = service.handle(job.request_path)
    return response.body if response.status == 200 else None
