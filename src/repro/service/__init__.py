"""repro.service — the Observatory as a long-lived HTTP service.

Section 8 of the paper pitches the Observatory as a shared *platform*:
stakeholders query coverage, outage impact and what-if scenarios on
demand instead of re-running analyses by hand (the way RIPE Atlas or
Iris operate as services).  This package is that serving layer for the
reproduction:

* :mod:`repro.service.endpoints` — deterministic ``(seed, params) →
  payload`` compute functions with typed parameter contracts and
  per-endpoint schema versions;
* :mod:`repro.service.jobs` — an async queue for expensive queries,
  deduplicated by result identity (the artifact key digest);
* :mod:`repro.service.hotcache` — a bounded in-memory LRU over the
  store's content-address keys, so sustained warm traffic never pays a
  disk read or a re-hash per request;
* :mod:`repro.service.server` — the transport-agnostic handler core
  (:class:`ObservatoryService`) plus a dependency-free threaded HTTP
  transport; cheap queries answer synchronously, expensive ones become
  pollable jobs, and everything durable flows through
  :class:`repro.store.ArtifactStore` so identical requests return
  byte-identical payloads regardless of cache state;
* :mod:`repro.service.aserver` — an asyncio transport over the same
  handler core (``repro serve --async``) for high-concurrency serving.

Run it with ``repro serve --port 8151``; see ``docs/service.md``.
"""

from repro.service.endpoints import (
    BadRequest,
    ENDPOINTS,
    Endpoint,
    Param,
    describe,
    parse_seed,
    world_for,
)
from repro.service.hotcache import DEFAULT_HOT_BYTES, HotCache
from repro.service.jobs import Job, JobQueue, JobState
from repro.service.server import (
    MAX_WAIT_S,
    ObservatoryService,
    Response,
    create_server,
    create_service,
    job_payload_for,
)
from repro.service.aserver import AsyncObservatoryServer, \
    AsyncServerThread

__all__ = [
    "AsyncObservatoryServer", "AsyncServerThread", "BadRequest",
    "DEFAULT_HOT_BYTES", "ENDPOINTS", "Endpoint", "HotCache", "Job",
    "JobQueue", "JobState", "MAX_WAIT_S", "ObservatoryService",
    "Param", "Response", "create_server", "create_service", "describe",
    "job_payload_for", "parse_seed", "world_for",
]
