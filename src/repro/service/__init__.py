"""repro.service — the Observatory as a long-lived HTTP service.

Section 8 of the paper pitches the Observatory as a shared *platform*:
stakeholders query coverage, outage impact and what-if scenarios on
demand instead of re-running analyses by hand (the way RIPE Atlas or
Iris operate as services).  This package is that serving layer for the
reproduction:

* :mod:`repro.service.endpoints` — deterministic ``(seed, params) →
  payload`` compute functions with typed parameter contracts and
  per-endpoint schema versions;
* :mod:`repro.service.jobs` — an async queue for expensive queries,
  deduplicated by result identity (the artifact key digest);
* :mod:`repro.service.server` — a dependency-free threaded HTTP
  server; cheap queries answer synchronously, expensive ones become
  pollable jobs, and everything durable flows through
  :class:`repro.store.ArtifactStore` so identical requests return
  byte-identical payloads regardless of cache state.

Run it with ``repro serve --port 8151``; see ``docs/service.md``.
"""

from repro.service.endpoints import (
    BadRequest,
    ENDPOINTS,
    Endpoint,
    Param,
    describe,
    world_for,
)
from repro.service.jobs import Job, JobQueue, JobState
from repro.service.server import (
    MAX_WAIT_S,
    ObservatoryService,
    Response,
    create_server,
    job_payload_for,
)

__all__ = [
    "BadRequest", "ENDPOINTS", "Endpoint", "Job", "JobQueue",
    "JobState", "MAX_WAIT_S", "ObservatoryService", "Param", "Response",
    "create_server", "describe", "job_payload_for", "world_for",
]
