"""Command-line interface: ``python -m repro <command>``.

Commands mirror what a regulator or operator would actually ask the
Observatory for:

* ``summary``    — world inventory for a seed
* ``detours``    — Fig. 2a/3 style connectivity report
* ``coverage``   — Table 1 scanner coverage
* ``outages``    — simulate N years of outages (Fig. 4)
* ``cablecut``   — replay a named cable-cut scenario
* ``watchdog``   — §5.2 policy-compliance report
* ``placement``  — footnote-1 set-cover probe placement
* ``save``/``load-check`` — world snapshots (with content digests)
* ``telemetry``  — instrumented smoke run across every subsystem
* ``serve``      — run the Observatory as an HTTP service
* ``store``      — inspect/gc/verify the artifact cache
* ``heartbeat``  — always-on loop: generate → append → detect → alert

Any command accepts the global ``--telemetry`` flag (print a metrics +
span report after the command), ``--telemetry-out PATH`` (write the
JSON report to PATH and Prometheus text next to it), ``--workers N``
(fan independent measurement units out over N processes; output is
byte-identical to ``--workers 1`` — see docs/performance.md), and
``--faults SPEC`` (seeded fault injection for chaos testing — see
docs/robustness.md).
"""

from __future__ import annotations

import argparse
import sys

from repro import build_world, telemetry, WorldParams
from repro.reporting import ascii_table, pct


def _world(args):
    return build_world(params=WorldParams(seed=args.seed))


def cmd_summary(args) -> int:
    topo = _world(args)
    print(ascii_table(["metric", "value"],
                      sorted(topo.summary().items()),
                      title=f"World summary (seed={args.seed})"))
    return 0


def cmd_detours(args) -> int:
    from repro.analysis import analyze_snapshot
    from repro.datasets import build_ixp_directory, collect_snapshot
    from repro.exec import pair_for
    from repro.geo import AFRICAN_REGIONS
    from repro.measurement import (GeolocationService, MeasurementEngine,
                                   build_atlas_platform)
    topo = _world(args)
    routing, phys = pair_for(topo)
    engine = MeasurementEngine(topo, routing, phys)
    snapshot = collect_snapshot(topo, engine,
                                build_atlas_platform(topo),
                                max_pairs=args.pairs)
    report = analyze_snapshot(topo, snapshot, GeolocationService(topo),
                              build_ixp_directory(topo))
    rows = [["All", report.sample_count(), pct(report.detour_rate()),
             pct(report.ixp_traversal_rate())]]
    for region in AFRICAN_REGIONS:
        rows.append([region.value, report.sample_count(region),
                     pct(report.detour_rate(region)),
                     pct(report.ixp_traversal_rate(region))])
    print(ascii_table(["scope", "pairs", "detour", "IXP traversal"],
                      rows, title="Connectivity report"))
    return 0


def cmd_coverage(args) -> int:
    from repro.analysis import build_coverage_table
    from repro.datasets import build_delegated_file
    from repro.exec import routing_for
    from repro.measurement import (run_ant_hitlist, run_caida_prefix_scan,
                                   run_yarrp_scan)
    topo = _world(args)
    scans = [run_ant_hitlist(topo), run_caida_prefix_scan(topo),
             run_yarrp_scan(topo, routing_for(topo))]
    table = build_coverage_table(topo, build_delegated_file(topo), scans)
    print(ascii_table(
        ["dataset", "entries", "mobile", "non-mobile", "IXP"],
        [[r.dataset, r.entries, pct(r.mobile_coverage),
          pct(r.non_mobile_coverage), pct(r.ixp_coverage)]
         for r in table.rows],
        title="Scanner coverage of African infrastructure (Table 1)"))
    return 0


def cmd_outages(args) -> int:
    from repro.analysis import analyze_outages
    from repro.datasets import build_radar_feed
    from repro.outages import OutageSimulator
    topo = _world(args)
    simulation = OutageSimulator(topo).simulate(years=args.years)
    report = analyze_outages(simulation,
                             build_radar_feed(simulation, seed=args.seed))
    print(ascii_table(
        ["cause", "events", "median days", "countries/event"],
        [[r.cause, r.events, f"{r.median_duration_days:.2f}",
          f"{r.mean_countries_affected:.1f}"]
         for r in sorted(report.rows,
                         key=lambda r: -r.median_duration_days)],
        title=f"Outages over {args.years} simulated years"))
    print(f"Africa/EU+NA outage-rate ratio: {report.rate_ratio():.1f}x")
    return 0


def cmd_cablecut(args) -> int:
    from repro.observatory import WhatIfCutCables
    from repro.outages import march_2024_scenario
    topo = _world(args)
    west, east = march_2024_scenario(topo)
    cut = west if args.scenario == "west" else east
    names = {c.cable_id: c.name for c in topo.cables}
    print("Cutting: " + ", ".join(names[c] for c in cut))
    severities = WhatIfCutCables(topo).country_severities(cut)
    rows = sorted(((cc, s) for cc, s in severities.items() if s > 0.1),
                  key=lambda kv: -kv[1])
    print(ascii_table(["country", "traffic lost"],
                      [[cc, f"{s:.0%}"] for cc, s in rows]))
    return 0


def cmd_watchdog(args) -> int:
    from repro.observatory import DEFAULT_POLICY_PACKAGE, PolicyWatchdog
    topo = _world(args)
    watchdog = PolicyWatchdog(topo)
    countries = args.countries.split(",") if args.countries else None
    report = watchdog.assess(DEFAULT_POLICY_PACKAGE, countries)
    rows = [[f.iso2, f.policy.kind.value,
             "PASS" if f.compliant else "FAIL", f.detail]
            for f in report.findings]
    print(ascii_table(["country", "policy", "verdict", "measured"],
                      rows, title="Policy compliance (§5.2 watchdog)"))
    print(f"Overall compliance: {pct(report.compliance_rate())}")
    return 0


def cmd_placement(args) -> int:
    from repro.observatory import ixp_cover_hosts
    topo = _world(args)
    cover = ixp_cover_hosts(topo, max_picks=args.budget)
    rows = [[i + 1, f"AS{asn}", topo.as_(asn).name,
             topo.as_(asn).country_iso2, cover.curve[i]]
            for i, asn in enumerate(cover.chosen)]
    print(ascii_table(
        ["pick", "ASN", "network", "country", "IXPs covered"],
        rows, title="Set-cover probe placement (footnote 1)"))
    if cover.uncovered:
        print(f"Uncovered IXPs: {sorted(cover.uncovered)}")
    return 0


def cmd_fleet(args) -> int:
    from repro.measurement import build_observatory_platform
    from repro.observatory import (PlacementObjective, fleet_budget,
                                   place_probes)
    topo = _world(args)
    objective = (PlacementObjective.IXP_COVERAGE
                 if args.objective == "ixp"
                 else PlacementObjective.COUNTRY_COVERAGE)
    fleet = build_observatory_platform(
        topo, place_probes(topo, objective))
    budget = fleet_budget(fleet.probes, monthly_data_gb=args.data_gb)
    print(ascii_table(
        ["region", "monthly USD"],
        [[region, f"${usd:,.0f}"]
         for region, usd in sorted(budget.by_region().items())],
        title=f"Fleet economics ({len(fleet)} probes, "
              f"{args.data_gb} GB/probe/month)"))
    print(f"Total: ${budget.monthly_usd:,.0f}/month "
          f"(${budget.annual_usd:,.0f}/year)")
    return 0


def cmd_save(args) -> int:
    from repro.topology import save_world, world_digest
    topo = _world(args)
    save_world(topo, args.path)
    print(f"Saved world (seed={args.seed}) to {args.path}")
    print(f"content digest: {world_digest(topo)}")
    return 0


def cmd_load_check(args) -> int:
    from repro.topology import load_world, world_digest
    topo = load_world(args.path)
    print(ascii_table(["metric", "value"],
                      sorted(topo.summary().items()),
                      title=f"Loaded world from {args.path}"))
    print(f"content digest: {world_digest(topo)}")
    return 0


def cmd_serve(args) -> int:
    """Run the Observatory HTTP service (see docs/service.md).

    Serves until SIGTERM/SIGINT, then drains gracefully: stop
    accepting, give in-flight jobs ``--drain-timeout`` seconds to
    settle (anything left is failed so no waiter blocks), flush
    telemetry, exit 0.  See docs/robustness.md.
    """
    import signal
    import threading

    from repro import faults
    from repro.service import AsyncServerThread, create_server, \
        create_service
    from repro.store import ArtifactStore
    telemetry.enable()  # a serving process always self-instruments
    store = ArtifactStore(root=args.store_dir,
                          max_bytes=int(args.store_cap_mb * 1024 * 1024))
    access_stream = None
    if args.access_log == "-":
        access_stream = sys.stderr
    elif args.access_log:
        access_stream = open(args.access_log, "a", buffering=1)
    httpd = serve_thread = runner = None
    if args.async_server:
        service = create_service(
            store=store, job_workers=args.job_workers,
            default_seed=args.seed, job_deadline_s=args.job_deadline,
            job_retries=args.job_retries, events_dir=args.events_dir,
            hot_cache_bytes=args.hot_cache_bytes)
        runner = AsyncServerThread(service, host=args.host,
                                   port=args.port,
                                   access_log=access_stream)
        host, port = runner.start()
    else:
        httpd, service = create_server(
            host=args.host, port=args.port, store=store,
            job_workers=args.job_workers, default_seed=args.seed,
            job_deadline_s=args.job_deadline,
            job_retries=args.job_retries,
            events_dir=args.events_dir, access_log=access_stream,
            hot_cache_bytes=args.hot_cache_bytes)
        host, port = httpd.server_address[:2]
    transport = "async" if args.async_server else "threaded"
    print(f"repro service listening on http://{host}:{port} "
          f"(store: {store.root}, transport: {transport})", flush=True)
    if args.events_dir:
        print(f"serving event log at {args.events_dir} "
              f"(/v1/events, /v1/heartbeat)", flush=True)
    if faults.active():
        print(faults.describe(), flush=True)

    stop = threading.Event()

    def _request_stop(signum, frame) -> None:
        stop.set()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _request_stop)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    if httpd is not None:
        serve_thread = threading.Thread(target=httpd.serve_forever,
                                        daemon=True, name="repro-serve")
        serve_thread.start()
    try:
        stop.wait()
    except KeyboardInterrupt:  # pragma: no cover - handler owns SIGINT
        pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        print("draining: stopped accepting, settling in-flight jobs",
              flush=True)
        if runner is not None:
            runner.stop()
        if httpd is not None:
            httpd.shutdown()
        service.queue.shutdown(timeout=args.drain_timeout)
        if httpd is not None:
            httpd.server_close()
            serve_thread.join(timeout=2.0)
        if access_stream is not None and access_stream is not sys.stderr:
            access_stream.close()
        doc = telemetry.to_json()
        print(f"telemetry flushed: {len(doc.get('metrics', []))} "
              f"metric series, {len(doc.get('spans', []))} span trees",
              flush=True)
        print("drained: exiting cleanly", flush=True)
    return 0


def cmd_store(args) -> int:
    """Inspect, garbage-collect or verify the artifact store."""
    from repro.store import ArtifactStore
    store = ArtifactStore(root=args.store_dir) if args.cap_mb is None \
        else ArtifactStore(root=args.store_dir,
                           max_bytes=int(args.cap_mb * 1024 * 1024))
    if args.action == "ls":
        entries = store.entries()
        rows = [[e.kind, e.seed, e.schema_version,
                 ",".join(f"{k}={v}" for k, v in sorted(e.params.items()))
                 or "-",
                 e.size_bytes, e.key_digest[:12]]
                for e in entries]
        print(ascii_table(
            ["kind", "seed", "schema", "params", "bytes", "key"],
            rows, title=f"Artifact store at {store.root}"))
        stats = store.stats()
        print(f"{stats['entries']} artifacts, "
              f"{stats['total_bytes']} bytes "
              f"(cap {store.max_bytes})")
        return 0
    if args.action == "gc":
        evicted = store.gc()
        for e in evicted:
            print(f"evicted {e.kind} seed={e.seed} "
                  f"({e.size_bytes} bytes, {e.key_digest[:12]})")
        print(f"{len(evicted)} artifacts evicted; "
              f"{store.total_bytes()} bytes retained")
        return 0
    # verify
    problems = store.verify()
    for p in problems:
        print(f"CORRUPT {p.key_digest[:12]}: {p.reason}")
    total = len(store.entries())
    print(f"verified {total} artifacts: "
          f"{'OK' if not problems else f'{len(problems)} problem(s)'}")
    return 0 if not problems else 1


def cmd_heartbeat(args) -> int:
    """Run the always-on observatory loop over simulated days.

    Each quarter-day tick: generate the fleet's measurement events,
    append them durably to the event log, let the streaming detector
    catch up, and emit any alerts back into the log.  Appends are
    supervised — an injected (or real) write failure triggers log
    recovery and a bounded retry, so a crash mid-append never loses
    acknowledged events (docs/eventlog.md).
    """
    from repro import faults
    from repro.eventlog import EventLog
    from repro.faults import FaultInjected
    from repro.measurement import build_atlas_platform
    from repro.monitoring import HeartbeatAnalyzer, ObservatoryStream
    from repro.outages import OutageSimulator

    if faults.active():
        print(faults.describe(), flush=True)
    topo = _world(args)
    platform = build_atlas_platform(topo)
    simulation = OutageSimulator(topo).simulate(
        years=max(args.days, 1) / 365.0 + 0.05)
    log = EventLog(args.events_dir, segment_events=args.segment_events)
    stream = ObservatoryStream(topo, platform, simulation,
                               seed=args.seed)
    analyzer = HeartbeatAnalyzer(log)
    recoveries = 0

    def supervised(op) -> None:
        # Retried ops must be idempotent-on-retry: log.append is
        # all-or-nothing per batch and the analyzer only drops its
        # pending-alert buffer once the append lands.
        nonlocal recoveries
        for _attempt in range(8):
            try:
                op()
                return
            except (FaultInjected, OSError):
                recoveries += 1
                log.recover()
        raise RuntimeError("event-log write kept failing after "
                           "8 recoveries; giving up")

    with telemetry.span("cli.heartbeat", days=args.days,
                        countries=len(stream.countries)):
        for day, hour in stream.ticks(args.days):
            batch = stream.tick_events(day, hour)
            supervised(lambda: log.append(batch))
            supervised(analyzer.catch_up)
        supervised(analyzer.finish)
        log.seal()

    counts = log.counts_by_type()
    print(ascii_table(
        ["event type", "count"],
        [[name, counts[name]] for name in sorted(counts)],
        title=f"Event log at {log.root} "
              f"({args.days} days, seed={args.seed})"))
    alerts = analyzer.alerts
    if alerts:
        print(ascii_table(
            ["country", "kind", "raised day", "buckets", "severity"],
            [[a.scope, a.kind.wire_name, f"{a.raised_ts:.2f}",
              a.buckets_active, f"{a.severity:.2f}"]
             for a in alerts],
            title=f"{len(alerts)} alert(s) raised"))
    else:
        print("no alerts raised")
    print(f"{log.head_seq + 1} events in {len(log.segments())} "
          f"segment(s); detector cursor {analyzer.cursor}; "
          f"{recoveries} append recover(ies)")
    return 0


def cmd_coordinator(args) -> int:
    """Run the fleet coordinator (see docs/distributed.md).

    Serves the agent RPC port until SIGTERM/SIGINT, then drains:
    agents polling after the signal are told to shut down.  With
    ``--http-port`` the Observatory HTTP service runs alongside with
    the coordinator attached, so ``/v1/fleet/*`` serves live state.
    """
    import signal
    import threading

    from repro import faults
    from repro.eventlog import EventLog
    from repro.fleet import CoordinatorServer, FleetCoordinator
    from repro.store import ArtifactStore
    telemetry.enable()
    eventlog = EventLog(args.events_dir) if args.events_dir else None
    store = ArtifactStore(root=args.store_dir) if args.store_dir else None
    coordinator = FleetCoordinator(
        heartbeat_timeout_s=args.heartbeat_timeout,
        lease_timeout_s=args.lease_timeout,
        eventlog=eventlog, store=store)
    server = CoordinatorServer(coordinator, host=args.host,
                               port=args.port).start()
    host, port = server.address
    print(f"fleet coordinator listening on {host}:{port}", flush=True)
    httpd = None
    if args.http_port is not None:
        from repro.service import create_server
        httpd, _service = create_server(
            host=args.host, port=args.http_port,
            default_seed=args.seed, coordinator=coordinator)
        threading.Thread(target=httpd.serve_forever, daemon=True,
                         name="fleet-http").start()
        hhost, hport = httpd.server_address[:2]
        print(f"fleet status at http://{hhost}:{hport}/v1/fleet/agents",
              flush=True)
    if faults.active():
        print(faults.describe(), flush=True)

    stop = threading.Event()

    def _request_stop(signum, frame) -> None:
        stop.set()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _request_stop)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    try:
        stop.wait()
    except KeyboardInterrupt:  # pragma: no cover - handler owns SIGINT
        pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        print("draining: telling agents to shut down", flush=True)
        coordinator.drain()
        server.stop()
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if eventlog is not None:
            eventlog.seal()
        print("drained: exiting cleanly", flush=True)
    return 0


def cmd_agent(args) -> int:
    """Run one measurement agent against a coordinator."""
    import os

    from repro import faults
    from repro.exec import suggested_workers
    from repro.fleet import Agent, TcpClient
    host, _, port = args.connect.rpartition(":")
    if not port.isdigit():
        print(f"--connect wants HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    if faults.active():
        print(faults.describe(), flush=True)
    agent_id = args.agent_id or f"agent-{os.getpid()}"
    workers = args.workers if args.workers > 0 else suggested_workers()
    agent = Agent(TcpClient((host or "127.0.0.1", int(port)),
                            timeout=args.timeout),
                  agent_id=agent_id, workers=workers, poll_s=args.poll,
                  hard_exit=True, max_idle_polls=args.exit_when_idle)
    stats = agent.run()
    print(f"agent {agent_id}: {stats.units_done} unit(s) done over "
          f"{stats.polls} poll(s)"
          + (" (coordinator drained)" if stats.shutdown else ""))
    return 0


def cmd_campaign(args) -> int:
    """Dispatch a measurement campaign across a fleet of agents.

    Default mode self-hosts a coordinator and spawns ``--agents``
    agents — subprocesses (``--mode procs``) for real parallelism, or
    in-process threads (``--mode threads``).  ``--connect HOST:PORT``
    submits to an already-running coordinator instead.  ``--verify``
    re-runs the campaign single-process and fails (exit 1) unless the
    merged artifacts are byte-identical.
    """
    import subprocess
    import time as _time

    from repro import faults
    from repro.fleet import (Agent, CampaignSpec, CoordinatorServer,
                             FleetCoordinator, TcpClient, merged_digest,
                             run_campaign_serial, spawn_local_agents)
    from repro.fleet import rpc as fleet_rpc
    spec = CampaignSpec(seed=args.seed, scale=args.scale,
                        rounds=args.rounds, shards=args.shards,
                        probes_per_shard=args.probes_per_shard,
                        targets_per_probe=args.targets_per_probe)
    if faults.active():
        print(faults.describe(), flush=True)
    t0 = _time.perf_counter()
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        address = (host or "127.0.0.1", int(port))
        resp = fleet_rpc.call(address, {"op": "campaign",
                                        "spec": spec.to_dict()})
        cid = resp["campaign_id"]
        print(f"submitted campaign {cid}", flush=True)
        merged = None
        deadline = _time.monotonic() + args.timeout
        while _time.monotonic() < deadline:
            status = fleet_rpc.call(address,
                                    {"op": "campaign_status",
                                     "campaign_id": cid,
                                     "include_result": True})
            if status.get("done"):
                merged = status["result"]
                break
            _time.sleep(0.3)
    else:
        coordinator = FleetCoordinator(
            heartbeat_timeout_s=args.heartbeat_timeout,
            lease_timeout_s=args.lease_timeout)
        cid = coordinator.submit_campaign(spec)
        procs: list[subprocess.Popen] = []
        threads = []
        server = None
        if args.mode == "procs":
            server = CoordinatorServer(coordinator).start()
            host, port = server.address
            for i in range(args.agents):
                procs.append(subprocess.Popen(
                    [sys.executable, "-m", "repro", "agent",
                     "--connect", f"{host}:{port}",
                     "--agent-id", f"proc-{i}",
                     "--poll", str(args.poll),
                     # Idle long enough to survive a lease-expiry
                     # window before giving up (drain ends them early).
                     "--exit-when-idle",
                     str(max(100, int(args.lease_timeout
                                      / max(args.poll, 0.01)) + 20))],
                    stdout=subprocess.DEVNULL))
        else:
            threads = spawn_local_agents(coordinator, args.agents,
                                         poll_s=args.poll)
        try:
            merged = coordinator.wait(cid, timeout=args.timeout)
        finally:
            coordinator.drain()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
            for t, _agent in threads:
                t.join(timeout=5)
            if server is not None:
                server.stop()
    elapsed = _time.perf_counter() - t0
    if merged is None:
        print(f"campaign {cid} did not finish within "
              f"{args.timeout:.0f}s", file=sys.stderr)
        return 1
    digest = merged_digest(merged)
    totals = merged["totals"]
    print(f"campaign {cid}: {totals['measurements']} measurements "
          f"across {len(merged['units'])} unit(s) in {elapsed:.1f}s")
    print(f"merged digest: {digest}")
    if args.verify:
        oracle = merged_digest(run_campaign_serial(spec))
        if oracle != digest:
            print(f"VERIFY FAILED: serial oracle {oracle} != fleet "
                  f"{digest}", file=sys.stderr)
            return 1
        print("verify: fleet output is byte-identical to the "
              "single-process oracle")
    return 0


def cmd_events(args) -> int:
    """Event-log maintenance (currently: retention gc)."""
    import os

    from repro.eventlog import EventLog, min_acked_seq
    log = EventLog(args.events_dir)
    cursors_dir = args.cursors if args.cursors is not None \
        else os.path.join(args.events_dir, "cursors")
    acked = min_acked_seq(cursors_dir)
    dropped = log.gc(keep_days=args.keep_days,
                     keep_bytes=args.keep_bytes, min_acked_seq=acked)
    for info in dropped:
        print(f"dropped {info.name}: events {info.first_seq}.."
              f"{info.last_seq} ({info.size_bytes} bytes, "
              f"ts {info.first_ts:.2f}..{info.last_ts:.2f})")
    kept = log.segments()
    boundary = "no registered consumers" if acked is None \
        else f"min acked seq {acked}"
    print(f"{len(dropped)} segment(s) dropped, {len(kept)} kept "
          f"({boundary})")
    return 0


def cmd_telemetry(args) -> int:
    """Run one instrumented pass through every pipeline layer."""
    telemetry.enable()
    from repro.measurement import (MeasurementEngine, build_atlas_platform,
                                   run_caida_prefix_scan)
    from repro.exec import pair_for
    from repro.observatory import (DEFAULT_POLICY_PACKAGE, MeasurementTask,
                                   PolicyWatchdog, schedule_cost_aware)
    from repro.outages import OutageSimulator

    with telemetry.span("cli.telemetry_smoke", seed=args.seed):
        topo = _world(args)
        routing, phys = pair_for(topo)
        engine = MeasurementEngine(topo, routing, phys)
        platform = build_atlas_platform(topo)
        probes = platform.probes[:args.probes]
        targets = [a.prefixes[0].network + 1
                   for a in sorted(topo.ases.values(),
                                   key=lambda x: x.asn)
                   if a.is_african and a.prefixes][:args.targets]
        with telemetry.span("cli.measure", probes=len(probes),
                            targets=len(targets)):
            for probe in probes:
                for target in targets:
                    engine.traceroute(probe, target)
        run_caida_prefix_scan(topo)
        OutageSimulator(topo).simulate(years=0.5)
        PolicyWatchdog(topo, phys).assess(
            DEFAULT_POLICY_PACKAGE, ["GH", "KE", "NG"])
        tasks = [MeasurementTask(f"smoke-trace-{i}", "traceroute",
                                 f"target-{i % 4}", app_bytes=150_000,
                                 runs_per_month=30, utility=2.0)
                 for i in range(12)]
        schedule_cost_aware(probes, tasks, monthly_budget_usd=20.0)
    print(telemetry.summary_report())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="African Internet Observatory reproduction toolkit")
    parser.add_argument("--seed", type=int, default=2025,
                        help="world seed (default 2025)")
    parser.add_argument("--telemetry", action="store_true",
                        help="collect telemetry and print a metrics/span "
                             "report after the command")
    parser.add_argument("--telemetry-out", metavar="PATH", default=None,
                        help="write the telemetry JSON report to PATH "
                             "(Prometheus text goes to PATH with a .prom "
                             "suffix); implies --telemetry")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="processes for parallel fan-out (default 1; "
                             "0 = one per core); results are identical "
                             "for any value")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="activate the fault-injection harness "
                             "(overrides $REPRO_FAULTS; grammar in "
                             "docs/robustness.md, e.g. "
                             "'seed=7,exec.worker_crash=1x1')")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("summary", help="world inventory").set_defaults(
        func=cmd_summary)
    p = sub.add_parser("detours", help="Fig. 2a/3 connectivity report")
    p.add_argument("--pairs", type=int, default=600)
    p.set_defaults(func=cmd_detours)
    sub.add_parser("coverage", help="Table 1 scanner coverage"
                   ).set_defaults(func=cmd_coverage)
    p = sub.add_parser("outages", help="Fig. 4 outage simulation")
    p.add_argument("--years", type=float, default=2.0)
    p.set_defaults(func=cmd_outages)
    p = sub.add_parser("cablecut", help="replay a March-2024 scenario")
    p.add_argument("--scenario", choices=("west", "east"),
                   default="west")
    p.set_defaults(func=cmd_cablecut)
    p = sub.add_parser("watchdog", help="§5.2 compliance report")
    p.add_argument("--countries", default="GH,NG,KE,ZA,CD,EG",
                   help="comma-separated ISO2 list (default sample)")
    p.set_defaults(func=cmd_watchdog)
    p = sub.add_parser("placement", help="set-cover probe placement")
    p.add_argument("--budget", type=int, default=None)
    p.set_defaults(func=cmd_placement)
    p = sub.add_parser("fleet", help="§7.2 fleet economics")
    p.add_argument("--objective", choices=("ixp", "country"),
                   default="ixp")
    p.add_argument("--data-gb", type=float, default=2.0)
    p.set_defaults(func=cmd_fleet)
    p = sub.add_parser("save", help="save the world to a snapshot")
    p.add_argument("path")
    p.set_defaults(func=cmd_save)
    p = sub.add_parser("load-check", help="load + summarize a snapshot")
    p.add_argument("path")
    p.set_defaults(func=cmd_load_check)
    p = sub.add_parser("telemetry",
                       help="instrumented smoke run across every layer")
    p.add_argument("--probes", type=int, default=4,
                   help="probes used in the measurement pass")
    p.add_argument("--targets", type=int, default=12,
                   help="traceroute targets per probe")
    p.set_defaults(func=cmd_telemetry)
    p = sub.add_parser("serve",
                       help="run the Observatory as an HTTP service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8151,
                   help="TCP port (0 = pick a free one)")
    p.add_argument("--store-dir", default=None, metavar="DIR",
                   help="artifact store root (default "
                        "$REPRO_STORE_DIR or ~/.cache/repro/store)")
    p.add_argument("--store-cap-mb", type=float, default=256.0,
                   help="LRU size cap for the artifact store")
    p.add_argument("--job-workers", type=int, default=2,
                   help="threads draining the async job queue")
    p.add_argument("--job-deadline", type=float, default=300.0,
                   metavar="S",
                   help="per-job wall-clock deadline in seconds; the "
                        "reaper fails jobs that outlive it (default "
                        "300)")
    p.add_argument("--job-retries", type=int, default=1, metavar="N",
                   help="bounded retries per job after an exception "
                        "(default 1)")
    p.add_argument("--drain-timeout", type=float, default=8.0,
                   metavar="S",
                   help="seconds to drain in-flight jobs on shutdown "
                        "before failing them (default 8)")
    p.add_argument("--events-dir", default=None, metavar="DIR",
                   help="serve a measurement event log from DIR "
                        "(/v1/events, /v1/heartbeat, "
                        "/v1/heartbeat/stream)")
    p.add_argument("--access-log", default=None, metavar="PATH",
                   help="append one JSON line per request to PATH "
                        "('-' = stderr); off by default")
    p.add_argument("--hot-cache-bytes", type=int, default=None,
                   metavar="N",
                   help="byte budget for the in-memory hot tier over "
                        "the store (default 64 MiB; 0 disables it)")
    p.add_argument("--async", dest="async_server", action="store_true",
                   help="serve with the asyncio transport instead of "
                        "the threaded one (same handler core; built "
                        "for thousands of keep-alive connections)")
    p.set_defaults(func=cmd_serve)
    p = sub.add_parser("heartbeat",
                       help="always-on loop: generate events, append "
                            "to the log, detect anomalies")
    p.add_argument("events_dir", metavar="DIR",
                   help="event-log root directory (created if missing)")
    p.add_argument("--days", type=int, default=30,
                   help="simulated days to stream (default 30)")
    p.add_argument("--segment-events", type=int, default=4096,
                   help="events per columnar segment (default 4096)")
    p.set_defaults(func=cmd_heartbeat)
    p = sub.add_parser("coordinator",
                       help="run the fleet coordinator "
                            "(docs/distributed.md)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8251,
                   help="agent RPC port (0 = pick a free one)")
    p.add_argument("--http-port", type=int, default=None, metavar="PORT",
                   help="also serve the Observatory HTTP API with "
                        "/v1/fleet/* attached")
    p.add_argument("--heartbeat-timeout", type=float, default=10.0,
                   metavar="S",
                   help="seconds of silence before an agent is LOST "
                        "and its leases released (default 10)")
    p.add_argument("--lease-timeout", type=float, default=30.0,
                   metavar="S",
                   help="seconds a unit lease lasts before "
                        "reassignment (default 30)")
    p.add_argument("--events-dir", default=None, metavar="DIR",
                   help="append campaign lifecycle events to the "
                        "event log at DIR")
    p.add_argument("--store-dir", default=None, metavar="DIR",
                   help="persist merged campaign artifacts in the "
                        "store at DIR")
    p.set_defaults(func=cmd_coordinator)
    p = sub.add_parser("agent",
                       help="run one measurement agent against a "
                            "coordinator")
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="coordinator RPC address")
    p.add_argument("--agent-id", default=None,
                   help="agent identity (default agent-<pid>)")
    p.add_argument("--poll", type=float, default=0.2, metavar="S",
                   help="idle poll interval (default 0.2)")
    p.add_argument("--timeout", type=float, default=10.0, metavar="S",
                   help="per-RPC timeout (default 10)")
    p.add_argument("--exit-when-idle", type=int, default=None,
                   metavar="N",
                   help="exit after N consecutive no-work polls "
                        "(default: run until the coordinator drains)")
    p.set_defaults(func=cmd_agent)
    p = sub.add_parser("campaign",
                       help="dispatch a measurement campaign across "
                            "a fleet")
    p.add_argument("--agents", type=int, default=4,
                   help="agents to spawn in self-hosted mode "
                        "(default 4)")
    p.add_argument("--mode", choices=("procs", "threads"),
                   default="procs",
                   help="self-hosted agents as subprocesses (real "
                        "parallelism) or threads (default procs)")
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="submit to a running coordinator instead of "
                        "self-hosting")
    p.add_argument("--scale", type=float, default=0.25,
                   help="world scale (default 0.25; 2.5 = continental)")
    p.add_argument("--rounds", type=int, default=2)
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--probes-per-shard", type=int, default=8)
    p.add_argument("--targets-per-probe", type=int, default=8)
    p.add_argument("--poll", type=float, default=0.05, metavar="S",
                   help="agent idle poll interval (default 0.05)")
    p.add_argument("--heartbeat-timeout", type=float, default=10.0,
                   metavar="S")
    p.add_argument("--lease-timeout", type=float, default=30.0,
                   metavar="S")
    p.add_argument("--timeout", type=float, default=600.0, metavar="S",
                   help="overall campaign deadline (default 600)")
    p.add_argument("--verify", action="store_true",
                   help="re-run single-process and require "
                        "byte-identical output")
    p.set_defaults(func=cmd_campaign)
    p = sub.add_parser("events",
                       help="event-log maintenance (retention gc)")
    p.add_argument("action", choices=("gc",))
    p.add_argument("events_dir", metavar="DIR",
                   help="event-log root directory")
    p.add_argument("--keep-days", type=float, default=None,
                   metavar="DAYS",
                   help="drop packed segments more than DAYS simulated "
                        "days behind the log head")
    p.add_argument("--keep-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="drop oldest packed segments while total "
                        "segment bytes exceed BYTES")
    p.add_argument("--cursors", default=None, metavar="DIR",
                   help="consumer cursor directory (default "
                        "DIR/cursors); unconsumed events are never "
                        "dropped")
    p.set_defaults(func=cmd_events)
    p = sub.add_parser("store",
                       help="inspect/gc/verify the artifact store")
    p.add_argument("action", choices=("ls", "gc", "verify"))
    p.add_argument("--store-dir", default=None, metavar="DIR",
                   help="artifact store root (default "
                        "$REPRO_STORE_DIR or ~/.cache/repro/store)")
    p.add_argument("--cap-mb", type=float, default=None,
                   help="override the size cap for gc")
    p.set_defaults(func=cmd_store)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro import faults
    from repro.exec import set_default_workers, suggested_workers
    args = build_parser().parse_args(argv)
    collect = args.telemetry or args.telemetry_out is not None
    if collect:
        telemetry.enable()
    if args.faults is not None:
        try:
            faults.configure(args.faults)
        except faults.FaultSpecError as exc:
            print(f"bad --faults spec: {exc}", file=sys.stderr)
            return 2
    set_default_workers(args.workers if args.workers > 0
                        else suggested_workers())
    rc = args.func(args)
    if collect and args.func is not cmd_telemetry:
        print()
        print(telemetry.summary_report())
    if args.telemetry_out is not None:
        telemetry.write_report(args.telemetry_out)
        print(f"\nTelemetry report written to {args.telemetry_out} "
              f"(+ Prometheus text alongside)")
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
