"""What-if engine mechanics: structured copies, outcome edge cases,
baseline independence, and serial/parallel equality."""

from __future__ import annotations

import functools
import hashlib
import json
import math

import pytest

from repro.exec import fork_available
from repro.observatory import (
    MonitoringRunner,
    PlacementObjective,
    WhatIfAddCable,
    WhatIfCutCables,
    WhatIfMandateLocalPeering,
    WhatIfOutcome,
    place_probes,
)
from repro.observatory.campaigns import DNSDependencyCampaign
from repro.observatory.whatif import run_scenarios
from repro.measurement import build_observatory_platform
from repro.outages import OutageSimulator, march_2024_scenario
from repro.topology import ASLink, Relationship
from repro.topology.serialize import topology_to_dict

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform has no fork")


def _digest(topo) -> str:
    # Hash rather than compare megabyte JSON strings: a mismatch would
    # otherwise stall pytest's assertion diffing.
    blob = json.dumps(topology_to_dict(topo), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
class TestStructuredCopy:
    def test_copy_serializes_identically(self, topo):
        assert _digest(topo.structured_copy()) == _digest(topo)

    def test_membership_mutations_stay_in_copy(self, topo):
        before = _digest(topo)
        clone = topo.structured_copy()
        ixp = next(iter(clone.ixps.values()))
        orphan = next(a for a in clone.ases.values()
                      if a.asn not in ixp.members)
        ixp.members.add(orphan.asn)
        orphan.ixps.add(ixp.ixp_id)
        clone.cables.pop()
        assert _digest(topo) == before

    def test_add_link_maintains_indexes(self, topo):
        clone = topo.structured_copy()
        a, b = _unlinked_pair(clone)
        link = clone.add_link(ASLink(a, b, Relationship.PEER_TO_PEER))
        assert clone.link_between(a, b) is link
        assert clone.link_between(b, a) is link
        assert b in clone.as_(a).peers
        assert a in clone.as_(b).peers
        assert topo.link_between(a, b) is None  # original untouched

    def test_add_link_provider_customer_sets(self, topo):
        clone = topo.structured_copy()
        a, b = _unlinked_pair(clone)
        clone.add_link(ASLink(a, b, Relationship.PROVIDER_TO_CUSTOMER))
        assert b in clone.as_(a).customers
        assert a in clone.as_(b).providers

    def test_add_link_rejects_duplicates(self, topo):
        clone = topo.structured_copy()
        existing = clone.links[0]
        with pytest.raises(ValueError):
            clone.add_link(ASLink(existing.b, existing.a,
                                  Relationship.PEER_TO_PEER))


def _unlinked_pair(topo) -> tuple[int, int]:
    asns = sorted(topo.ases)
    for a in asns:
        for b in asns:
            if a < b and topo.link_between(a, b) is None:
                return a, b
    raise AssertionError("fully meshed world?")


# ----------------------------------------------------------------------
class TestWhatIfOutcome:
    def test_relative_change_zero_baseline_zero_modified(self):
        assert WhatIfOutcome("m", 0.0, 0.0).relative_change == 0.0

    def test_relative_change_zero_baseline_nonzero_modified(self):
        assert math.isinf(WhatIfOutcome("m", 0.0, 2.0).relative_change)

    def test_relative_change_and_delta(self):
        outcome = WhatIfOutcome("m", 4.0, 5.0)
        assert outcome.delta == pytest.approx(1.0)
        assert outcome.relative_change == pytest.approx(0.25)


# ----------------------------------------------------------------------
class TestBaselineIndependence:
    def test_add_cable_on_cable_free_topology(self, topo):
        """Regression: ``max()`` over zero cables used to raise."""
        bare = topo.structured_copy()
        bare.cables = []
        modified = WhatIfAddCable(bare).apply("First-Cable", ("GH", "BR"))
        assert [c.cable_id for c in modified.cables] == [1]
        assert bare.cables == []

    def test_apply_never_mutates_baseline(self, topo):
        before = _digest(topo)
        WhatIfAddCable(topo).apply("Diverse", ("ZA", "BR"))
        WhatIfMandateLocalPeering(topo).apply("NG")
        assert _digest(topo) == before

    def test_mandated_peering_only_in_modified(self, topo):
        modified = WhatIfMandateLocalPeering(topo).apply("NG")
        added = [l for l in modified.links
                 if topo.link_between(l.a, l.b) is None]
        assert added, "mandate should create new peerings"
        for link in added:
            assert link.rel is Relationship.PEER_TO_PEER
            assert link.b in modified.as_(link.a).peers


# ----------------------------------------------------------------------
@needs_fork
class TestParallelEquality:
    """Same seed, same bytes — whatever the worker count."""

    def test_country_severities(self, topo):
        cut = WhatIfCutCables(topo)
        west, _ = march_2024_scenario(topo)
        assert cut.country_severities(west, workers=2) == \
            cut.country_severities(west, workers=1)

    def test_run_scenarios(self, topo):
        cut = WhatIfCutCables(topo)
        west, _ = march_2024_scenario(topo)
        tasks = [functools.partial(cut.rtt_inflation, "ZA", "NG", west),
                 functools.partial(cut.rtt_inflation, "GH", "KE", west),
                 functools.partial(cut.rtt_inflation, "EG", "ZA", west)]
        assert run_scenarios(tasks, workers=2) == \
            run_scenarios(tasks, workers=1)

    def test_dns_dependency_campaign(self, topo, phys):
        campaign = DNSDependencyCampaign(topo, phys, seed=4242)
        west, _ = march_2024_scenario(topo)
        countries = ("GH", "NG", "KE", "ZA")
        assert campaign.run(countries, west, workers=2) == \
            campaign.run(countries, west, workers=1)

    def test_monitoring_run(self, topo, phys):
        platform = build_observatory_platform(
            topo, place_probes(topo, PlacementObjective.COUNTRY_COVERAGE))
        simulation = OutageSimulator(topo, phys).simulate(years=0.2)
        runner = MonitoringRunner(topo, phys, platform, seed=77)
        serial = runner.run(simulation, days=15, workers=1)
        parallel = runner.run(simulation, days=15, workers=2)
        assert parallel.health == serial.health
        assert parallel.anomalies == serial.anomalies
        assert parallel.truth == serial.truth
        assert parallel.detected_truth == serial.detected_truth
        assert parallel.radar_truth == serial.radar_truth
