"""Equivalence and behavior tests for the compiled routing core.

The compiled engine (:class:`BGPRouting` over ``CompiledTopology`` CSR
arrays) must be observationally identical to the retained pure-dict
:class:`ReferenceRouting` oracle — same ``RouteEntry`` tuples, same
paths, same reachable sets, same tie-breaks — across topology families
and seeds.  On top of that: the array ``RouteTable`` must behave like
the mapping it replaced (including across pickling), serial and
parallel ``precompute`` must agree on the array representation, and
``DeltaRouting`` must match a full recompute for every what-if
scenario type.
"""

from __future__ import annotations

import pickle
import random

import pytest

from test_random_topologies import _random_topology

from repro.exec import RoutingContext, fork_available
from repro.routing import (
    BGPRouting,
    CompiledTopology,
    DeltaRouting,
    ReferenceRouting,
    RouteEntry,
    RouteKind,
    RouteTable,
    is_valley_free,
)
from repro.observatory import (
    WhatIfAddCable,
    WhatIfLocalizeDNS,
    WhatIfMandateLocalPeering,
    touched_ases,
)
from repro.topology import ASLink, Relationship

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform lacks fork")


def _assert_engines_agree(topo, sample_pairs: int = 40,
                          seed: int = 0) -> None:
    ref = ReferenceRouting(topo)
    new = BGPRouting(topo)
    asns = sorted(topo.ases)
    for dst in asns:
        ref_table = ref.routes_to(dst)
        new_table = new.routes_to(dst)
        # Mapping equality both ways (dict.__eq__ defers to the
        # RouteTable's reflected __eq__), plus an explicit entry check.
        assert new_table == ref_table
        assert new_table.to_dict() == ref_table
        assert new.reachable_from(dst) == ref.reachable_from(dst)
    rng = random.Random(seed)
    for _ in range(sample_pairs):
        src, dst = rng.choice(asns), rng.choice(asns)
        assert new.path(src, dst) == ref.path(src, dst)
        assert new.path_links(src, dst) == ref.path_links(src, dst)


class TestCompiledMatchesReference:
    @pytest.mark.parametrize("seed", [7, 11, 99])
    def test_random_topologies(self, seed):
        _assert_engines_agree(_random_topology(36, seed), seed=seed)

    def test_session_world_sample(self, topo):
        ref = ReferenceRouting(topo)
        new = BGPRouting(topo)
        asns = sorted(topo.ases)
        rng = random.Random(2025)
        for dst in rng.sample(asns, 25):
            assert new.routes_to(dst) == ref.routes_to(dst)
            assert new.reachable_from(dst) == ref.reachable_from(dst)
            for src in rng.sample(asns, 5):
                assert new.path(src, dst) == ref.path(src, dst)
                assert new.path_links(src, dst) == ref.path_links(src, dst)

    def test_unknown_destination_raises(self, topo):
        new = BGPRouting(topo)
        with pytest.raises(KeyError):
            new.routes_to(999_999_999)
        with pytest.raises(KeyError):
            new.path_links(sorted(topo.ases)[0], 999_999_999)


class TestRouteTableView:
    def test_mapping_behavior(self, topo):
        routing = BGPRouting(topo)
        dst = sorted(topo.ases)[0]
        table = routing.routes_to(dst)
        assert isinstance(table, RouteTable)
        assert dst in table
        assert table[dst] == RouteEntry(RouteKind.SELF, 0, dst)
        assert table.get(999_999_999) is None
        assert 999_999_999 not in table
        with pytest.raises(KeyError):
            table[999_999_999]
        routed = list(table)
        assert routed == sorted(routed)
        assert len(table) == len(routed)
        assert set(table.keys()) == set(routed)
        assert dict(table.items()) == table.to_dict()
        assert all(isinstance(e, RouteEntry) for e in table.values())

    def test_pickle_round_trip_and_bind(self, topo):
        routing = BGPRouting(topo)
        dst = sorted(topo.ases)[5]
        table = routing.routes_to(dst)
        loaded = pickle.loads(pickle.dumps(table))
        # The compiled topology is deliberately not serialized (workers
        # ship bare arrays); rebinding restores full view behavior.
        assert loaded.bind(routing.compiled) is loaded
        assert loaded == table
        assert loaded.to_dict() == table.to_dict()

    @needs_fork
    def test_serial_vs_parallel_precompute_identity(self, topo):
        dests = sorted(topo.ases)[:24]
        serial = BGPRouting(topo)
        parallel = BGPRouting(topo)
        assert serial.precompute(dests, workers=1) == len(dests)
        assert parallel.precompute(dests, workers=4) == len(dests)
        for dst in dests:
            a, b = serial.routes_to(dst), parallel.routes_to(dst)
            # Exact array representation, not just mapping equality.
            assert a.kind == b.kind
            assert a.length == b.length
            assert a.next_hop == b.next_hop
            assert a.via_ixp == b.via_ixp


class TestValleyFree:
    def test_rejects_non_adjacent_pairs(self, topo):
        asns = sorted(topo.ases)
        compiled = CompiledTopology.of(topo)
        src = asns[0]
        stranger = next(a for a in asns
                        if a != src and compiled.step_kind(src, a) is None)
        assert topo.link_between(src, stranger) is None
        assert not is_valley_free(topo, [src, stranger])

    def test_accepts_routed_paths(self, topo, routing):
        asns = sorted(topo.ases)
        rng = random.Random(7)
        checked = 0
        while checked < 10:
            path = routing.path(rng.choice(asns), rng.choice(asns))
            if path is None or len(path) < 2:
                continue
            assert is_valley_free(topo, path)
            checked += 1


class TestDeltaRouting:
    def _warm_context(self, topo):
        ctx = RoutingContext()
        ctx.routing(topo)
        return ctx

    def _assert_matches_full(self, engine, modified, dests):
        # Drop the (possibly spliced) compiled cache so the oracle
        # engine compiles the modified world from scratch.
        modified.__dict__.pop("_compiled_topology", None)
        full = BGPRouting(modified)
        for dst in dests:
            assert engine.routes_to(dst) == full.routes_to(dst)
            assert engine.reachable_from(dst) == full.reachable_from(dst)

    def test_mandate_local_peering_partial_dirty(self, topo):
        ctx = self._warm_context(topo)
        modified = WhatIfMandateLocalPeering(topo).apply("RW")
        assert modified.added_links
        assert touched_ases(modified)
        engine = ctx.routing(modified)
        assert isinstance(engine, DeltaRouting)
        assert ctx.delta_builds == 1
        dirty = engine.dirty
        assert dirty is not None
        assert touched_ases(modified) <= dirty
        sample = sorted(dirty) + sorted(topo.ases)[:20]
        self._assert_matches_full(engine, modified, sample)
        assert engine.delegated > 0  # clean dests served from baseline

    def test_add_cable_reuses_every_table(self, topo):
        ctx = self._warm_context(topo)
        base = ctx.routing(topo)
        modified = WhatIfAddCable(topo).apply("Equiano-2", ("GH", "BR"))
        engine = ctx.routing(modified)
        assert isinstance(engine, DeltaRouting)
        assert engine.dirty == frozenset()
        dst = sorted(topo.ases)[3]
        # Not just equal: the identical baseline table object.
        assert engine.routes_to(dst) is base.routes_to(dst)

    def test_localize_dns_reuses_every_table(self, topo):
        ctx = self._warm_context(topo)
        modified = WhatIfLocalizeDNS(topo).apply("SN")
        engine = ctx.routing(modified)
        assert isinstance(engine, DeltaRouting)
        assert engine.dirty == frozenset()
        self._assert_matches_full(engine, modified,
                                  sorted(topo.ases)[:10])

    def test_p2c_edit_falls_back_to_full(self, topo):
        ctx = self._warm_context(topo)
        modified = topo.structured_copy()
        asns = sorted(topo.ases)
        provider = next(a for a in asns if topo.as_(a).tier == 1)
        customer = next(a for a in asns
                        if topo.as_(a).tier == 3
                        and topo.link_between(provider, a) is None)
        modified.add_link(ASLink(provider, customer,
                                 Relationship.PROVIDER_TO_CUSTOMER))
        engine = ctx.routing(modified)
        assert isinstance(engine, DeltaRouting)
        assert engine.dirty is None  # whole-graph cone: full compute
        self._assert_matches_full(engine, modified,
                                  [provider, customer] + asns[:10])

    def test_precompute_splits_dirty_and_clean(self, topo):
        ctx = self._warm_context(topo)
        modified = WhatIfMandateLocalPeering(topo).apply("RW")
        engine = ctx.routing(modified)
        dirty = sorted(engine.dirty)
        clean = [a for a in sorted(topo.ases)[:15] if a not in engine.dirty]
        computed = engine.precompute(dirty + clean, workers=1)
        assert computed == len(dirty)
        assert engine.delegated >= len(clean)

    def test_extended_compile_matches_fresh(self, topo):
        modified = WhatIfMandateLocalPeering(topo).apply("KE")
        spliced = CompiledTopology.of(topo).extended(modified.added_links)
        fresh = CompiledTopology(modified)
        assert spliced.asns == fresh.asns
        for role in ("providers", "customers", "peers"):
            a, b = getattr(spliced, role), getattr(fresh, role)
            assert a.start == b.start
            assert a.nbr == b.nbr
            assert a.ixp == b.ixp

    def test_for_copy_rejects_non_copies(self, topo):
        base = BGPRouting(topo)
        # The baseline topology itself has no routing_base.
        assert DeltaRouting.for_copy(base, topo) is None
        # A copy whose links were edited outside the journal.
        tampered = topo.structured_copy()
        tampered.links.pop()
        assert DeltaRouting.for_copy(base, tampered) is None
        # A copy whose AS roster changed.
        shrunk = topo.structured_copy()
        victim = sorted(shrunk.ases)[-1]
        del shrunk.ases[victim]
        assert DeltaRouting.for_copy(base, shrunk) is None

    def test_context_without_warm_baseline_builds_full(self, topo):
        ctx = RoutingContext()  # baseline never routed here
        modified = WhatIfMandateLocalPeering(topo).apply("RW")
        engine = ctx.routing(modified)
        assert type(engine) is BGPRouting
        assert ctx.delta_builds == 0
