"""Fleet economics (§7.2) and the Fig. 1 growth series."""

import pytest

from repro.analysis import african_growth_series
from repro.measurement import (
    AccessTech,
    ProbeKind,
    VantagePoint,
    build_observatory_platform,
)
from repro.observatory import (
    PlacementObjective,
    fleet_budget,
    place_probes,
    probe_monthly_cost,
)


def _probe(cc, kind=ProbeKind.RASPBERRY_PI, pid=1):
    return VantagePoint(probe_id=pid, asn=36924, country_iso2=cc,
                        kind=kind, access=AccessTech.FIXED)


class TestIncentives:
    def test_cost_components_positive(self):
        cost = probe_monthly_cost(_probe("GH"))
        assert cost.hardware_usd > 0
        assert cost.subsidy_usd > 0
        assert cost.data_usd > 0
        assert cost.total_usd == pytest.approx(
            cost.hardware_usd + cost.subsidy_usd + cost.data_usd)

    def test_unreliable_grid_pays_for_power_kit(self):
        reliable = probe_monthly_cost(_probe("ZA"))
        unreliable = probe_monthly_cost(_probe("CD"))
        assert unreliable.hardware_usd > reliable.hardware_usd

    def test_vpn_probes_are_cheap(self):
        vpn = probe_monthly_cost(_probe("GH", ProbeKind.RESIDENTIAL_VPN))
        rpi = probe_monthly_cost(_probe("GH"))
        assert vpn.hardware_usd == 0.0
        assert vpn.total_usd < rpi.total_usd

    def test_data_cost_scales(self):
        small = probe_monthly_cost(_probe("KE"), monthly_data_gb=1.0)
        big = probe_monthly_cost(_probe("KE"), monthly_data_gb=5.0)
        assert big.data_usd == pytest.approx(5 * small.data_usd)

    def test_fleet_budget_aggregates(self, topo):
        hosts = place_probes(topo, PlacementObjective.IXP_COVERAGE)
        fleet = build_observatory_platform(topo, hosts)
        budget = fleet_budget(fleet.probes)
        assert len(budget.probes) == len(fleet.probes)
        assert budget.annual_usd == pytest.approx(12 * budget.monthly_usd)
        regions = budget.by_region()
        assert sum(regions.values()) == pytest.approx(budget.monthly_usd)
        # A full-coverage research fleet costs grant-scale money, not
        # hyperscaler-scale money (sanity on the §7.2 pitch).
        assert 2_000 < budget.annual_usd < 100_000

    def test_central_africa_most_expensive_per_probe(self, topo):
        cd = probe_monthly_cost(_probe("CD"))
        de = probe_monthly_cost(_probe("DE"))
        assert cd.total_usd > de.total_usd


class TestGrowthSeries:
    def test_series_shape(self, topo):
        series = african_growth_series(topo)
        assert len(series) == topo.params.growth_window_years + 1
        assert series[0][0] == topo.params.current_year \
            - topo.params.growth_window_years
        assert series[-1][0] == topo.params.current_year

    def test_series_monotone(self, topo):
        series = african_growth_series(topo)
        for (y1, i1, c1, a1), (y2, i2, c2, a2) in zip(series,
                                                      series[1:]):
            assert y2 == y1 + 1
            assert i2 >= i1 and c2 >= c1 and a2 >= a1

    def test_endpoints_match_report(self, topo):
        from repro.analysis import analyze_growth
        series = african_growth_series(topo)
        africa = analyze_growth(topo).africa()
        assert series[0][1] == africa.ixps_before
        assert series[-1][1] == africa.ixps_after
        assert series[-1][2] == africa.cables_after
