"""Edge cases across modules: failure paths and secondary behaviours."""

import pytest

from repro.geo import country
from repro.measurement import (
    AccessTech,
    DNSMeasurement,
    GeolocationService,
    MeasurementEngine,
)
from repro.observatory import DataPlan, PricingModel, BudgetAccount
from repro.routing import PhysicalNetwork
from repro.topology import ResolverLocality


class TestCloudResolverReanchoring:
    def test_mainland_stays_on_za_over_terrestrial(self, topo):
        """Cutting every ZA-landing cable does *not* cut ZA off from
        the mainland — the SADC terrestrial mesh keeps the PoP
        reachable, so cloud clients are not re-anchored."""
        phys = PhysicalNetwork(topo)
        dns = DNSMeasurement(topo, phys, cache_hit_rate=1.0)
        client = next(
            (asn for asn, cfg in topo.resolver_configs.items()
             if cfg.locality is ResolverLocality.CLOUD
             and cfg.hosted_in == "ZA"
             and country(topo.as_(asn).country_iso2).is_african
             and country(topo.as_(asn).country_iso2).coastal is False),
            None)
        if client is None:
            pytest.skip("no landlocked cloud-resolver client this seed")
        za_cables = [c.cable_id for c in topo.cables_landing_in("ZA")]
        results = [dns.resolve(client, f"d{i}.example",
                               down_cables=za_cables) for i in range(6)]
        survived = [r for r in results if r.ok]
        assert survived
        assert all(r.resolver_country == "ZA" for r in survived)

    def test_island_clients_reanchor_off_za(self, topo):
        """§5.2: an island client cut off from every cable loses the
        ZA anycast PoP; any resolution that survives has re-anchored
        elsewhere (at satellite-class latency)."""
        phys = PhysicalNetwork(topo)
        dns = DNSMeasurement(topo, phys, cache_hit_rate=1.0)
        islands = ("MU", "MG", "SC", "KM", "CV", "ST")
        client = next(
            (asn for asn, cfg in topo.resolver_configs.items()
             if cfg.locality is ResolverLocality.CLOUD
             and cfg.hosted_in == "ZA"
             and topo.as_(asn).country_iso2 in islands), None)
        if client is None:
            pytest.skip("no island cloud-resolver client this seed")
        all_cables = [c.cable_id for c in topo.cables]
        results = [dns.resolve(client, f"d{i}.example",
                               down_cables=all_cables)
                   for i in range(12)]
        for result in results:
            if result.ok:
                assert result.resolver_country != "ZA"


class TestEngineOptions:
    def test_access_override_changes_rtt(self, topo, routing, phys,
                                          atlas):
        from repro.datasets import probe_target_ip
        engine = MeasurementEngine(topo, routing, phys)
        african = [p for p in atlas.probes if p.region.is_african]
        src, dst = african[0], african[-1]
        target = probe_target_ip(topo, dst)
        cellular = engine.traceroute(src, target,
                                     access=AccessTech.CELLULAR)
        fixed = engine.traceroute(src, target, access=AccessTech.FIXED)
        cell_rtt = cellular.end_to_end_rtt()
        fixed_rtt = fixed.end_to_end_rtt()
        if cell_rtt is not None and fixed_rtt is not None:
            assert cell_rtt > fixed_rtt - 10  # last-mile penalty

    def test_down_cables_raise_rtt_or_sever(self, topo, routing, atlas):
        from repro.datasets import probe_target_ip
        from repro.outages import march_2024_scenario
        west, _ = march_2024_scenario(topo)
        phys = PhysicalNetwork(topo)
        baseline_engine = MeasurementEngine(topo, routing, phys)
        outage_engine = MeasurementEngine(topo, routing, phys,
                                          down_cables=west)
        gh_probes = [p for p in atlas.probes if p.country_iso2 == "GH"]
        eu = [p for p in atlas.probes
              if p.region.value == "Europe"]
        if not gh_probes or not eu:
            pytest.skip("no GH/EU probe pair")
        target = probe_target_ip(topo, eu[0])
        base = baseline_engine.traceroute(gh_probes[0], target)
        cut = outage_engine.traceroute(gh_probes[0], target)
        base_rtt = base.end_to_end_rtt()
        cut_rtt = cut.end_to_end_rtt()
        if base.reached and cut.reached:
            assert cut_rtt >= base_rtt - 15


class TestBudgetEdges:
    def test_postpaid_flat_only_when_used(self):
        plan = DataPlan("ZA", PricingModel.POSTPAID_CAP, 2.8, 4096)
        account = BudgetAccount(plan, 100.0)
        assert account.spent_usd == 0.0
        account.charge(1)
        assert account.spent_usd > 0.0

    def test_postpaid_overage(self):
        plan = DataPlan("ZA", PricingModel.POSTPAID_CAP, 2.0,
                        bundle_mb=1024)
        account = BudgetAccount(plan, 1000.0)
        account.charge(1)
        base = account.spent_usd
        account.charge(3 * 2**30)
        assert account.spent_usd > base + 2.0  # overage billed

    def test_negative_bytes_rejected(self):
        plan = DataPlan("KE", PricingModel.PAYG, 2.0)
        account = BudgetAccount(plan, 10.0)
        with pytest.raises(ValueError):
            account.charge(-1)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            DataPlan("KE", PricingModel.PAYG, -1.0)
        with pytest.raises(ValueError):
            DataPlan("KE", PricingModel.PAYG, 1.0, bundle_mb=0)


class TestPhysicalEdges:
    def test_countries_listed(self, phys):
        ccs = phys.countries()
        assert {"GH", "ZA", "DE", "US"} <= ccs

    def test_edges_at(self, phys):
        edges = phys.edges_at("GH")
        assert edges
        assert all(e.a == "GH" or e.b == "GH" for e in edges)

    def test_unknown_country_no_edges(self, phys):
        assert phys.edges_at("XX") == []


class TestGeoServiceEdges:
    def test_ixp_lan_geolocates_to_ixp_country(self, topo):
        geo = GeolocationService(topo, africa_accuracy=1.0)
        ixp = topo.african_ixps()[0]
        answer = geo.locate(ixp.lan_prefix.network + 1)
        assert answer.true_iso2 == ixp.country_iso2

    def test_custom_accuracy(self, topo):
        perfect = GeolocationService(topo, africa_accuracy=1.0,
                                     reference_accuracy=1.0)
        for a in topo.african_ases()[:25]:
            ip = a.prefixes[0].network + 3
            assert perfect.locate(ip).correct


class TestAnalysisEdges:
    def test_maturity_gap(self, topo):
        from repro.analysis import maturity_gap
        gaps = maturity_gap(topo, {"Africa": 1300.0, "Europe": 740.0})
        labels = {g.region_label for g in gaps}
        assert labels == {"Africa", "Europe"}
        africa = next(g for g in gaps if g.region_label == "Africa")
        europe = next(g for g in gaps if g.region_label == "Europe")
        # §2: Africa's normalized maturity trails Europe's.
        assert africa.ixps_per_10m_population < \
            europe.ixps_per_10m_population

    def test_radar_verification_mix(self, topo, phys):
        from repro.datasets import build_radar_feed
        from repro.outages import OutageSimulator
        sim = OutageSimulator(topo, phys).simulate(years=2.0)
        feed = build_radar_feed(sim, seed=7)
        causes = [e.verified_cause for e in feed
                  if e.verified_cause is not None]
        assert "power outage" in causes

    def test_pulse_geolocation_error_measurable(self, topo):
        from repro.datasets import run_pulse_study
        study = run_pulse_study(topo)
        wrong = sum(1 for s in study.samples
                    if s.measured_server_country is not None
                    and s.measured_server_country
                    != s.true_server_country)
        # The Africa geolocation error shows up in the study itself.
        assert 0 < wrong < len(study.samples) * 0.4
