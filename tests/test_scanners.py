"""Scanner strategies: the Table 1 coverage mechanisms."""

import pytest

from repro.measurement import (
    run_ant_hitlist,
    run_caida_prefix_scan,
    run_yarrp_scan,
)


@pytest.fixture(scope="module")
def scans(topo, routing):
    return {
        "ant": run_ant_hitlist(topo),
        "caida": run_caida_prefix_scan(topo),
        "yarrp": run_yarrp_scan(topo, routing),
    }


class TestScanOrdering:
    def test_entry_counts_ordered(self, scans):
        assert scans["ant"].entries > scans["caida"].entries
        assert scans["caida"].entries > scans["yarrp"].entries

    def test_ant_has_best_asn_coverage(self, topo, scans):
        ant = len(scans["ant"].observed_african_asns(topo))
        caida = len(scans["caida"].observed_african_asns(topo))
        yarrp = len(scans["yarrp"].observed_african_asns(topo))
        assert ant > caida
        assert ant > yarrp

    def test_ixp_coverage_poor_everywhere(self, topo, scans):
        universe = len(topo.african_ixps())
        for scan in scans.values():
            share = len(scan.observed_african_ixps(topo)) / universe
            assert share < 0.35  # Table 1: best is 23.5%

    def test_ant_best_on_ixps(self, topo, scans):
        ant = len(scans["ant"].observed_african_ixps(topo))
        others = max(len(scans["caida"].observed_african_ixps(topo)),
                     len(scans["yarrp"].observed_african_ixps(topo)))
        assert ant > others


class TestScanSemantics:
    def test_observed_asns_exist(self, topo, scans):
        for scan in scans.values():
            for asn in scan.observed_asns:
                assert asn in topo.ases

    def test_determinism(self, topo, routing):
        a = run_ant_hitlist(topo)
        b = run_ant_hitlist(topo)
        assert a.observed_asns == b.observed_asns
        assert a.entries == b.entries
        y1 = run_yarrp_scan(topo, routing)
        y2 = run_yarrp_scan(topo, routing)
        assert y1.observed_asns == y2.observed_asns

    def test_caida_only_sees_leaked_ixp_lans(self, topo, scans):
        leaked = {x.ixp_id for x in topo.ixps.values() if x.lan_routed}
        assert scans["caida"].observed_ixps <= leaked

    def test_yarrp_sample_rate_scales_entries(self, topo, routing):
        small = run_yarrp_scan(topo, routing, sample_rate=0.1)
        big = run_yarrp_scan(topo, routing, sample_rate=0.6)
        assert small.entries < big.entries

    def test_yarrp_sees_transit_asns(self, topo, scans):
        """Traceroute-based scanning observes carriers on the path."""
        transits = {a.asn for a in topo.ases.values()
                    if a.tier <= 2 and a.is_african}
        assert scans["yarrp"].observed_asns & transits
