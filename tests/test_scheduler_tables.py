"""Focused coverage for `repro.observatory.scheduler` and
`repro.reporting.tables` — the paths the HTTP service reports through.
"""

from __future__ import annotations

import pytest

from repro.measurement.probes import AccessTech, ProbeKind, VantagePoint
from repro.observatory import (
    MeasurementTask,
    schedule_cost_aware,
    schedule_round_robin,
)
from repro.observatory.power import probe_power_profile
from repro.reporting import ascii_table, bar_chart, pct, series


def _probe(pid: int, iso2: str = "GH",
           access: AccessTech = AccessTech.FIXED,
           secondary: AccessTech | None = None) -> VantagePoint:
    return VantagePoint(probe_id=pid, asn=65000 + pid,
                        country_iso2=iso2,
                        kind=ProbeKind.RASPBERRY_PI, access=access,
                        secondary_access=secondary)


def _task(tid: str, utility: float = 1.0, app_bytes: int = 10_000,
          runs: int = 30, country: str | None = None,
          requires: AccessTech | None = None) -> MeasurementTask:
    return MeasurementTask(task_id=tid, kind="traceroute",
                           target=f"target-{tid}", app_bytes=app_bytes,
                           runs_per_month=runs, utility=utility,
                           country=country, requires_access=requires)


# ----------------------------------------------------------------------
class TestSchedulerPolicies:
    def test_tasks_land_within_budget(self):
        probes = [_probe(1), _probe(2, "KE")]
        tasks = [_task(f"t{i}") for i in range(6)]
        schedule = schedule_cost_aware(probes, tasks, 25.0)
        assert schedule.placed_task_ids() | \
            {t.task_id for t in schedule.unplaced} == \
            {t.task_id for t in tasks}
        for account in schedule.accounts.values():
            assert account.spent_usd <= 25.0 + 1e-9

    def test_zero_budget_places_nothing(self):
        schedule = schedule_cost_aware([_probe(1)], [_task("t0")], 0.0)
        assert schedule.assignments == []
        assert [t.task_id for t in schedule.unplaced] == ["t0"]
        assert schedule.total_utility == 0.0
        assert schedule.utility_per_dollar() == 0.0

    def test_country_restriction_honored(self):
        probes = [_probe(1, "GH"), _probe(2, "KE")]
        schedule = schedule_cost_aware(
            probes, [_task("gh-only", country="GH")], 20.0)
        (placed,) = schedule.assignments
        assert placed.probe_id == 1

    def test_access_restriction_honored(self):
        fixed = _probe(1, access=AccessTech.FIXED)
        dual = _probe(2, access=AccessTech.FIXED,
                      secondary=AccessTech.CELLULAR)
        task = _task("cellular", requires=AccessTech.CELLULAR)
        schedule = schedule_cost_aware([fixed, dual], [task], 20.0)
        (placed,) = schedule.assignments
        assert placed.probe_id == 2

    def test_impossible_task_unplaced(self):
        schedule = schedule_cost_aware(
            [_probe(1, "GH")], [_task("ke-only", country="KE")], 20.0)
        assert [t.task_id for t in schedule.unplaced] == ["ke-only"]

    def test_reuse_is_free(self):
        # Two objectives over one (kind, target) measurement: the
        # second placement must be billed zero bytes and zero dollars.
        t1 = MeasurementTask("a", "traceroute", "shared", 10_000, 30, 2.0)
        t2 = MeasurementTask("b", "traceroute", "shared", 10_000, 30, 1.0)
        schedule = schedule_cost_aware([_probe(1)], [t1, t2], 20.0)
        assert len(schedule.assignments) == 2
        reused = [a for a in schedule.assignments if a.reused]
        assert len(reused) == 1
        assert reused[0].billed_bytes == 0
        assert reused[0].cost_usd == 0.0
        assert reused[0].task.task_id == "b"  # lower utility reuses

    def test_power_limits_effective_runs(self):
        probe = _probe(1, "CD")  # weak grid → availability < 1
        availability = probe_power_profile(probe).effective_availability
        schedule = schedule_cost_aware([probe], [_task("t", runs=30)],
                                       20.0)
        (placed,) = schedule.assignments
        assert placed.runs == int(30 * availability)
        assert placed.runs <= 30

    def test_cost_aware_beats_round_robin(self):
        probes = [_probe(1, "GH"), _probe(2, "KE"), _probe(3, "ZA")]
        tasks = [_task(f"t{i}", utility=float(1 + i % 3),
                       app_bytes=5_000 * (1 + i % 4))
                 for i in range(12)]
        smart = schedule_cost_aware(probes, tasks, 3.0)
        naive = schedule_round_robin(probes, tasks, 3.0)
        assert smart.total_utility >= naive.total_utility

    def test_round_robin_spreads_load(self):
        probes = [_probe(1), _probe(2)]
        tasks = [_task(f"t{i}") for i in range(4)]
        schedule = schedule_round_robin(probes, tasks, 50.0)
        assert {a.probe_id for a in schedule.assignments} == {1, 2}

    def test_task_validation(self):
        with pytest.raises(ValueError):
            MeasurementTask("bad", "ping", "x", 0, 30, 1.0)
        with pytest.raises(ValueError):
            MeasurementTask("bad", "ping", "x", 100, 0, 1.0)
        with pytest.raises(ValueError):
            MeasurementTask("bad", "ping", "x", 100, 30, -1.0)

    def test_schedules_record_telemetry(self):
        from repro import telemetry
        enabled_before = telemetry.enabled()
        telemetry.enable()
        try:
            schedule_cost_aware([_probe(1)], [_task("t0")], 20.0)
            snap = telemetry.REGISTRY.snapshot()
            placed = snap["repro_scheduler_tasks_placed_total"]
            assert any(s["labels"] == {"policy": "cost-aware"}
                       and s["value"] >= 1 for s in placed["series"])
        finally:
            if not enabled_before:
                telemetry.disable()


# ----------------------------------------------------------------------
class TestTables:
    def test_pct_formats_share(self):
        assert pct(0.7731) == "77.3%"
        assert pct(0.5, digits=0) == "50%"
        assert pct(0.0) == "0.0%"

    def test_ascii_table_alignment(self):
        text = ascii_table(["name", "value"],
                           [["short", 1], ["a-much-longer-name", 22]],
                           title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", "+"}
        # All data rows pad to one common width.
        assert len({len(l) for l in lines[3:]}) == 1

    def test_ascii_table_without_title(self):
        text = ascii_table(["a"], [[1]])
        assert text.splitlines()[0].startswith("a")

    def test_series_formatting(self):
        out = series("growth", [("2020", 1.0), ("2021", 2.5)],
                     fmt="{:.1f}")
        assert out == "growth: 2020=1.0  2021=2.5"

    def test_bar_chart_scales_to_peak(self):
        out = bar_chart([("a", 1.0), ("b", 2.0)], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_bar_chart_handles_negatives_and_zero(self):
        out = bar_chart([("neg", -2.0), ("zero", 0.0)], width=8)
        neg, zero = out.splitlines()
        assert neg.count("#") == 8       # magnitude sets the peak
        assert zero.count("#") == 0

    def test_bar_chart_empty_input(self):
        assert bar_chart([], title="empty") == "empty"
        assert bar_chart([]) == ""

    def test_bar_chart_all_zero_peak_guard(self):
        out = bar_chart([("a", 0.0), ("b", 0.0)])
        assert all(l.count("#") == 0 for l in out.splitlines())
