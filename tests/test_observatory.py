"""Observatory core: placement, budget, power, scheduling, governance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.measurement import AccessTech, ProbeKind, VantagePoint
from repro.observatory import (
    BudgetAccount,
    BudgetExceeded,
    DataPlan,
    Experiment,
    ExperimentStatus,
    MeasurementTask,
    ObservatoryPlatform,
    PlacementObjective,
    PricingModel,
    compare_ixp_coverage,
    expected_completed_slots,
    greedy_set_cover,
    is_powered,
    ixp_cover_hosts,
    place_probes,
    plan_for,
    probe_power_profile,
    schedule_cost_aware,
    schedule_round_robin,
    wire_bytes,
)


class TestSetCover:
    def test_simple_instance(self):
        result = greedy_set_cover(
            universe={1, 2, 3, 4, 5},
            sets={"a": {1, 2, 3}, "b": {3, 4}, "c": {5}, "d": {4, 5}})
        assert result.complete
        assert result.chosen[0] == "a"  # biggest gain first
        assert len(result.chosen) <= 3

    def test_uncoverable_elements_reported(self):
        result = greedy_set_cover({1, 2, 9}, {"a": {1, 2}})
        assert not result.complete
        assert result.uncovered == {9}

    def test_max_picks(self):
        result = greedy_set_cover(
            {1, 2, 3}, {"a": {1}, "b": {2}, "c": {3}}, max_picks=2)
        assert len(result.chosen) == 2

    def test_curve_monotone(self):
        result = greedy_set_cover(
            set(range(20)),
            {i: {i, (i + 1) % 20, (i + 5) % 20} for i in range(20)})
        assert result.curve == sorted(result.curve)

    @settings(max_examples=40, deadline=None)
    @given(st.dictionaries(
        st.integers(0, 15),
        st.sets(st.integers(0, 30), max_size=8), max_size=12))
    def test_covers_everything_coverable(self, sets):
        universe = set().union(*sets.values()) if sets else set()
        result = greedy_set_cover(universe, sets)
        assert result.complete
        covered = set()
        for key in result.chosen:
            covered |= sets[key]
        assert covered >= universe

    def test_ixp_cover_complete_near_paper(self, topo):
        result = ixp_cover_hosts(topo)
        assert result.complete
        assert 20 <= len(result.chosen) <= 50  # paper: 34 for 77

    def test_observatory_beats_atlas_on_ixp_coverage(self, topo, atlas):
        cmp = compare_ixp_coverage(topo, atlas)
        assert cmp.observatory_covered == cmp.universe == 77
        assert cmp.atlas_covered < cmp.observatory_covered
        assert cmp.observatory_hosts < cmp.atlas_hosts


class TestPlacement:
    def test_country_coverage(self, topo):
        hosts = place_probes(topo, PlacementObjective.COUNTRY_COVERAGE)
        countries = {topo.as_(asn).country_iso2 for asn in hosts}
        assert len(countries) == len(hosts)  # one per country
        assert len(countries) >= 50

    def test_mobile_representative(self, topo):
        from repro.topology import ASKind
        hosts = place_probes(topo,
                             PlacementObjective.MOBILE_REPRESENTATIVE,
                             budget=20)
        assert len(hosts) == 20
        assert all(topo.as_(a).kind is ASKind.MOBILE for a in hosts)

    def test_budget_respected(self, topo):
        hosts = place_probes(topo, PlacementObjective.IXP_COVERAGE,
                             budget=5)
        assert len(hosts) == 5


class TestBudget:
    def test_plan_lookup(self):
        plan = plan_for("CD")
        assert plan.model is PricingModel.PREPAID_BUNDLE
        assert plan.usd_per_gb > plan_for("DE").usd_per_gb

    def test_wire_overhead(self):
        app = 10_000
        assert wire_bytes(app, AccessTech.CELLULAR) > \
            wire_bytes(app, AccessTech.FIXED) > app

    def test_prepaid_bundle_granularity(self):
        plan = DataPlan("GH", PricingModel.PREPAID_BUNDLE,
                        usd_per_gb=4.0, bundle_mb=100)
        account = BudgetAccount(plan, monthly_budget_usd=10.0)
        cost_first = account.charge(1)  # first byte buys a bundle
        assert cost_first == pytest.approx(plan.bundle_price_usd)
        cost_second = account.charge(1)  # same bundle, free
        assert cost_second == 0.0

    def test_budget_enforced(self):
        plan = DataPlan("GH", PricingModel.PREPAID_BUNDLE,
                        usd_per_gb=4.0, bundle_mb=1024)
        account = BudgetAccount(plan, monthly_budget_usd=5.0)
        with pytest.raises(BudgetExceeded):
            account.charge(2 * 2**30)

    def test_payg_linear(self):
        plan = DataPlan("KE", PricingModel.PAYG, usd_per_gb=2.0)
        account = BudgetAccount(plan, monthly_budget_usd=100.0)
        account.charge(2**30)
        assert account.spent_usd == pytest.approx(2.0)

    @given(st.lists(st.integers(1, 10 * 2**20), min_size=1, max_size=20))
    def test_spend_monotone_and_capped(self, charges):
        plan = DataPlan("NG", PricingModel.PREPAID_BUNDLE,
                        usd_per_gb=3.3, bundle_mb=512)
        account = BudgetAccount(plan, monthly_budget_usd=25.0)
        last = 0.0
        for nbytes in charges:
            if not account.can_afford(nbytes):
                break
            account.charge(nbytes)
            assert account.spent_usd >= last
            last = account.spent_usd
        assert account.spent_usd <= 25.0 + 1e-9

    def test_cost_of_is_pure(self):
        plan = DataPlan("GH", PricingModel.PREPAID_BUNDLE,
                        usd_per_gb=4.0, bundle_mb=100)
        account = BudgetAccount(plan, monthly_budget_usd=10.0)
        before = account.spent_usd
        account.cost_of(5 * 2**20)
        assert account.spent_usd == before


class TestPower:
    def _probe(self, cc, kind=ProbeKind.RASPBERRY_PI):
        return VantagePoint(probe_id=1, asn=36924, country_iso2=cc,
                            kind=kind, access=AccessTech.FIXED)

    def test_battery_raises_availability(self):
        rpi = probe_power_profile(self._probe("CD"))
        bare = probe_power_profile(
            self._probe("CD", ProbeKind.ATLAS_PROBE))
        assert rpi.effective_availability > bare.effective_availability
        assert rpi.grid_availability == bare.grid_availability

    def test_reliable_grid_near_one(self):
        profile = probe_power_profile(self._probe("DE"))
        assert profile.effective_availability > 0.99

    def test_is_powered_deterministic(self):
        probe = self._probe("CD")
        assert is_powered(probe, 3, 12) == is_powered(probe, 3, 12)

    def test_expected_slots(self):
        probe = self._probe("DE")
        assert expected_completed_slots(probe, 100) > 99


def _fleet():
    mk = lambda pid, cc, access: VantagePoint(
        probe_id=pid, asn=37000 + pid, country_iso2=cc,
        kind=ProbeKind.RASPBERRY_PI, access=access,
        secondary_access=AccessTech.CELLULAR)
    return [mk(1, "GH", AccessTech.FIXED), mk(2, "CD", AccessTech.FIXED),
            mk(3, "ZA", AccessTech.FIXED), mk(4, "KE", AccessTech.FIXED)]


def _tasks(n=12):
    return [MeasurementTask(
        task_id=f"t{i}", kind="traceroute", target=f"target-{i % 4}",
        app_bytes=200_000, runs_per_month=30, utility=float(1 + i % 3))
        for i in range(n)]


class TestScheduler:
    def test_budget_never_exceeded(self):
        schedule = schedule_cost_aware(_fleet(), _tasks(), 5.0)
        for account in schedule.accounts.values():
            assert account.spent_usd <= 5.0 + 1e-9

    def test_everything_placed_with_big_budget(self):
        schedule = schedule_cost_aware(_fleet(), _tasks(), 500.0)
        assert not schedule.unplaced

    def test_cost_aware_beats_round_robin(self):
        tasks = _tasks(30)
        smart = schedule_cost_aware(_fleet(), tasks, 4.0)
        naive = schedule_round_robin(_fleet(), tasks, 4.0)
        assert smart.utility_per_dollar() >= naive.utility_per_dollar()

    def test_reuse_is_free(self):
        tasks = [
            MeasurementTask("a", "traceroute", "same-target", 100_000,
                            10, 5.0),
            MeasurementTask("b", "traceroute", "same-target", 100_000,
                            10, 4.0),
        ]
        schedule = schedule_cost_aware(_fleet()[:1], tasks, 50.0)
        reused = [a for a in schedule.assignments if a.reused]
        assert reused and reused[0].cost_usd == 0.0

    def test_country_restriction(self):
        tasks = [MeasurementTask("gh-only", "dns", "x", 1000, 5, 1.0,
                                 country="GH")]
        schedule = schedule_cost_aware(_fleet(), tasks, 10.0)
        assert schedule.assignments[0].probe_id == 1

    def test_access_requirement(self):
        fixed_only = [VantagePoint(
            probe_id=9, asn=37999, country_iso2="GH",
            kind=ProbeKind.ATLAS_PROBE, access=AccessTech.FIXED)]
        tasks = [MeasurementTask("cell", "ping", "x", 1000, 5, 1.0,
                                 requires_access=AccessTech.CELLULAR)]
        schedule = schedule_cost_aware(fixed_only, tasks, 10.0)
        assert schedule.unplaced == tasks

    def test_task_validation(self):
        with pytest.raises(ValueError):
            MeasurementTask("bad", "ping", "x", 0, 5, 1.0)


class TestPlatformGovernance:
    @pytest.fixture()
    def platform(self, topo):
        return ObservatoryPlatform(topo, probe_budget=10,
                                   trusted_cohort={"amreesh"})

    def test_untrusted_rejected(self, platform):
        exp = Experiment("x1", "mallory", "sketchy", tasks=_tasks(2))
        assert platform.submit(exp).status is ExperimentStatus.REJECTED

    def test_trusted_approved_and_scheduled(self, platform):
        exp = Experiment("x2", "amreesh", "IXP sweep", tasks=_tasks(3))
        assert platform.submit(exp).status is ExperimentStatus.APPROVED
        schedule = platform.schedule_experiment("x2")
        assert schedule.total_utility > 0
        assert exp.status is ExperimentStatus.COMPLETED

    def test_oversized_task_rejected(self, platform):
        huge = MeasurementTask("huge", "pageload", "x", 200 * 2**20, 1,
                               1.0)
        exp = Experiment("x3", "amreesh", "too big", tasks=[huge])
        assert platform.submit(exp).status is ExperimentStatus.REJECTED

    def test_unapproved_cannot_run(self, platform):
        exp = Experiment("x4", "mallory", "nope", tasks=_tasks(1))
        platform.submit(exp)
        with pytest.raises(PermissionError):
            platform.schedule_experiment("x4")

    def test_duplicate_id_rejected(self, platform):
        exp = Experiment("dup", "amreesh", "a", tasks=_tasks(1))
        platform.submit(exp)
        with pytest.raises(ValueError):
            platform.submit(Experiment("dup", "amreesh", "b",
                                       tasks=_tasks(1)))

    def test_fleet_report(self, platform):
        report = platform.fleet_report()
        assert report["probes"] >= 10
        assert 0 <= report["mean_availability"] <= 1
