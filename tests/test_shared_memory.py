"""Shared-memory dispatch: lifecycle, identity, and leak accounting.

The contracts under test (docs/performance.md, "The shared-memory data
plane"):

* serial and parallel table precompute are byte-identical — at the
  default world scale and at a scaled-up topology;
* no ``repro-shm-`` segment survives a clean batch, a worker crash
  (``BrokenProcessPool`` recovery), or a hung-worker termination;
* blocks never pickle — they cross the fork as inherited mappings only.
"""

from __future__ import annotations

import pickle
from array import array

import pytest

from repro import faults
from repro.exec import (
    current_shared,
    fork_available,
    map_tasks,
    shm_supported,
)
from repro.exec.shm import (
    SEGMENT_PREFIX,
    SharedColumnBlock,
    active_segments,
    system_segments,
)
from repro.routing import BGPRouting
from repro.routing.compiled import (
    SharedTableStore,
    compute_columns,
    compute_table,
)
from repro.topology import WorldParams
from repro.topology.generator import TopologyGenerator

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="platform has no POSIX shared memory")

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform has no fork")


@pytest.fixture(autouse=True)
def clean_faults():
    """No fault plan leaks into (or out of) any test."""
    faults.configure(None)
    yield
    faults.configure(None)


def _no_segments() -> bool:
    """True when neither the registry nor /dev/shm shows our segments."""
    if active_segments():
        return False
    visible = system_segments()
    return visible is None or visible == []


def _assert_tables_equal(a: BGPRouting, b: BGPRouting, dests) -> None:
    for dst in dests:
        ta, tb = a.routes_to(dst), b.routes_to(dst)
        assert ta.kind.tobytes() == tb.kind.tobytes(), dst
        assert ta.length.tobytes() == tb.length.tobytes(), dst
        assert ta.next_hop.tobytes() == tb.next_hop.tobytes(), dst
        assert ta.via_ixp.tobytes() == tb.via_ixp.tobytes(), dst


# ----------------------------------------------------------------------
class TestSharedColumnBlock:
    def test_write_read_roundtrip(self):
        with SharedColumnBlock([("a", "i", 8), ("b", "q", 3)]) as block:
            block.write("a", 2, array("i", [7, -1, 9]))
            block.write("b", 0, array("q", [1 << 40]))
            assert list(block.read_array("a", 2, 3)) == [7, -1, 9]
            assert list(block.read_array("b", 0, 1)) == [1 << 40]

    def test_created_zero_filled(self):
        with SharedColumnBlock([("x", "i", 5)]) as block:
            assert list(block.read_array("x", 0, 5)) == [0] * 5

    def test_mixed_typecode_alignment(self):
        # A 1-byte column followed by an 8-byte column must not let the
        # wide column start misaligned.
        with SharedColumnBlock([("k", "b", 3), ("v", "q", 2)]) as block:
            block.write("k", 0, array("b", [1, 2, 3]))
            block.write("v", 0, array("q", [-5, 5]))
            assert list(block.read_array("k", 0, 3)) == [1, 2, 3]
            assert list(block.read_array("v", 0, 2)) == [-5, 5]

    def test_refuses_to_pickle(self):
        with SharedColumnBlock([("x", "i", 1)]) as block:
            with pytest.raises(TypeError, match="shared="):
                pickle.dumps(block)

    def test_close_unlinks_and_is_idempotent(self):
        block = SharedColumnBlock([("x", "i", 4)])
        name = block.name
        assert name.startswith(SEGMENT_PREFIX)
        assert name in active_segments()
        block.close()
        block.close()
        assert name not in active_segments()
        visible = system_segments()
        assert visible is None or name not in visible

    def test_no_segments_after_context_exit(self):
        with SharedColumnBlock([("x", "i", 4)]):
            pass
        assert _no_segments()


# ----------------------------------------------------------------------
class TestCompiledShare:
    def test_view_computes_identical_tables(self, topo):
        compiled = BGPRouting(topo).compiled
        dests = sorted(topo.ases)[:5]
        with compiled.share() as share:
            view = share.view()
            assert view is share.view()  # cached per process
            for dst in dests:
                ours = compute_table(view, view.index[dst])
                ref = compute_table(compiled, compiled.index[dst])
                assert ours.kind.tobytes() == ref.kind.tobytes()
                assert ours.next_hop.tobytes() == ref.next_hop.tobytes()
        assert _no_segments()

    def test_start_offsets_shared_by_identity(self, topo):
        """The ``array('q')`` row offsets are never re-materialised:
        the share's view holds the compiled topology's *own* offset
        arrays (fork-inherited, not copied into the block), and a
        scenario copy built with ``extended()`` shares them too for
        every role its edit does not touch."""
        compiled = BGPRouting(topo).compiled
        with compiled.share() as share:
            view = share.view()
            assert view.providers.start is compiled.providers.start
            assert view.customers.start is compiled.customers.start
            assert view.peers.start is compiled.peers.start
            # An empty extension shares all three roles outright...
            same = compiled.extended([])
            assert same.providers.start is compiled.providers.start
            assert same.peers.start is compiled.peers.start
            # ...and its share's view still aliases the base offsets.
            with same.share() as share2:
                view2 = share2.view()
                assert view2.providers.start \
                    is compiled.providers.start
        assert _no_segments()

    def test_block_holds_only_edge_columns(self, topo):
        """Offset columns stay out of shared memory: the block budget
        is exactly the six nbr/ixp edge columns."""
        compiled = BGPRouting(topo).compiled
        edge_bytes = sum(
            csr.nbr.itemsize * len(csr.nbr)
            + csr.ixp.itemsize * len(csr.ixp)
            for csr in (compiled.providers, compiled.customers,
                        compiled.peers))
        offset_bytes = sum(
            csr.start.itemsize * len(csr.start)
            for csr in (compiled.providers, compiled.customers,
                        compiled.peers))
        with compiled.share() as share:
            assert share.nbytes >= edge_bytes
            assert share.nbytes < edge_bytes + offset_bytes
        assert _no_segments()

    def test_store_roundtrip(self, topo):
        compiled = BGPRouting(topo).compiled
        dst = sorted(topo.ases)[3]
        with SharedTableStore(2, compiled.n) as store:
            cols = compute_columns(compiled, compiled.index[dst])
            store.write_row(1, *cols)
            got = store.table(1, compiled)
            ref = compute_table(compiled, compiled.index[dst])
            assert got.kind.tobytes() == ref.kind.tobytes()
            assert got.length.tobytes() == ref.length.tobytes()
            assert got.next_hop.tobytes() == ref.next_hop.tobytes()
            assert got.via_ixp.tobytes() == ref.via_ixp.tobytes()
        assert _no_segments()


# ----------------------------------------------------------------------
class TestParallelIdentity:
    @needs_fork
    def test_precompute_byte_identical(self, topo):
        dests = sorted(topo.ases)[:24]
        serial = BGPRouting(topo)
        serial.precompute(dests, workers=1)
        parallel = BGPRouting(topo)
        parallel.precompute(dests, workers=2)
        _assert_tables_equal(serial, parallel, dests)
        assert _no_segments()

    @needs_fork
    def test_precompute_byte_identical_at_scale(self):
        # The continental direction, kept test-sized: 4x the default
        # world, a destination sample wide enough to cross chunks.
        topo = TopologyGenerator(WorldParams(seed=11, scale=1.0)).build()
        dests = sorted(topo.ases)[::40]
        assert len(dests) >= 20
        serial = BGPRouting(topo)
        serial.precompute(dests, workers=1)
        parallel = BGPRouting(topo)
        parallel.precompute(dests, workers=2)
        _assert_tables_equal(serial, parallel, dests)
        assert _no_segments()


# ----------------------------------------------------------------------
def _square_to_shared(task: tuple[int, int]) -> int:
    slot, x = task
    current_shared().write("vals", slot, array("i", [x * x]))
    return slot


class TestLeakRecovery:
    @needs_fork
    def test_no_leak_after_worker_crash(self, topo):
        dests = sorted(topo.ases)[:16]
        serial = BGPRouting(topo)
        serial.precompute(dests, workers=1)
        faults.configure("seed=7,exec.worker_crash=1x1")
        recovered = BGPRouting(topo)
        recovered.precompute(dests, workers=3)
        faults.configure(None)
        _assert_tables_equal(serial, recovered, dests)
        assert _no_segments()

    @needs_fork
    def test_no_leak_after_hung_worker_termination(self):
        # One worker hangs far past the batch deadline; the parent
        # terminates the pool and re-runs unfinished chunks serially,
        # writing into its own mapping of the same block.
        items = [(slot, slot) for slot in range(12)]
        faults.configure("seed=7,hang=20,exec.worker_hang=1x1")
        with SharedColumnBlock([("vals", "i", len(items))]) as block:
            out = map_tasks(_square_to_shared, items, workers=3,
                            shared=block, timeout=1.0)
            faults.configure(None)
            assert sorted(out) == list(range(12))
            assert list(block.read_array("vals", 0, 12)) == \
                [x * x for x in range(12)]
        assert _no_segments()
