"""repro.service: HTTP API, job queue, and cache determinism.

The server under test runs in-process on an ephemeral port with a
fresh store per test class, so these are real socket round-trips
through ``ThreadingHTTPServer`` — the same path CI's smoke job and
``scripts/bench_service.py`` exercise.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import JobState, create_server
from repro.service.endpoints import ENDPOINTS, BadRequest
from repro.service.jobs import JobQueue
from repro.store import ArtifactStore

#: Cheap worlds for HTTP tests: seed shared with the session fixtures
#: so the world LRU in repro.service.endpoints stays warm.
SEED = 2025


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = ArtifactStore(root=tmp_path_factory.mktemp("store"),
                          max_bytes=32 * 1024 * 1024)
    httpd, service = create_server(port=0, store=store, job_workers=2,
                                   default_seed=SEED)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    port = httpd.server_address[1]
    yield f"http://127.0.0.1:{port}", service
    httpd.shutdown()
    httpd.server_close()
    service.queue.shutdown()


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=120) as resp:
        return resp.status, dict(resp.headers), resp.read()


# ----------------------------------------------------------------------
class TestPlumbing:
    def test_healthz(self, server):
        base, _ = server
        status, _, body = _get(base, "/healthz")
        assert status == 200
        assert json.loads(body) == {"ok": True}

    def test_endpoint_discovery(self, server):
        base, _ = server
        _, _, body = _get(base, "/v1/endpoints")
        listed = {e["name"] for e in json.loads(body)["endpoints"]}
        assert listed == set(ENDPOINTS)

    def test_unknown_route_404(self, server):
        base, _ = server
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, "/nope")
        assert err.value.code == 404

    def test_unknown_endpoint_404(self, server):
        base, _ = server
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, "/v1/frobnicate")
        assert err.value.code == 404

    def test_bad_parameter_400(self, server):
        base, _ = server
        for path in ("/v1/outages?years=abc",
                     "/v1/summary?seed=xyz",
                     "/v1/whatif?scenario=north",
                     "/v1/summary?bogus=1"):
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(base, path)
            assert err.value.code == 400, path

    def test_metrics_exposed(self, server):
        import repro.telemetry as telemetry
        base, _ = server
        enabled_before = telemetry.enabled()
        telemetry.enable()
        try:
            _get(base, "/healthz")
            _, headers, body = _get(base, "/metrics")
            assert headers["Content-Type"].startswith("text/plain")
            text = body.decode()
            assert "repro_service_requests_total" in text
            assert "repro_service_request_seconds" in text
        finally:
            if not enabled_before:
                telemetry.disable()

    def test_store_stats_route(self, server):
        base, service = server
        _, _, body = _get(base, "/v1/store/stats")
        stats = json.loads(body)
        assert stats["root"] == str(service.store.root)
        assert stats["max_bytes"] == 32 * 1024 * 1024


# ----------------------------------------------------------------------
class TestSyncEndpoints:
    def test_cold_then_warm_identical_bytes(self, server):
        base, _ = server
        s1, h1, cold = _get(base, f"/v1/summary?seed={SEED}")
        s2, h2, warm = _get(base, f"/v1/summary?seed={SEED}")
        assert (s1, s2) == (200, 200)
        assert h1["X-Repro-Cache"] == "miss"
        assert h2["X-Repro-Cache"] == "hit"
        assert cold == warm
        assert h1["X-Repro-Key"] == h2["X-Repro-Key"]

    def test_payload_shape(self, server):
        base, _ = server
        _, _, body = _get(base, f"/v1/summary?seed={SEED}")
        doc = json.loads(body)
        assert doc["endpoint"] == "summary"
        assert doc["seed"] == SEED
        assert doc["result"]["summary"]["ases_total"] > 0

    def test_default_seed_applies(self, server):
        base, _ = server
        _, _, explicit = _get(base, f"/v1/summary?seed={SEED}")
        _, _, implicit = _get(base, "/v1/summary")
        assert explicit == implicit

    def test_distinct_params_distinct_artifacts(self, server):
        base, _ = server
        _, h1, _ = _get(base, f"/v1/placement?seed={SEED}&budget=3")
        _, h2, _ = _get(base, f"/v1/placement?seed={SEED}&budget=4")
        assert h1["X-Repro-Key"] != h2["X-Repro-Key"]


# ----------------------------------------------------------------------
class TestAsyncJobs:
    def test_expensive_miss_becomes_job_then_hit(self, server):
        base, service = server
        path = f"/v1/outages?seed={SEED}&years=0.25"
        status, headers, body = _get(base, path)
        assert status == 202
        doc = json.loads(body)
        assert doc["state"] in ("queued", "running", "done")
        job_id = doc["job_id"]
        assert headers["X-Repro-Key"] == job_id

        deadline = time.time() + 120
        while time.time() < deadline:
            status, _, body = _get(base, f"/v1/jobs/{job_id}")
            doc = json.loads(body)
            if doc["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert doc["state"] == "done", doc
        assert status == 200

        # The canonical result URL recorded on the job now hits.
        status, headers, _ = _get(base, doc["result"])
        assert status == 200
        assert headers["X-Repro-Cache"] == "hit"
        # And so does the original request path.
        status, headers, _ = _get(base, path)
        assert headers["X-Repro-Cache"] == "hit"

    def test_wait_param_blocks_and_matches_warm(self, server):
        base, _ = server
        path = f"/v1/whatif?seed={SEED}&scenario=east"
        s1, h1, cold = _get(base, path + "&wait=1")
        s2, h2, warm = _get(base, path)
        assert (s1, s2) == (200, 200)
        assert h1["X-Repro-Cache"] == "miss"
        assert h2["X-Repro-Cache"] == "hit"
        assert cold == warm

    def test_identical_requests_share_one_job(self, server):
        base, service = server
        path = f"/v1/detours?seed={SEED}&pairs=40"
        _, _, b1 = _get(base, path)
        _, _, b2 = _get(base, path)
        ids = {json.loads(b)["job_id"] for b in (b1, b2)
               if json.loads(b).get("job_id")}
        # Either both saw the same job, or the first finished so fast
        # the second was already a cache hit (no job id at all).
        assert len(ids) <= 1
        job_id = json.loads(b1)["job_id"]
        service.queue.wait(job_id, timeout=120)

    def test_unknown_job_404(self, server):
        base, _ = server
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, "/v1/jobs/deadbeef")
        assert err.value.code == 404


# ----------------------------------------------------------------------
class TestJobQueueUnit:
    def test_dedup_and_lifecycle(self):
        queue = JobQueue(workers=1)
        try:
            ran = []
            gate = threading.Event()

            def work() -> None:
                gate.wait(timeout=10)
                ran.append(1)

            j1, created1 = queue.submit("job-1", "t", "/v1/t", work)
            j2, created2 = queue.submit("job-1", "t", "/v1/t", work)
            assert created1 and not created2
            assert j1 is j2
            gate.set()
            assert queue.wait("job-1", timeout=10).state is JobState.DONE
            assert ran == [1]
        finally:
            queue.shutdown()

    def test_failed_job_records_error_and_is_retryable(self):
        queue = JobQueue(workers=1)
        try:
            def boom() -> None:
                raise RuntimeError("expected failure")

            job, _ = queue.submit("job-f", "t", "/v1/t", boom)
            queue.wait("job-f", timeout=10)
            assert job.state is JobState.FAILED
            assert "expected failure" in job.error
            retry, created = queue.submit("job-f", "t", "/v1/t",
                                          lambda: None)
            assert created and retry is not job
            queue.wait("job-f", timeout=10)
            assert retry.state is JobState.DONE
        finally:
            queue.shutdown()


# ----------------------------------------------------------------------
class TestDeterminism:
    def test_cold_recompute_after_eviction_is_byte_identical(self,
                                                             server):
        """The core serving contract: identical (seed, params) →
        identical bytes, with or without the cache."""
        base, service = server
        path = f"/v1/coverage?seed={SEED}&wait=1"
        _, _, first = _get(base, path)
        # Drop every artifact, forcing a recompute from scratch.
        service.store.clear()
        _, h, second = _get(base, path)
        assert h["X-Repro-Cache"] == "miss"
        assert first == second

    def test_parse_params_rejects_unknown(self):
        with pytest.raises(BadRequest):
            ENDPOINTS["summary"].parse_params({"nope": "1"})


# ----------------------------------------------------------------------
def _get_with_headers(base: str, path: str, headers: dict[str, str]):
    """GET that treats 304 as a result, not an exception."""
    req = urllib.request.Request(base + path, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as err:
        if err.code == 304:
            return err.code, dict(err.headers), err.read()
        raise


class TestConditionalRequests:
    def test_cached_get_carries_etag(self, server):
        base, _ = server
        _, headers, body = _get(base, f"/v1/summary?seed={SEED}")
        etag = headers["ETag"]
        assert etag.startswith('"') and etag.endswith('"')
        # Same payload on every subsequent request => same ETag.
        _, again, _ = _get(base, f"/v1/summary?seed={SEED}")
        assert again["ETag"] == etag

    def test_if_none_match_hit_returns_304_empty_body(self, server):
        base, _ = server
        _, headers, body = _get(base, f"/v1/summary?seed={SEED}")
        etag = headers["ETag"]
        status, h304, body304 = _get_with_headers(
            base, f"/v1/summary?seed={SEED}", {"If-None-Match": etag})
        assert status == 304
        assert body304 == b""
        assert h304["ETag"] == etag
        assert len(body) > 0

    def test_stale_etag_returns_full_payload(self, server):
        base, _ = server
        _, _, body = _get(base, f"/v1/summary?seed={SEED}")
        status, headers, got = _get_with_headers(
            base, f"/v1/summary?seed={SEED}",
            {"If-None-Match": '"deadbeef"'})
        assert status == 200
        assert got == body

    def test_wildcard_weak_and_list_forms_match(self, server):
        base, _ = server
        _, headers, _ = _get(base, f"/v1/summary?seed={SEED}")
        etag = headers["ETag"]
        for value in ("*", f"W/{etag}", f'"nope", {etag}'):
            status, _, _ = _get_with_headers(
                base, f"/v1/summary?seed={SEED}",
                {"If-None-Match": value})
            assert status == 304, value

    def test_not_modified_counter(self, server):
        import repro.telemetry as telemetry
        base, _ = server
        enabled_before = telemetry.enabled()
        telemetry.enable()
        try:
            _, headers, _ = _get(base, f"/v1/summary?seed={SEED}")
            _get_with_headers(base, f"/v1/summary?seed={SEED}",
                              {"If-None-Match": headers["ETag"]})
            _, _, metrics = _get(base, "/metrics")
            assert "repro_service_not_modified_total" in metrics.decode()
        finally:
            if not enabled_before:
                telemetry.disable()


# ----------------------------------------------------------------------
class TestFleetRoutes:
    def test_404_when_no_coordinator_attached(self, server):
        base, _ = server
        for path in ("/v1/fleet/agents", "/v1/fleet/campaigns"):
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(base, path)
            assert err.value.code == 404
            assert b"coordinator" in err.value.read()

    def test_live_status_with_coordinator(self, tmp_path):
        from repro.fleet import CampaignSpec, FleetCoordinator

        coordinator = FleetCoordinator()
        coordinator.register("probe-1")
        cid = coordinator.submit_campaign(
            CampaignSpec(scale=0.05, rounds=1, shards=2,
                         probes_per_shard=1, targets_per_probe=1))
        httpd, service = create_server(
            port=0, store=ArtifactStore(root=tmp_path / "store"),
            job_workers=1, coordinator=coordinator)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            _, headers, body = _get(base, "/v1/fleet/agents")
            doc = json.loads(body)
            assert headers["X-Repro-Cache"] == "live"
            assert [a["agent_id"] for a in doc["agents"]] == ["probe-1"]
            assert doc["draining"] is False

            _, _, body = _get(base, "/v1/fleet/campaigns")
            doc = json.loads(body)
            assert [c["campaign_id"] for c in doc["campaigns"]] == [cid]
            assert doc["campaigns"][0]["done"] is False
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.queue.shutdown()
