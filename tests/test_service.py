"""repro.service: HTTP API, job queue, and cache determinism.

The server under test runs in-process on an ephemeral port with a
fresh store per test module, so these are real socket round-trips.
The ``server`` fixture is parametrized over *both* HTTP transports —
threaded ``ThreadingHTTPServer`` and the asyncio server — so every
test in this file proves the two stay behaviorally identical behind
the shared :meth:`ObservatoryService.dispatch` handler core.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import (
    AsyncServerThread,
    JobState,
    create_server,
    create_service,
)
from repro.service.endpoints import ENDPOINTS, BadRequest
from repro.service.jobs import JobQueue
from repro.store import ArtifactStore

#: Cheap worlds for HTTP tests: seed shared with the session fixtures
#: so the world LRU in repro.service.endpoints stays warm.
SEED = 2025


@pytest.fixture(scope="module", params=["threaded", "async"])
def server(request, tmp_path_factory):
    store = ArtifactStore(root=tmp_path_factory.mktemp("store"),
                          max_bytes=32 * 1024 * 1024)
    if request.param == "threaded":
        httpd, service = create_server(port=0, store=store,
                                       job_workers=2,
                                       default_seed=SEED)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        port = httpd.server_address[1]
        yield f"http://127.0.0.1:{port}", service
        httpd.shutdown()
        httpd.server_close()
        service.queue.shutdown()
    else:
        service = create_service(store=store, job_workers=2,
                                 default_seed=SEED)
        runner = AsyncServerThread(service)
        host, port = runner.start()
        yield f"http://{host}:{port}", service
        runner.stop()
        service.queue.shutdown()


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=120) as resp:
        return resp.status, dict(resp.headers), resp.read()


# ----------------------------------------------------------------------
class TestPlumbing:
    def test_healthz(self, server):
        base, _ = server
        status, _, body = _get(base, "/healthz")
        assert status == 200
        assert json.loads(body) == {"ok": True}

    def test_endpoint_discovery(self, server):
        base, _ = server
        _, _, body = _get(base, "/v1/endpoints")
        listed = {e["name"] for e in json.loads(body)["endpoints"]}
        assert listed == set(ENDPOINTS)

    def test_unknown_route_404(self, server):
        base, _ = server
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, "/nope")
        assert err.value.code == 404

    def test_unknown_endpoint_404(self, server):
        base, _ = server
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, "/v1/frobnicate")
        assert err.value.code == 404

    def test_bad_parameter_400(self, server):
        base, _ = server
        for path in ("/v1/outages?years=abc",
                     "/v1/summary?seed=xyz",
                     "/v1/whatif?scenario=north",
                     "/v1/summary?bogus=1"):
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(base, path)
            assert err.value.code == 400, path

    def test_metrics_exposed(self, server):
        import repro.telemetry as telemetry
        base, _ = server
        enabled_before = telemetry.enabled()
        telemetry.enable()
        try:
            _get(base, "/healthz")
            _, headers, body = _get(base, "/metrics")
            assert headers["Content-Type"].startswith("text/plain")
            text = body.decode()
            assert "repro_service_requests_total" in text
            assert "repro_service_request_seconds" in text
        finally:
            if not enabled_before:
                telemetry.disable()

    def test_store_stats_route(self, server):
        base, service = server
        _, _, body = _get(base, "/v1/store/stats")
        stats = json.loads(body)
        assert stats["root"] == str(service.store.root)
        assert stats["max_bytes"] == 32 * 1024 * 1024


# ----------------------------------------------------------------------
class TestSyncEndpoints:
    def test_cold_then_warm_identical_bytes(self, server):
        base, _ = server
        s1, h1, cold = _get(base, f"/v1/summary?seed={SEED}")
        s2, h2, warm = _get(base, f"/v1/summary?seed={SEED}")
        assert (s1, s2) == (200, 200)
        assert h1["X-Repro-Cache"] == "miss"
        assert h2["X-Repro-Cache"] == "hit"
        assert cold == warm
        assert h1["X-Repro-Key"] == h2["X-Repro-Key"]

    def test_payload_shape(self, server):
        base, _ = server
        _, _, body = _get(base, f"/v1/summary?seed={SEED}")
        doc = json.loads(body)
        assert doc["endpoint"] == "summary"
        assert doc["seed"] == SEED
        assert doc["result"]["summary"]["ases_total"] > 0

    def test_default_seed_applies(self, server):
        base, _ = server
        _, _, explicit = _get(base, f"/v1/summary?seed={SEED}")
        _, _, implicit = _get(base, "/v1/summary")
        assert explicit == implicit

    def test_distinct_params_distinct_artifacts(self, server):
        base, _ = server
        _, h1, _ = _get(base, f"/v1/placement?seed={SEED}&budget=3")
        _, h2, _ = _get(base, f"/v1/placement?seed={SEED}&budget=4")
        assert h1["X-Repro-Key"] != h2["X-Repro-Key"]


# ----------------------------------------------------------------------
class TestAsyncJobs:
    def test_expensive_miss_becomes_job_then_hit(self, server):
        base, service = server
        path = f"/v1/outages?seed={SEED}&years=0.25"
        status, headers, body = _get(base, path)
        assert status == 202
        doc = json.loads(body)
        assert doc["state"] in ("queued", "running", "done")
        job_id = doc["job_id"]
        assert headers["X-Repro-Key"] == job_id

        deadline = time.time() + 120
        while time.time() < deadline:
            status, _, body = _get(base, f"/v1/jobs/{job_id}")
            doc = json.loads(body)
            if doc["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert doc["state"] == "done", doc
        assert status == 200

        # The canonical result URL recorded on the job now hits.
        status, headers, _ = _get(base, doc["result"])
        assert status == 200
        assert headers["X-Repro-Cache"] == "hit"
        # And so does the original request path.
        status, headers, _ = _get(base, path)
        assert headers["X-Repro-Cache"] == "hit"

    def test_wait_param_blocks_and_matches_warm(self, server):
        base, _ = server
        path = f"/v1/whatif?seed={SEED}&scenario=east"
        s1, h1, cold = _get(base, path + "&wait=1")
        s2, h2, warm = _get(base, path)
        assert (s1, s2) == (200, 200)
        assert h1["X-Repro-Cache"] == "miss"
        assert h2["X-Repro-Cache"] == "hit"
        assert cold == warm

    def test_identical_requests_share_one_job(self, server):
        base, service = server
        path = f"/v1/detours?seed={SEED}&pairs=40"
        _, _, b1 = _get(base, path)
        _, _, b2 = _get(base, path)
        ids = {json.loads(b)["job_id"] for b in (b1, b2)
               if json.loads(b).get("job_id")}
        # Either both saw the same job, or the first finished so fast
        # the second was already a cache hit (no job id at all).
        assert len(ids) <= 1
        job_id = json.loads(b1)["job_id"]
        service.queue.wait(job_id, timeout=120)

    def test_unknown_job_404(self, server):
        base, _ = server
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, "/v1/jobs/deadbeef")
        assert err.value.code == 404


# ----------------------------------------------------------------------
class TestJobQueueUnit:
    def test_dedup_and_lifecycle(self):
        queue = JobQueue(workers=1)
        try:
            ran = []
            gate = threading.Event()

            def work() -> None:
                gate.wait(timeout=10)
                ran.append(1)

            j1, created1 = queue.submit("job-1", "t", "/v1/t", work)
            j2, created2 = queue.submit("job-1", "t", "/v1/t", work)
            assert created1 and not created2
            assert j1 is j2
            gate.set()
            assert queue.wait("job-1", timeout=10).state is JobState.DONE
            assert ran == [1]
        finally:
            queue.shutdown()

    def test_failed_job_records_error_and_is_retryable(self):
        queue = JobQueue(workers=1)
        try:
            def boom() -> None:
                raise RuntimeError("expected failure")

            job, _ = queue.submit("job-f", "t", "/v1/t", boom)
            queue.wait("job-f", timeout=10)
            assert job.state is JobState.FAILED
            assert "expected failure" in job.error
            retry, created = queue.submit("job-f", "t", "/v1/t",
                                          lambda: None)
            assert created and retry is not job
            queue.wait("job-f", timeout=10)
            assert retry.state is JobState.DONE
        finally:
            queue.shutdown()


# ----------------------------------------------------------------------
class TestDeterminism:
    def test_cold_recompute_after_eviction_is_byte_identical(self,
                                                             server):
        """The core serving contract: identical (seed, params) →
        identical bytes, with or without the cache."""
        base, service = server
        path = f"/v1/coverage?seed={SEED}&wait=1"
        _, _, first = _get(base, path)
        # Drop every artifact, forcing a recompute from scratch.
        service.store.clear()
        _, h, second = _get(base, path)
        assert h["X-Repro-Cache"] == "miss"
        assert first == second

    def test_parse_params_rejects_unknown(self):
        with pytest.raises(BadRequest):
            ENDPOINTS["summary"].parse_params({"nope": "1"})


# ----------------------------------------------------------------------
def _get_with_headers(base: str, path: str, headers: dict[str, str]):
    """GET that treats 304 as a result, not an exception."""
    req = urllib.request.Request(base + path, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as err:
        if err.code == 304:
            return err.code, dict(err.headers), err.read()
        raise


class TestConditionalRequests:
    def test_cached_get_carries_etag(self, server):
        base, _ = server
        _, headers, body = _get(base, f"/v1/summary?seed={SEED}")
        etag = headers["ETag"]
        assert etag.startswith('"') and etag.endswith('"')
        # Same payload on every subsequent request => same ETag.
        _, again, _ = _get(base, f"/v1/summary?seed={SEED}")
        assert again["ETag"] == etag

    def test_if_none_match_hit_returns_304_empty_body(self, server):
        base, _ = server
        _, headers, body = _get(base, f"/v1/summary?seed={SEED}")
        etag = headers["ETag"]
        status, h304, body304 = _get_with_headers(
            base, f"/v1/summary?seed={SEED}", {"If-None-Match": etag})
        assert status == 304
        assert body304 == b""
        assert h304["ETag"] == etag
        assert len(body) > 0

    def test_stale_etag_returns_full_payload(self, server):
        base, _ = server
        _, _, body = _get(base, f"/v1/summary?seed={SEED}")
        status, headers, got = _get_with_headers(
            base, f"/v1/summary?seed={SEED}",
            {"If-None-Match": '"deadbeef"'})
        assert status == 200
        assert got == body

    def test_wildcard_weak_and_list_forms_match(self, server):
        base, _ = server
        _, headers, _ = _get(base, f"/v1/summary?seed={SEED}")
        etag = headers["ETag"]
        for value in ("*", f"W/{etag}", f'"nope", {etag}'):
            status, _, _ = _get_with_headers(
                base, f"/v1/summary?seed={SEED}",
                {"If-None-Match": value})
            assert status == 304, value

    def test_not_modified_counter(self, server):
        import repro.telemetry as telemetry
        base, _ = server
        enabled_before = telemetry.enabled()
        telemetry.enable()
        try:
            _, headers, _ = _get(base, f"/v1/summary?seed={SEED}")
            _get_with_headers(base, f"/v1/summary?seed={SEED}",
                              {"If-None-Match": headers["ETag"]})
            _, _, metrics = _get(base, "/metrics")
            assert "repro_service_not_modified_total" in metrics.decode()
        finally:
            if not enabled_before:
                telemetry.disable()


# ----------------------------------------------------------------------
def _request(base: str, path: str, method: str,
             headers: dict[str, str] | None = None):
    """Any-method request; non-2xx statuses return, never raise."""
    req = urllib.request.Request(base + path, headers=headers or {},
                                 method=method)
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


class TestMethodSemantics:
    def test_head_matches_get_headers_no_body(self, server):
        base, _ = server
        path = f"/v1/summary?seed={SEED}"
        _, get_headers, body = _get(base, path)
        status, head_headers, head_body = _request(base, path, "HEAD")
        assert status == 200
        assert head_body == b""
        assert head_headers["ETag"] == get_headers["ETag"]
        assert head_headers["X-Repro-Cache"] == "hit"
        assert head_headers["X-Repro-Key"] == get_headers["X-Repro-Key"]
        # Content-Length advertises the entity, not the empty body.
        assert int(head_headers["Content-Length"]) == len(body)

    def test_head_on_plumbing_routes(self, server):
        base, _ = server
        for path in ("/healthz", "/metrics", "/v1/endpoints",
                     "/v1/store/stats", "/v1/jobs"):
            _, get_headers, body = _get(base, path)
            status, headers, head_body = _request(base, path, "HEAD")
            assert status == 200, path
            assert head_body == b"", path
            assert int(headers["Content-Length"]) > 0, path
            assert headers["Content-Type"] \
                == get_headers["Content-Type"], path

    def test_unsupported_methods_405_with_allow(self, server):
        base, _ = server
        for method in ("POST", "PUT", "PATCH"):
            status, headers, body = _request(
                base, f"/v1/summary?seed={SEED}", method)
            assert status == 405, method
            assert headers["Allow"] == "GET, HEAD", method
            assert json.loads(body)["status"] == 405
        # The jobs resource additionally allows DELETE (cancel).
        status, headers, _ = _request(base, "/v1/jobs/deadbeef", "POST")
        assert status == 405
        assert headers["Allow"] == "DELETE, GET, HEAD"

    def test_delete_outside_jobs_405_with_allow(self, server):
        base, _ = server
        status, headers, _ = _request(base, "/v1/summary", "DELETE")
        assert status == 405
        assert headers["Allow"] == "GET, HEAD"

    def test_delete_cancels_job_still_works(self, server):
        base, _ = server
        # An unknown job id is a 404 (route exists, resource doesn't).
        status, _, _ = _request(base, "/v1/jobs/feedface", "DELETE")
        assert status == 404

    def test_jobs_index_lists_queue(self, server):
        base, _ = server
        status, headers, body = _get(base, "/v1/jobs")
        assert status == 200
        assert headers["X-Repro-Cache"] == "live"
        doc = json.loads(body)
        assert set(doc) >= {"jobs", "counts", "workers_alive"}
        assert doc["workers_alive"] >= 1

    def test_connection_header_explicit(self, server):
        base, _ = server
        _, headers, _ = _get(base, "/healthz")
        # urllib sends "Connection: close", and both transports must
        # honor and echo it rather than silently keeping the socket.
        assert headers["Connection"] == "close"


# ----------------------------------------------------------------------
class TestHotTierComposition:
    """The in-memory hot tier composes with every serving feature."""

    @pytest.fixture()
    def hot_server(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "store",
                              max_bytes=32 * 1024 * 1024)
        httpd, service = create_server(port=0, store=store,
                                       job_workers=1,
                                       default_seed=SEED)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        yield f"http://127.0.0.1:{httpd.server_address[1]}", service
        httpd.shutdown()
        httpd.server_close()
        service.queue.shutdown()

    def test_hot_store_and_cold_serve_identical_bytes(self, hot_server):
        base, service = hot_server
        path = f"/v1/summary?seed={SEED}"
        _, h_cold, cold = _get(base, path)            # compute
        _, h_hot, hot = _get(base, path)              # hot tier
        service.hot.clear()
        _, h_store, store_read = _get(base, path)     # disk store
        assert h_cold["X-Repro-Source"] == "compute"
        assert h_hot["X-Repro-Source"] == "hot"
        assert h_store["X-Repro-Source"] == "store"
        assert cold == hot == store_read
        assert h_cold["ETag"] == h_hot["ETag"] == h_store["ETag"]

    def test_304_served_from_hot_tier(self, hot_server):
        base, service = hot_server
        path = f"/v1/summary?seed={SEED}"
        _, headers, _ = _get(base, path)
        status, h304, body = _request(base, path, "GET",
                                      {"If-None-Match": headers["ETag"]})
        assert status == 304
        assert body == b""
        assert h304["X-Repro-Source"] == "hot"
        assert h304["ETag"] == headers["ETag"]

    def test_store_clear_invalidates_hot_tier(self, hot_server):
        base, service = hot_server
        path = f"/v1/summary?seed={SEED}"
        _, _, first = _get(base, path)
        assert len(service.hot) == 1
        service.store.clear()
        assert len(service.hot) == 0          # invalidation hook fired
        _, headers, second = _get(base, path)
        assert headers["X-Repro-Cache"] == "miss"
        assert first == second                # recompute, same bytes

    def test_store_gc_invalidates_hot_tier(self, hot_server):
        base, service = hot_server
        _, _, _ = _get(base, f"/v1/summary?seed={SEED}")
        assert len(service.hot) == 1
        service.store.gc(max_bytes=0)
        assert len(service.hot) == 0

    def test_lru_eviction_under_tiny_cap(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "store")
        service = create_service(store=store, job_workers=1,
                                 default_seed=SEED)
        try:
            first = service.handle(f"/v1/summary?seed={SEED}")
            second = service.handle(
                f"/v1/placement?seed={SEED}&budget=2")
            assert len(service.hot) == 2
            # Shrink the budget below the resident set: the next
            # admit evicts from the LRU end until it fits.
            service.hot.max_bytes = \
                len(first.body) + len(second.body) - 1
            service.handle(f"/v1/placement?seed={SEED}&budget=3")
            assert service.hot.evictions >= 1
            assert service.hot.total_bytes() <= service.hot.max_bytes
            # Evicted keys re-serve from the store, byte-identical.
            again = service.handle(f"/v1/summary?seed={SEED}")
            assert again.headers["X-Repro-Source"] == "store"
            assert again.body == first.body
        finally:
            service.queue.shutdown()

    def test_degraded_compute_never_populates_hot(self, tmp_path):
        from repro import faults

        store = ArtifactStore(root=tmp_path / "store")
        service = create_service(store=store, job_workers=1,
                                 default_seed=SEED)
        try:
            faults.configure("seed=3,store.write_error=1x1")
            response = service.handle(f"/v1/summary?seed={SEED}")
            assert response.status == 200
            assert response.headers["X-Repro-Degraded"] \
                == "store-write-failed"
            assert len(service.hot) == 0   # nothing durable => not hot
        finally:
            faults.configure(None)
            service.queue.shutdown()

    def test_corrupt_write_never_populates_hot(self, tmp_path):
        # The admit path reads the bytes back from disk before the
        # tier takes them: a silently corrupted write must leave the
        # key cold so the next request discovers the damage instead
        # of serving good memory over a rotten durable copy.
        from repro import faults

        store = ArtifactStore(root=tmp_path / "store")
        service = create_service(store=store, job_workers=1,
                                 default_seed=SEED)
        try:
            faults.configure("seed=2,store.corrupt=1x1")
            first = service.handle(f"/v1/summary?seed={SEED}")
            assert first.status == 200
            assert len(service.hot) == 0   # read-back caught it
            faults.configure(None)
            second = service.handle(f"/v1/summary?seed={SEED}")
            assert second.headers["X-Repro-Cache"] == "miss"
            assert second.body == first.body
            assert len(service.hot) == 1   # clean write admits
        finally:
            faults.configure(None)
            service.queue.shutdown()

    def test_stale_serving_bypasses_hot_tier(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "store")
        service = create_service(store=store, job_workers=1,
                                 default_seed=SEED)
        try:
            endpoint = ENDPOINTS["summary"]
            # A durable artifact exists for another seed only.
            service.handle(f"/v1/summary?seed={SEED}")
            service.hot.clear()
            key = endpoint.key(SEED + 1, {})
            response = service._degraded_response(
                endpoint, key, SEED + 1, "injected failure")
            assert response.status == 200
            assert response.headers["X-Repro-Source"] == "stale"
            assert response.headers["X-Repro-Degraded"]
            # The stale bytes answer a *different* key — they must
            # not be admitted under the requested one.
            assert len(service.hot) == 0
        finally:
            service.queue.shutdown()

    def test_disabled_hot_tier_serves_from_store(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "store")
        service = create_service(store=store, job_workers=1,
                                 default_seed=SEED, hot_cache_bytes=0)
        try:
            cold = service.handle(f"/v1/summary?seed={SEED}")
            warm = service.handle(f"/v1/summary?seed={SEED}")
            assert warm.headers["X-Repro-Source"] == "store"
            assert warm.body == cold.body
            assert len(service.hot) == 0
        finally:
            service.queue.shutdown()


# ----------------------------------------------------------------------
class TestDispatchFast:
    """The asyncio transport's event-loop fast path.

    ``dispatch_fast`` may only answer what ``dispatch`` would have
    answered byte-for-byte, and must decline (return ``None``)
    everything else — misses, plumbing routes, writes, bad input."""

    @pytest.fixture()
    def service(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "store")
        service = create_service(store=store, job_workers=1,
                                 default_seed=SEED)
        yield service
        service.queue.shutdown()

    def test_hot_hit_identical_to_dispatch(self, service):
        path = f"/v1/summary?seed={SEED}"
        service.handle(path)                       # make the key hot
        fast = service.dispatch_fast("GET", path)
        slow = service.dispatch("GET", path)
        assert fast is not None
        assert (fast.status, fast.body, fast.headers) \
            == (slow.status, slow.body, slow.headers)

    def test_head_hot_hit_identical_to_dispatch(self, service):
        path = f"/v1/summary?seed={SEED}"
        service.handle(path)
        fast = service.dispatch_fast("HEAD", path)
        slow = service.dispatch("HEAD", path)
        assert fast is not None
        assert fast.body == b""
        assert (fast.status, fast.headers) \
            == (slow.status, slow.headers)

    def test_304_identical_to_dispatch(self, service):
        path = f"/v1/summary?seed={SEED}"
        etag = service.handle(path).headers["ETag"]
        headers = {"If-None-Match": etag}
        fast = service.dispatch_fast("GET", path, headers)
        slow = service.dispatch("GET", path, headers)
        assert fast is not None and fast.status == 304
        assert (fast.status, fast.body, fast.headers) \
            == (slow.status, slow.body, slow.headers)

    def test_declines_everything_it_must(self, service):
        path = f"/v1/summary?seed={SEED}"
        assert service.dispatch_fast("GET", path) is None  # cold
        service.handle(path)
        declined = [
            ("POST", path),                     # write method
            ("DELETE", path),                   # write method
            ("GET", "/healthz"),                # plumbing route
            ("GET", "/v1/jobs"),                # live route
            ("GET", "/v1/nope?seed=1"),         # unknown endpoint
            ("GET", f"/v1/summary?seed={SEED}&bogus=1"),   # 400s
            ("GET", f"/v1/summary?seed={SEED}&wait=1"),    # may block
            ("GET", f"/v1/summary?seed={SEED + 7}"),       # cold key
        ]
        for method, target in declined:
            assert service.dispatch_fast(method, target) is None, \
                (method, target)

    def test_declines_when_tier_disabled(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "store")
        service = create_service(store=store, job_workers=1,
                                 default_seed=SEED, hot_cache_bytes=0)
        try:
            path = f"/v1/summary?seed={SEED}"
            service.handle(path)
            assert service.dispatch_fast("GET", path) is None
        finally:
            service.queue.shutdown()

    def test_probe_miss_not_double_counted(self, service):
        path = f"/v1/summary?seed={SEED}"
        before = service.hot.misses
        assert service.dispatch_fast("GET", path) is None  # probe
        assert service.hot.misses == before  # slow path owns the count


# ----------------------------------------------------------------------
class TestSnapshotEndpoint:
    """/v1/snapshot publishes raw records without ground truth."""

    def test_payload_shape_and_no_ground_truth_leak(self):
        endpoint = ENDPOINTS["snapshot"]
        doc = endpoint.payload(SEED, endpoint.parse_params(
            {"pairs": "20"}))
        result = doc["result"]
        assert result["pairs"] == len(result["traceroutes"]) > 0
        record = result["traceroutes"][0]
        assert {"probe_id", "src_asn", "src_country", "dst_probe_id",
                "dst_asn", "target_ip", "reached", "bytes_used",
                "hops"} <= set(record)
        for tr in result["traceroutes"]:
            for hop in tr["hops"]:
                # Wire-visible fields only: the simulator's hidden
                # per-hop AS/country labels must never be published.
                assert set(hop) == {"ttl", "ip", "rtt_ms"}

    def test_deterministic_in_seed_and_params(self):
        from repro.store import canonical_bytes
        endpoint = ENDPOINTS["snapshot"]
        params = endpoint.parse_params({"pairs": "20"})
        a = canonical_bytes(endpoint.payload(SEED, params))
        b = canonical_bytes(endpoint.payload(SEED, params))
        assert a == b

    def test_listed_and_served(self, server):
        base, _ = server
        _, _, body = _get(base, "/v1/endpoints")
        names = [e["name"] for e in json.loads(body)["endpoints"]]
        assert "snapshot" in names
        status, headers, body = _get(
            base, f"/v1/snapshot?seed={SEED}&pairs=20&wait=1")
        assert status == 200
        doc = json.loads(body)
        assert doc["result"]["pairs"] == len(
            doc["result"]["traceroutes"])


# ----------------------------------------------------------------------
class TestFleetRoutes:
    def test_404_when_no_coordinator_attached(self, server):
        base, _ = server
        for path in ("/v1/fleet/agents", "/v1/fleet/campaigns"):
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(base, path)
            assert err.value.code == 404
            assert b"coordinator" in err.value.read()

    def test_live_status_with_coordinator(self, tmp_path):
        from repro.fleet import CampaignSpec, FleetCoordinator

        coordinator = FleetCoordinator()
        coordinator.register("probe-1")
        cid = coordinator.submit_campaign(
            CampaignSpec(scale=0.05, rounds=1, shards=2,
                         probes_per_shard=1, targets_per_probe=1))
        httpd, service = create_server(
            port=0, store=ArtifactStore(root=tmp_path / "store"),
            job_workers=1, coordinator=coordinator)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            _, headers, body = _get(base, "/v1/fleet/agents")
            doc = json.loads(body)
            assert headers["X-Repro-Cache"] == "live"
            assert [a["agent_id"] for a in doc["agents"]] == ["probe-1"]
            assert doc["draining"] is False

            _, _, body = _get(base, "/v1/fleet/campaigns")
            doc = json.loads(body)
            assert [c["campaign_id"] for c in doc["campaigns"]] == [cid]
            assert doc["campaigns"][0]["done"] is False
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.queue.shutdown()
