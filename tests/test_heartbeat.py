"""Streaming heartbeat analytics and the live observatory surface.

Detector behaviour is pinned with synthetic event streams (fast, no
world build); the observatory stream's determinism uses the session
world; the HTTP surface tests run a real server over a pre-built log.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.eventlog import EventLog, EventType, make_event
from repro.monitoring import (
    AlertKind,
    CHECKS_PER_PROBE,
    HeartbeatAnalyzer,
    ObservatoryStream,
    SAMPLE_HOURS,
)


@pytest.fixture(autouse=True)
def clean_faults():
    """No fault plan leaks into (or out of) any test."""
    faults.configure(None)
    yield
    faults.configure(None)


def _bucket_events(bucket: int, scope: str = "NG", ok: bool = True,
                   rtt: float = 20.0, probes=(1, 2)) -> list:
    """One bucket's worth of synthetic measurements for ``scope``."""
    ts = 0.25 * bucket + 0.01
    events = []
    for pid in probes:
        for _ in range(3):
            events.append(make_event(ts, EventType.DNS, scope, a=pid,
                                     b=100 + pid, value=5.0, ok=ok))
        events.append(make_event(ts, EventType.PING, scope, a=pid,
                                 b=4 if ok else 0, value=rtt, ok=ok))
    return events


# ----------------------------------------------------------------------
# Detector behaviour on synthetic streams
# ----------------------------------------------------------------------
def test_reachability_alert_raises_and_clears(tmp_path):
    log = EventLog(tmp_path / "ev", fsync=False)
    analyzer = HeartbeatAnalyzer(log)
    for b in range(5):
        log.append(_bucket_events(b))
    log.append(_bucket_events(5, ok=False))  # country goes dark
    log.append(_bucket_events(6))  # closes bucket 5
    analyzer.catch_up()
    assert [a.kind for a in analyzer.active_alerts()] \
        == [AlertKind.REACHABILITY]
    raised = log.read(etypes=(EventType.ALERT_RAISED,))
    assert len(raised) == 1
    assert raised[0].scope == "NG"
    assert raised[0].a == int(AlertKind.REACHABILITY)
    assert raised[0].value == pytest.approx(1.0)  # rate 0 vs baseline 1
    # Recovery: healthy buckets clear the alert and say so in the log.
    log.append(_bucket_events(7))
    analyzer.catch_up()
    assert analyzer.active_alerts() == []
    cleared = log.read(etypes=(EventType.ALERT_CLEARED,))
    assert len(cleared) == 1 and cleared[0].scope == "NG"
    assert analyzer.alerts[0].cleared_bucket is not None


def test_latency_alert_uses_per_probe_baselines(tmp_path):
    log = EventLog(tmp_path / "ev", fsync=False)
    analyzer = HeartbeatAnalyzer(log)
    for b in range(5):
        log.append(_bucket_events(b, rtt=20.0))
    log.append(_bucket_events(5, rtt=60.0))  # 3x every probe's EWMA
    log.append(_bucket_events(6, rtt=20.0))
    analyzer.catch_up()
    kinds = [a.kind for a in analyzer.alerts]
    assert AlertKind.LATENCY in kinds
    assert AlertKind.REACHABILITY not in kinds  # success rate was fine


def test_new_probe_composition_does_not_fake_latency(tmp_path):
    # A slow probe powering on must not look like a cable cut: each
    # probe is compared against its *own* baseline only.
    log = EventLog(tmp_path / "ev", fsync=False)
    analyzer = HeartbeatAnalyzer(log)
    for b in range(5):
        log.append(_bucket_events(b, rtt=20.0, probes=(1, 2)))
    # Satellite probe 9 (600 ms) joins; country mean RTT jumps 10x.
    log.append(_bucket_events(5, rtt=20.0, probes=(1, 2))
               + _bucket_events(5, rtt=600.0, probes=(9,)))
    log.append(_bucket_events(6, rtt=20.0, probes=(1, 2)))
    analyzer.catch_up()
    assert AlertKind.LATENCY not in [a.kind for a in analyzer.alerts]


def test_churn_burst_alert(tmp_path):
    log = EventLog(tmp_path / "ev", fsync=False)
    analyzer = HeartbeatAnalyzer(log)
    for b in range(4):
        log.append(_bucket_events(b))
    ts = 0.25 * 4 + 0.01
    burst = [make_event(ts, EventType.PROBE_CONNECT
                        if i % 2 else EventType.PROBE_DISCONNECT,
                        "NG", a=50 + i, b=100) for i in range(6)]
    log.append(_bucket_events(4) + burst)
    log.append(_bucket_events(5))
    analyzer.catch_up()
    assert AlertKind.CHURN in [a.kind for a in analyzer.alerts]


def test_alert_flush_survives_failed_append(tmp_path):
    """A write failure while emitting an alert event is recoverable:
    the buffered alert lands exactly once after recover + retry."""
    log = EventLog(tmp_path / "ev")
    analyzer = HeartbeatAnalyzer(log)
    for b in range(5):
        log.append(_bucket_events(b))
    log.append(_bucket_events(5, ok=False))
    log.append(_bucket_events(6))
    faults.configure("seed=1,eventlog.write_error=1x1")
    with pytest.raises(OSError):
        analyzer.catch_up()
    faults.configure(None)
    log.recover()
    analyzer.catch_up()
    raised = log.read(etypes=(EventType.ALERT_RAISED,))
    assert len(raised) == 1  # not zero, not duplicated
    assert len(analyzer.alerts) == 1


def test_replay_is_a_pure_function_of_the_stream(tmp_path):
    """A read-side analyzer (the /v1/heartbeat path) reaches the same
    conclusions as the writer that emitted the alerts."""
    log = EventLog(tmp_path / "ev", fsync=False)
    writer = HeartbeatAnalyzer(log)
    for b in range(5):
        log.append(_bucket_events(b))
    log.append(_bucket_events(5, ok=False))
    log.append(_bucket_events(6))
    writer.catch_up()
    replica = HeartbeatAnalyzer(log, emit_alerts=False)
    replica.catch_up()
    assert [(a.kind, a.scope, a.raised_bucket, a.severity)
            for a in replica.alerts] \
        == [(a.kind, a.scope, a.raised_bucket, a.severity)
            for a in writer.alerts]
    doc = replica.status_doc()
    assert doc["countries"]["NG"]["status"] == "alert"
    assert json.loads(json.dumps(doc))  # JSON-safe throughout


def test_status_doc_shape(tmp_path):
    log = EventLog(tmp_path / "ev", fsync=False)
    analyzer = HeartbeatAnalyzer(log)
    log.append(_bucket_events(0))
    log.append(_bucket_events(1))
    analyzer.catch_up()
    doc = analyzer.status_doc()
    assert doc["cursor"] == analyzer.cursor
    assert doc["head_seq"] == log.head_seq
    country = doc["countries"]["NG"]
    assert country["status"] == "ok"
    assert country["success_rate"] == pytest.approx(1.0)
    assert country["alerts"] == []


# ----------------------------------------------------------------------
# Observatory stream over the simulated world
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def simulation(topo):
    from repro.outages import OutageSimulator
    return OutageSimulator(topo).simulate(years=0.05)


def test_stream_is_deterministic(topo, atlas, simulation):
    def run():
        stream = ObservatoryStream(topo, atlas, simulation, seed=7)
        out = []
        for day, hour in stream.ticks(2):
            out.extend((e.ts, e.etype, e.scope, e.a, e.b, e.value, e.ok)
                       for e in stream.tick_events(day, hour))
        return out
    first, second = run(), run()
    assert first and first == second


def test_stream_covers_every_probe_country(topo, atlas, simulation):
    stream = ObservatoryStream(topo, atlas, simulation, seed=7)
    events = []
    for day, hour in stream.ticks(1):
        events.extend(stream.tick_events(day, hour))
    dns_scopes = {e.scope for e in events
                  if e.etype is EventType.DNS}
    assert dns_scopes and dns_scopes <= set(stream.countries)
    assert len(dns_scopes) > 1  # the fleet, not one lucky country
    # Sampling cadence: one DNS burst per probe per sample hour.
    dns = [e for e in events if e.etype is EventType.DNS]
    assert len(dns) >= len(SAMPLE_HOURS) * CHECKS_PER_PROBE


# ----------------------------------------------------------------------
# Live HTTP surface over a pre-built log
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def hb_server(tmp_path_factory):
    from repro.service import create_server
    from repro.store import ArtifactStore

    events_root = tmp_path_factory.mktemp("events") / "log"
    log = EventLog(events_root, fsync=False)
    for b in range(5):
        log.append(_bucket_events(b))
        log.append(_bucket_events(b, scope="KE", probes=(3,)))
    log.append(_bucket_events(5, ok=False))  # NG dark, alert stays open
    log.append([make_event(1.51, EventType.PROBE_CONNECT, "KE",
                           a=3, b=100)])
    log.close()

    store = ArtifactStore(root=tmp_path_factory.mktemp("store"),
                          max_bytes=8 * 1024 * 1024)
    access = io.StringIO()
    httpd, service = create_server(port=0, store=store, job_workers=1,
                                   default_seed=2025,
                                   events_dir=str(events_root),
                                   access_log=access)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    port = httpd.server_address[1]
    yield f"http://127.0.0.1:{port}", service, access
    httpd.shutdown()
    httpd.server_close()
    service.queue.shutdown()


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=60) as resp:
        return resp.status, dict(resp.headers), resp.read()


class TestEventsEndpoint:
    def test_page_and_cursor(self, hb_server):
        base, _, _ = hb_server
        _, _, body = _get(base, "/v1/events?limit=10")
        doc = json.loads(body)
        assert doc["count"] == 10
        assert [e["seq"] for e in doc["events"]] == list(range(10))
        assert doc["cursor"] == 9
        # The returned cursor pages forward without overlap.
        _, _, body = _get(base, f"/v1/events?after={doc['cursor']}"
                                "&limit=10")
        next_page = json.loads(body)
        assert [e["seq"] for e in next_page["events"]] \
            == list(range(10, 20))

    def test_etype_and_scope_filters(self, hb_server):
        base, _, _ = hb_server
        _, _, body = _get(base, "/v1/events?etype=probe_connect")
        doc = json.loads(body)
        assert doc["count"] == 1
        assert doc["events"][0]["type"] == "probe_connect"
        _, _, body = _get(base, "/v1/events?scope=KE&etype=ping")
        assert all(e["scope"] == "KE"
                   for e in json.loads(body)["events"])

    def test_bad_etype_is_400(self, hb_server):
        base, _, _ = hb_server
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, "/v1/events?etype=frobnicate")
        assert err.value.code == 400

    def test_heartbeat_status_replays_detection(self, hb_server):
        base, _, _ = hb_server
        _, _, body = _get(base, "/v1/heartbeat")
        doc = json.loads(body)
        ng = doc["countries"]["NG"]
        assert ng["status"] == "alert"
        assert ng["alerts"][0]["kind"] == "reachability"
        assert doc["countries"]["KE"]["status"] == "ok"
        assert doc["cursor"] == doc["head_seq"]

    def test_stream_returns_immediately_when_behind(self, hb_server):
        base, _, _ = hb_server
        _, _, body = _get(base, "/v1/events?limit=1")
        head = json.loads(body)["head_seq"]
        _, _, body = _get(base, "/v1/heartbeat/stream?cursor=-1"
                                "&limit=5")
        doc = json.loads(body)
        assert doc["count"] == 5 and not doc["timed_out"]
        assert doc["head_seq"] == head

    def test_stream_times_out_at_head(self, hb_server):
        base, _, _ = hb_server
        _, _, body = _get(base,
                          "/v1/heartbeat/stream?timeout=0.2")
        doc = json.loads(body)
        assert doc["timed_out"] and doc["count"] == 0

    def test_telemetry_endpoint_is_live(self, hb_server):
        base, _, _ = hb_server
        status, headers, body = _get(base, "/v1/telemetry")
        assert status == 200
        assert headers["X-Repro-Cache"] == "live"
        json.loads(body)

    def test_access_log_lines_are_json(self, hb_server):
        base, _, access = hb_server
        _get(base, "/healthz")
        lines = [json.loads(line) for line
                 in access.getvalue().splitlines() if line]
        assert lines, "access log should have entries"
        hit = [l for l in lines if l["path"] == "/healthz"][-1]
        assert hit["method"] == "GET" and hit["status"] == 200
        assert hit["latency_ms"] >= 0
        assert {"cache", "degraded", "bytes"} <= set(hit)
