"""Event-log durability: crash-safe appends, torn tails, cursors.

The acceptance bar for the always-on observatory (ROADMAP item 3):
kill the writer mid-append and nothing acknowledged is lost, the torn
tail is quarantined (never silently parsed), and cursor-based
consumers resume exactly once.
"""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.eventlog import (
    CursorFile,
    Event,
    EventLog,
    EventType,
    decode_records,
    drain,
    encode_commit,
    encode_record,
    make_event,
)
from repro.faults import FaultInjected


@pytest.fixture(autouse=True)
def clean_faults():
    """No fault plan leaks into (or out of) any test."""
    faults.configure(None)
    yield
    faults.configure(None)


def _batch(start: int, n: int, scope: str = "NG") -> list[Event]:
    return [make_event(0.25 * (start + i), EventType.PING, scope,
                       a=start + i, b=4, value=10.0 + i)
            for i in range(n)]


# ----------------------------------------------------------------------
# Core append/read semantics
# ----------------------------------------------------------------------
def test_append_assigns_contiguous_seqs_and_reads_back(tmp_path):
    log = EventLog(tmp_path / "ev")
    assert len(log) == 0 and log.head_seq == -1
    log.append(_batch(0, 5))
    log.append(_batch(5, 3))
    events = log.read()
    assert [e.seq for e in events] == list(range(8))
    assert [e.a for e in events] == list(range(8))
    assert events[3].value == pytest.approx(13.0)
    assert all(e.etype is EventType.PING for e in events)
    assert log.head_seq == 7


def test_rotation_packs_columnar_segments(tmp_path):
    log = EventLog(tmp_path / "ev", segment_events=8)
    log.append(_batch(0, 30))
    segs = log.segments()
    assert len(segs) == 3  # 24 packed, 6 in the WAL tail
    assert [s.first_seq for s in segs] == [0, 8, 16]
    assert all(s.events == 8 for s in segs)
    # Segment payloads live next to canonical-JSON manifests.
    seg_dir = tmp_path / "ev" / "segments"
    assert sorted(p.suffix for p in seg_dir.iterdir()) \
        == [".json"] * 3 + [".seg"] * 3
    assert [e.seq for e in log.read()] == list(range(30))


def test_reopen_sees_identical_contents(tmp_path):
    log = EventLog(tmp_path / "ev", segment_events=8)
    log.append(_batch(0, 20))
    before = [(e.seq, e.ts, e.a, e.value) for e in log.read()]
    log.close()
    reopened = EventLog(tmp_path / "ev", segment_events=8)
    after = [(e.seq, e.ts, e.a, e.value) for e in reopened.read()]
    assert after == before


def test_seal_packs_partial_tail(tmp_path):
    log = EventLog(tmp_path / "ev", segment_events=100)
    log.append(_batch(0, 7))
    assert log.segments() == []
    log.seal()
    assert len(log.segments()) == 1
    assert (tmp_path / "ev" / "wal.log").stat().st_size == 0
    assert [e.seq for e in log.read()] == list(range(7))


def test_read_filters_by_type_scope_and_cursor(tmp_path):
    log = EventLog(tmp_path / "ev", segment_events=4)
    log.append([make_event(0.0, EventType.DNS, "NG", a=1),
                make_event(0.1, EventType.PING, "KE", a=2),
                make_event(0.2, EventType.DNS, "KE", a=3),
                make_event(0.3, EventType.OUTAGE_BEGIN, "NG", a=9)])
    assert [e.a for e in log.read(etypes=(EventType.DNS,))] == [1, 3]
    assert [e.a for e in log.read(scope="KE")] == [2, 3]
    assert [e.a for e in log.read(after=1)] == [3, 9]
    assert [e.a for e in log.read(limit=2)] == [1, 2]


# ----------------------------------------------------------------------
# Torn tails and corruption
# ----------------------------------------------------------------------
def test_torn_wal_tail_is_truncated_and_quarantined(tmp_path):
    log = EventLog(tmp_path / "ev", segment_events=1000)
    for i in range(10):  # one batch per event: each individually durable
        log.append(_batch(i, 1))
    log.close()
    wal = tmp_path / "ev" / "wal.log"
    data = wal.read_bytes()
    wal.write_bytes(data[:-7])  # writer died mid-batch
    reopened = EventLog(tmp_path / "ev", segment_events=1000)
    # Every fully fsynced record before the tear survives.
    assert [e.seq for e in reopened.read()] == list(range(9))
    quarantined = list((tmp_path / "ev" / "quarantine").iterdir())
    assert len(quarantined) == 1
    assert quarantined[0].read_bytes()  # evidence kept, not destroyed
    # The log stays appendable after recovery.
    reopened.append(_batch(9, 2))
    assert [e.a for e in reopened.read()] == list(range(11))


def test_garbage_wal_does_not_crash_reopen(tmp_path):
    log = EventLog(tmp_path / "ev")
    log.append(_batch(0, 4))
    log.close()
    wal = tmp_path / "ev" / "wal.log"
    wal.write_bytes(wal.read_bytes() + b"\x01\x02\x03garbage")
    reopened = EventLog(tmp_path / "ev")
    assert [e.seq for e in reopened.read()] == list(range(4))


def test_corrupt_segment_is_quarantined_on_read(tmp_path):
    log = EventLog(tmp_path / "ev", segment_events=4)
    log.append(_batch(0, 12))
    seg = sorted((tmp_path / "ev" / "segments").glob("*.seg"))[1]
    blob = bytearray(seg.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    seg.write_bytes(bytes(blob))
    log.close()
    reopened = EventLog(tmp_path / "ev", segment_events=4)
    # The digest mismatch drops that segment; the rest still serves.
    assert [e.seq for e in reopened.read()] == [0, 1, 2, 3, 8, 9, 10, 11]
    names = [p.name for p in (tmp_path / "ev" / "quarantine").iterdir()]
    assert any(n.endswith(".seg") for n in names)


def test_wal_framing_round_trip():
    event = Event(seq=41, ts=1.5, etype=EventType.DNS, scope="ZA",
                  a=7, b=36914, value=182.25, ok=False)
    blob = encode_record(event)
    commit = encode_commit(41)
    # Rows without a trailing commit marker are an unfinished batch.
    assert decode_records(blob) == ([], 0)
    decoded, good = decode_records(blob + commit + blob[: len(blob) // 2])
    assert good == len(blob) + len(commit)  # torn batch detected exactly
    assert decoded == [event]


# ----------------------------------------------------------------------
# Injected faults: the writer dies mid-append
# ----------------------------------------------------------------------
def _append_supervised(log: EventLog, batch, attempts: int = 8) -> None:
    for _ in range(attempts):
        try:
            log.append(batch)
            return
        except (FaultInjected, OSError):
            log.recover()
    raise AssertionError("append kept failing")


def test_write_error_fault_is_all_or_nothing(tmp_path):
    faults.configure("seed=1,eventlog.write_error=1x3")
    log = EventLog(tmp_path / "ev", segment_events=16)
    for i in range(40):
        _append_supervised(log, _batch(i, 1))
    assert faults.plan().fired("eventlog.write_error") == 3
    assert [e.a for e in log.read()] == list(range(40))


def test_torn_write_fault_never_loses_acked_events(tmp_path):
    faults.configure("seed=5,eventlog.torn_write=0.3")
    log = EventLog(tmp_path / "ev", segment_events=16)
    for i in range(0, 60, 3):
        _append_supervised(log, _batch(i, 3))
    assert faults.plan().fired("eventlog.torn_write") > 0
    assert [e.a for e in log.read()] == list(range(60))
    faults.configure(None)
    # A fresh process (reopen) agrees byte-for-byte.
    reopened = EventLog(tmp_path / "ev", segment_events=16)
    assert [e.a for e in reopened.read()] == list(range(60))
    assert [e.seq for e in reopened.read()] == list(range(60))


def test_torn_write_leaves_real_torn_tail_for_recovery(tmp_path):
    faults.configure("seed=0,eventlog.torn_write=1x1")
    log = EventLog(tmp_path / "ev")
    with pytest.raises(OSError):
        log.append(_batch(0, 4))
    # The half-written batch is on disk; appending without recovery
    # is refused rather than risking interleaved garbage.
    assert (tmp_path / "ev" / "wal.log").stat().st_size > 0
    from repro.eventlog import EventLogError
    with pytest.raises(EventLogError):
        log.append(_batch(0, 1))
    log.recover()
    log.append(_batch(0, 4))
    assert [e.a for e in log.read()] == [0, 1, 2, 3]
    assert [e.seq for e in log.read()] == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# Cursors: resume exactly once
# ----------------------------------------------------------------------
def test_cursor_file_round_trip(tmp_path):
    cursor = CursorFile(tmp_path / "cursors" / "hb.json", name="hb")
    assert cursor.load() == -1
    cursor.ack(41)
    assert cursor.load() == 41
    assert CursorFile(tmp_path / "cursors" / "hb.json").load() == 41


def test_drain_resumes_exactly_once_after_crash(tmp_path):
    log = EventLog(tmp_path / "ev", segment_events=8)
    log.append(_batch(0, 25))
    cursor = CursorFile(tmp_path / "cursor.json")
    seen: list[int] = []

    class Boom(RuntimeError):
        pass

    def crashy(events):
        if len(seen) >= 10:
            raise Boom()  # consumer dies mid-stream
        seen.extend(e.seq for e in events)

    with pytest.raises(Boom):
        drain(log, cursor, crashy, batch=5)
    assert seen == list(range(10))
    # Restarted consumer: picks up after the last *acked* batch, so
    # every event is handled exactly once overall.
    drain(log, cursor, lambda evs: seen.extend(e.seq for e in evs),
          batch=5)
    assert seen == list(range(25))
    log.append(_batch(25, 4))
    drain(log, cursor, lambda evs: seen.extend(e.seq for e in evs))
    assert seen == list(range(29))


def test_cross_process_refresh_sees_new_segments(tmp_path):
    writer = EventLog(tmp_path / "ev", segment_events=4)
    reader = EventLog(tmp_path / "ev", segment_events=4)
    writer.append(_batch(0, 10))
    reader.refresh()
    assert [e.seq for e in reader.read()] == list(range(10))


def test_stats_and_counts(tmp_path):
    log = EventLog(tmp_path / "ev", segment_events=4)
    log.append([make_event(0.0, EventType.DNS, "NG"),
                make_event(0.1, EventType.DNS, "KE"),
                make_event(0.2, EventType.ALERT_RAISED, "KE", a=1)])
    assert log.counts_by_type() == {"dns": 2, "alert_raised": 1}
    stats = log.stats()
    assert stats["events"] == 3
    assert stats["head_seq"] == 2
    assert stats["root"] == str(log.root)


def test_fsync_can_be_disabled_for_tests(tmp_path):
    log = EventLog(tmp_path / "ev", fsync=False)
    log.append(_batch(0, 3))
    assert len(log) == 3
    assert os.path.exists(tmp_path / "ev" / "wal.log")


# ----------------------------------------------------------------------
# Retention (gc) — CLI surface: ``repro events gc``
# ----------------------------------------------------------------------
def _gc_log(tmp_path, events: int = 32) -> EventLog:
    """Four packed 8-event segments, empty tail (ts = 0.25 * seq)."""
    log = EventLog(tmp_path / "ev", segment_events=8)
    log.append(_batch(0, events))
    log.seal()
    assert len(log.segments()) == events // 8
    return log


def test_gc_noop_without_policy(tmp_path):
    log = _gc_log(tmp_path)
    assert log.gc() == []
    assert len(log.segments()) == 4


def test_gc_keep_days_drops_stale_segments(tmp_path):
    log = _gc_log(tmp_path)
    # head_ts = 7.75; segment last_ts are 1.75, 3.75, 5.75, 7.75.
    dropped = log.gc(keep_days=4.5)
    assert [s.first_seq for s in dropped] == [0]
    assert [e.seq for e in log.read()] == list(range(8, 32))
    # Dropped segment files are gone from disk, survivors intact.
    seg_dir = log.root / "segments"
    assert len(list(seg_dir.glob("*.seg"))) == 3


def test_gc_keep_bytes_drops_oldest_until_under_cap(tmp_path):
    log = _gc_log(tmp_path)
    size = log.segments()[0].size_bytes
    dropped = log.gc(keep_bytes=2 * size + size // 2)
    assert [s.first_seq for s in dropped] == [0, 8]
    assert [e.seq for e in log.read()] == list(range(16, 32))


def test_gc_never_drops_newest_segment_or_wal_tail(tmp_path):
    log = EventLog(tmp_path / "ev", segment_events=8)
    log.append(_batch(0, 20))  # two packed segments + 4-event tail
    dropped = log.gc(keep_bytes=0, keep_days=0.0)
    # Everything droppable goes — except the newest packed segment
    # (the seq anchor for reopening an idle log) and the live tail.
    assert [s.first_seq for s in dropped] == [0]
    assert [e.seq for e in log.read()] == list(range(8, 20))
    reopened = EventLog(tmp_path / "ev", segment_events=8)
    reopened.append(_batch(20, 1))
    assert reopened.head_seq == 20


def test_gc_respects_consumer_cursor_boundary(tmp_path):
    from repro.eventlog import min_acked_seq

    log = _gc_log(tmp_path)
    cursors = log.root / "cursors"
    CursorFile(cursors / "slow.json", name="slow").ack(10)
    CursorFile(cursors / "fast.json", name="fast").ack(30)
    boundary = min_acked_seq(cursors)
    assert boundary == 10
    # Segment 8..15 contains unconsumed seq 11..15: must survive, and
    # retention never punches holes, so nothing after it drops either.
    dropped = log.gc(keep_bytes=0, min_acked_seq=boundary)
    assert [s.first_seq for s in dropped] == [0]
    assert [e.seq for e in log.read()] == list(range(8, 32))
    assert min_acked_seq(tmp_path / "nonexistent") is None


def test_gc_counts_dropped_segments(tmp_path):
    from repro import telemetry

    log = _gc_log(tmp_path)
    was_enabled = telemetry.enabled()
    telemetry.enable()
    try:
        counter = telemetry.counter(
            "repro_eventlog_segments_dropped_total")
        before = counter.value
        log.gc(keep_days=2.5)
        assert counter.value == before + 2
    finally:
        if not was_enabled:
            telemetry.disable()
