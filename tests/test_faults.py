"""Chaos regression suite: every injection site either recovers with
byte-identical results or fails loudly with a settled job state.

The harness under test is :mod:`repro.faults`; the survivors are the
supervised pool (:mod:`repro.exec.pool`), the supervised job queue
(:mod:`repro.service.jobs`), the artifact store
(:mod:`repro.store.disk`) and degraded-mode serving
(:mod:`repro.service.server`).  See docs/robustness.md.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import faults, telemetry
from repro.exec import TransientTaskError, fork_available, map_tasks
from repro.exec import pool as pool_mod
from repro.service.endpoints import ENDPOINTS, Endpoint, Param
from repro.service.jobs import JobQueue, JobState
from repro.service.server import ObservatoryService
from repro.store import ArtifactKey, ArtifactStore, canonical_bytes

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="platform has no fork")


@pytest.fixture(autouse=True)
def clean_faults():
    """No fault plan leaks into (or out of) any test."""
    faults.configure(None)
    yield
    faults.configure(None)


@pytest.fixture
def metrics():
    """Telemetry enabled for the duration of one test."""
    was_enabled = telemetry.enabled()
    telemetry.enable()
    yield
    if not was_enabled:
        telemetry.disable()


def _square(x: int) -> int:
    return x * x


def _doc(x: int) -> dict:
    return {"x": x, "sq": x * x}


_FLAKY_CALLS: dict[int, int] = {}


def _flaky(x: int) -> int:
    n = _FLAKY_CALLS.get(x, 0) + 1
    _FLAKY_CALLS[x] = n
    if n == 1:
        raise TransientTaskError("first call fails")
    return x * x


# ----------------------------------------------------------------------
class TestSpecGrammar:
    def test_sites_rates_and_limits(self):
        plan = faults.parse_spec(
            "seed=7,exec.worker_crash=1x1,jobs.stall=0.25,"
            "store.corrupt=0x0,hang=2,stall=1.5,slow=0.01")
        assert plan.seed == 7
        assert plan.hang_s == 2 and plan.stall_s == 1.5
        assert plan.slow_s == 0.01
        assert plan.sites["exec.worker_crash"].rate == 1.0
        assert plan.sites["exec.worker_crash"].limit == 1
        assert plan.sites["jobs.stall"].rate == 0.25
        assert plan.sites["jobs.stall"].limit is None
        assert plan.sites["store.corrupt"].limit == 0

    @pytest.mark.parametrize("spec", [
        "nonsense",
        "bogus.site=1",
        "exec.worker_crash=2.0",
        "exec.worker_crash=-0.5",
        "exec.worker_crash=1x-1",
        "exec.worker_crash=1xq",
        "seed=abc",
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_spec(spec)

    def test_configure_none_disables(self):
        faults.configure("seed=1,exec.task_error=1")
        assert faults.active()
        faults.configure(None)
        assert not faults.active()
        assert not faults.should_fire("exec.task_error", "anything")

    def test_describe_round_trips_sites(self):
        faults.configure("seed=3,jobs.error=0.5x2")
        text = faults.describe()
        assert "seed=3" in text and "jobs.error=0.5x2" in text
        faults.configure(None)
        assert faults.describe() == "fault injection off"


class TestDeterministicTargeting:
    def test_same_seed_same_decisions(self):
        decisions = []
        for _ in range(2):
            plan = faults.parse_spec("seed=11,exec.task_error=0.5")
            decisions.append([
                plan.should_fire("exec.task_error", f"item-{i}")
                for i in range(64)])
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_different_seed_different_decisions(self):
        a = faults.parse_spec("seed=1,exec.task_error=0.5")
        b = faults.parse_spec("seed=2,exec.task_error=0.5")
        fire = lambda p: [p.should_fire("exec.task_error", f"i{i}")
                          for i in range(64)]
        assert fire(a) != fire(b)

    def test_occurrence_counter_is_per_identity(self):
        # Re-checking one identity advances only that identity's
        # sequence, so interleaving order cannot change decisions.
        plan1 = faults.parse_spec("seed=5,exec.task_error=0.5")
        seq_a = [plan1.should_fire("exec.task_error", "a")
                 for _ in range(8)]
        plan2 = faults.parse_spec("seed=5,exec.task_error=0.5")
        interleaved = []
        for _ in range(8):
            interleaved.append(plan2.should_fire("exec.task_error", "a"))
            plan2.should_fire("exec.task_error", "b")
        assert interleaved == seq_a

    def test_rate_zero_never_one_always(self):
        plan = faults.parse_spec("jobs.error=0,jobs.stall=1")
        assert not any(plan.should_fire("jobs.error", str(i))
                       for i in range(32))
        assert all(plan.should_fire("jobs.stall", str(i))
                   for i in range(32))

    def test_limit_bounds_injections(self):
        plan = faults.parse_spec("jobs.error=1x3")
        fired = sum(plan.should_fire("jobs.error", str(i))
                    for i in range(10))
        assert fired == 3
        assert plan.fired("jobs.error") == 3

    def test_injection_counter(self, metrics):
        faults.configure("seed=1,jobs.error=1x1")
        before = faults._INJECTED.labels(site="jobs.error").value
        assert faults.should_fire("jobs.error", "x")
        assert faults._INJECTED.labels(site="jobs.error").value \
            == before + 1


# ----------------------------------------------------------------------
class TestSupervisedMapTasks:
    @needs_fork
    def test_worker_crash_recovers_byte_identical(self, metrics):
        expected = map_tasks(_doc, list(range(30)), workers=1)
        before = pool_mod._RECOVERIES.labels(
            reason="broken_pool").value
        faults.configure("seed=7,exec.worker_crash=1x1")
        out = map_tasks(_doc, list(range(30)), workers=3, timeout=60)
        assert canonical_bytes(out) == canonical_bytes(expected)
        assert pool_mod._RECOVERIES.labels(
            reason="broken_pool").value > before

    @needs_fork
    def test_worker_hang_recovers_via_timeout(self, metrics):
        expected = [x * x for x in range(12)]
        before = pool_mod._RECOVERIES.labels(reason="timeout").value
        faults.configure("seed=7,hang=20,exec.worker_hang=1x1")
        started = time.monotonic()
        out = map_tasks(_square, list(range(12)), workers=2,
                        timeout=1.0)
        assert out == expected
        # Recovery must not wait out the 20 s hang: the pool is killed.
        assert time.monotonic() - started < 10
        assert pool_mod._RECOVERIES.labels(
            reason="timeout").value > before

    @needs_fork
    def test_serial_vs_parallel_determinism_under_crashes(self):
        """The satellite check: crashes must be invisible in output."""
        faults.configure("seed=13,exec.worker_crash=0.5x4")
        parallel = map_tasks(_doc, list(range(50)), workers=4,
                             timeout=60)
        faults.configure(None)
        serial = map_tasks(_doc, list(range(50)), workers=1)
        assert canonical_bytes(parallel) == canonical_bytes(serial)

    def test_transient_errors_retry_to_identical_results(self, metrics):
        expected = [x * x for x in range(5)]
        before = pool_mod._RETRIES.labels(mode="serial").value
        faults.configure("seed=7,exec.task_error=1x2")
        assert map_tasks(_square, list(range(5)), retries=3) == expected
        assert pool_mod._RETRIES.labels(mode="serial").value \
            == before + 2

    def test_exhausted_retries_fail_loudly(self):
        faults.configure("seed=7,exec.task_error=1x50")
        with pytest.raises(faults.FaultInjected):
            map_tasks(_square, list(range(5)), retries=1)

    def test_completion_counters_reflect_failures(self, metrics):
        """Satellite bugfix: a raising batch must not count its tasks
        as completed."""
        mode = "serial"
        dispatched = pool_mod._TASKS.labels(mode=mode)
        completed = pool_mod._COMPLETED.labels(mode=mode)
        failed = pool_mod._TASK_FAILURES.labels(mode=mode)
        d0, c0, f0 = dispatched.value, completed.value, failed.value
        faults.configure("seed=7,exec.task_error=1x50")
        with pytest.raises(faults.FaultInjected):
            map_tasks(_square, list(range(8)), retries=0)
        assert dispatched.value == d0 + 8
        assert completed.value == c0        # nothing completed
        assert failed.value == f0 + 1
        faults.configure(None)
        assert map_tasks(_square, list(range(8))) \
            == [x * x for x in range(8)]
        assert completed.value == c0 + 8

    def test_transient_task_error_is_retried_without_faults(self):
        _FLAKY_CALLS.clear()
        assert map_tasks(_flaky, [1, 2, 3], retries=2) == [1, 4, 9]
        _FLAKY_CALLS.clear()
        with pytest.raises(TransientTaskError):
            map_tasks(_flaky, [1, 2, 3], retries=0)

    def test_slow_task_changes_timing_not_results(self):
        faults.configure("seed=7,slow=0.01,exec.slow_task=1x3")
        assert map_tasks(_square, [1, 2, 3]) == [1, 4, 9]


# ----------------------------------------------------------------------
class TestJobSupervision:
    def test_deadline_fails_stuck_job_and_unblocks_waiters(self,
                                                           metrics):
        queue = JobQueue(workers=1, reaper_interval_s=0.05)
        try:
            job, _ = queue.submit("stuck", "t", "/v1/t",
                                  lambda: time.sleep(3.0),
                                  deadline_s=0.2)
            assert job.wait(timeout=5.0)
            assert job.state is JobState.FAILED
            assert "deadline" in job.error
        finally:
            queue.shutdown(timeout=5.0)

    def test_bounded_retries_with_backoff_succeed(self):
        queue = JobQueue(workers=1, retry_backoff_s=0.01)
        try:
            calls = []

            def flaky() -> None:
                calls.append(1)
                if len(calls) < 3:
                    raise RuntimeError("transient")

            job, _ = queue.submit("flaky", "t", "/v1/t", flaky,
                                  max_retries=3)
            assert job.wait(timeout=10)
            assert job.state is JobState.DONE
            assert len(calls) == 3 and job.attempts == 3
        finally:
            queue.shutdown()

    def test_retries_exhausted_fail(self):
        queue = JobQueue(workers=1, retry_backoff_s=0.01)
        try:
            def boom() -> None:
                raise RuntimeError("always")

            job, _ = queue.submit("boom", "t", "/v1/t", boom,
                                  max_retries=2)
            assert job.wait(timeout=10)
            assert job.state is JobState.FAILED
            assert "always" in job.error and job.attempts == 3
        finally:
            queue.shutdown()

    def test_cancel_queued_job(self):
        queue = JobQueue(workers=1)
        try:
            gate = threading.Event()
            queue.submit("blocker", "t", "/v1/t",
                         lambda: gate.wait(timeout=10))
            job, _ = queue.submit("victim", "t", "/v1/t",
                                  lambda: None)
            assert queue.cancel("victim")
            gate.set()
            assert job.wait(timeout=10)
            assert job.state is JobState.CANCELLED
            # Settled jobs cannot be re-cancelled; unknown ids say no.
            assert not queue.cancel("victim")
            assert not queue.cancel("never-existed")
            # A cancelled id is resubmittable (like a failed one).
            retry, created = queue.submit("victim", "t", "/v1/t",
                                          lambda: None)
            assert created
            assert retry.wait(timeout=10)
            assert retry.state is JobState.DONE
        finally:
            queue.shutdown()

    def test_shutdown_settles_unfinished_jobs(self):
        """Satellite bugfix: shutdown must never leave RUNNING jobs or
        blocked waiters behind."""
        queue = JobQueue(workers=1)
        running, _ = queue.submit("slow", "t", "/v1/t",
                                  lambda: time.sleep(3.0))
        queued, _ = queue.submit("behind", "t", "/v1/t", lambda: None)
        time.sleep(0.1)           # let the worker pick up "slow"
        started = time.monotonic()
        queue.shutdown(timeout=0.3)
        assert time.monotonic() - started < 2.5
        for job in (running, queued):
            assert job.wait(timeout=0.1), job
            assert job.settled, job
        assert running.state is JobState.FAILED
        assert "shutdown" in running.error

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_abnormal_worker_death_settles_job(self):
        queue = JobQueue(workers=2, reaper_interval_s=0.05)
        try:
            def die() -> None:
                raise SystemExit("worker killed")

            job, _ = queue.submit("fatal", "t", "/v1/t", die)
            assert job.wait(timeout=5)
            assert job.state is JobState.FAILED
            assert "worker died" in job.error
        finally:
            queue.shutdown()

    def test_injected_stall_hits_deadline(self, metrics):
        faults.configure("seed=3,stall=2,jobs.stall=1x1")
        queue = JobQueue(workers=1, reaper_interval_s=0.05)
        try:
            job, _ = queue.submit("stalled", "t", "/v1/t",
                                  lambda: None, deadline_s=0.2,
                                  max_retries=0)
            assert job.wait(timeout=5)
            assert job.state is JobState.FAILED
            assert "deadline" in job.error
        finally:
            queue.shutdown()

    def test_injected_error_consumed_by_retries(self):
        faults.configure("seed=3,jobs.error=1x1")
        queue = JobQueue(workers=1, retry_backoff_s=0.01)
        try:
            job, _ = queue.submit("flaky-inject", "t", "/v1/t",
                                  lambda: None, max_retries=2)
            assert job.wait(timeout=10)
            assert job.state is JobState.DONE
            assert job.attempts == 2
        finally:
            queue.shutdown()


# ----------------------------------------------------------------------
class TestStoreFaults:
    def _key(self, n: int = 0) -> ArtifactKey:
        return ArtifactKey.make(kind="t.fault", seed=1,
                                params={"n": n}, schema_version=1)

    def test_corrupt_write_is_detected_and_dropped(self, tmp_path,
                                                   metrics):
        store = ArtifactStore(root=tmp_path)
        faults.configure("seed=1,store.corrupt=1x1")
        key = self._key()
        store.put(key, b'{"v": 1}')
        # The corrupted payload must never be served: integrity check
        # drops it and reports a miss.
        assert store.get(key) is None
        # After the injection budget is spent, a rewrite heals it.
        store.put(key, b'{"v": 1}')
        assert store.get(key) == b'{"v": 1}'

    def test_write_error_raises_and_leaves_no_entry(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        faults.configure("seed=1,store.write_error=1x1")
        key = self._key()
        with pytest.raises(OSError):
            store.put(key, b"payload")
        assert store.get(key) is None
        store.put(key, b"payload")          # budget spent: heals
        assert store.get(key) == b"payload"

    def test_get_by_digest_round_trip(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        key = self._key()
        store.put(key, b"bytes")
        assert store.get_by_digest(key.digest) == b"bytes"
        assert store.get_by_digest("0" * 64) is None


# ----------------------------------------------------------------------
def _fake_compute(seed: int, params: dict) -> dict:
    return {"value": params["x"] * seed}


@pytest.fixture
def chaos_service(tmp_path):
    """An ObservatoryService over a synthetic expensive endpoint, so
    degraded-mode behaviour is testable without world builds."""
    endpoint = Endpoint("chaostest", schema_version=1, expensive=True,
                        params=(Param("x", int, 1),),
                        compute=_fake_compute, help="test endpoint")
    cheap = Endpoint("chaoscheap", schema_version=1, expensive=False,
                     params=(Param("x", int, 1),),
                     compute=_fake_compute, help="test endpoint")
    ENDPOINTS[endpoint.name] = endpoint
    ENDPOINTS[cheap.name] = cheap
    queue = JobQueue(workers=1, default_deadline_s=2.0,
                     default_max_retries=0, retry_backoff_s=0.01,
                     reaper_interval_s=0.05)
    service = ObservatoryService(ArtifactStore(root=tmp_path),
                                 queue=queue, default_seed=3)
    yield service
    queue.shutdown()
    ENDPOINTS.pop(endpoint.name, None)
    ENDPOINTS.pop(cheap.name, None)


class TestDegradedServing:
    def test_failed_job_without_stale_copy_is_503_with_header(
            self, chaos_service):
        faults.configure("seed=2,jobs.error=1x10")
        resp = chaos_service.handle("/v1/chaostest?x=4&wait=1")
        assert resp.status == 503
        assert "X-Repro-Degraded" in resp.headers
        assert resp.headers.get("Retry-After") == "1"

    def test_failed_job_with_stale_copy_serves_stale_200(
            self, chaos_service):
        # Prime one good artifact for the endpoint (different params).
        ok = chaos_service.handle("/v1/chaostest?x=1&wait=1")
        assert ok.status == 200
        faults.configure("seed=2,jobs.error=1x10")
        resp = chaos_service.handle("/v1/chaostest?x=9&wait=1")
        assert resp.status == 200
        assert resp.headers["X-Repro-Cache"] == "stale"
        assert "X-Repro-Degraded" in resp.headers
        assert resp.headers["X-Repro-Stale-Key"] \
            != resp.headers["X-Repro-Key"]
        assert resp.body == ok.body

    def test_recovery_after_fault_budget_returns_fresh_200(
            self, chaos_service):
        faults.configure("seed=2,jobs.error=1x1")
        first = chaos_service.handle("/v1/chaostest?x=5&wait=1")
        assert first.status == 503
        # Failed jobs are resubmittable; the budget is exhausted now.
        second = chaos_service.handle("/v1/chaostest?x=5&wait=1")
        assert second.status == 200
        assert second.headers["X-Repro-Cache"] == "miss"
        third = chaos_service.handle("/v1/chaostest?x=5&wait=1")
        assert third.status == 200
        assert third.headers["X-Repro-Cache"] == "hit"
        assert second.body == third.body

    def test_store_write_failure_degrades_cheap_endpoint(
            self, chaos_service, metrics):
        faults.configure("seed=2,store.write_error=1x1")
        resp = chaos_service.handle("/v1/chaoscheap?x=2")
        assert resp.status == 200
        assert resp.headers["X-Repro-Degraded"] == "store-write-failed"
        # Budget spent: the next request computes and stores durably.
        again = chaos_service.handle("/v1/chaoscheap?x=2")
        assert again.status == 200
        assert "X-Repro-Degraded" not in again.headers
        assert again.body == resp.body

    def test_corrupt_store_entry_recomputes_identical_bytes(
            self, chaos_service):
        faults.configure("seed=2,store.corrupt=1x1")
        first = chaos_service.handle("/v1/chaoscheap?x=7")
        assert first.status == 200      # response bytes are pre-write
        faults.configure(None)
        # The stored copy is corrupt: the read drops it, recomputes,
        # and the recompute is byte-identical.
        second = chaos_service.handle("/v1/chaoscheap?x=7")
        assert second.status == 200
        assert second.headers["X-Repro-Cache"] == "miss"
        assert second.body == first.body
        third = chaos_service.handle("/v1/chaoscheap?x=7")
        assert third.headers["X-Repro-Cache"] == "hit"

    def test_job_status_reports_cancelled_as_settled(
            self, chaos_service):
        gate = threading.Event()
        chaos_service.queue.submit("blocker-x", "t", "/v1/t",
                                   lambda: gate.wait(timeout=10))
        resp = chaos_service.handle("/v1/chaostest?x=11")
        assert resp.status == 202
        import json
        job_id = json.loads(resp.body)["job_id"]
        cancel = chaos_service.cancel_job(job_id)
        assert cancel.status == 200
        gate.set()
        chaos_service.queue.wait(job_id, timeout=5)
        status = chaos_service.handle(f"/v1/jobs/{job_id}")
        assert status.status == 200     # settled → 200, not 202
        assert json.loads(status.body)["state"] == "cancelled"

    def test_cancel_unknown_job_404(self, chaos_service):
        assert chaos_service.cancel_job("feedface").status == 404
