"""Seed determinism: same seed, same world — byte for byte."""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro import build_world, telemetry
from repro.topology.serialize import topology_to_dict


def _world_json(seed: int) -> str:
    return json.dumps(topology_to_dict(build_world(seed=seed)),
                      sort_keys=True)


def test_same_seed_identical_serialized_output():
    assert _world_json(909) == _world_json(909)


def test_different_seeds_differ():
    assert _world_json(909) != _world_json(910)


def test_telemetry_does_not_perturb_generation():
    """Instrumentation must never consume RNG or reorder the build."""
    was = telemetry.enabled()
    telemetry.disable()
    try:
        plain = _world_json(909)
        telemetry.enable()
        instrumented = _world_json(909)
    finally:
        if was:
            telemetry.enable()
        else:
            telemetry.disable()
    assert plain == instrumented


_SNAPSHOT_SIG = """
import hashlib
from repro import build_world
from repro.datasets import collect_snapshot
from repro.measurement import MeasurementEngine, build_atlas_platform
from repro.routing import BGPRouting, PhysicalNetwork

topo = build_world(seed=2025)
engine = MeasurementEngine(topo, BGPRouting(topo), PhysicalNetwork(topo))
snap = collect_snapshot(topo, engine, build_atlas_platform(topo),
                        max_pairs=40)
sig = ";".join(str([h.ip for h in t.hops]) for t in snap.traceroutes)
print(hashlib.sha256(sig.encode()).hexdigest())
"""


def test_measurements_stable_across_hash_seeds():
    """Regression: hop addresses once used builtin hash(), which is
    salted per process, so two identical runs produced different
    traceroutes.  Measurement output must not depend on
    PYTHONHASHSEED."""
    digests = []
    for hash_seed in ("1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        out = subprocess.run([sys.executable, "-c", _SNAPSHOT_SIG],
                             env=env, capture_output=True, text=True,
                             check=True)
        digests.append(out.stdout.strip())
    assert digests[0] == digests[1]


_PARALLEL_SIG = """
import hashlib, os, sys
from repro import build_world
from repro.datasets import collect_snapshot
from repro.exec import fork_available
from repro.measurement import MeasurementEngine, build_atlas_platform
from repro.routing import BGPRouting, PhysicalNetwork

workers = int(os.environ["REPRO_SIG_WORKERS"])
if workers > 1 and not fork_available():
    print("no-fork")
    sys.exit(0)
topo = build_world(seed=2025)
engine = MeasurementEngine(topo, BGPRouting(topo), PhysicalNetwork(topo))
snap = collect_snapshot(topo, engine, build_atlas_platform(topo),
                        max_pairs=40, workers=workers)
sig = ";".join(repr(t) for t in snap.traceroutes)
print(hashlib.sha256(sig.encode()).hexdigest())
"""


def test_snapshot_identical_serial_vs_parallel():
    """The parallelism contract: same seed, same bytes, any workers.

    Run in fresh subprocesses so neither mode can inherit the other's
    warm caches, and compare full traceroute reprs (hops, RTTs, byte
    accounting — not just addresses)."""
    digests = []
    for workers in ("1", "2"):
        env = dict(os.environ, REPRO_SIG_WORKERS=workers)
        out = subprocess.run([sys.executable, "-c", _PARALLEL_SIG],
                             env=env, capture_output=True, text=True,
                             check=True)
        digests.append(out.stdout.strip())
    if digests[1] == "no-fork":
        return  # platform cannot run the parallel path at all
    assert digests[0] == digests[1]
