"""Longitudinal monitoring runner."""

import pytest

from repro.measurement import build_observatory_platform
from repro.observatory import (
    MonitoringRunner,
    PlacementObjective,
    place_probes,
)
from repro.outages import OutageSimulator


@pytest.fixture(scope="module")
def platform(topo):
    hosts = place_probes(topo, PlacementObjective.COUNTRY_COVERAGE)
    return build_observatory_platform(topo, hosts)


@pytest.fixture(scope="module")
def report(topo, phys, platform):
    simulation = OutageSimulator(topo, phys).simulate(years=0.5)
    runner = MonitoringRunner(topo, phys, platform)
    return runner.run(simulation, days=150)


class TestMonitoring:
    def test_health_series_produced(self, report):
        assert report.health
        for row in report.health:
            assert 0.0 <= row.success_rate <= 1.0
            assert row.checks > 0

    def test_detects_real_outages(self, report):
        assert report.truth
        assert report.detected_truth <= report.truth
        assert report.recall() > 0.5

    def test_catches_what_radar_cannot(self, report):
        """The §7 value proposition: active per-country probing catches
        degradations below the traffic-drop detection threshold, which
        a Radar-style monitor misses *by definition*."""
        assert report.sub_threshold_truth()
        assert report.sub_threshold_recall() > 0.3

    def test_false_alarms_bounded(self, report):
        country_days = len(report.health)
        assert report.false_alarm_days() < 0.05 * country_days

    def test_anomalies_reference_health_days(self, report):
        days = {(h.day, h.iso2) for h in report.health}
        for anomaly in report.anomalies:
            assert (anomaly.day, anomaly.iso2) in days
            assert anomaly.success_rate < anomaly.baseline

    def test_deterministic(self, topo, phys, platform):
        simulation = OutageSimulator(topo, phys).simulate(years=0.2)
        a = MonitoringRunner(topo, phys, platform).run(simulation, 40)
        b = MonitoringRunner(topo, phys, platform).run(simulation, 40)
        assert len(a.anomalies) == len(b.anomalies)
        assert a.detected_truth == b.detected_truth

    def test_no_events_no_truth(self, topo, phys, platform):
        from repro.outages import SimulationResult
        empty = SimulationResult(events=[], years=0.1)
        report = MonitoringRunner(topo, phys, platform).run(empty, 20)
        assert not report.truth
        assert report.recall() == 1.0
