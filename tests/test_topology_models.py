"""AS / IXP / cable / terrestrial model classes."""

import pytest

from repro.geo import Region, country
from repro.topology import (
    AS,
    ASKind,
    ASLink,
    CableCorridor,
    Prefix,
    REAL_CABLE_SPECS,
    Relationship,
    SubseaCable,
    TERRESTRIAL_LINKS,
)
from repro.topology.cables import build_cable, landing_site
from repro.topology.ixp import IXP
from repro.topology.terrestrial import (
    REFERENCE_TERRESTRIAL_LINKS,
    TerrestrialLink,
    links_for,
)


class TestAS:
    def test_basic(self):
        a = AS(asn=65000, name="Test", country_iso2="GH",
               kind=ASKind.MOBILE)
        assert a.region is Region.WESTERN_AFRICA
        assert a.is_african
        assert a.kind.is_eyeball

    def test_validation(self):
        with pytest.raises(ValueError):
            AS(asn=0, name="x", country_iso2="GH", kind=ASKind.FIXED)
        with pytest.raises(ValueError):
            AS(asn=1, name="x", country_iso2="GH", kind=ASKind.FIXED,
               tier=4)

    def test_link_other(self):
        link = ASLink(1, 2, Relationship.PEER_TO_PEER)
        assert link.other(1) == 2
        assert link.other(2) == 1
        assert link.involves(1) and not link.involves(3)
        with pytest.raises(ValueError):
            link.other(3)


class TestIXP:
    def _ixp(self):
        return IXP(ixp_id=1, name="TESTIX", country_iso2="KE",
                   lan_prefix=Prefix.parse("196.60.0.0/24"),
                   founded_year=2010, members={100, 200})

    def test_lan_ip_for_member(self):
        ixp = self._ixp()
        ip = ixp.lan_ip_for(100)
        assert ixp.lan_prefix.contains_ip(ip)

    def test_lan_ip_rejects_non_member(self):
        with pytest.raises(ValueError):
            self._ixp().lan_ip_for(999)

    def test_lan_prefix_size_enforced(self):
        with pytest.raises(ValueError):
            IXP(ixp_id=1, name="X", country_iso2="KE",
                lan_prefix=Prefix.parse("196.0.0.0/16"),
                founded_year=2010)

    def test_region(self):
        assert self._ixp().region is Region.EASTERN_AFRICA


class TestCables:
    def test_real_catalog_landings_resolve(self):
        for spec in REAL_CABLE_SPECS:
            for key in spec.landing_keys:
                iso2, site, lat, lon = landing_site(key)
                country(iso2)  # raises if unknown
                assert -90 <= lat <= 90

    def test_march_2024_cables_present(self):
        names = {s.name for s in REAL_CABLE_SPECS}
        for required in ("WACS", "MainOne", "SAT-3/WASC", "ACE", "EIG",
                         "SEACOM", "AAE-1"):
            assert required in names

    def test_build_cable_segments(self):
        spec = next(s for s in REAL_CABLE_SPECS if s.name == "WACS")
        cable = build_cable(1, spec)
        segs = cable.segments()
        assert len(segs) == len(cable.landings) - 1
        assert all(s.length_km > 0 for s in segs)

    def test_active_in(self):
        spec = next(s for s in REAL_CABLE_SPECS if s.name == "Equiano")
        cable = build_cable(1, spec)
        assert not cable.active_in(2021)
        assert cable.active_in(2022)

    def test_traffic_weight_ramps(self):
        spec = next(s for s in REAL_CABLE_SPECS
                    if s.name == "2Africa-West")
        cable = build_cable(1, spec)
        assert cable.traffic_weight(2022) == 0.0
        assert 0 < cable.traffic_weight(2024) < cable.traffic_weight(2030)
        # Fully ramped after 5 years of service.
        assert cable.traffic_weight(2028) == cable.traffic_weight(2040)

    def test_countries_deduplicated_in_order(self):
        cable = SubseaCable(
            cable_id=1, name="X", corridor=CableCorridor.WEST_AFRICA,
            landings=[], rfs_year=2020) if False else None
        spec = next(s for s in REAL_CABLE_SPECS if s.name == "SAT-3/WASC")
        built = build_cable(9, spec)
        assert built.countries[0] == "PT"
        assert len(built.countries) == len(set(built.countries))

    def test_validation(self):
        from repro.topology.cables import Landing
        with pytest.raises(ValueError):
            SubseaCable(cable_id=1, name="bad",
                        corridor=CableCorridor.WEST_AFRICA,
                        landings=[Landing("GH", "Accra", 5.0, 0.0)],
                        rfs_year=2020)


class TestTerrestrial:
    def test_endpoints_are_known_countries(self):
        for link in TERRESTRIAL_LINKS + REFERENCE_TERRESTRIAL_LINKS:
            country(link.a)
            country(link.b)
            assert 0 < link.quality <= 1.0
            assert link.length_km > 0

    def test_links_for(self):
        za_links = links_for("ZA")
        assert za_links
        assert all(l.involves("ZA") for l in za_links)

    def test_landlocked_countries_have_links(self):
        """Every landlocked African country must reach the sea somehow."""
        from repro.geo import AFRICAN_COUNTRIES
        for iso2, c in AFRICAN_COUNTRIES.items():
            if not c.coastal:
                assert links_for(iso2), f"{iso2} is isolated"

    def test_other(self):
        link = TerrestrialLink("KE", "UG", 0.5)
        assert link.other("KE") == "UG"
        with pytest.raises(ValueError):
            link.other("TZ")

    def test_bad_quality_rejected(self):
        with pytest.raises(ValueError):
            TerrestrialLink("KE", "UG", 0.0)
