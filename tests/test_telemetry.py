"""Telemetry subsystem: registry semantics, spans, exporters, gating."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.telemetry import (
    MAX_LABEL_CARDINALITY,
    MetricsRegistry,
    SpanCollector,
    profiled,
    span,
    to_json,
    to_prometheus,
    traced,
)
from repro.telemetry.export import summary_report


@pytest.fixture
def enabled():
    """Enable telemetry for one test, restoring the prior state."""
    was = telemetry.enabled()
    telemetry.enable()
    yield
    if not was:
        telemetry.disable()


@pytest.fixture
def registry():
    return MetricsRegistry()


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestCounters:
    def test_monotonic(self, enabled, registry):
        c = registry.counter("c_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_children_are_independent(self, enabled, registry):
        c = registry.counter("c_total", "help", labels=("region",))
        c.labels(region="west").inc()
        c.labels(region="west").inc()
        c.labels(region="east").inc()
        values = {lv: inst.value for lv, inst in c.series()}
        assert values == {("west",): 2.0, ("east",): 1.0}

    def test_label_name_mismatch_raises(self, enabled, registry):
        c = registry.counter("c_total", "help", labels=("region",))
        with pytest.raises(ValueError):
            c.labels(coutnry="GH")

    def test_label_cardinality_capped(self, enabled, registry):
        c = registry.counter("c_total", "help", labels=("x",))
        for i in range(MAX_LABEL_CARDINALITY):
            c.labels(x=str(i)).inc()
        with pytest.raises(ValueError):
            c.labels(x="one-too-many")

    def test_reregistration_returns_same_instrument(self, registry):
        a = registry.counter("c_total", "help")
        b = registry.counter("c_total", "help")
        assert a is b

    def test_conflicting_registration_raises(self, registry):
        registry.counter("m", "help")
        with pytest.raises(ValueError):
            registry.gauge("m", "help")
        with pytest.raises(ValueError):
            registry.counter("m", "help", labels=("x",))


class TestGauges:
    def test_set_inc_dec(self, enabled, registry):
        g = registry.gauge("g", "help")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0


class TestHistograms:
    def test_bucketing_is_cumulative(self, enabled, registry):
        h = registry.histogram("h", "help", buckets=(1, 5, 10))
        for v in (0.5, 0.9, 3, 7, 100):
            h.observe(v)
        assert h.cumulative_buckets() == [
            (1.0, 2), (5.0, 3), (10.0, 4), (float("inf"), 5)]
        assert h.count == 5
        assert h.sum == pytest.approx(111.4)

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(5, 1))

    def test_labeled_histogram(self, enabled, registry):
        h = registry.histogram("h", "help", labels=("kind",),
                               buckets=(1, 2))
        h.labels(kind="a").observe(1.5)
        assert h.labels(kind="a").count == 1


# ----------------------------------------------------------------------
# Disabled-mode gating
# ----------------------------------------------------------------------
class TestDisabledNoOp:
    def test_instruments_ignore_updates(self, registry):
        telemetry.disable()
        c = registry.counter("c_total")
        g = registry.gauge("g")
        h = registry.histogram("h", buckets=(1,))
        c.inc()
        g.set(9)
        h.observe(0.5)
        assert c.value == 0.0
        assert g.value == 0.0
        assert h.count == 0

    def test_span_is_shared_noop(self):
        telemetry.disable()
        cm1 = span("a")
        cm2 = span("b")
        assert cm1 is cm2  # the null singleton: no allocation
        with cm1:
            pass

    def test_traced_calls_through(self):
        telemetry.disable()

        @traced
        def f(x):
            return x + 1

        assert f(1) == 2

    def test_profiled_yields_none(self):
        telemetry.disable()
        with profiled() as report:
            pass
        assert report is None


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_builds_a_tree(self, enabled):
        collector = SpanCollector()
        with span("outer", collector=collector, seed=1):
            with span("inner", collector=collector):
                pass
            with span("inner2", collector=collector):
                pass
        roots = collector.roots()
        assert len(roots) == 1
        assert roots[0].name == "outer"
        assert [c.name for c in roots[0].children] == ["inner", "inner2"]
        assert roots[0].attrs == {"seed": 1}
        assert roots[0].duration_s >= sum(
            c.duration_s for c in roots[0].children)

    def test_exception_marks_error_and_unwinds(self, enabled):
        collector = SpanCollector()
        with pytest.raises(RuntimeError):
            with span("outer", collector=collector):
                with span("inner", collector=collector):
                    raise RuntimeError("boom")
        roots = collector.roots()
        assert len(roots) == 1
        assert roots[0].error == "RuntimeError"
        assert roots[0].children[0].error == "RuntimeError"
        assert collector.current() is None

    def test_traced_records_span(self, enabled):
        collector = telemetry.COLLECTOR
        before = len(collector.roots())

        @traced("custom.name")
        def f():
            return 42

        assert f() == 42
        roots = collector.roots()[before:]
        assert [r.name for r in roots] == ["custom.name"]

    def test_walk_and_to_dict(self, enabled):
        collector = SpanCollector()
        with span("a", collector=collector):
            with span("b", collector=collector):
                pass
        root = collector.roots()[0]
        assert [(d, s.name) for d, s in root.walk()] == [(0, "a"),
                                                         (1, "b")]
        d = root.to_dict()
        assert d["name"] == "a"
        assert d["children"][0]["name"] == "b"
        assert "error" not in d


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def _sample(self, registry):
        c = registry.counter("repro_x_total", "things", labels=("k",))
        c.labels(k="a").inc(3)
        g = registry.gauge("repro_g", "level")
        g.set(1.5)
        h = registry.histogram("repro_h", "dist", buckets=(1, 10))
        h.observe(0.5)
        h.observe(20)

    def test_prometheus_text(self, enabled, registry):
        self._sample(registry)
        text = to_prometheus(registry)
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{k="a"} 3' in text
        assert "repro_g 1.5" in text
        assert 'repro_h_bucket{le="+Inf"} 2' in text
        assert "repro_h_sum 20.5" in text
        assert "repro_h_count 2" in text

    def test_prometheus_escapes_label_values(self, enabled, registry):
        c = registry.counter("c_total", "", labels=("k",))
        c.labels(k='he said "hi"\n').inc()
        text = to_prometheus(registry)
        assert r'c_total{k="he said \"hi\"\n"} 1' in text

    def test_json_roundtrips(self, enabled, registry):
        self._sample(registry)
        collector = SpanCollector()
        with span("root", collector=collector):
            pass
        doc = json.loads(json.dumps(to_json(registry, collector)))
        assert doc["format"] == "repro-telemetry/1"
        assert doc["metrics"]["repro_x_total"]["series"][0]["value"] == 3
        assert doc["spans"][0]["name"] == "root"

    def test_summary_report_renders(self, enabled, registry):
        self._sample(registry)
        collector = SpanCollector()
        with span("root", collector=collector):
            pass
        text = summary_report(registry, collector)
        assert "repro_x_total{k=a}" in text
        assert "root:" in text

    def test_write_report(self, enabled, registry, tmp_path):
        self._sample(registry)
        out = tmp_path / "tel.json"
        telemetry.write_report(out, registry, SpanCollector())
        assert json.loads(out.read_text())["format"] == \
            "repro-telemetry/1"
        assert "# TYPE" in (tmp_path / "tel.prom").read_text()


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_profiled_collects_stats(self, enabled, tmp_path):
        out = tmp_path / "prof.stats"
        with profiled(out_path=out) as report:
            sum(range(1000))
        assert report is not None
        assert report.text
        assert out.exists()


# ----------------------------------------------------------------------
# Instrumented pipeline smoke
# ----------------------------------------------------------------------
class TestPipelineInstrumentation:
    def test_world_build_emits_spans_and_counters(self, enabled):
        from repro import build_world
        telemetry.reset()
        build_world(seed=77)
        names = {r.name for r in telemetry.COLLECTOR.roots()}
        assert "topology.build" in names
        worlds = telemetry.REGISTRY.get(
            "repro_topology_worlds_built_total")
        assert worlds.value == 1.0
