"""Property-based routing checks on randomly generated mini-topologies.

The world generator produces one family of graphs; these tests verify
the BGP engine's invariants (valley-freedom, loop-freedom, preference
order) on *arbitrary* relationship graphs hypothesis dreams up.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.routing import BGPRouting, RouteKind, is_valley_free
from repro.topology import AS, ASKind, ASLink, Relationship
from repro.topology.calibration import WorldParams
from repro.topology.model import Topology


def _random_topology(n_ases: int, edge_seed: int) -> Topology:
    """A random valley-free-able topology: tiers with downward p2c
    edges plus random intra-tier peering."""
    rng = random.Random(edge_seed)
    ases = {}
    tiers = {}
    for i in range(n_ases):
        asn = 100 + i
        tier = 1 if i < max(1, n_ases // 6) else \
            (2 if i < n_ases // 2 else 3)
        tiers[asn] = tier
        ases[asn] = AS(asn=asn, name=f"AS{asn}", country_iso2="DE",
                       kind=ASKind.TRANSIT if tier < 3 else ASKind.FIXED,
                       tier=tier)
    links = []
    linked = set()

    def key(a, b):
        return (min(a, b), max(a, b))

    def p2c(p, c):
        if p == c or key(p, c) in linked:
            return
        linked.add(key(p, c))
        links.append(ASLink(p, c, Relationship.PROVIDER_TO_CUSTOMER))
        ases[p].customers.add(c)
        ases[c].providers.add(p)

    def p2p(a, b):
        if a == b or key(a, b) in linked:
            return
        linked.add(key(a, b))
        links.append(ASLink(a, b, Relationship.PEER_TO_PEER))
        ases[a].peers.add(b)
        ases[b].peers.add(a)

    # Tier-1s must form a full mesh: peer routes are not re-exported
    # to other peers, so a mere chain leaves the top tier partitioned.
    tier1 = [a for a, t in tiers.items() if t == 1]
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            p2p(a, b)
    for asn, tier in tiers.items():
        if tier == 1:
            continue
        uppers = [x for x, t in tiers.items() if t < tier]
        for provider in rng.sample(uppers,
                                   k=min(len(uppers), rng.randint(1, 2))):
            p2c(provider, asn)
    same_tier = [a for a, t in tiers.items() if t == 2]
    for _ in range(n_ases // 3):
        if len(same_tier) >= 2:
            p2p(*rng.sample(same_tier, 2))
    return Topology(params=WorldParams(), ases=ases, links=links,
                    ixps={}, cables=[], terrestrial=[], datacenters=[],
                    cdns=[], cloud_resolvers=[], resolver_configs={},
                    websites={})


@settings(max_examples=25, deadline=None)
@given(st.integers(6, 30), st.integers(0, 10_000))
def test_random_topologies_route_valley_free(n, seed):
    topo = _random_topology(n, seed)
    routing = BGPRouting(topo)
    asns = sorted(topo.ases)
    rng = random.Random(seed + 1)
    for _ in range(15):
        src, dst = rng.choice(asns), rng.choice(asns)
        path = routing.path(src, dst)
        if path is None:
            continue
        assert is_valley_free(topo, path), (path, seed)
        assert len(path) == len(set(path))


@settings(max_examples=25, deadline=None)
@given(st.integers(6, 30), st.integers(0, 10_000))
def test_random_topologies_fully_connected(n, seed):
    """Every AS buys transit toward tier 1, so all pairs must route."""
    topo = _random_topology(n, seed)
    routing = BGPRouting(topo)
    asns = sorted(topo.ases)
    dst = asns[0]  # a tier-1
    table = routing.routes_to(dst)
    assert set(table) == set(asns)


@settings(max_examples=20, deadline=None)
@given(st.integers(8, 25), st.integers(0, 10_000))
def test_preference_order_respected(n, seed):
    """No AS with a customer route uses a peer/provider route."""
    topo = _random_topology(n, seed)
    routing = BGPRouting(topo)
    for dst in sorted(topo.ases)[:5]:
        table = routing.routes_to(dst)
        for asn, entry in table.items():
            if entry.kind is RouteKind.SELF:
                continue
            a = topo.as_(asn)
            # If the destination is in this AS's customer cone via the
            # chosen next hop, the route must be a customer route.
            if entry.kind is not RouteKind.CUSTOMER:
                assert entry.next_hop not in a.customers or \
                    table[entry.next_hop].kind is not RouteKind.SELF \
                    or entry.kind is RouteKind.CUSTOMER
